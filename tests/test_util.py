"""Tests for the shared helpers in repro._util."""

import numpy as np
import pytest

from repro._util import (
    as_float_array,
    as_index_array,
    as_rng,
    check_square,
    check_vector,
    cumulative_segments,
)


def test_as_rng_from_int_reproducible():
    a = as_rng(42).standard_normal(5)
    b = as_rng(42).standard_normal(5)
    assert np.array_equal(a, b)


def test_as_rng_passthrough():
    g = np.random.default_rng(0)
    assert as_rng(g) is g


def test_as_rng_none_gives_generator():
    assert isinstance(as_rng(None), np.random.Generator)


def test_as_float_array_coercion():
    out = as_float_array([1, 2, 3])
    assert out.dtype == np.float64
    assert out.flags["C_CONTIGUOUS"]


def test_as_float_array_copy_semantics():
    src = np.arange(3, dtype=np.float64)
    view = as_float_array(src)
    assert view is src or view.base is src  # no copy by default
    copy = as_float_array(src, copy=True)
    copy[0] = 99.0
    assert src[0] == 0.0


def test_as_float_array_rejects_3d():
    with pytest.raises(ValueError, match="1-D or 2-D"):
        as_float_array(np.zeros((2, 2, 2)))


def test_as_index_array():
    out = as_index_array([1, 2])
    assert out.dtype == np.int64
    with pytest.raises(ValueError, match="1-D"):
        as_index_array(np.zeros((2, 2)))


def test_check_square():
    assert check_square((3, 3)) == 3
    with pytest.raises(ValueError, match="square"):
        check_square((3, 4))
    with pytest.raises(ValueError, match="square"):
        check_square((3,))


def test_check_vector():
    v = check_vector(np.arange(4.0), 4)
    assert v.dtype == np.float64
    with pytest.raises(ValueError, match="shape"):
        check_vector(np.arange(4.0), 5)
    with pytest.raises(ValueError, match="shape"):
        check_vector(np.zeros((2, 2)), 4)


def test_cumulative_segments():
    out = cumulative_segments(np.array([2, 0, 3]))
    assert out.tolist() == [0, 2, 2, 5]
    assert cumulative_segments(np.array([], dtype=np.int64)).tolist() == [0]
