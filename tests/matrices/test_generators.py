"""Tests for the random problem generators."""

import numpy as np
import pytest

from repro.matrices import Problem, poisson_2d, poisson_3d, random_nonsymmetric, random_spd
from repro.sparse import partition_rows_by_work, BlockRowView


def test_random_spd_is_spd():
    A = random_spd(50, dominance=1.5, seed=1)
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.linalg.eigvalsh(dense)[0] > 0


def test_random_spd_strictly_dominant():
    A = random_spd(80, dominance=1.2, seed=2)
    d, off = A.split_diagonal()
    assert np.all(np.abs(d) > off.row_abs_sums())


def test_random_spd_determinism():
    a = random_spd(30, seed=5)
    b = random_spd(30, seed=5)
    assert np.array_equal(a.data, b.data)


def test_random_spd_validation():
    with pytest.raises(ValueError):
        random_spd(0)
    with pytest.raises(ValueError):
        random_spd(10, density=0.0)
    with pytest.raises(ValueError):
        random_spd(10, dominance=0.9)


def test_random_nonsymmetric_solvable():
    from repro.solvers import GMRESSolver, StoppingCriterion

    A = random_nonsymmetric(60, dominance=1.5, seed=3)
    x_star = np.ones(60)
    b = A.matvec(x_star)
    r = GMRESSolver(restart=20, stopping=StoppingCriterion(tol=1e-11, maxiter=300)).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-7)


def test_poisson_2d_problem():
    p = poisson_2d(10)
    assert p.residual_norm(p.x_star) < 1e-12
    assert p.error(p.x_star) == 0.0
    assert p.A.shape == (100, 100)


def test_poisson_3d_problem():
    p = poisson_3d(4)
    assert p.A.shape == (64, 64)
    assert p.residual_norm(p.x_star) < 1e-12


def test_problem_solution_kinds():
    for kind in ("ones", "random", "smooth"):
        p = poisson_2d(6, solution=kind)
        assert p.residual_norm(p.x_star) < 1e-12
    with pytest.raises(ValueError, match="solution"):
        poisson_2d(6, solution="spiky")


def test_problem_solvable_end_to_end():
    from repro.core import BlockAsyncSolver
    from repro.solvers import StoppingCriterion

    p = poisson_2d(12, shift=0.5)
    r = BlockAsyncSolver(
        local_iterations=3, block_size=24, seed=0,
        stopping=StoppingCriterion(tol=1e-11, maxiter=500),
    ).solve(p.A, p.b)
    assert r.converged
    assert p.error(r.x) < 1e-7


# --------------------------------------------------------------------- #
# work-balanced partitioning
# --------------------------------------------------------------------- #


def test_partition_by_work_covers():
    from repro.matrices import trefethen

    A = trefethen(500)
    b = partition_rows_by_work(A, 8)
    assert b[0] == 0 and b[-1] == 500
    assert np.all(np.diff(b) > 0)


def test_partition_by_work_balances_better_than_rows():
    from repro.matrices import trefethen

    A = trefethen(2000)
    by_work = BlockRowView(A, boundaries=partition_rows_by_work(A, 16))
    by_rows = BlockRowView(A, block_size=125)

    def spread(view):
        w = [blk.local_off.nnz + blk.external.nnz + blk.nrows for blk in view.blocks]
        return max(w) / min(w)

    assert spread(by_work) < spread(by_rows)


def test_partition_by_work_validation(small_spd):
    with pytest.raises(ValueError):
        partition_rows_by_work(small_spd, 0)
    with pytest.raises(ValueError):
        partition_rows_by_work(small_spd, 61)


def test_partition_by_work_single_block(small_spd):
    assert partition_rows_by_work(small_spd, 1).tolist() == [0, 60]


def test_partition_by_work_usable_by_engine(small_spd):
    from repro.core import AsyncConfig
    from repro.core.engine import AsyncEngine

    bounds = partition_rows_by_work(small_spd, 5)
    view = BlockRowView(small_spd, boundaries=bounds)
    b = small_spd.matvec(np.ones(60))
    engine = AsyncEngine(view, b, AsyncConfig(local_iterations=2, block_size=12))
    x = np.zeros(60)
    for _ in range(60):
        x = engine.sweep(x)
    assert np.allclose(x, 1.0, atol=1e-6)
