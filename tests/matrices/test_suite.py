"""Tests for the suite registry and right-hand sides."""

import numpy as np
import pytest

from repro.matrices import PAPER_TABLE1, SUITE_NAMES, default_rhs, get_matrix


def test_suite_names_complete():
    assert set(SUITE_NAMES) == {
        "Chem97ZtZ",
        "fv1",
        "fv2",
        "fv3",
        "s1rmt3m1",
        "Trefethen_2000",
        "Trefethen_20000",
    }


def test_paper_table1_values():
    assert PAPER_TABLE1["fv1"].n == 9604
    assert PAPER_TABLE1["fv1"].nnz == 85264
    assert PAPER_TABLE1["s1rmt3m1"].rho == 2.65
    assert not PAPER_TABLE1["s1rmt3m1"].jacobi_convergent
    assert PAPER_TABLE1["Trefethen_20000"].jacobi_convergent


@pytest.mark.parametrize("name", ["Chem97ZtZ", "fv1", "fv2", "Trefethen_2000"])
def test_get_matrix_dimensions(name):
    A = get_matrix(name)
    info = PAPER_TABLE1[name]
    assert A.shape == (info.n, info.n)
    if name != "fv2":  # fv2/fv3 nnz identical; checked in matrix tests
        assert A.nnz == info.nnz


def test_get_matrix_cached():
    a = get_matrix("Chem97ZtZ")
    b = get_matrix("Chem97ZtZ")
    assert a is b


def test_get_matrix_no_cache_fresh():
    a = get_matrix("Chem97ZtZ")
    b = get_matrix("Chem97ZtZ", cache=False)
    assert a is not b
    assert np.array_equal(a.data, b.data)


def test_get_matrix_unknown():
    with pytest.raises(KeyError, match="unknown suite matrix"):
        get_matrix("nosuch")


def test_default_rhs_ones(fv1):
    b = default_rhs(fv1)
    assert np.allclose(b, fv1.matvec(np.ones(fv1.shape[0])))


def test_default_rhs_random_seeded(fv1):
    b1 = default_rhs(fv1, kind="random", seed=3)
    b2 = default_rhs(fv1, kind="random", seed=3)
    b3 = default_rhs(fv1, kind="random", seed=4)
    assert np.array_equal(b1, b2)
    assert not np.array_equal(b1, b3)


def test_default_rhs_unit(fv1):
    assert np.all(default_rhs(fv1, kind="unit") == 1.0)


def test_default_rhs_unknown_kind(fv1):
    with pytest.raises(ValueError, match="rhs kind"):
        default_rhs(fv1, kind="zeros")
