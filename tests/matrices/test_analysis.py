"""Tests for matrix characterization (Table 1 machinery)."""

import numpy as np
import pytest

from repro.matrices import characterize, chem97ztz_like, sparsity_grid
from repro.matrices.analysis import iteration_matrix, render_sparsity
from repro.sparse import CSRMatrix


def test_iteration_matrix_definition(small_spd):
    dense = small_spd.to_dense()
    d = np.diag(dense)
    expected = np.eye(len(d)) - dense / d[:, None]
    B = iteration_matrix(small_spd)
    assert np.allclose(B.to_dense(), expected)
    assert np.all(B.diagonal() == 0.0)


def test_iteration_matrix_absolute(small_spd):
    B = iteration_matrix(small_spd)
    Babs = iteration_matrix(small_spd, absolute=True)
    assert np.allclose(Babs.to_dense(), np.abs(B.to_dense()))


def test_iteration_matrix_zero_diagonal():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(ValueError, match="zero diagonal"):
        iteration_matrix(A)


def test_characterize_small(small_spd):
    props = characterize(small_spd, "test", block_sizes=(10,))
    dense = small_spd.to_dense()
    lam = np.linalg.eigvalsh(dense)
    assert props.n == 60
    assert props.nnz == small_spd.nnz
    assert np.isclose(props.cond_a, lam[-1] / lam[0], rtol=1e-6)
    assert props.rho_jacobi < 1  # strictly diagonally dominant by fixture
    assert props.rho_abs >= props.rho_jacobi - 1e-12
    assert props.diag_dominant_fraction == 1.0
    assert 10 in props.off_block_fraction
    assert props.converges_jacobi() and props.converges_async()


def test_characterize_skip_cond(small_spd):
    props = characterize(small_spd, compute_cond=False)
    assert np.isnan(props.cond_a) and np.isnan(props.cond_scaled)


def test_characterize_divergent_matrix():
    from repro.matrices.structural import banded_gram

    M = banded_gram(300, 4, taper_power=1.0)
    props = characterize(M, compute_cond=False, block_sizes=())
    assert props.rho_jacobi > 1.0
    assert not props.converges_jacobi()


def test_rho_abs_dominates_rho():
    # rho(|B|) >= rho(B) always (Perron-Frobenius).
    A = chem97ztz_like(n=300)
    props = characterize(A, compute_cond=False, block_sizes=())
    assert props.rho_abs >= props.rho_jacobi - 1e-10


def test_sparsity_grid_counts(small_spd):
    grid = sparsity_grid(small_spd, resolution=6)
    assert grid.sum() == small_spd.nnz
    assert grid.shape == (6, 6)


def test_sparsity_grid_diagonal_matrix():
    A = CSRMatrix.identity(100)
    grid = sparsity_grid(A, resolution=10)
    assert np.array_equal(grid, np.eye(10) * 10)


def test_sparsity_grid_invalid_resolution(small_spd):
    with pytest.raises(ValueError):
        sparsity_grid(small_spd, resolution=0)


def test_render_sparsity_shape(small_spd):
    art = render_sparsity(small_spd, resolution=8)
    lines = art.splitlines()
    assert len(lines) == 8
    assert all(len(l) == 8 for l in lines)


def test_render_sparsity_empty():
    from repro.sparse import COOMatrix

    art = render_sparsity(COOMatrix.empty((5, 5)).tocsr(), resolution=4)
    assert set(art) <= {" ", "\n"}
