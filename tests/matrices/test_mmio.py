"""Tests for MatrixMarket I/O."""

import numpy as np
import pytest

from repro.matrices import read_matrix_market, write_matrix_market
from repro.sparse import CSRMatrix


def test_roundtrip(tmp_path, rng):
    dense = rng.standard_normal((9, 7))
    dense[np.abs(dense) < 0.9] = 0.0
    A = CSRMatrix.from_dense(dense)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, A, comment="roundtrip test\nsecond line")
    B = read_matrix_market(path)
    assert np.array_equal(B.to_dense(), dense)


def test_roundtrip_exact_values(tmp_path):
    # repr-based writing must preserve doubles bit-exactly.
    dense = np.array([[np.pi, 0.0], [0.0, 1.0 / 3.0]])
    A = CSRMatrix.from_dense(dense)
    path = tmp_path / "exact.mtx"
    write_matrix_market(path, A)
    B = read_matrix_market(path)
    assert np.array_equal(B.to_dense(), dense)


def test_read_symmetric_expansion(tmp_path):
    text = """%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 5.0
"""
    path = tmp_path / "sym.mtx"
    path.write_text(text)
    A = read_matrix_market(path)
    dense = A.to_dense()
    assert dense[0, 1] == -1.0 and dense[1, 0] == -1.0
    assert np.allclose(dense, dense.T)
    assert A.nnz == 5


def test_read_pattern(tmp_path):
    text = """%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
"""
    path = tmp_path / "pat.mtx"
    path.write_text(text)
    A = read_matrix_market(path)
    assert A.to_dense()[0, 1] == 1.0
    assert A.to_dense()[1, 2] == 1.0


def test_read_integer_field(tmp_path):
    text = """%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 7
"""
    path = tmp_path / "int.mtx"
    path.write_text(text)
    assert read_matrix_market(path).to_dense()[0, 0] == 7.0


def test_read_empty_matrix(tmp_path):
    text = """%%MatrixMarket matrix coordinate real general
4 5 0
"""
    path = tmp_path / "empty.mtx"
    path.write_text(text)
    A = read_matrix_market(path)
    assert A.shape == (4, 5)
    assert A.nnz == 0


def test_bad_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%NotMatrixMarket\n1 1 0\n")
    with pytest.raises(ValueError, match="header"):
        read_matrix_market(path)


def test_unsupported_format(tmp_path):
    path = tmp_path / "arr.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(ValueError, match="coordinate"):
        read_matrix_market(path)


def test_unsupported_symmetry(tmp_path):
    path = tmp_path / "skew.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n")
    with pytest.raises(ValueError, match="symmetry"):
        read_matrix_market(path)


def test_symmetric_upper_entries_rejected(tmp_path):
    path = tmp_path / "badsym.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n")
    with pytest.raises(ValueError, match="lower triangle"):
        read_matrix_market(path)


def test_wrong_entry_count(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
    with pytest.raises(ValueError, match="expected 2 entries"):
        read_matrix_market(path)
