"""Tests for the s1rmt3m1 surrogate (ρ(B) > 1, ill-conditioned SPD)."""

import numpy as np
import pytest

from repro.matrices.structural import (
    banded_gram,
    calibrate_taper_power,
    gram_jacobi_radius,
    s1rmt3m1_like,
)
from repro.sparse.linalg import lanczos_extreme_eigenvalues


def test_banded_gram_symmetric_banded():
    M = banded_gram(200, 5)
    dense = M.to_dense()
    assert np.allclose(dense, dense.T)
    rows, cols = np.nonzero(dense)
    assert np.abs(rows - cols).max() <= 10  # band 2*half_band


def test_banded_gram_psd():
    M = banded_gram(150, 4, eps=1e-8)
    lam = np.linalg.eigvalsh(M.to_dense())
    assert lam[0] > 0


def test_banded_gram_matches_explicit_product():
    # Reconstruct F explicitly with the same RNG stream and compare F F^T.
    n, hb, p, eps, seed = 60, 3, 1.3, 0.0, 42
    M = banded_gram(n, hb, taper_power=p, eps=eps, seed=seed)
    rng = np.random.default_rng(seed)
    F = np.zeros((n, n))
    for d in range(-hb, hb + 1):
        taper = (1.0 + abs(d)) ** -p
        vals = taper * rng.standard_normal(n)
        idx = np.arange(max(0, -d), min(n, n - d))
        F[idx, idx + d] = vals[idx]
    assert np.allclose(M.to_dense(), F @ F.T, atol=1e-12)


def test_banded_gram_validation():
    with pytest.raises(ValueError, match="band"):
        banded_gram(10, 8)
    with pytest.raises(ValueError, match="taper_power"):
        banded_gram(100, 4, taper_power=0.0)
    with pytest.raises(ValueError, match="eps"):
        banded_gram(100, 4, eps=-1.0)


def test_default_matrix_properties():
    A = s1rmt3m1_like()
    assert A.shape == (5489, 5489)
    # ~49 nnz/row (the paper's 262,411 corresponds to ~47.8).
    assert 260000 < A.nnz < 275000
    rho = gram_jacobi_radius(A)
    assert abs(rho - 2.65) < 5e-3
    lmin, lmax = lanczos_extreme_eigenvalues(A, steps=80, seed=3)
    assert lmin > 0  # SPD despite rho(B) > 1


def test_ill_conditioning():
    from repro.sparse.linalg import condition_number

    A = s1rmt3m1_like()
    assert condition_number(A, steps=80) > 1e5


def test_calibration_small():
    n, hb, target = 600, 4, 2.2
    p = calibrate_taper_power(n, hb, target, iterations=12)
    M = banded_gram(n, hb, taper_power=p)
    assert abs(gram_jacobi_radius(M) - target) < 0.02


def test_calibration_unreachable_target():
    with pytest.raises(ValueError, match="achievable"):
        calibrate_taper_power(400, 3, 50.0, iterations=4)


def test_custom_rho_triggers_calibration():
    A = s1rmt3m1_like(n=600, half_band=4, rho=2.1)
    assert abs(gram_jacobi_radius(A) - 2.1) < 0.02


def test_invalid_rho():
    with pytest.raises(ValueError, match="rho"):
        s1rmt3m1_like(rho=-1.0)


def test_jacobi_diverges_on_default():
    from repro.matrices import default_rhs
    from repro.solvers import JacobiSolver, StoppingCriterion

    A = s1rmt3m1_like()
    b = default_rhs(A)
    r = JacobiSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=60)).solve(A, b)
    assert r.relative_residuals()[-1] > r.relative_residuals()[0]
