"""Tests for 3-D stencil assembly."""

import numpy as np
import pytest

from repro.matrices.grids3d import STENCILS_3D, stencil_laplacian_3d


def test_7pt_interior_row():
    A = stencil_laplacian_3d(3, stencil="7pt").to_dense()
    center = (1 * 3 + 1) * 3 + 1  # grid point (1,1,1)
    assert A[center, center] == 6.0
    assert np.isclose(A[center].sum(), 0.0)  # interior row sums to zero
    assert (A[center] == -1.0).sum() == 6


def test_7pt_symmetric_spd():
    A = stencil_laplacian_3d(4, stencil="7pt")
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.linalg.eigvalsh(dense)[0] > 0


def test_27pt_row_sum_zero_interior():
    legs = STENCILS_3D["27pt"]
    assert abs(sum(legs.values())) < 1e-12
    A = stencil_laplacian_3d(4, stencil="27pt").to_dense()
    center = (1 * 4 + 1) * 4 + 1
    assert np.isclose(A[center].sum(), 0.0)


def test_27pt_no_face_entries():
    # The Q1 3-D stencil has zero face coefficients: only edge/corner
    # neighbours are stored.
    A = stencil_laplacian_3d(4, stencil="27pt")
    dense = A.to_dense()
    center = (1 * 4 + 1) * 4 + 1
    face = (2 * 4 + 1) * 4 + 1  # +x neighbour
    assert dense[center, face] == 0.0
    corner = (2 * 4 + 2) * 4 + 2
    assert np.isclose(dense[center, corner], -1.0 / 12.0)


def test_27pt_spd():
    A = stencil_laplacian_3d(4, stencil="27pt", shift=1e-9)
    lam = np.linalg.eigvalsh(A.to_dense())
    assert lam[0] > 0


def test_rectangular_box():
    A = stencil_laplacian_3d(2, 3, 4, stencil="7pt")
    assert A.shape == (24, 24)


def test_shift_and_coefficient():
    rng = np.random.default_rng(0)
    coeff = 0.5 + rng.random((3, 3, 3))
    A0 = stencil_laplacian_3d(3, stencil="7pt", shift=0.7)
    A1 = stencil_laplacian_3d(3, stencil="7pt", shift=0.7, coefficient=coeff)
    w = np.sqrt(coeff.ravel())
    assert np.allclose(A1.to_dense(), np.diag(w) @ A0.to_dense() @ np.diag(w))


def test_block_structure_planes():
    # Lexicographic 3-D: row blocks of nz*ny rows = whole x-slabs; the
    # off-block mass is exactly the slab-to-slab coupling.
    from repro.sparse import BlockRowView

    nx = 6
    A = stencil_laplacian_3d(nx, stencil="7pt", shift=0.5)
    slab = nx * nx  # one x-slab of rows
    view = BlockRowView(A, block_size=slab)
    # Each slab couples only to adjacent slabs: 2 entries per interior row.
    interior = view.blocks[nx // 2]
    per_row = interior.external.nnz / interior.nrows
    assert per_row == pytest.approx(2.0)


def test_validation():
    with pytest.raises(ValueError, match="extents"):
        stencil_laplacian_3d(0)
    with pytest.raises(ValueError, match="stencil"):
        stencil_laplacian_3d(3, stencil="9pt")
    with pytest.raises(ValueError, match="shape"):
        stencil_laplacian_3d(3, coefficient=np.ones((2, 3, 3)))
    with pytest.raises(ValueError, match="positive"):
        stencil_laplacian_3d(3, coefficient=np.zeros((3, 3, 3)))
