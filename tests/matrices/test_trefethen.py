"""Tests for the exact Trefethen reconstruction and the prime sieve."""

import numpy as np
import pytest

from repro.matrices import primes, trefethen
from repro.matrices.analysis import iteration_matrix
from repro.sparse.linalg import spectral_radius


def test_primes_first_values():
    assert primes(10).tolist() == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


def test_primes_small_counts():
    assert primes(0).tolist() == []
    assert primes(1).tolist() == [2]
    assert primes(5).tolist() == [2, 3, 5, 7, 11]


def test_primes_large_count():
    p = primes(20000)
    assert len(p) == 20000
    assert p[-1] == 224737  # the 20000th prime
    assert np.all(np.diff(p) > 0)


def test_primes_negative():
    with pytest.raises(ValueError):
        primes(-1)


def test_trefethen_structure_small():
    A = trefethen(8)
    dense = A.to_dense()
    assert np.allclose(np.diag(dense), [2, 3, 5, 7, 11, 13, 17, 19])
    # offsets 1, 2, 4 present; 3 absent
    assert dense[0, 1] == 1.0 and dense[0, 2] == 1.0 and dense[0, 4] == 1.0
    assert dense[0, 3] == 0.0
    assert np.allclose(dense, dense.T)


def test_trefethen_paper_nnz_2000():
    A = trefethen(2000)
    assert A.shape == (2000, 2000)
    assert A.nnz == 41906  # exactly the paper's Table 1 value


def test_trefethen_nnz_formula():
    # nnz = n + 2 * sum_{2^k < n} (n - 2^k)
    for n in (17, 100, 513):
        A = trefethen(n)
        expected = n
        off = 1
        while off < n:
            expected += 2 * (n - off)
            off *= 2
        assert A.nnz == expected


def test_trefethen_rho_matches_paper():
    A = trefethen(2000)
    rho = spectral_radius(iteration_matrix(A))
    assert abs(rho - 0.8601) < 5e-4  # Table 1 prints 0.8601


def test_trefethen_spd():
    A = trefethen(300)
    lam = np.linalg.eigvalsh(A.to_dense())
    assert lam[0] > 0


def test_trefethen_invalid_n():
    with pytest.raises(ValueError):
        trefethen(0)


def test_trefethen_n1():
    A = trefethen(1)
    assert A.to_dense().tolist() == [[2.0]]
