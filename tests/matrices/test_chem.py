"""Tests for the Chem97ZtZ surrogate."""

import numpy as np
import pytest

from repro.matrices import chem97ztz_like
from repro.matrices.analysis import iteration_matrix
from repro.sparse import BlockRowView
from repro.sparse.linalg import spectral_radius


def test_paper_dimensions():
    A = chem97ztz_like()
    assert A.shape == (2541, 2541)
    assert A.nnz == 7361  # exactly the paper's Table 1 value


def test_paper_rho_exact_by_construction():
    A = chem97ztz_like()
    rho = spectral_radius(iteration_matrix(A), method="dense")
    assert abs(rho - 0.7889) < 1e-10


def test_symmetric():
    A = chem97ztz_like(n=400)
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)


def test_spd():
    A = chem97ztz_like(n=300)
    assert np.linalg.eigvalsh(A.to_dense())[0] > 0


def test_local_blocks_are_diagonal():
    # The defining §4.3 property: couplings are long-range, so diagonal
    # blocks of a moderate partition contain no off-diagonal entries.
    A = chem97ztz_like()
    view = BlockRowView(A, block_size=128)
    assert view.off_block_fraction() == 1.0
    for blk in view.blocks:
        assert blk.local_off.nnz == 0


def test_couplings_are_long_range():
    A = chem97ztz_like()
    rows = A._expanded_rows()
    off = rows != A.indices
    assert np.abs(rows[off] - A.indices[off]).min() >= A.shape[0] // 3


def test_custom_rho():
    A = chem97ztz_like(n=500, rho=0.5)
    rho = spectral_radius(iteration_matrix(A), method="dense")
    assert abs(rho - 0.5) < 1e-10


def test_custom_nnz():
    A = chem97ztz_like(n=500, nnz=700)
    assert A.nnz == 700


def test_determinism():
    A = chem97ztz_like(n=400)
    B = chem97ztz_like(n=400)
    assert np.array_equal(A.data, B.data)
    assert np.array_equal(A.indices, B.indices)


def test_invalid_arguments():
    with pytest.raises(ValueError, match="rho"):
        chem97ztz_like(n=100, rho=1.2)
    with pytest.raises(ValueError, match="nnz"):
        chem97ztz_like(n=100, nnz=50)
    with pytest.raises(ValueError, match="nnz"):
        chem97ztz_like(n=100, nnz=101)  # odd off-diagonal count
    with pytest.raises(ValueError, match="n must be"):
        chem97ztz_like(n=4)
