"""Tests for reverse Cuthill-McKee reordering."""

import numpy as np
import pytest

from repro.matrices import bandwidth, permute_symmetric, reverse_cuthill_mckee
from repro.matrices.grids import stencil_laplacian_2d
from repro.sparse import CSRMatrix


def random_sym(rng, n=40, density=0.08):
    dense = rng.standard_normal((n, n))
    dense[np.abs(dense) < np.quantile(np.abs(dense), 1 - density)] = 0.0
    dense = dense + dense.T
    np.fill_diagonal(dense, 1.0)
    return CSRMatrix.from_dense(dense)


def test_bandwidth_diagonal():
    assert bandwidth(CSRMatrix.identity(5)) == 0


def test_bandwidth_known():
    dense = np.eye(6)
    dense[0, 4] = 1.0
    assert bandwidth(CSRMatrix.from_dense(dense)) == 4


def test_rcm_is_permutation(rng):
    A = random_sym(rng)
    perm = reverse_cuthill_mckee(A)
    assert sorted(perm.tolist()) == list(range(A.shape[0]))


def test_rcm_reduces_bandwidth_on_shuffled_grid(rng):
    A = stencil_laplacian_2d(12, stencil="5pt")
    n = A.shape[0]
    shuffle = rng.permutation(n)
    shuffled = permute_symmetric(A, shuffle)
    perm = reverse_cuthill_mckee(shuffled)
    restored = permute_symmetric(shuffled, perm)
    assert bandwidth(restored) < bandwidth(shuffled)
    assert bandwidth(restored) <= 2 * 12  # grid-like band recovered


def test_rcm_deterministic(rng):
    A = random_sym(rng)
    assert np.array_equal(reverse_cuthill_mckee(A), reverse_cuthill_mckee(A))


def test_rcm_handles_disconnected_components():
    dense = np.zeros((6, 6))
    dense[0, 1] = dense[1, 0] = 1.0
    dense[4, 5] = dense[5, 4] = 1.0
    np.fill_diagonal(dense, 1.0)
    perm = reverse_cuthill_mckee(CSRMatrix.from_dense(dense))
    assert sorted(perm.tolist()) == list(range(6))


def test_permute_symmetric_correctness(rng):
    A = random_sym(rng, n=15)
    perm = rng.permutation(15)
    P = permute_symmetric(A, perm)
    dense = A.to_dense()
    assert np.allclose(P.to_dense(), dense[np.ix_(perm, perm)])


def test_permute_preserves_spectrum(rng):
    A = random_sym(rng, n=20)
    perm = rng.permutation(20)
    lam_a = np.linalg.eigvalsh(A.to_dense())
    lam_p = np.linalg.eigvalsh(permute_symmetric(A, perm).to_dense())
    assert np.allclose(lam_a, lam_p)


def test_permute_invalid():
    A = CSRMatrix.identity(4)
    with pytest.raises(ValueError, match="permutation"):
        permute_symmetric(A, [0, 1, 1, 3])
