"""Tests for 2-D stencil assembly."""

import numpy as np
import pytest

from repro.matrices import stencil_laplacian_2d
from repro.matrices.grids import STENCILS


def test_5pt_small_matches_reference():
    A = stencil_laplacian_2d(2, stencil="5pt").to_dense()
    ref = np.array(
        [
            [4.0, -1.0, -1.0, 0.0],
            [-1.0, 4.0, 0.0, -1.0],
            [-1.0, 0.0, 4.0, -1.0],
            [0.0, -1.0, -1.0, 4.0],
        ]
    )
    assert np.allclose(A, ref)


def test_9pt_diagonal_constant():
    A = stencil_laplacian_2d(6, stencil="9pt")
    assert np.allclose(A.diagonal(), 8.0 / 3.0)


def test_9pt_nnz_formula():
    # 9n minus 3 per boundary edge point minus 5 per corner.
    for nx in (5, 10, 98):
        A = stencil_laplacian_2d(nx, stencil="9pt")
        n = nx * nx
        expected = 9 * n - 3 * (4 * (nx - 2)) - 5 * 4
        assert A.nnz == expected


def test_9pt_nnz_matches_paper_fv1():
    assert stencil_laplacian_2d(98, stencil="9pt").nnz == 85264
    assert stencil_laplacian_2d(99, stencil="9pt").nnz == 87025


def test_symmetry():
    for stencil in ("5pt", "9pt"):
        A = stencil_laplacian_2d(7, stencil=stencil)
        dense = A.to_dense()
        assert np.allclose(dense, dense.T)


def test_spd():
    A = stencil_laplacian_2d(8, stencil="9pt")
    lam = np.linalg.eigvalsh(A.to_dense())
    assert lam[0] > 0


def test_shift_adds_to_diagonal():
    A0 = stencil_laplacian_2d(5, stencil="9pt")
    A1 = stencil_laplacian_2d(5, stencil="9pt", shift=0.5)
    assert np.allclose(A1.diagonal() - A0.diagonal(), 0.5)
    d0, off0 = A0.split_diagonal()
    d1, off1 = A1.split_diagonal()
    assert np.allclose(off0.to_dense(), off1.to_dense())


def test_rectangular_grid():
    A = stencil_laplacian_2d(4, 7, stencil="5pt")
    assert A.shape == (28, 28)
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)


def test_coefficient_field_symmetric_scaling():
    nx = 6
    rng = np.random.default_rng(3)
    coeff = 0.5 + rng.random((nx, nx))
    A = stencil_laplacian_2d(nx, stencil="9pt", coefficient=coeff)
    base = stencil_laplacian_2d(nx, stencil="9pt")
    w = np.sqrt(coeff.ravel())
    assert np.allclose(A.to_dense(), np.diag(w) @ base.to_dense() @ np.diag(w))


def test_coefficient_preserves_jacobi_spectrum():
    # Symmetric diagonal scaling must not change rho(B).
    from repro.matrices.analysis import iteration_matrix
    from repro.sparse.linalg import spectral_radius

    nx = 10
    rng = np.random.default_rng(4)
    coeff = np.power(100.0, rng.random((nx, nx)))
    A = stencil_laplacian_2d(nx, stencil="9pt", shift=0.3)
    B = stencil_laplacian_2d(nx, stencil="9pt", shift=0.3, coefficient=coeff)
    assert np.isclose(
        spectral_radius(iteration_matrix(A)), spectral_radius(iteration_matrix(B)), rtol=1e-8
    )


def test_coefficient_validation():
    with pytest.raises(ValueError, match="shape"):
        stencil_laplacian_2d(5, stencil="9pt", coefficient=np.ones((4, 5)))
    with pytest.raises(ValueError, match="positive"):
        stencil_laplacian_2d(5, stencil="9pt", coefficient=np.zeros((5, 5)))


def test_unknown_stencil():
    with pytest.raises(ValueError, match="unknown stencil"):
        stencil_laplacian_2d(5, stencil="13pt")


def test_invalid_extent():
    with pytest.raises(ValueError):
        stencil_laplacian_2d(0)


def test_stencil_registry_row_sums():
    # Pure Laplacian stencils have zero row sum (constant in the kernel).
    for name, legs in STENCILS.items():
        assert abs(sum(legs.values())) < 1e-12, name
