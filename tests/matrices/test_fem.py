"""Tests for the fv1/fv2/fv3 reconstructions."""

import numpy as np
import pytest

from repro.matrices import fv_like
from repro.matrices.analysis import iteration_matrix
from repro.matrices.fem import FV_VARIANTS, fv_shift_for_rho, stencil_jacobi_extremes
from repro.matrices.grids import stencil_laplacian_2d
from repro.sparse.linalg import spectral_radius


def test_analytic_extremes_match_dense():
    nx = 12
    L = stencil_laplacian_2d(nx, stencil="9pt")
    lam = np.linalg.eigvalsh(L.to_dense())
    lo, hi = stencil_jacobi_extremes(nx)
    assert np.isclose(lo, lam[0], rtol=1e-10)
    assert np.isclose(hi, lam[-1], rtol=1e-10)


def test_shift_for_rho_places_radius_exactly():
    nx, target = 20, 0.9
    c = fv_shift_for_rho(nx, target)
    A = stencil_laplacian_2d(nx, stencil="9pt", shift=c)
    rho = spectral_radius(iteration_matrix(A), method="dense")
    assert abs(rho - target) < 1e-10


def test_shift_for_rho_impossible_target():
    with pytest.raises(ValueError, match="positive definiteness"):
        fv_shift_for_rho(20, 1.2)


@pytest.mark.parametrize("variant", [1, 2, 3])
def test_paper_dimensions(variant):
    from repro.matrices import PAPER_TABLE1

    A = fv_like(variant)
    info = PAPER_TABLE1[f"fv{variant}"]
    assert A.shape[0] == info.n
    assert A.nnz == info.nnz


@pytest.mark.parametrize("variant,rho", [(1, 0.8541), (3, 0.9993)])
def test_paper_rho(variant, rho):
    A = fv_like(variant)
    measured = spectral_radius(iteration_matrix(A), method="power", tol=1e-12)
    assert abs(measured - rho) < 2e-4


def test_small_custom_variant():
    A = fv_like(1, nx=16, rho=0.8, coeff_ratio=1.0)
    assert A.shape == (256, 256)
    rho = spectral_radius(iteration_matrix(A), method="dense")
    assert abs(rho - 0.8) < 1e-10


def test_symmetry_and_spd_small():
    A = fv_like(1, nx=14)
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.linalg.eigvalsh(dense)[0] > 0


def test_cond_order_of_magnitude():
    # The jump field should push cond(A) to the Table 1 order (9.3e4).
    from repro.sparse.linalg import condition_number

    A = fv_like(1)
    cond = condition_number(A, steps=120)
    assert 2e4 < cond < 5e5


def test_coeff_ratio_one_keeps_constant_diagonal():
    A = fv_like(1, nx=20, coeff_ratio=1.0)
    d = A.diagonal()
    assert np.allclose(d, d[0])


def test_invalid_arguments():
    with pytest.raises(ValueError, match="variant"):
        fv_like(4)
    with pytest.raises(ValueError, match="rho"):
        fv_like(1, nx=10, rho=1.5)
    with pytest.raises(ValueError, match="coeff_ratio"):
        fv_like(1, nx=10, coeff_ratio=0.5)
    with pytest.raises(ValueError, match="nx"):
        fv_like(1, nx=1)


def test_variant_table_consistency():
    assert set(FV_VARIANTS) == {1, 2, 3}
    assert FV_VARIANTS[1].nx == 98
    assert FV_VARIANTS[2].nx == FV_VARIANTS[3].nx == 99
