"""Tests for coupling-aware cluster reordering."""

import numpy as np
import pytest

from repro.matrices import cluster_reorder, fv_like, permute_symmetric
from repro.sparse import BlockRowView, CSRMatrix


def test_is_permutation(small_spd):
    perm = cluster_reorder(small_spd, 10)
    assert sorted(perm.tolist()) == list(range(60))


def test_deterministic(small_spd):
    assert np.array_equal(cluster_reorder(small_spd, 10), cluster_reorder(small_spd, 10))


def test_recovers_shuffled_grid_locality():
    # A shuffled 2-D grid has ~all coupling off-block; clustering must
    # recover most of it.
    G = fv_like(1, nx=30, coeff_ratio=1.0)
    rng = np.random.default_rng(0)
    Gs = permute_symmetric(G, rng.permutation(G.shape[0]))
    before = BlockRowView(Gs, block_size=100).off_block_fraction()
    perm = cluster_reorder(Gs, 100)
    after = BlockRowView(permute_symmetric(Gs, perm), block_size=100).off_block_fraction()
    assert before > 0.85
    assert after < 0.35


def test_improves_chem_surrogate():
    from repro.matrices import chem97ztz_like

    A = chem97ztz_like(n=600)
    before = BlockRowView(A, block_size=64).off_block_fraction()
    perm = cluster_reorder(A, 64)
    after = BlockRowView(permute_symmetric(A, perm), block_size=64).off_block_fraction()
    assert after < before


def test_unweighted_mode(small_spd):
    perm = cluster_reorder(small_spd, 10, weighted=False)
    assert sorted(perm.tolist()) == list(range(60))


def test_handles_disconnected_graph():
    dense = np.eye(8)
    dense[0, 1] = dense[1, 0] = 1.0
    dense[5, 6] = dense[6, 5] = 1.0
    perm = cluster_reorder(CSRMatrix.from_dense(dense), 3)
    assert sorted(perm.tolist()) == list(range(8))


def test_block_size_one():
    A = CSRMatrix.identity(5)
    perm = cluster_reorder(A, 1)
    assert sorted(perm.tolist()) == list(range(5))


def test_invalid_block_size(small_spd):
    with pytest.raises(ValueError, match="block_size"):
        cluster_reorder(small_spd, 0)


def test_spectrum_preserved(small_spd):
    perm = cluster_reorder(small_spd, 12)
    P = permute_symmetric(small_spd, perm)
    lam_a = np.linalg.eigvalsh(small_spd.to_dense())
    lam_p = np.linalg.eigvalsh(P.to_dense())
    assert np.allclose(lam_a, lam_p)
