"""Cross-validation of our RCM against networkx's implementation."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.matrices import bandwidth, permute_symmetric, reverse_cuthill_mckee
from repro.matrices.grids import stencil_laplacian_2d
from repro.sparse import CSRMatrix


def nx_rcm_bandwidth(A):
    G = networkx.from_scipy_sparse_array(A.to_scipy())
    order = list(networkx.utils.cuthill_mckee_ordering(G))[::-1]
    return bandwidth(permute_symmetric(A, np.array(order)))


def test_comparable_bandwidth_on_shuffled_grid(rng):
    A = stencil_laplacian_2d(10, stencil="5pt")
    shuffled = permute_symmetric(A, rng.permutation(A.shape[0]))
    ours = bandwidth(permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled)))
    theirs = nx_rcm_bandwidth(shuffled)
    # Both are heuristics; ours must land in the same bandwidth class.
    assert ours <= 2 * max(theirs, 1)


def test_comparable_bandwidth_on_random_graph(rng):
    dense = rng.standard_normal((60, 60))
    dense[np.abs(dense) < 1.6] = 0.0
    dense = dense + dense.T
    np.fill_diagonal(dense, 1.0)
    A = CSRMatrix.from_dense(dense)
    ours = bandwidth(permute_symmetric(A, reverse_cuthill_mckee(A)))
    theirs = nx_rcm_bandwidth(A)
    assert ours <= 2 * max(theirs, 1)
