"""Multigrid's async smoother now rides the krylov operator — bitwise."""

import numpy as np

from repro.core import AsyncConfig
from repro.core.engine import AsyncEngine
from repro.extensions import MultigridPoisson, SmootherSpec
from repro.krylov import AsyncSweepPreconditioner
from repro.sparse import BlockRowView


def _old_inline_smooth(level, x, b):
    """What _Level.smooth did before the refactor: a fresh engine per call."""
    spec = level.spec
    cfg = AsyncConfig(
        local_iterations=spec.local_iterations,
        block_size=min(spec.block_size, level.n),
        omega=spec.omega,
        seed=spec.seed,
    )
    engine = AsyncEngine(BlockRowView(level.A, block_size=cfg.block_size), b, cfg)
    for _ in range(spec.sweeps):
        x = engine.sweep(x)
    return x


def test_level_smoother_is_the_shared_operator():
    mg = MultigridPoisson(levels=4, smoother=SmootherSpec(kind="async", sweeps=2))
    smoother = mg.levels[-1]._async_smoother
    assert isinstance(smoother, AsyncSweepPreconditioner)
    assert not smoother.frozen  # smoother semantics: schedule kept verbatim


def test_smooth_bitwise_matches_pre_refactor_inline_code():
    spec = SmootherSpec(kind="async", sweeps=2, seed=9)
    mg = MultigridPoisson(levels=4, smoother=spec)
    for level in mg.levels:
        gen = np.random.default_rng(level.n)
        b = gen.standard_normal(level.n)
        x0 = gen.standard_normal(level.n)
        new = level.smooth(x0.copy(), b)
        old = _old_inline_smooth(level, x0.copy(), b)
        assert np.array_equal(new, old)


def test_vcycle_solve_bitwise_stable_across_constructions():
    # Fresh-engine-per-call semantics: two identically specified V-cycles
    # produce identical iterates (the RNG stream restarts every smooth).
    spec = SmootherSpec(kind="async", sweeps=1, seed=3)
    b = np.random.default_rng(5).standard_normal(MultigridPoisson(levels=3).n)
    x1, h1 = MultigridPoisson(levels=3, smoother=spec).solve(b, maxcycles=3)
    x2, h2 = MultigridPoisson(levels=3, smoother=spec).solve(b, maxcycles=3)
    assert np.array_equal(x1, x2)
    assert np.array_equal(h1, h2)
