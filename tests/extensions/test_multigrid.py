"""Tests for the geometric multigrid extension."""

import numpy as np
import pytest

from repro.extensions import MultigridPoisson, SmootherSpec


def test_smoother_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        SmootherSpec(kind="sor")
    with pytest.raises(ValueError, match="sweeps"):
        SmootherSpec(sweeps=-1)
    with pytest.raises(ValueError, match="omega"):
        SmootherSpec(omega=0.0)


def test_levels_validation():
    with pytest.raises(ValueError, match="levels"):
        MultigridPoisson(levels=1)


def test_restriction_prolongation_adjoint():
    # Full weighting is (up to the factor 4) the adjoint of bilinear
    # interpolation: <R f, c> = <f, P c> / 4.
    rng = np.random.default_rng(0)
    nxf, nxc = 15, 7
    f = rng.standard_normal(nxf * nxf)
    c = rng.standard_normal(nxc * nxc)
    Rf = MultigridPoisson.restrict(f, nxf)
    Pc = MultigridPoisson.prolong(c, nxc)
    assert np.isclose(Rf @ c, (f @ Pc) / 4.0, rtol=1e-12)


def test_prolong_constant_interior():
    # Bilinear interpolation of a constant is constant away from the
    # (zero-Dirichlet) boundary.
    nxc = 7
    out = MultigridPoisson.prolong(np.ones(nxc * nxc), nxc).reshape(15, 15)
    assert np.allclose(out[2:-2, 2:-2], 1.0)


def test_restrict_constant():
    nxf = 15
    out = MultigridPoisson.restrict(np.ones(nxf * nxf), nxf)
    assert np.allclose(out, 1.0)


def test_vcycle_solves_poisson():
    mg = MultigridPoisson(levels=5)
    rng = np.random.default_rng(1)
    b = rng.standard_normal(mg.n)
    x, history = mg.solve(b, tol=1e-10)
    A = mg.levels[0].A
    assert history[-1] <= 1e-10 * np.linalg.norm(b)
    assert np.linalg.norm(A.residual(x, b)) <= 1.1 * history[-1]


@pytest.mark.parametrize("kind", ["jacobi", "gauss-seidel", "async"])
def test_contraction_factors_textbook(kind):
    mg = MultigridPoisson(levels=5, smoother=SmootherSpec(kind=kind))
    cf = mg.contraction_factor(cycles=6)
    assert cf < 0.25, kind  # textbook V(2,2) quality


def test_async_between_jacobi_and_gs():
    factors = {}
    for kind in ("jacobi", "gauss-seidel", "async"):
        mg = MultigridPoisson(levels=5, smoother=SmootherSpec(kind=kind))
        factors[kind] = mg.contraction_factor(cycles=6)
    assert factors["gauss-seidel"] <= factors["async"] <= factors["jacobi"] + 0.02


def test_mesh_independent_convergence():
    # Multigrid's defining property: contraction roughly level-independent.
    cf = [
        MultigridPoisson(levels=l).contraction_factor(cycles=5) for l in (4, 5, 6)
    ]
    assert max(cf) < 1.6 * max(min(cf), 0.05)


def test_solve_validates_b():
    mg = MultigridPoisson(levels=4)
    with pytest.raises(ValueError, match="shape"):
        mg.solve(np.ones(10))


def test_zero_rhs():
    mg = MultigridPoisson(levels=4)
    x, history = mg.solve(np.zeros(mg.n))
    assert np.all(x == 0.0)
