"""Tests for the async-(k) preconditioner extension."""

import numpy as np
import pytest

from repro.extensions import AsyncPreconditioner
from repro.solvers import ConjugateGradientSolver, StoppingCriterion


def test_linearity(small_spd):
    # A fixed-schedule sweep from zero is a linear operator in r.
    M = AsyncPreconditioner(small_spd, sweeps=2)
    rng = np.random.default_rng(0)
    r1 = rng.standard_normal(60)
    r2 = rng.standard_normal(60)
    assert np.allclose(M(r1 + 2.0 * r2), M(r1) + 2.0 * M(r2), atol=1e-12)


def test_deterministic_across_applications(small_spd):
    M = AsyncPreconditioner(small_spd, sweeps=2)
    r = np.random.default_rng(1).standard_normal(60)
    assert np.array_equal(M(r), M(r))


def test_approximates_inverse(small_spd):
    # More sweeps -> better approximation of A^{-1} r.
    dense = small_spd.to_dense()
    r = np.random.default_rng(2).standard_normal(60)
    exact = np.linalg.solve(dense, r)
    errs = []
    for sweeps in (1, 3, 6):
        M = AsyncPreconditioner(small_spd, sweeps=sweeps)
        errs.append(np.linalg.norm(M(r) - exact))
    assert errs[0] > errs[1] > errs[2]


def test_symmetrized_operator_near_symmetric(small_spd):
    # Assemble the operator densely and check symmetry of D^{1/2} P D^{1/2}
    # is much better for the symmetrized variant.
    def assemble(M):
        n = 60
        P = np.zeros((n, n))
        for i in range(n):
            e = np.zeros(n)
            e[i] = 1.0
            P[:, i] = M(e)
        return P

    from repro.core import AsyncConfig

    cfg = AsyncConfig(local_iterations=2, block_size=10)  # several blocks
    asym = assemble(AsyncPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=False))
    sym = assemble(AsyncPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=True))

    def asym_measure(P):
        return np.linalg.norm(P - P.T) / np.linalg.norm(P)

    assert asym_measure(sym) < asym_measure(asym)


def test_pcg_beats_cg_iterations(fv1):
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=1e-10, maxiter=3000)
    cg = ConjugateGradientSolver(stopping=stop).solve(fv1, b)
    pcg = ConjugateGradientSolver(
        preconditioner=AsyncPreconditioner(fv1, sweeps=2), stopping=stop
    ).solve(fv1, b)
    assert pcg.converged
    assert pcg.iterations < cg.iterations / 4


def test_invalid_sweeps(small_spd):
    with pytest.raises(ValueError, match="sweeps"):
        AsyncPreconditioner(small_spd, sweeps=0)
