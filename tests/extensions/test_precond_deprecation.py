"""The ``extensions.precond`` shim: deprecated but bitwise-faithful."""

import warnings

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.extensions.precond import AsyncPreconditioner
from repro.krylov import AsyncSweepPreconditioner


def test_shim_warns_and_delegates_bitwise(small_spd):
    with pytest.warns(DeprecationWarning, match="moved to repro.krylov"):
        legacy = AsyncPreconditioner(small_spd, sweeps=2)
    canonical = AsyncSweepPreconditioner(small_spd, sweeps=2)
    r = np.random.default_rng(0).standard_normal(60)
    assert np.array_equal(legacy(r), canonical(r))


def test_shim_is_a_subclass(small_spd):
    with pytest.warns(DeprecationWarning):
        legacy = AsyncPreconditioner(small_spd, sweeps=1)
    assert isinstance(legacy, AsyncSweepPreconditioner)


def test_shim_keeps_historical_order_forcing(small_spd):
    # The prototype forced order="sequential" unconditionally; the
    # canonical class keeps deterministic orders (e.g. "reversed").  The
    # shim must reproduce the historical behaviour.
    cfg = AsyncConfig(local_iterations=2, block_size=16, order="reversed")
    with pytest.warns(DeprecationWarning):
        legacy = AsyncPreconditioner(small_spd, sweeps=1, config=cfg)
    assert legacy.config.order == "sequential"
    canonical = AsyncSweepPreconditioner(
        small_spd, sweeps=1, config=AsyncConfig(local_iterations=2, block_size=16)
    )
    r = np.random.default_rng(1).standard_normal(60)
    assert np.array_equal(legacy(r), canonical(r))


def test_package_reexport_still_works(small_spd):
    from repro.extensions import AsyncPreconditioner as reexported

    with pytest.warns(DeprecationWarning):
        reexported(small_spd, sweeps=1)


def test_canonical_class_does_not_warn(small_spd):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        AsyncSweepPreconditioner(small_spd, sweeps=1)
