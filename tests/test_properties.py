"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro._util import as_rng
from repro.core import AsyncConfig, WaveScheduler, check_well_posedness
from repro.sparse import BlockRowView, COOMatrix, CSRMatrix, partition_rows

common = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=30):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(arrays(np.int64, nnz, elements=st.integers(0, nrows - 1)))
    cols = draw(arrays(np.int64, nnz, elements=st.integers(0, ncols - 1)))
    vals = draw(
        arrays(
            np.float64,
            nnz,
            elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        )
    )
    return COOMatrix(rows, cols, vals, (nrows, ncols))


@st.composite
def spd_matrices(draw, max_dim=14):
    n = draw(st.integers(2, max_dim))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense = (dense + dense.T) / 2
    dense[np.abs(dense) < 0.8] = 0.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + rng.random(n) + 0.5)
    return CSRMatrix.from_dense(dense)


# --------------------------------------------------------------------- #
# sparse invariants
# --------------------------------------------------------------------- #


@common
@given(coo_matrices())
def test_coo_csr_roundtrip_preserves_dense(coo):
    dense = coo.to_dense()
    assert np.allclose(coo.tocsr().to_dense(), dense, atol=1e-12)


@common
@given(coo_matrices())
def test_csr_invariants(coo):
    csr = coo.tocsr()
    assert csr.indptr[0] == 0
    assert csr.indptr[-1] == csr.nnz
    assert np.all(np.diff(csr.indptr) >= 0)
    # Sorted, unique columns within each row.
    for i in range(csr.nrows):
        cols = csr.indices[csr.indptr[i] : csr.indptr[i + 1]]
        assert np.all(np.diff(cols) > 0)


@common
@given(coo_matrices(), st.integers(0, 2**31))
def test_matvec_linearity(coo, seed):
    csr = coo.tocsr()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(csr.ncols)
    y = rng.standard_normal(csr.ncols)
    a = float(rng.standard_normal())
    lhs = csr.matvec(x + a * y)
    rhs = csr.matvec(x) + a * csr.matvec(y)
    assert np.allclose(lhs, rhs, atol=1e-9)


@common
@given(coo_matrices())
def test_transpose_involution(coo):
    csr = coo.tocsr()
    assert np.allclose(csr.transpose().transpose().to_dense(), csr.to_dense())


@common
@given(coo_matrices(), st.integers(0, 2**31))
def test_rmatvec_is_transpose_matvec(coo, seed):
    csr = coo.tocsr()
    y = np.random.default_rng(seed).standard_normal(csr.nrows)
    assert np.allclose(csr.rmatvec(y), csr.transpose().matvec(y), atol=1e-9)


@common
@given(st.integers(1, 200), st.integers(1, 50))
def test_partition_rows_covers_exactly(n, block_size):
    b = partition_rows(n, block_size)
    assert b[0] == 0 and b[-1] == n
    assert np.all(np.diff(b) > 0)
    assert np.all(np.diff(b)[:-1] == min(block_size, n))


@common
@given(spd_matrices(), st.integers(1, 14))
def test_block_view_partitions_disjoint_cover(A, block_size):
    view = BlockRowView(A, block_size=min(block_size, A.shape[0]))
    covered = np.concatenate([np.arange(b.start, b.stop) for b in view.blocks])
    assert sorted(covered.tolist()) == list(range(A.shape[0]))
    # Every stored entry lands in exactly one of diag/local/external.
    total = sum(b.local_off.nnz + b.external.nnz + np.count_nonzero(b.diag) for b in view.blocks)
    assert total == A.nnz


@common
@given(spd_matrices(), st.integers(1, 14))
def test_block_view_reassembles(A, block_size):
    view = BlockRowView(A, block_size=min(block_size, A.shape[0]))
    dense = A.to_dense()
    recon = np.zeros_like(dense)
    for blk in view.blocks:
        recon[blk.rows] += blk.local_off.to_dense() + blk.external.to_dense()
        idx = np.arange(blk.start, blk.stop)
        recon[idx, idx] += blk.diag
    assert np.allclose(recon, dense, atol=1e-12)


# --------------------------------------------------------------------- #
# schedule well-posedness (the paper's §2.2 conditions)
# --------------------------------------------------------------------- #


@common
@given(
    st.integers(1, 40),
    st.sampled_from(["synchronous", "sequential", "reversed", "random", "gpu"]),
    st.integers(0, 2**31),
)
def test_every_schedule_is_well_posed(nblocks, order, seed):
    cfg = AsyncConfig(order=order, seed=seed)
    sched = WaveScheduler(nblocks, cfg, as_rng(seed))
    rng = as_rng(seed + 1)
    counts = np.zeros(nblocks, dtype=np.int64)
    sweeps = 6
    for s in range(sweeps):
        o, gamma = sched.plan_for_sweep(s, rng)
        assert sorted(o.tolist()) == list(range(nblocks))  # condition (1)
        assert np.all((gamma >= 0.0) & (gamma <= 1.0))
        counts[o] += 1
    assert check_well_posedness(counts, sweeps, staleness_bound=sched.staleness_bound())


# --------------------------------------------------------------------- #
# convergence invariants
# --------------------------------------------------------------------- #


@common
@given(spd_matrices(), st.integers(1, 4), st.integers(0, 2**31))
def test_async_converges_on_dominant_spd(A, k, seed):
    # Strict diagonal dominance => rho(|B|) < 1 => every schedule converges
    # (Strikwerda / Chazan-Miranker).
    from repro.core import BlockAsyncSolver
    from repro.solvers import StoppingCriterion

    n = A.shape[0]
    b = A.matvec(np.ones(n))
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=k, block_size=max(1, n // 3), seed=seed),
        stopping=StoppingCriterion(tol=1e-10, maxiter=2000),
    ).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, np.ones(n), atol=1e-6)


@common
@given(spd_matrices(), st.integers(0, 2**31))
def test_jacobi_monotone_error_in_inf_norm(A, seed):
    # For strictly dominant systems, ||B||_inf < 1 bounds the error decay.
    from repro.matrices.analysis import iteration_matrix

    n = A.shape[0]
    x_star = np.random.default_rng(seed).standard_normal(n)
    b = A.matvec(x_star)
    beta = iteration_matrix(A).norm_inf()
    assert beta < 1.0
    x = np.zeros(n)
    d = A.diagonal()
    err = np.abs(x - x_star).max()
    for _ in range(8):
        x = x + (b - A.matvec(x)) / d
        new_err = np.abs(x - x_star).max()
        assert new_err <= beta * err + 1e-12
        err = new_err


@common
@given(spd_matrices())
def test_gershgorin_bounds_spectrum(A):
    from repro.sparse import gershgorin_bounds

    lo, hi = gershgorin_bounds(A)
    lam = np.linalg.eigvalsh(A.to_dense())
    assert lo - 1e-9 <= lam[0] and lam[-1] <= hi + 1e-9


@common
@given(spd_matrices(), st.integers(0, 2**31))
def test_fault_mask_exact_fraction(A, seed):
    from repro.core import FaultScenario

    n = A.shape[0]
    f = FaultScenario(fraction=0.25, seed=seed)
    mask = f.failed_components(n)
    assert mask.sum() == int(round(0.25 * n))


@common
@given(coo_matrices(), st.integers(0, 2**31))
def test_ell_matvec_matches_csr(coo, seed):
    from repro.sparse import ELLMatrix

    csr = coo.tocsr()
    ell = ELLMatrix.from_csr(csr)
    x = np.random.default_rng(seed).standard_normal(csr.ncols)
    assert np.allclose(ell.matvec(x), csr.matvec(x), atol=1e-9)
    assert np.allclose(ell.to_csr().to_dense(), csr.to_dense(), atol=1e-12)


@common
@given(coo_matrices(max_dim=16), st.integers(1, 5), st.integers(0, 2**31))
def test_sell_roundtrip_and_matvec(coo, sigma, seed):
    from repro.sparse import SlicedELLMatrix

    csr = coo.tocsr()
    sell = SlicedELLMatrix.from_csr(csr, slice_height=sigma)
    x = np.random.default_rng(seed).standard_normal(csr.ncols)
    assert np.allclose(sell.matvec(x), csr.matvec(x), atol=1e-9)
    assert sell.nnz == csr.nnz


@common
@given(spd_matrices(), st.integers(1, 10))
def test_cluster_reorder_is_valid_permutation(A, block_size):
    from repro.matrices import cluster_reorder, permute_symmetric

    perm = cluster_reorder(A, block_size)
    assert sorted(perm.tolist()) == list(range(A.shape[0]))
    # Symmetric permutation preserves the spectrum.
    lam_a = np.linalg.eigvalsh(A.to_dense())
    lam_p = np.linalg.eigvalsh(permute_symmetric(A, perm).to_dense())
    assert np.allclose(lam_a, lam_p, atol=1e-9)


@common
@given(spd_matrices(), st.integers(1, 8))
def test_work_partition_valid(A, nblocks):
    from repro.sparse import partition_rows_by_work

    nb = min(nblocks, A.shape[0])
    b = partition_rows_by_work(A, nb)
    assert b[0] == 0 and b[-1] == A.shape[0]
    assert np.all(np.diff(b) > 0)


@common
@given(spd_matrices(), st.integers(0, 2**31))
def test_gauss_seidel_energy_monotone(A, seed):
    # For SPD systems the GS error decreases monotonically in the A-norm.
    from repro.solvers import GaussSeidelSolver, StoppingCriterion

    n = A.shape[0]
    x_star = np.random.default_rng(seed).standard_normal(n)
    b = A.matvec(x_star)
    dense = A.to_dense()

    def energy(x):
        e = x - x_star
        return float(e @ (dense @ e))

    solver = GaussSeidelSolver(stopping=StoppingCriterion(tol=0.0, maxiter=1))
    x = np.zeros(n)
    prev = energy(x)
    state = solver._setup(A, b)
    for _ in range(6):
        x = solver._iterate(state, x)
        cur = energy(x)
        assert cur <= prev + 1e-9
        prev = cur


@common
@given(spd_matrices(), st.integers(0, 2**31))
def test_cg_terminates_with_zero_a_norm_error(A, seed):
    # Finite-termination property of CG on SPD systems.
    from repro.solvers import ConjugateGradientSolver, StoppingCriterion

    n = A.shape[0]
    x_star = np.random.default_rng(seed).standard_normal(n)
    b = A.matvec(x_star)
    dense = A.to_dense()

    r = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=n + 2)).solve(A, b)
    # CG minimises the A-norm error over Krylov spaces; after n steps the
    # error is (near) zero in exact arithmetic.
    e = r.x - x_star
    assert float(e @ (dense @ e)) < 1e-8 * max(1.0, float(x_star @ (dense @ x_star)))


@common
@given(st.integers(0, 2**31), st.integers(10, 40))
def test_gmres_solves_random_dominant(seed, n):
    from repro.matrices import random_nonsymmetric
    from repro.solvers import GMRESSolver, StoppingCriterion

    A = random_nonsymmetric(n, density=0.2, dominance=1.5, seed=seed)
    x_star = np.random.default_rng(seed + 1).standard_normal(n)
    b = A.matvec(x_star)
    r = GMRESSolver(restart=min(20, n), stopping=StoppingCriterion(tol=1e-11, maxiter=400)).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-6)


# --------------------------------------------------------------------- #
# run-loop invariants (repro.runtime)
# --------------------------------------------------------------------- #


def _template_solvers(stopping, **loop_options):
    """One instance of every IterativeSolver driven by the shared RunLoop."""
    from repro.core import BlockAsyncSolver
    from repro.solvers import (
        BlockJacobiSolver,
        ConjugateGradientSolver,
        GaussSeidelSolver,
        GMRESSolver,
        JacobiSolver,
        SORSolver,
        SSORSolver,
    )

    return [
        JacobiSolver(stopping=stopping, **loop_options),
        GaussSeidelSolver(stopping=stopping, **loop_options),
        SORSolver(omega=1.2, stopping=stopping, **loop_options),
        SSORSolver(omega=1.1, stopping=stopping, **loop_options),
        ConjugateGradientSolver(stopping=stopping, **loop_options),
        GMRESSolver(restart=10, stopping=stopping, **loop_options),
        BlockJacobiSolver(block_size=5, stopping=stopping, **loop_options),
        BlockAsyncSolver(
            AsyncConfig(local_iterations=2, block_size=5, seed=1),
            stopping=stopping,
            **loop_options,
        ),
    ]


@common
@given(spd_matrices())
def test_histories_finite_and_monotone_in_recorded_length(A):
    from repro.solvers import StoppingCriterion

    b = A.matvec(np.ones(A.shape[0]))
    stopping = StoppingCriterion(tol=1e-9, maxiter=300)
    for solver in _template_solvers(stopping):
        r = solver.solve(A, b)
        assert len(r.residuals) >= 1
        if r.converged:
            assert np.all(np.isfinite(r.residuals))
        # The recorded trace only ever grows by appending: iteration
        # numbers are strictly increasing and consistent with its length.
        iters = (
            r.residual_iters
            if r.residual_iters is not None
            else np.arange(len(r.residuals))
        )
        assert len(iters) == len(r.residuals)
        assert np.all(np.diff(iters) > 0)
        assert r.iterations == int(iters[-1])


@common
@given(spd_matrices(), st.integers(0, 2**31))
def test_default_cadence_bitwise_matches_seed_loop(A, seed):
    # residual_every=1 must reproduce the historical hand-rolled per-sweep
    # loop bitwise — the refactor's exactness contract.
    from repro.solvers import StoppingCriterion

    n = A.shape[0]
    b = A.matvec(np.random.default_rng(seed).standard_normal(n))
    b_norm = float(np.linalg.norm(b))
    stopping = StoppingCriterion(tol=1e-9, maxiter=120)
    threshold = stopping.threshold(b_norm)
    from repro.solvers import JacobiSolver

    solver = JacobiSolver(stopping=stopping)
    result = solver.solve(A, b)

    state = JacobiSolver(stopping=stopping)._setup(A, b.copy())
    x = np.zeros(n)
    residuals = [float(np.linalg.norm(A.residual(x, b)))]
    converged = residuals[0] <= threshold
    it = 0
    while not converged and it < stopping.maxiter:
        x = solver._iterate(state, x)
        it += 1
        res = float(np.linalg.norm(A.residual(x, b)))
        residuals.append(res)
        if res <= threshold:
            converged = True
        elif stopping.diverged(res):
            break
    assert np.array_equal(result.residuals, np.array(residuals))
    assert np.array_equal(result.x, x)
    assert result.converged == converged


@common
@given(spd_matrices(), st.integers(2, 5))
def test_residual_every_subsamples_the_dense_history(A, m):
    # Larger cadences record a subsequence of the m=1 history while
    # visiting identical iterates.
    from repro.solvers import StoppingCriterion

    b = A.matvec(np.ones(A.shape[0]))
    iters = 12
    stopping = StoppingCriterion(tol=0.0, maxiter=iters)
    from repro.solvers import ConjugateGradientSolver, GMRESSolver

    dense_solvers = _template_solvers(stopping)
    sparse_solvers = _template_solvers(stopping, residual_every=m)
    for dense_s, sparse_s in zip(dense_solvers, sparse_solvers):
        if isinstance(dense_s, GMRESSolver):
            continue  # ledger-driven: cadence does not apply
        if isinstance(dense_s, ConjugateGradientSolver):
            # tol=0 forces CG deep into the noise floor where an exact-zero
            # inner product can end the run between cadence points.
            continue
        dense = dense_s.solve(A, b)
        if dense.iterations < iters:
            # Degenerate systems (e.g. diagonal) hit an exact-zero residual
            # early; the cadence comparison needs the full budget.
            continue
        sparse = sparse_s.solve(A, b)
        assert np.array_equal(sparse.x, dense.x)
        expected_iters = sorted(set(range(0, iters + 1, m)) | {iters})
        assert sparse.residual_iters.tolist() == expected_iters
        assert np.array_equal(sparse.residuals, dense.residuals[expected_iters])


@common
@given(st.integers(0, 2**31), st.integers(10, 40))
def test_chebyshev_solves_random_spd(seed, n):
    from repro.matrices import random_spd
    from repro.solvers import ChebyshevSolver, StoppingCriterion

    A = random_spd(n, density=0.2, dominance=1.5, seed=seed)
    b = A.matvec(np.ones(n))
    r = ChebyshevSolver(
        lanczos_steps=min(60, n), stopping=StoppingCriterion(tol=1e-9, maxiter=800)
    ).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, 1.0, atol=1e-5)
