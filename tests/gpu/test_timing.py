"""Tests for the calibrated timing model."""

import numpy as np
import pytest

from repro.gpu import IterationCostModel, PAPER_TABLE5, SetupCostModel
from repro.gpu.timing import (
    ASYNC_SETUP_OVERHEAD_S,
    LOCAL_ITER_FRACTION,
    PAPER_TABLE4_FV3,
    async_total_time_fv3,
)


@pytest.fixture(scope="module")
def model():
    return IterationCostModel()


def test_local_iteration_fraction_below_five_percent():
    # The paper: "less than 5%" per extra local iteration.
    assert 0.0 < LOCAL_ITER_FRACTION < 0.05


def test_async9_overhead_paper_bound():
    # "even if we iterate every component locally by 9 Jacobi iterations,
    #  the overhead is less than 35%" — allow the fit a little slack.
    assert 8 * LOCAL_ITER_FRACTION < 0.40


def test_setup_overhead_positive():
    assert 0.1 < ASYNC_SETUP_OVERHEAD_S < 0.6


def test_table5_reproduced_exactly(model):
    for name, row in PAPER_TABLE5.items():
        assert model.per_iteration("gauss-seidel", name) == row.gs_cpu
        assert model.per_iteration("jacobi", name) == row.jacobi_gpu
        assert model.per_iteration("async", name, local_iterations=5) == row.async5_gpu


def test_table4_reproduced_within_two_percent():
    for k, pts in PAPER_TABLE4_FV3.items():
        for iters, paper in pts.items():
            assert abs(async_total_time_fv3(k, iters) - paper) / paper < 0.02


def test_async_k_scaling(model):
    t1 = model.per_iteration("async", "fv3", local_iterations=1)
    t9 = model.per_iteration("async", "fv3", local_iterations=9)
    assert t1 < model.per_iteration("async", "fv3", local_iterations=5) < t9
    assert t9 / t1 < 1.45  # <35%-ish overhead at k=9


def test_cg_cheaper_than_jacobi(model):
    for name in PAPER_TABLE5:
        assert model.per_iteration("cg", name) < model.per_iteration("jacobi", name)


def test_trefethen_20000_scaled(model):
    t_small = model.per_iteration("async", "Trefethen_2000")
    t_big = model.per_iteration("async", "Trefethen_20000")
    assert np.isclose(t_big / t_small, 554466 / 41906, rtol=1e-6)


def test_unknown_matrix_uses_fit(model):
    t = model.per_iteration("jacobi", (5000, 100000))
    assert t > 0
    # Monotone in problem size (the Table 5 data pins the cost to n).
    assert model.per_iteration("jacobi", (10000, 100000)) > t


def test_unknown_name_rejected(model):
    with pytest.raises(KeyError):
        model.per_iteration("jacobi", "not_a_matrix")


def test_unknown_method_rejected(model):
    with pytest.raises(ValueError, match="method"):
        model.per_iteration("sor", "fv1")


def test_csr_matrix_input(model, small_spd):
    assert model.per_iteration("async", small_spd) > 0


def test_total_time_with_setup(model):
    setup = SetupCostModel()
    t_gs = model.total_time("gauss-seidel", "fv3", 100, setup=setup)
    assert t_gs == 100 * PAPER_TABLE5["fv3"].gs_cpu  # CPU pays no setup
    t_async = model.total_time("async", "fv3", 100, setup=setup)
    assert t_async > 100 * PAPER_TABLE5["fv3"].async5_gpu


def test_average_iteration_time_decays(model):
    setup = SetupCostModel()
    t10 = model.average_iteration_time("jacobi", "fv3", 10, setup=setup)
    t200 = model.average_iteration_time("jacobi", "fv3", 200, setup=setup)
    assert t10 > t200
    assert t200 > PAPER_TABLE5["fv3"].jacobi_gpu  # still above the kernel floor


def test_setup_model_components():
    s = SetupCostModel(base_s=0.1)
    t_small = s.setup_time(100, 1000)
    t_big = s.setup_time(100000, 5000000)
    assert t_big > t_small > 0.1


def test_setup_negative_base_rejected():
    with pytest.raises(ValueError):
        SetupCostModel(base_s=-1.0)


def test_table4_bad_args():
    with pytest.raises(ValueError):
        async_total_time_fv3(0, 100)
    with pytest.raises(ValueError):
        async_total_time_fv3(5, -1)
