"""Tests for the multi-GPU strategies and the multi-device engine."""

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.gpu import MultiGPUModel, STRATEGIES
from repro.gpu.multigpu import MultiDeviceEngine, device_partition
from repro.sparse import BlockRowView


@pytest.fixture(scope="module")
def model():
    return MultiGPUModel()


# --------------------------------------------------------------------- #
# device_partition
# --------------------------------------------------------------------- #


def test_partition_balanced():
    p = device_partition(10, 4)
    counts = np.bincount(p, minlength=4)
    assert counts.sum() == 10
    assert counts.max() - counts.min() <= 1
    assert np.all(np.diff(p) >= 0)  # contiguous ranges


def test_partition_single_gpu():
    assert np.all(device_partition(7, 1) == 0)


def test_partition_invalid():
    with pytest.raises(ValueError):
        device_partition(0, 2)


# --------------------------------------------------------------------- #
# timing shapes (the paper's Figure 11)
# --------------------------------------------------------------------- #


def test_amc_halves_with_two_gpus(model):
    t1 = model.iteration_time("AMC", "Trefethen_20000", 1)
    t2 = model.iteration_time("AMC", "Trefethen_20000", 2)
    assert 0.45 <= t2 / t1 <= 0.60  # "total run-time is almost cut in half"


def test_amc_three_gpus_slower_than_two(model):
    t2 = model.iteration_time("AMC", "Trefethen_20000", 2)
    t3 = model.iteration_time("AMC", "Trefethen_20000", 3)
    t1 = model.iteration_time("AMC", "Trefethen_20000", 1)
    assert t3 > t2  # QPI crossing hurts
    assert t3 < t1  # but still faster than a single GPU


def test_amc_four_gpus_beat_two_modestly(model):
    t2 = model.iteration_time("AMC", "Trefethen_20000", 2)
    t4 = model.iteration_time("AMC", "Trefethen_20000", 4)
    assert t4 < t2
    assert t4 > 0.6 * t2  # "considerably smaller than the factor of two"


def test_direct_strategies_faster_on_single_gpu(model):
    # §4.6: "DC and DK approaches are slightly faster than AMC" at 1 GPU.
    t_amc = model.iteration_time("AMC", "Trefethen_20000", 1)
    for strat in ("DC", "DK"):
        assert model.iteration_time(strat, "Trefethen_20000", 1) < t_amc


def test_direct_strategies_only_small_gain_at_two(model):
    for strat in ("DC", "DK"):
        t1 = model.iteration_time(strat, "Trefethen_20000", 1)
        t2 = model.iteration_time(strat, "Trefethen_20000", 2)
        assert t2 < t1
        assert t2 > 0.75 * t1  # only a small improvement


def test_direct_strategies_degrade_cross_socket(model):
    for strat in ("DC", "DK"):
        t2 = model.iteration_time(strat, "Trefethen_20000", 2)
        t3 = model.iteration_time(strat, "Trefethen_20000", 3)
        assert t3 > t2


def test_time_to_convergence_scales_with_iterations(model):
    t = model.iteration_time("AMC", "Trefethen_20000", 2)
    assert model.time_to_convergence("AMC", "Trefethen_20000", 2, 40) == pytest.approx(40 * t)


def test_invalid_strategy(model):
    with pytest.raises(ValueError, match="strategy"):
        model.iteration_time("XYZ", "Trefethen_20000", 1)


def test_invalid_gpu_count(model):
    with pytest.raises(ValueError, match="ngpus"):
        model.iteration_time("AMC", "Trefethen_20000", 5)


# --------------------------------------------------------------------- #
# convergence-side multi-device engine
# --------------------------------------------------------------------- #


def test_multidevice_far_split_consistency(small_spd):
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=0)
    view = BlockRowView(small_spd, block_size=10)
    engine = MultiDeviceEngine(view, np.ones(60), cfg, 3)
    # near + far must reassemble each block's external part.
    for bid, blk in enumerate(view.blocks):
        total = engine._near[bid].to_dense() + engine._far[bid].to_dense()
        assert np.allclose(total, blk.external.to_dense())


def test_multidevice_convergence_close_to_single(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    results = {}
    for g in (1, 2, 3):
        view = BlockRowView(small_spd, block_size=10)
        engine = MultiDeviceEngine(view, b, cfg, g)
        x = np.zeros(60)
        for _ in range(30):
            x = engine.sweep(x)
        results[g] = np.linalg.norm(small_spd.residual(x, b))
    # All device counts converge to (near) the same accuracy.
    assert all(r < 1e-6 for r in results.values())


def test_multidevice_invalid_ngpus(small_spd):
    view = BlockRowView(small_spd, block_size=10)
    with pytest.raises(ValueError, match="ngpus"):
        MultiDeviceEngine(view, np.ones(60), AsyncConfig(block_size=10), 0)
