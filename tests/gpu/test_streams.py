"""Tests for the discrete-event stream simulator."""

import pytest

from repro.gpu import EventSimulator, Resource, Task


def test_independent_tasks_overlap():
    sim = EventSimulator()
    a = sim.task("a", 1.0, [Resource("r1")])
    b = sim.task("b", 2.0, [Resource("r2")])
    assert sim.run() == 2.0
    assert a.start == 0.0 and b.start == 0.0


def test_shared_resource_serialises():
    sim = EventSimulator()
    r = Resource("link")
    sim.task("a", 1.0, [r])
    sim.task("b", 2.0, [r])
    assert sim.run() == 3.0


def test_dependencies_respected():
    sim = EventSimulator()
    a = sim.task("a", 1.5)
    b = sim.task("b", 1.0, deps=[a])
    assert sim.run() == 2.5
    assert b.start == 1.5


def test_dependency_and_resource_combined():
    sim = EventSimulator()
    r = Resource("link")
    a = sim.task("a", 2.0, [r])
    c = sim.task("c", 0.5)
    b = sim.task("b", 1.0, [r], deps=[c])  # dep ready at 0.5, link free at 2.0
    assert sim.run() == 3.0
    assert b.start == 2.0


def test_multi_resource_task():
    sim = EventSimulator()
    r1, r2 = Resource("a"), Resource("b")
    sim.task("x", 1.0, [r1])
    sim.task("y", 1.0, [r2])
    sim.task("z", 1.0, [r1, r2])  # needs both -> waits for both
    assert sim.run() == 2.0


def test_unregistered_dependency_rejected():
    sim = EventSimulator()
    ghost = Task("ghost", 1.0)
    with pytest.raises(ValueError, match="not registered"):
        sim.task("x", 1.0, deps=[ghost])


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        Task("bad", -1.0)


def test_timeline_trace():
    sim = EventSimulator()
    sim.task("a", 1.0)
    sim.run()
    (entry,) = sim.timeline()
    assert entry == ("a", 0.0, 1.0)


def test_empty_simulation():
    assert EventSimulator().run() == 0.0


def test_chain_of_transfers_models_pipeline():
    # compute -> d2h -> h2d on one link; a second GPU overlaps fully.
    sim = EventSimulator()
    link1, link2 = Resource("pcie1"), Resource("pcie2")
    gpu1, gpu2 = Resource("gpu1"), Resource("gpu2")
    c1 = sim.task("c1", 3.0, [gpu1])
    d1 = sim.task("d1", 1.0, [link1], deps=[c1])
    sim.task("u1", 1.0, [link1], deps=[d1])
    c2 = sim.task("c2", 3.0, [gpu2])
    d2 = sim.task("d2", 1.0, [link2], deps=[c2])
    sim.task("u2", 1.0, [link2], deps=[d2])
    assert sim.run() == 5.0  # both pipelines in parallel
