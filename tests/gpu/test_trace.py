"""Tests for the Gantt trace renderer."""

from repro.gpu import EventSimulator, Resource
from repro.gpu.trace import render_gantt


def test_empty_simulation():
    assert "empty" in render_gantt(EventSimulator())


def test_rows_grouped_by_resource():
    sim = EventSimulator()
    link = Resource("pcie0")
    gpu = Resource("gpu0")
    c = sim.task("compute", 2.0, [gpu])
    sim.task("d2h", 1.0, [link], deps=[c])
    sim.run()
    art = render_gantt(sim, width=20)
    lines = art.splitlines()
    assert any(l.startswith("gpu0") for l in lines)
    assert any(l.startswith("pcie0") for l in lines)
    assert "makespan 3" in lines[0]


def test_task_rows_mode():
    sim = EventSimulator()
    sim.task("alpha", 1.0)
    sim.task("beta", 2.0)
    sim.run()
    art = render_gantt(sim, by_resource=False, width=10)
    assert "alpha" in art and "beta" in art


def test_serialised_tasks_do_not_overlap_in_chart():
    sim = EventSimulator()
    link = Resource("link")
    sim.task("aa", 1.0, [link])
    sim.task("bb", 1.0, [link])
    sim.run()
    art = render_gantt(sim, width=20)
    row = next(l for l in art.splitlines() if l.startswith("link"))
    bar = row.split("|")[1]
    # First half 'a', second half 'b' (allowing the boundary cell).
    assert "a" in bar[:10] and "b" in bar[10:]


def test_multigpu_model_trace():
    from repro.gpu import MultiGPUModel
    from repro.gpu.multigpu import STRATEGIES

    model = MultiGPUModel()
    for strat in STRATEGIES:
        art = model.trace(strat, "Trefethen_20000", 2, width=30)
        assert "makespan" in art
        assert "gpu0" in art and "pcie0" in art
    # DC at 2 GPUs: the peer's transfers serialise on the master link —
    # both d2d tasks appear on the pcie0 row.
    dc = model.trace("DC", "Trefethen_20000", 2, width=40)
    pcie0_row = next(l for l in dc.splitlines() if l.startswith("pcie0"))
    assert "d" in pcie0_row
