"""Device placement telemetry: the gpu and dist layers share one map."""

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.gpu import MultiDeviceEngine, device_partition
from repro.partition import contiguous_placement, make_partition, placement_telemetry
from repro.runtime import StoppingCriterion
from repro.runtime.recorder import RunRecorder
from repro.sparse import BlockRowView


def test_device_partition_delegates_to_shared_helper():
    for nblocks, ngpus in [(10, 4), (7, 1), (16, 3), (6, 6)]:
        assert np.array_equal(
            device_partition(nblocks, ngpus),
            contiguous_placement(nblocks, ngpus),
        )


def test_device_partition_accepts_partition_object(small_spd):
    part = make_partition(small_spd, "uniform", block_size=10)
    assert np.array_equal(
        device_partition(part, 3), device_partition(part.nblocks, 3)
    )


def test_more_gpus_than_blocks_keeps_historical_spread():
    # The shared helper insists every group owns a block; the simulated
    # layer allows surplus devices, so this edge stays on the old formula.
    p = device_partition(2, 4)
    assert np.array_equal(
        p, np.minimum((np.arange(2) * 4) // 2, 3).astype(np.int64)
    )


def test_engine_device_map_matches_placement_telemetry(small_spd):
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=0)
    engine = MultiDeviceEngine(BlockRowView(small_spd, block_size=10), np.ones(60), cfg, 3)
    assert engine.device_map() == placement_telemetry(engine.assignment)
    assert engine.device_map()["ngroups"] == 3


def test_run_annotates_device_map(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    engine = MultiDeviceEngine(BlockRowView(small_spd, block_size=10), b, cfg, 2)
    recorder = RunRecorder()
    result = engine.run(
        stopping=StoppingCriterion(tol=1e-8, maxiter=100), recorder=recorder
    )
    assert result.info["ngpus"] == 2
    assert result.info["device_map"] == engine.device_map()
    run = recorder.to_dict()["runs"][0]
    assert run["annotations"]["device_map"] == engine.device_map()
    assert run["annotations"]["ngpus"] == 2


def test_device_map_shape_matches_dist_shard_map(small_spd):
    # Both layers annotate the exact structure placement_telemetry emits,
    # so a telemetry consumer can line them up key for key.
    from repro.dist import make_shard_plan

    part = make_partition(small_spd, "uniform", block_size=10)
    plan = make_shard_plan(part, 2)
    engine = MultiDeviceEngine(
        BlockRowView(small_spd, block_size=10),
        np.ones(60),
        AsyncConfig(local_iterations=1, block_size=10),
        2,
    )
    shard_map = plan.telemetry()
    device_map = engine.device_map()
    assert set(device_map) <= set(shard_map)
    assert shard_map["group_blocks"] == device_map["group_blocks"]
    assert shard_map["blocks_per_group"] == device_map["blocks_per_group"]
