"""Tests for the multi-GPU topology and interconnect links."""

import pytest

from repro.gpu import GPUClusterSpec, Link, PCIE_GEN2_X16, QPI, SUPERMICRO_4GPU, transfer_time


def test_link_time_model():
    link = Link("t", bandwidth_gbs=1.0, latency_s=1e-5)
    assert link.time(0) == 1e-5
    assert link.time(1e9) == pytest.approx(1.0 + 1e-5)
    assert transfer_time(5e8, link) == pytest.approx(0.5 + 1e-5)


def test_link_negative_bytes():
    with pytest.raises(ValueError):
        PCIE_GEN2_X16.time(-1)


def test_supermicro_layout():
    # The paper's host: 2 sockets x 2 GPUs.
    assert SUPERMICRO_4GPU.ngpus == 4
    assert SUPERMICRO_4GPU.socket_of(0) == 0
    assert SUPERMICRO_4GPU.socket_of(1) == 0
    assert SUPERMICRO_4GPU.socket_of(2) == 1
    assert SUPERMICRO_4GPU.socket_of(3) == 1


def test_qpi_crossing():
    assert not SUPERMICRO_4GPU.crosses_qpi_to_host(0)
    assert SUPERMICRO_4GPU.crosses_qpi_to_host(2)


def test_peer_possible_same_socket_only():
    # CUDA 4.0: "GPU-GPU communication is only supported for GPUs
    # connected to the same CPU" (§4.6).
    assert SUPERMICRO_4GPU.peer_possible(0, 1)
    assert not SUPERMICRO_4GPU.peer_possible(0, 2)
    assert SUPERMICRO_4GPU.peer_possible(2, 3)


def test_socket_of_bounds():
    with pytest.raises(ValueError):
        SUPERMICRO_4GPU.socket_of(4)


def test_custom_layout():
    c = GPUClusterSpec(gpus_per_socket=(1, 3))
    assert c.ngpus == 4
    assert c.socket_of(0) == 0
    assert c.socket_of(3) == 1
