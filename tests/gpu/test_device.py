"""Tests for device specs and occupancy."""

import pytest

from repro.gpu import DeviceSpec, FERMI_C2070, XEON_E5540, occupancy


def test_fermi_preset_matches_paper():
    # §3.2: 14 multiprocessors x 32 CUDA cores @ 1.15 GHz.
    assert FERMI_C2070.sm_count == 14
    assert FERMI_C2070.cores_per_sm == 32
    assert FERMI_C2070.clock_ghz == 1.15


def test_flops():
    assert FERMI_C2070.flops() == pytest.approx(14 * 32 * 1.15e9)


def test_xeon_preset():
    assert XEON_E5540.sm_count == 4  # the paper's 4-core CPU reference


def test_occupancy_448_threads():
    # 1536 threads/SM // 448 = 3 blocks/SM -> 42 resident blocks.
    assert occupancy(FERMI_C2070, 448) == 42


def test_occupancy_128_threads():
    assert occupancy(FERMI_C2070, 128) == 12 * 14


def test_occupancy_huge_blocks_at_least_one_per_sm():
    assert occupancy(FERMI_C2070, 100000) == 14


def test_occupancy_invalid():
    with pytest.raises(ValueError):
        occupancy(FERMI_C2070, 0)
