"""Tests for the shared instrumented run loop (repro.runtime.RunLoop)."""

import numpy as np
import pytest

from repro.matrices import default_rhs
from repro.runtime import RunLoop, RunRecorder, StopRun, StoppingCriterion


def _jacobi_parts(A, b):
    d = A.diagonal()

    def step(x, it):
        return x + (b - A.matvec(x)) / d

    def resnorm(x):
        return float(np.linalg.norm(A.residual(x, b)))

    return step, resnorm


def _hand_rolled(A, b, stopping):
    """The historical per-sweep loop every solver used to carry."""
    step, resnorm = _jacobi_parts(A, b)
    b_norm = float(np.linalg.norm(b))
    threshold = stopping.threshold(b_norm)
    x = np.zeros(A.shape[0])
    residuals = [resnorm(x)]
    converged = residuals[0] <= threshold
    diverged = False
    it = 0
    while not converged and it < stopping.maxiter:
        x = step(x, it)
        it += 1
        res = resnorm(x)
        residuals.append(res)
        if res <= threshold:
            converged = True
        elif stopping.diverged(res):
            diverged = True
            break
    return x, np.array(residuals), converged, diverged


def test_default_cadence_bitwise_matches_hand_rolled_loop(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    stopping = StoppingCriterion(tol=1e-10, maxiter=200)
    step, resnorm = _jacobi_parts(A, b)
    out = RunLoop(stopping).run(
        np.zeros(A.shape[0]), step, resnorm, b_norm=float(np.linalg.norm(b))
    )
    x, residuals, converged, diverged = _hand_rolled(A, b, stopping)
    assert np.array_equal(out.x, x)
    assert np.array_equal(out.residuals, residuals)
    assert out.converged == converged
    assert out.diverged == diverged
    assert np.array_equal(out.residual_iters, np.arange(len(residuals)))
    assert out.sweeps == len(residuals) - 1


def test_residual_every_subsamples_same_iterates(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    b_norm = float(np.linalg.norm(b))
    stopping = StoppingCriterion(tol=0.0, maxiter=30)
    step, resnorm = _jacobi_parts(A, b)
    dense = RunLoop(stopping).run(np.zeros(A.shape[0]), step, resnorm, b_norm=b_norm)
    m = 3
    sparse = RunLoop(stopping, residual_every=m).run(
        np.zeros(A.shape[0]), step, resnorm, b_norm=b_norm
    )
    # Same iterates, residuals evaluated only at the cadence points.
    assert np.array_equal(sparse.x, dense.x)
    assert np.array_equal(sparse.residual_iters, np.arange(0, 31, m))
    assert np.array_equal(sparse.residuals, dense.residuals[sparse.residual_iters])


def test_residual_every_always_evaluates_final_sweep(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    step, resnorm = _jacobi_parts(A, b)
    # 10 sweeps, cadence 4: recorded at 0, 4, 8 and the final sweep 10.
    out = RunLoop(StoppingCriterion(tol=0.0, maxiter=10), residual_every=4).run(
        np.zeros(A.shape[0]), step, resnorm, b_norm=float(np.linalg.norm(b))
    )
    assert out.residual_iters.tolist() == [0, 4, 8, 10]


def test_stoprun_ends_before_counting_the_sweep():
    stopping = StoppingCriterion(tol=0.0, maxiter=50)

    def step(x, it):
        if it == 3:
            raise StopRun("breakdown")
        return x + 1.0

    out = RunLoop(stopping).run(
        np.zeros(2), step, lambda x: float(np.linalg.norm(x - 10.0)), b_norm=1.0
    )
    assert out.stop_reason == "breakdown"
    assert out.sweeps == 3
    assert len(out.residuals) == 4  # initial + sweeps 1..3
    assert not out.converged and not out.diverged


def test_divergence_aborts():
    stopping = StoppingCriterion(tol=1e-12, maxiter=100, divergence_limit=1e6)

    def step(x, it):
        return x * 10.0

    out = RunLoop(stopping).run(
        np.ones(2), step, lambda x: float(np.linalg.norm(x)), b_norm=1.0
    )
    assert out.diverged and not out.converged
    assert out.residuals[-1] > 1e6


def test_observer_sees_every_recorded_non_stopping_residual():
    stopping = StoppingCriterion(tol=0.0, maxiter=5)
    seen = []

    out = RunLoop(stopping).run(
        np.zeros(1),
        lambda x, it: x + 1.0,
        lambda x: float(x[0]) + 1.0,
        b_norm=1.0,
        observer=lambda it, x, res: seen.append((it, res)),
    )
    # Iteration 0 unconditionally, then every recorded residual that did
    # not stop the run by tolerance or divergence (budget exhaustion still
    # reports the final sample).
    assert [it for it, _ in seen] == [0, 1, 2, 3, 4, 5]
    assert [r for _, r in seen] == out.residuals.tolist()


def test_run_batched_matches_scalar_loops(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    n = A.shape[0]
    b_norm = float(np.linalg.norm(b))
    d = A.diagonal()
    stopping = StoppingCriterion(tol=1e-8, maxiter=60)
    R = 3

    def sweep(reps):
        for r in reps:
            X[r] += (b - A.matvec(X[r])) / d

    def residual_norms(reps):
        return np.array([float(np.linalg.norm(A.residual(X[r], b))) for r in reps])

    X = np.zeros((R, n))
    out = RunLoop(stopping).run_batched(X, sweep, residual_norms, b_norm=b_norm)

    # Each replica ran plain Jacobi: compare to the scalar loop.
    x, residuals, converged, _ = _hand_rolled(A, b, stopping)
    for r in range(R):
        assert np.array_equal(out.histories[r], residuals)
        assert out.converged[r] == converged
        assert not out.diverged[r]
        assert np.array_equal(out.X[r], x)


def test_run_batched_freezes_converged_replicas():
    stopping = StoppingCriterion(tol=1e-3, maxiter=20, relative=False)
    X = np.array([[1.0], [100.0]])

    def sweep(reps):
        X[reps] *= 0.1

    def residual_norms(reps):
        return np.abs(X[reps, 0])

    out = RunLoop(stopping).run_batched(
        X, sweep, residual_norms, b_norm=1.0
    )
    # Replica 0 converges 2 sweeps before replica 1; its history stops
    # growing while replica 1 keeps iterating.
    assert len(out.histories[0]) < len(out.histories[1])
    assert out.converged.all()


def test_ledger_records_and_amends():
    rec = RunRecorder()
    ledger = RunLoop(
        StoppingCriterion(tol=1e-6, maxiter=10, relative=False), recorder=rec
    ).ledger(b_norm=1.0, method="gmres-test")
    assert not ledger.start(1.0)
    ledger.record(1, 0.5)
    ledger.record(2, 0.25)
    ledger.amend_last(0.2)
    assert not ledger.check(0.2)
    ledger.record(3, 1e-7)
    assert ledger.check(1e-7)
    ledger.finish(inner_iterations=3)
    assert ledger.converged
    assert ledger.history().tolist() == [1.0, 0.5, 0.2, 1e-7]
    run = rec.runs[0]
    assert run.meta["method"] == "gmres-test"
    assert run.residual_norms == [1.0, 0.5, 0.2, 1e-7]
    assert run.summary["converged"] is True


def test_residual_every_validation():
    with pytest.raises(ValueError):
        RunLoop(StoppingCriterion(), residual_every=0)
