"""Tests for RunRecorder telemetry capture and JSON export."""

import json

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver, FaultScenario
from repro.matrices import default_rhs
from repro.runtime import RunRecorder, StoppingCriterion


def _reject_constant(token):
    raise ValueError(f"non-standard JSON token {token!r}")


def test_recorder_captures_sweeps_residuals_and_events():
    rec = RunRecorder()
    rec.open_run(method="demo", b_norm=2.0)
    rec.record_residual(0, 1.0)
    rec.record_sweep(1, 0.01, 0.5)
    rec.record_sweep(2, 0.02)  # no residual evaluated this sweep
    rec.record_event(2, "fault-active", frozen_rows=7)
    rec.annotate(backend="reference")
    rec.close_run(converged=False, sweeps=2)
    run = rec.runs[0]
    assert run.sweep_index == [1, 2]
    assert run.residual_iters == [0, 1]
    assert run.residual_norms == [1.0, 0.5]
    assert run.events == [{"sweep": 2, "kind": "fault-active", "frozen_rows": 7}]
    assert run.annotations == {"backend": "reference"}
    assert run.summary == {"converged": False, "sweeps": 2}
    assert run.elapsed is not None and run.elapsed >= 0


def test_recorder_json_roundtrip_and_dump(tmp_path):
    rec = RunRecorder()
    rec.open_run(method="demo")
    rec.record_sweep(1, 0.001, 0.25)
    # numpy payloads must become plain JSON types.
    rec.annotate(update_counts=np.array([3, 4]), rate=np.float64(0.5))
    rec.close_run(converged=True)
    data = json.loads(rec.to_json())
    assert data["schema"] == RunRecorder.SCHEMA
    assert data["runs"][0]["annotations"]["update_counts"] == [3, 4]
    path = tmp_path / "telemetry.json"
    rec.dump(path)
    assert json.loads(path.read_text()) == data


def test_recording_without_open_run_raises():
    # Recording against a recorder that never opened a run used to
    # fabricate a phantom method="adhoc" run silently; it must refuse.
    rec = RunRecorder()
    with pytest.raises(RuntimeError, match="open_run"):
        rec.record_residual(0, 1.0)
    with pytest.raises(RuntimeError, match="open_run"):
        rec.annotate(backend="reference")
    with pytest.raises(RuntimeError, match="open_run"):
        rec.record_event(0, "stop")
    assert rec.runs == []


def test_close_without_open_is_noop():
    rec = RunRecorder()
    rec.close_run(converged=True)  # nothing to close; must not fabricate
    assert rec.runs == []
    assert json.loads(rec.to_json()) == {"schema": RunRecorder.SCHEMA, "runs": []}


def test_annotate_after_close_lands_on_last_run():
    # Engines/CLI annotate after the loop closed the run; that must keep
    # working (the last run stays current until the next open).
    rec = RunRecorder()
    rec.open_run(method="demo")
    rec.close_run(converged=True)
    rec.annotate(matrix="fv1")
    assert rec.runs[0].annotations == {"matrix": "fv1"}


def test_diverged_run_exports_strict_json():
    # A diverged run records inf/nan residuals; json.dumps would emit the
    # non-standard Infinity/NaN tokens for them.  The export must encode
    # them as null with a finite=false marker and stay strictly parseable.
    rec = RunRecorder()
    rec.open_run(method="demo", b_norm=float("inf"))
    rec.record_residual(0, 1.0)
    rec.record_sweep(1, 0.01, float("inf"))
    rec.record_residual(2, float("nan"))
    rec.annotate(rho=np.float64("inf"), spectrum=np.array([1.0, np.inf]))
    rec.close_run(converged=False, diverged=True, final_residual=float("inf"))
    text = rec.to_json()
    data = json.loads(text, parse_constant=_reject_constant)
    run = data["runs"][0]
    assert run["residuals"]["norms"] == [1.0, None, None]
    assert run["residuals"]["finite"] is False
    assert run["meta"]["b_norm"] is None
    assert run["annotations"]["rho"] is None
    assert run["annotations"]["spectrum"] == [1.0, None]
    assert run["summary"]["final_residual"] is None


def test_finite_run_marked_finite():
    rec = RunRecorder()
    rec.open_run(method="demo")
    rec.record_residual(0, 1.0)
    rec.close_run(converged=True)
    data = json.loads(rec.to_json(), parse_constant=_reject_constant)
    assert data["runs"][0]["residuals"]["finite"] is True


def test_solver_run_feeds_recorder(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    rec = RunRecorder()
    solver = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=64, seed=4),
        stopping=StoppingCriterion(tol=1e-8, maxiter=100),
        recorder=rec,
    )
    result = solver.solve(A, b)
    assert result.converged
    run = rec.runs[0]
    assert run.meta["method"] == "async-(2)"
    assert run.meta["residual_every"] == 1
    # One timing sample per sweep, one residual per sweep plus the initial.
    assert len(run.sweep_seconds) == result.iterations
    assert run.residual_norms == result.residuals.tolist()
    assert run.summary["converged"] is True
    # Engine facts are attached as annotations.
    assert run.annotations["backend"] in ("fused", "reference")
    assert len(run.annotations["update_counts"]) == run.annotations["nblocks"]


def test_engine_records_fault_events(trefethen_small):
    A = trefethen_small
    b = default_rhs(A)
    rec = RunRecorder()
    solver = BlockAsyncSolver(
        AsyncConfig(local_iterations=1, block_size=64, seed=0),
        fault=FaultScenario(fraction=0.1, t0=5, recovery=10, kind="freeze", seed=1),
        stopping=StoppingCriterion(tol=1e-10, maxiter=60),
        recorder=rec,
    )
    solver.solve(A, b)
    kinds = [e["kind"] for e in rec.runs[0].events]
    assert "fault-active" in kinds
    assert "fault-cleared" in kinds
    active = next(e for e in rec.runs[0].events if e["kind"] == "fault-active")
    assert active["frozen_rows"] > 0
