"""Shared fixtures: small deterministic systems and suite-matrix caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro.sparse import CSRMatrix


@pytest.fixture(scope="session")
def rng():
    """Session RNG for tests that want arbitrary (but fixed) data."""
    return np.random.default_rng(20120712)


@pytest.fixture(scope="session")
def small_spd():
    """A small, strictly diagonally dominant SPD matrix (n=60)."""
    gen = np.random.default_rng(7)
    n = 60
    dense = gen.standard_normal((n, n))
    dense = (dense + dense.T) / 2.0
    dense[np.abs(dense) < 1.0] = 0.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense)


@pytest.fixture(scope="session")
def small_rect():
    """A small rectangular sparse matrix (50x70) with empty rows/cols."""
    gen = np.random.default_rng(11)
    dense = gen.standard_normal((50, 70))
    dense[np.abs(dense) < 1.4] = 0.0
    dense[7, :] = 0.0  # empty row
    dense[:, 13] = 0.0  # empty column
    return CSRMatrix.from_dense(dense), dense


@pytest.fixture(scope="session")
def fv1():
    """The fv1 reconstruction (cached across the whole test session)."""
    return get_matrix("fv1")


@pytest.fixture(scope="session")
def trefethen_small():
    """A small exact Trefethen matrix (n=300) for fast solver tests."""
    from repro.matrices import trefethen

    return trefethen(300)
