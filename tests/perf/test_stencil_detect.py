"""Stencil structure detection (:func:`repro.perf.detect_stencil`).

The detector is a gate, not a heuristic: matrices it accepts run the
matrix-free stencil executor, so a false accept would silently change
iterates and a false reject only costs speed.  These tests pin both
sides — the suite's stencil matrices (fv*, the 3-D grid family) detect
with the right descriptor, the irregular ones (Trefethen, Chem97ZtZ)
fail with a precise reason, permuted partitions fail cleanly, and a
single perturbed coefficient is enough to reject a near-miss.
"""

import json

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro.matrices.grids import stencil_laplacian_2d
from repro.matrices.grids3d import stencil_laplacian_3d
from repro.partition import make_partition
from repro.perf import StencilDescriptor, detect_stencil
from repro.sparse import BlockRowView, CSRMatrix


def _view(A, spec="uniform", block_size=128):
    return BlockRowView(A, partition=make_partition(A, spec, block_size=block_size))


@pytest.fixture(scope="module")
def lap3d():
    """12^3 7-point Laplacian — interior fraction 0.579, detects."""
    return stencil_laplacian_3d(12)


# --------------------------------------------------------------------- #
# accepts
# --------------------------------------------------------------------- #


def test_fv1_detects(fv1):
    desc, reason = detect_stencil(_view(fv1))
    assert desc is not None and reason == ""
    # Two-material coefficient field: several constant-coefficient
    # interior classes, the rest exact clipped boundary variants.
    assert desc.n_interior_classes > 1
    assert desc.n_classes == desc.n_interior_classes + desc.n_variants
    assert desc.interior_fraction >= 0.5
    assert desc.grid_shape == (98, 98)
    assert 0 in desc.offsets


def test_lap3d_7pt_detects_with_grid_shape(lap3d):
    desc, reason = detect_stencil(_view(lap3d))
    assert desc is not None, reason
    assert desc.offsets.tolist() == [-144, -12, -1, 0, 1, 12, 144]
    assert desc.grid_shape == (12, 12, 12)
    assert desc.n_interior_classes == 1
    assert desc.n_variants > 0  # clipped boundary rows
    # The dominant interior class is the constant-coefficient core.
    assert desc.coeffs[desc.offsets.tolist().index(0)] == 6.0


@pytest.mark.parametrize("stencil", ["19pt", "27pt"])
def test_lap3d_wide_stencils_detect(stencil):
    desc, reason = detect_stencil(_view(stencil_laplacian_3d(12, stencil=stencil)))
    assert desc is not None, reason
    if stencil == "19pt":
        assert desc.grid_shape == (12, 12, 12)
    else:
        # The Q1 27-point stencil has zero face weights, so the sparsity
        # carries no +-1 offsets and grid inference correctly declines —
        # metadata only, execution never needs it.
        assert desc.grid_shape is None


def test_anisotropic_coefficients_detect():
    desc, reason = detect_stencil(
        _view(stencil_laplacian_3d(12, anisotropy=(1.0, 1.0, 0.01)))
    )
    assert desc is not None, reason
    assert desc.grid_shape == (12, 12, 12)


def test_one_row_blocks_are_fine(lap3d):
    # Detection is a property of the matrix, not the decomposition size.
    desc, _ = detect_stencil(_view(lap3d, block_size=1))
    assert desc is not None
    assert desc.grid_shape == (12, 12, 12)


def test_descriptor_telemetry_is_json_safe(lap3d):
    desc, _ = detect_stencil(_view(lap3d))
    blob = desc.telemetry()
    assert json.loads(json.dumps(blob, allow_nan=False)) == blob
    assert blob["grid_shape"] == [12, 12, 12]
    assert blob["classes"] == desc.n_classes


# --------------------------------------------------------------------- #
# rejects
# --------------------------------------------------------------------- #


def test_trefethen_fails_on_row_patterns(trefethen_small):
    # The per-row prime diagonal makes every row pattern unique.
    desc, reason = detect_stencil(_view(trefethen_small))
    assert desc is None
    assert "distinct row patterns" in reason


def test_chem97_fails_on_offset_cap():
    desc, reason = detect_stencil(_view(get_matrix("Chem97ZtZ")))
    assert desc is None
    assert "distinct offsets" in reason


@pytest.mark.parametrize("spec", ["rcm", "clustered:8"])
def test_permuted_partitions_fail_cleanly(lap3d, spec):
    # Offsets are meaningless after reordering; the detector must refuse
    # before looking at any entry.
    desc, reason = detect_stencil(_view(lap3d, spec=spec))
    assert desc is None
    assert "permutation" in reason


def test_near_miss_one_perturbed_coefficient_fails(lap3d):
    # Perturb a single off-diagonal entry of one interior row: the row is
    # no longer a clipped variant of any interior class, and the matrix
    # must NOT detect — a false accept would silently change iterates.
    A = lap3d
    lengths = np.diff(A.indptr)
    row = int(np.flatnonzero(lengths == lengths.max())[lengths.max() // 2])
    data = A.data.copy()
    j = A.indptr[row]
    if A.indices[j] == row:  # don't touch the diagonal slot
        j += 1
    data[j] *= 1.0 + 1e-9
    B = CSRMatrix(A.indptr.copy(), A.indices.copy(), data, A.shape)
    desc, reason = detect_stencil(_view(B))
    assert desc is None
    assert "clipped variant" in reason


def test_tiny_matrix_fails():
    desc, reason = detect_stencil(_view(CSRMatrix.identity(3), block_size=1))
    assert desc is None
    assert "too small" in reason


def test_low_fill_band_fails():
    # A wide scattered band: few offsets repeat, so the offsets x rows
    # plane is mostly empty and the fill gate exits.
    gen = np.random.default_rng(5)
    n = 96
    dense = np.zeros((n, n))
    np.fill_diagonal(dense, 4.0)
    for i in range(n):
        for j in gen.choice(n, size=3, replace=False):
            if j != i:
                dense[i, j] = -0.1
    desc, reason = detect_stencil(_view(CSRMatrix.from_dense(dense), block_size=16))
    assert desc is None
    assert ("fill" in reason) or ("distinct offsets" in reason)


def test_interior_fraction_gate():
    # 8^3 7-point: boundary rows dominate ((6/8)^3 = 0.42 interior), so
    # the grid is honestly too small for interior-dominated dispatch.
    desc, reason = detect_stencil(_view(stencil_laplacian_3d(8), block_size=64))
    assert desc is None
    assert "interior fraction" in reason


def test_2d_grid_detects_small():
    desc, reason = detect_stencil(_view(stencil_laplacian_2d(16), block_size=16))
    assert desc is not None, reason
    assert desc.grid_shape == (16, 16)
    assert isinstance(desc, StencilDescriptor)
