"""StencilSweepExecutor: bitwise equivalence and dispatch rules.

The stencil path is an execution strategy, never an approximation:
wherever it may run, its iterates — and the scheduler RNG state it
leaves behind — are bitwise the reference loop's.  These tests pin that
contract across the whole-sweep-exact regimes, the auto preference
order (stencil > fused > reference), the refusal semantics of a forced
``backend="stencil"``, the batched stacked variant, and the telemetry
trail that makes every dispatch decision explainable.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig, AsyncEngine, BatchedAsyncEngine
from repro.matrices.grids import stencil_laplacian_2d
from repro.matrices.grids3d import stencil_laplacian_3d
from repro.perf import (
    FusedSweepExecutor,
    ReferenceSweepExecutor,
    StencilSweepExecutor,
    compile_sweep_plan,
)
from repro.sparse import BlockRowView


@pytest.fixture(scope="module")
def lap3d():
    """10^3 7-point Laplacian (n=1000) — small enough for k=5 regimes."""
    return stencil_laplacian_3d(10)


def _rhs(A):
    return np.random.default_rng(2).standard_normal(A.shape[0])


def _run(A, b, config, *, sweeps=3, seed=0):
    view = BlockRowView(A, block_size=config.block_size)
    engine = AsyncEngine(view, b, dataclasses.replace(config, seed=seed))
    x = np.zeros(A.shape[0])
    iterates = []
    for _ in range(sweeps):
        engine.sweep(x)
        iterates.append(x.copy())
    # Equal post-run draws == equal generator state: the stencil path must
    # consume exactly the doubles the reference loop would have.
    probe = engine.rng.random(8)
    return engine, iterates, probe


#: Whole-sweep-exact regimes (the same matrix the fused tests pin),
#: spanning order, k, omega and deferred writes.
ENGAGING = {
    "synchronous-k1": AsyncConfig(order="synchronous", local_iterations=1, block_size=32),
    "synchronous-k5-omega": AsyncConfig(
        order="synchronous", local_iterations=5, omega=0.8, block_size=32
    ),
    "snapshot-gpu-k1": AsyncConfig(
        order="gpu", stale_read_prob=1.0, local_iterations=1, block_size=32
    ),
    "snapshot-random-k2-omega": AsyncConfig(
        order="random", stale_read_prob=1.0, local_iterations=2, omega=0.9, block_size=32
    ),
    "alldefer-mixed-k2": AsyncConfig(
        order="gpu", deferred_write_prob=1.0, local_iterations=2, block_size=32
    ),
    "alldefer-omega-k3": AsyncConfig(
        order="gpu", deferred_write_prob=1.0, local_iterations=3, omega=0.85,
        block_size=32,
    ),
}


@pytest.mark.parametrize("regime", sorted(ENGAGING), ids=sorted(ENGAGING))
def test_stencil_bitwise_matches_reference(lap3d, regime):
    b = _rhs(lap3d)
    cfg = ENGAGING[regime]
    eng_s, iters_s, probe_s = _run(lap3d, b, dataclasses.replace(cfg, backend="stencil"))
    eng_r, iters_r, probe_r = _run(lap3d, b, dataclasses.replace(cfg, backend="reference"))
    assert isinstance(eng_s._executor, StencilSweepExecutor)
    assert isinstance(eng_r._executor, ReferenceSweepExecutor)
    for t, (xs, xr) in enumerate(zip(iters_s, iters_r)):
        assert np.array_equal(xs, xr), f"backends diverged at sweep {t + 1}"
    assert np.array_equal(probe_s, probe_r), "generator states diverged"


@pytest.mark.parametrize("regime", sorted(ENGAGING), ids=sorted(ENGAGING))
def test_auto_prefers_stencil_on_grids(lap3d, regime):
    eng, _, _ = _run(lap3d, _rhs(lap3d), ENGAGING[regime], sweeps=1)
    assert eng.backend == "stencil"


def test_auto_still_fuses_irregular_matrices(trefethen_small):
    # Detection fails on Trefethen; auto drops to the fused CSR path, not
    # all the way to the reference loop.
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), ENGAGING["snapshot-gpu-k1"], sweeps=1)
    assert eng.backend == "fused"
    assert isinstance(eng._executor, FusedSweepExecutor)


def test_forced_stencil_refuses_inexact_regime(lap3d):
    # Live-read gpu order: whole-sweep execution would change iterates.
    cfg = AsyncConfig(order="gpu", local_iterations=2, block_size=32, backend="stencil")
    view = BlockRowView(lap3d, block_size=cfg.block_size)
    with pytest.raises(ValueError, match="not.*exact"):
        AsyncEngine(view, _rhs(lap3d), cfg)


def test_forced_stencil_refuses_irregular_matrix(trefethen_small):
    cfg = dataclasses.replace(ENGAGING["snapshot-gpu-k1"], backend="stencil")
    view = BlockRowView(trefethen_small, block_size=cfg.block_size)
    with pytest.raises(ValueError, match="structure detection failed"):
        AsyncEngine(view, _rhs(trefethen_small), cfg)


def test_one_row_blocks_bitwise():
    # Degenerate decomposition: every block is one row, every coupling is
    # external.  The stencil executor must still match the per-block loop.
    A = stencil_laplacian_2d(16)
    b = _rhs(A)
    cfg = AsyncConfig(order="gpu", stale_read_prob=1.0, local_iterations=2, block_size=1)
    eng_s, iters_s, probe_s = _run(A, b, dataclasses.replace(cfg, backend="stencil"))
    _, iters_r, probe_r = _run(A, b, dataclasses.replace(cfg, backend="reference"))
    assert eng_s.backend == "stencil"
    for xs, xr in zip(iters_s, iters_r):
        assert np.array_equal(xs, xr)
    assert np.array_equal(probe_s, probe_r)


@pytest.mark.parametrize("stencil", ["19pt", "27pt"])
def test_wide_stencils_bitwise(stencil):
    A = stencil_laplacian_3d(12, stencil=stencil)
    b = _rhs(A)
    cfg = ENGAGING["snapshot-gpu-k1"]
    eng_s, iters_s, _ = _run(A, b, cfg, sweeps=2)
    _, iters_r, _ = _run(A, b, dataclasses.replace(cfg, backend="reference"), sweeps=2)
    assert eng_s.backend == "stencil"
    for xs, xr in zip(iters_s, iters_r):
        assert np.array_equal(xs, xr)


def test_batched_stacked_variant_bitwise(lap3d):
    # The batched engine runs the weight planes over an (R, n) stack; each
    # replica must reproduce the sequential engine for seed0 + r, bit for
    # bit, exactly like the fused collapse it generalises.
    b = _rhs(lap3d)
    cfg = ENGAGING["alldefer-mixed-k2"]
    nreplicas, sweeps, seed0 = 3, 3, 5
    view = BlockRowView(lap3d, block_size=cfg.block_size)
    engine = BatchedAsyncEngine(view, b, cfg, nreplicas, seed0=seed0)
    assert engine.backend == "stencil"
    X = np.zeros((nreplicas, lap3d.shape[0]))
    stacked = []
    for _ in range(sweeps):
        engine.sweep(X)
        stacked.append(X.copy())
    for r in range(nreplicas):
        _, seq, _ = _run(lap3d, b, cfg, sweeps=sweeps, seed=seed0 + r)
        for t in range(sweeps):
            assert np.array_equal(stacked[t][r], seq[t]), (
                f"replica {r} diverged at sweep {t + 1}"
            )


def test_telemetry_records_detection_outcome(lap3d, trefethen_small):
    cfg = ENGAGING["snapshot-gpu-k1"]
    eng, _, _ = _run(lap3d, _rhs(lap3d), cfg, sweeps=1)
    blob = eng.view.partition_telemetry()["stencil"]
    assert blob["detected"] is True
    assert blob["offsets"] == [-100, -10, -1, 0, 1, 10, 100]
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), cfg, sweeps=1)
    blob = eng.view.partition_telemetry()["stencil"]
    assert blob["detected"] is False and "distinct row patterns" in blob["reason"]


def test_detection_not_forced_without_stencil_dispatch(lap3d):
    # A view whose engines never considered stencil dispatch reports plain
    # partition telemetry: detection is lazy, paid only when consulted.
    view = BlockRowView(lap3d, block_size=32)
    plan = compile_sweep_plan(view)
    assert not plan.stencil_attempted
    assert "stencil" not in view.partition_telemetry()
    plan.stencil  # first consult runs the detector
    assert plan.stencil_attempted
    assert view.partition_telemetry()["stencil"]["detected"] is True


def test_stencil_kernels_compiled_once(lap3d):
    view = BlockRowView(lap3d, block_size=32)
    plan = compile_sweep_plan(view)
    k1 = plan.stencil_kernels()
    assert plan.stencil_kernels() is k1
    ext, loc = k1.n_diagonals
    assert ext > 0 and loc > 0
