"""Whole-pipeline determinism: the reproduction reproduces itself.

Everything stochastic is seeded, so running the same experiment twice must
render byte-identically (modulo wall-clock timings, which the checked
experiments do not contain).
"""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.experiments import run_experiment
from repro.matrices import default_rhs, get_matrix
from repro.solvers import StoppingCriterion


@pytest.mark.parametrize("eid", ["F8", "F1"])
def test_experiment_renders_identically(eid):
    a = run_experiment(eid).render()
    b = run_experiment(eid).render()
    assert a == b


def test_solver_bitwise_reproducible_across_processes_shape(fv1):
    # Same seed, fresh solver objects: identical histories AND iterates.
    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=0.0, maxiter=25)
    r1 = BlockAsyncSolver(AsyncConfig(local_iterations=5, block_size=448, seed=11), stopping=stop).solve(fv1, b)
    r2 = BlockAsyncSolver(AsyncConfig(local_iterations=5, block_size=448, seed=11), stopping=stop).solve(fv1, b)
    assert np.array_equal(r1.x, r2.x)
    assert np.array_equal(r1.residuals, r2.residuals)


def test_matrix_generators_identical_across_calls():
    for name in ("Chem97ZtZ", "fv1", "s1rmt3m1"):
        a = get_matrix(name, cache=False)
        b = get_matrix(name, cache=False)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)


def test_ensemble_stats_reproducible(small_spd):
    from repro.stats import run_ensemble

    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10)
    s1 = run_ensemble(small_spd, b, 4, 10, config=cfg)
    s2 = run_ensemble(small_spd, b, 4, 10, config=cfg)
    assert np.array_equal(s1.mean, s2.mean)
    assert np.array_equal(s1.max, s2.max)
