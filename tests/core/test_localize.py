"""Tests for fault localization (per-block residual ranking)."""

import numpy as np
import pytest

from repro.core import AsyncConfig, FaultLocalizer, FaultScenario
from repro.core.engine import AsyncEngine
from repro.sparse import BlockRowView


def run_engine(A, b, view, fault, sweeps, snapshot_at, localizer):
    engine = AsyncEngine(
        view, b, AsyncConfig(local_iterations=2, block_size=10, seed=1), fault=fault
    )
    x = np.zeros(A.shape[0])
    for s in range(sweeps):
        x = engine.sweep(x)
        if s == snapshot_at:
            localizer.snapshot(x)
    return x


def test_profile_matches_global_residual(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, block_size=10)
    loc = FaultLocalizer(view, b)
    x = np.random.default_rng(0).standard_normal(60)
    prof = loc.profile(x)
    assert np.isclose(prof.total, np.linalg.norm(small_spd.residual(x, b)))
    assert np.isclose(prof.shares().sum(), 1.0)


def test_profile_shares_zero_residual(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, block_size=10)
    loc = FaultLocalizer(view, b)
    prof = loc.profile(np.ones(60))
    assert prof.total < 1e-10
    # Guarded division: all-zero shares rather than NaN.
    assert np.all(np.nan_to_num(prof.shares()) <= 1.0)


def test_localizes_clustered_freeze(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, block_size=10)
    fault = FaultScenario(fraction=0.17, t0=6, recovery=None, clustered=True, seed=3)
    loc = FaultLocalizer(view, b)
    x = run_engine(small_spd, b, view, fault, sweeps=40, snapshot_at=4, localizer=loc)
    mask = fault.failed_components(60)
    actual = {view.block_of_row(i) for i in np.flatnonzero(mask)}
    suspects = set(loc.suspects(x, top=len(actual)))
    assert suspects & actual  # overlap
    assert len(suspects & actual) >= max(1, len(actual) - 1)


def test_localizes_clustered_silent(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, block_size=10)
    fault = FaultScenario(
        fraction=0.17, t0=6, recovery=None, kind="silent", clustered=True, seed=3
    )
    loc = FaultLocalizer(view, b)
    x = run_engine(small_spd, b, view, fault, sweeps=40, snapshot_at=4, localizer=loc)
    mask = fault.failed_components(60)
    actual = {view.block_of_row(i) for i in np.flatnonzero(mask)}
    suspects = set(loc.suspects(x, top=len(actual)))
    assert len(suspects & actual) >= max(1, len(actual) - 1)


def test_suspect_components_cover_suspect_blocks(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, block_size=10)
    loc = FaultLocalizer(view, b)
    x = np.random.default_rng(1).standard_normal(60)
    blocks = loc.suspects(x, top=2)
    rows = loc.suspect_components(x, top=2)
    expected = np.concatenate([np.arange(view.blocks[k].start, view.blocks[k].stop) for k in blocks])
    assert sorted(rows.tolist()) == sorted(expected.tolist())


def test_suspects_validation(small_spd):
    view = BlockRowView(small_spd, block_size=10)
    loc = FaultLocalizer(view, np.ones(60))
    with pytest.raises(ValueError, match="top"):
        loc.suspects(np.zeros(60), top=0)


def test_clustered_mask_is_contiguous():
    f = FaultScenario(fraction=0.2, clustered=True, seed=5)
    mask = f.failed_components(100)
    idx = np.flatnonzero(mask)
    assert len(idx) == 20
    assert np.array_equal(idx, np.arange(idx[0], idx[0] + 20))


def test_unclustered_mask_is_scattered():
    f = FaultScenario(fraction=0.2, clustered=False, seed=5)
    idx = np.flatnonzero(f.failed_components(100))
    assert not np.array_equal(idx, np.arange(idx[0], idx[0] + len(idx)))
