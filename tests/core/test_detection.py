"""Tests for silent faults and the convergence-anomaly detector."""

import numpy as np
import pytest

from repro.core import Alert, AsyncConfig, BlockAsyncSolver, FaultScenario, SilentErrorDetector
from repro.solvers import StoppingCriterion


# --------------------------------------------------------------------- #
# silent fault semantics
# --------------------------------------------------------------------- #


def test_fault_kind_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultScenario(kind="loud")
    with pytest.raises(ValueError, match="corruption"):
        FaultScenario(kind="silent", corruption=0.0)


def test_silent_label():
    assert FaultScenario(kind="silent", recovery=None).label == "silent, no recovery"


def test_silent_fault_prevents_convergence(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-12, maxiter=300)
    clean = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1), stopping=stop
    ).solve(small_spd, b)
    corrupted = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1),
        fault=FaultScenario(fraction=0.2, t0=5, recovery=None, kind="silent", seed=2),
        stopping=stop,
    ).solve(small_spd, b)
    assert clean.converged
    assert not corrupted.converged
    assert corrupted.relative_residuals()[-1] > 1e-6


def test_silent_fault_with_recovery_converges(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-12, maxiter=600)
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1),
        fault=FaultScenario(fraction=0.2, t0=5, recovery=15, kind="silent", seed=2),
        stopping=stop,
    ).solve(small_spd, b)
    assert r.converged


# --------------------------------------------------------------------- #
# detector unit behaviour
# --------------------------------------------------------------------- #


def geometric_history(rate, n, start=1.0):
    return start * rate ** np.arange(n)


def test_detector_validation():
    with pytest.raises(ValueError):
        SilentErrorDetector(window=2)
    with pytest.raises(ValueError):
        SilentErrorDetector(window=10, warmup=5)
    with pytest.raises(ValueError):
        SilentErrorDetector(rate_tolerance=1.5)


def test_quiet_on_clean_geometric_decay():
    det = SilentErrorDetector(window=5, warmup=10)
    alerts = det.scan(geometric_history(0.8, 60))
    assert alerts == []
    assert det.baseline_rate == pytest.approx(np.log(0.8), rel=1e-6)


def test_alert_on_residual_rise():
    h = np.concatenate([geometric_history(0.8, 30), geometric_history(1.3, 20, start=0.8**30)])
    det = SilentErrorDetector(window=5, warmup=10)
    alerts = det.scan(h)
    assert alerts
    assert alerts[0].reason == "residual-rise"
    assert 30 <= alerts[0].iteration <= 36


def test_alert_on_stagnation():
    h = np.concatenate([geometric_history(0.8, 30), np.full(30, 0.8**30)])
    det = SilentErrorDetector(window=5, warmup=10)
    alerts = det.scan(h)
    assert alerts
    assert alerts[0].reason in ("stagnation", "rate-degradation")


def test_alert_on_rate_degradation():
    h = np.concatenate(
        [geometric_history(0.7, 30), geometric_history(0.97, 30, start=0.7**30)]
    )
    det = SilentErrorDetector(window=5, warmup=10, rate_tolerance=0.5)
    alerts = det.scan(h)
    assert alerts
    assert alerts[0].reason == "rate-degradation"


def test_no_alert_at_floor():
    # Stagnating at machine precision is convergence, not an anomaly.
    h = np.concatenate([geometric_history(0.5, 60), np.full(30, 0.5**60)])
    det = SilentErrorDetector(window=5, warmup=10, floor=1e-14)
    assert det.scan(h) == []


def test_handles_nonfinite():
    h = [1.0] * 12 + [float("inf")] * 3
    det = SilentErrorDetector(window=5, warmup=10)
    det.scan(h)  # must not raise


# --------------------------------------------------------------------- #
# end to end: detector catches a silent fault, ignores healthy chaos
# --------------------------------------------------------------------- #


def test_detects_injected_silent_error(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=0.0, maxiter=80)
    fault = FaultScenario(fraction=0.2, t0=30, recovery=None, kind="silent", seed=2)
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1), fault=fault, stopping=stop
    ).solve(small_spd, b)
    det = SilentErrorDetector(window=6, warmup=20)
    alerts = det.scan(r.relative_residuals())
    assert alerts
    assert 30 <= alerts[0].iteration <= 45  # caught within ~15 sweeps


def test_quiet_on_healthy_async_run(fv1):
    from repro.experiments.runner import paper_async_config
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    r = BlockAsyncSolver(
        paper_async_config(5, seed=3), stopping=StoppingCriterion(tol=0.0, maxiter=60)
    ).solve(fv1, b)
    det = SilentErrorDetector(window=8, warmup=16)
    assert det.scan(r.relative_residuals()) == []
