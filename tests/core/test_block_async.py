"""Tests for the BlockAsyncSolver (async-(k))."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.solvers import GaussSeidelSolver, JacobiSolver, StoppingCriterion


def test_name_follows_config():
    assert BlockAsyncSolver(local_iterations=5).name == "async-(5)"
    assert BlockAsyncSolver(AsyncConfig(local_iterations=3)).name == "async-(3)"


def test_converges_on_spd(small_spd):
    x_star = np.linspace(-2, 2, 60)
    b = small_spd.matvec(x_star)
    r = BlockAsyncSolver(
        local_iterations=2, block_size=11, seed=1, stopping=StoppingCriterion(tol=1e-13, maxiter=500)
    ).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_async1_tracks_jacobi_iterations(fv1):
    # Paper Fig. 6: async-(1) converges at (approximately) the Jacobi rate.
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=1e-10, maxiter=400)
    it_async = BlockAsyncSolver(
        AsyncConfig(local_iterations=1, block_size=128, order="gpu", concurrency=168, seed=2),
        stopping=stop,
    ).solve(fv1, b).iterations
    it_jacobi = JacobiSolver(stopping=stop).solve(fv1, b).iterations
    assert abs(it_async - it_jacobi) <= 0.15 * it_jacobi


def test_async5_beats_gauss_seidel_on_fv1(fv1):
    # Paper Fig. 7: async-(5) at block size 448 roughly halves GS iterations.
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=1e-10, maxiter=400)
    it_async = BlockAsyncSolver(
        AsyncConfig(local_iterations=5, block_size=448, order="gpu", concurrency=42, seed=2),
        stopping=stop,
    ).solve(fv1, b).iterations
    it_gs = GaussSeidelSolver(stopping=stop).solve(fv1, b).iterations
    assert it_async < it_gs
    assert it_async < 0.75 * it_gs


def test_more_local_iterations_fewer_sweeps(fv1):
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=1e-10, maxiter=500)
    iters = {}
    for k in (1, 5):
        iters[k] = BlockAsyncSolver(
            AsyncConfig(local_iterations=k, block_size=448, seed=2), stopping=stop
        ).solve(fv1, b).iterations
    assert iters[5] < iters[1]


def test_result_info_fields(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = BlockAsyncSolver(
        local_iterations=2, block_size=10, stopping=StoppingCriterion(tol=0.0, maxiter=5)
    ).solve(small_spd, b)
    assert r.info["nblocks"] == 6
    assert r.info["block_size"] == 10
    assert r.info["local_iterations"] == 2
    assert np.all(r.info["update_counts"] == 5)
    assert 0.0 <= r.info["off_block_fraction"] <= 1.0
    assert r.info["order"] == "gpu"


def test_divergence_on_rho_gt_one():
    from repro.matrices.structural import banded_gram

    A = banded_gram(300, 4, taper_power=1.0, eps=1e-2, seed=5)
    b = A.matvec(np.ones(300))
    r = BlockAsyncSolver(
        local_iterations=2,
        block_size=50,
        stopping=StoppingCriterion(tol=1e-12, maxiter=100, divergence_limit=1e20),
    ).solve(A, b)
    assert not r.converged
    assert r.relative_residuals()[-1] > 1.0


def test_tau_damped_async_converges():
    # The paper's remedy applies to async methods too: omega = tau.
    from repro.matrices.structural import banded_gram
    from repro.solvers import estimate_tau

    A = banded_gram(300, 4, taper_power=1.0, eps=1e-2, seed=5)
    b = A.matvec(np.ones(300))
    tau = estimate_tau(A, steps=100).tau
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=50, omega=tau, seed=1),
        stopping=StoppingCriterion(tol=1e-9, maxiter=3000),
    ).solve(A, b)
    assert r.converged


def test_reproducible_with_seed(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=0.0, maxiter=20)
    r1 = BlockAsyncSolver(local_iterations=3, block_size=9, seed=7, stopping=stop).solve(small_spd, b)
    r2 = BlockAsyncSolver(local_iterations=3, block_size=9, seed=7, stopping=stop).solve(small_spd, b)
    assert np.array_equal(r1.x, r2.x)
    assert np.array_equal(r1.residuals, r2.residuals)
