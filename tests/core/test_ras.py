"""Async restricted additive Schwarz: dispatch, parity, and the o=0 contract.

The RAS executor (:mod:`repro.perf.ras`) only engages when the config
requests a Schwarz mode *and* the partition actually carries overlap;
everything else — including ``schwarz="ras"`` on a disjoint partition —
must run the classic engines bitwise.  Batched RAS replicas must equal
their sequential counterparts exactly (one shared sweep kernel).
"""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig, BatchedAsyncEngine, BlockAsyncSolver
from repro.core.engine import AsyncEngine
from repro.core.fault import FaultScenario
from repro.matrices import default_rhs
from repro.partition import make_partition
from repro.solvers.base import StoppingCriterion
from repro.sparse import BlockRowView


def _view(A, spec, block_size=16):
    return BlockRowView(A, partition=make_partition(A, spec, block_size=block_size))


def _cfg(**over):
    base = dict(local_iterations=3, block_size=16, order="gpu", seed=11)
    base.update(over)
    return AsyncConfig(**base)


# --------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------- #


def test_ras_backend_engages_only_with_overlap(small_spd):
    b = default_rhs(small_spd)
    eng = AsyncEngine(_view(small_spd, "uniform:16+o4"), b, _cfg(schwarz="ras"))
    assert eng.backend == "ras"
    # Same mode on a disjoint partition: the classic resolver runs.
    eng0 = AsyncEngine(_view(small_spd, "uniform:16"), b, _cfg(schwarz="ras"))
    assert eng0.backend != "ras"


@pytest.mark.parametrize("forced", ["fused", "stencil"])
def test_ras_rejects_forced_fast_backends(small_spd, forced):
    b = default_rhs(small_spd)
    view = _view(small_spd, "uniform:16+o4")
    with pytest.raises(ValueError, match="cannot execute async-RAS"):
        AsyncEngine(view, b, _cfg(schwarz="ras", backend=forced))


def test_ras_rejects_fault_scenarios(small_spd):
    b = default_rhs(small_spd)
    view = _view(small_spd, "uniform:16+o4")
    fault = FaultScenario(fraction=0.1, t0=1)
    with pytest.raises(ValueError, match="fault"):
        AsyncEngine(view, b, _cfg(schwarz="ras"), fault=fault)


def test_method_names():
    assert _cfg().method_name == "async-(3)"
    assert _cfg(schwarz="ras", partition="uniform:16+o4").method_name == "async-RAS(3,o4)"
    assert _cfg(schwarz="wras", partition="uniform:16+o4").method_name == "async-wRAS(3,o4)"
    # Requested but inert: the name must not claim RAS ran.
    assert _cfg(schwarz="ras", partition="uniform:16").method_name == "async-(3)"


# --------------------------------------------------------------------- #
# The overlap-0 bitwise contract
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("schwarz", ["ras", "wras"])
def test_schwarz_without_overlap_is_bitwise_the_classic_engine(small_spd, schwarz):
    b = default_rhs(small_spd)
    x_none = np.zeros(small_spd.shape[0])
    x_req = np.zeros(small_spd.shape[0])
    eng_none = AsyncEngine(_view(small_spd, "uniform:16"), b, _cfg())
    eng_req = AsyncEngine(_view(small_spd, "uniform:16+o0"), b, _cfg(schwarz=schwarz))
    assert eng_req.backend == eng_none.backend
    for _ in range(10):
        eng_none.sweep(x_none)
        eng_req.sweep(x_req)
    assert np.array_equal(x_none, x_req)


def test_solver_path_overlap_zero_bitwise(trefethen_small):
    b = default_rhs(trefethen_small)
    stop = StoppingCriterion(tol=1e-10, maxiter=120)
    r0 = BlockAsyncSolver(_cfg(partition="uniform:32"), stopping=stop).solve(
        trefethen_small, b
    )
    r1 = BlockAsyncSolver(
        _cfg(partition="uniform:32+o0", schwarz="ras"), stopping=stop
    ).solve(trefethen_small, b)
    assert r1.method == r0.method == "async-(3)"
    assert np.array_equal(r0.x, r1.x)
    assert np.array_equal(r0.residuals, r1.residuals)


# --------------------------------------------------------------------- #
# RAS semantics
# --------------------------------------------------------------------- #


def test_ras_reduces_sweeps_on_fv1(fv1):
    b = default_rhs(fv1)
    stop = StoppingCriterion(tol=1e-10, maxiter=150)
    cfg = dict(local_iterations=5, block_size=128, order="gpu", seed=0)
    base = BlockAsyncSolver(
        AsyncConfig(partition="uniform:128", **cfg), stopping=stop
    ).solve(fv1, b)
    ras = BlockAsyncSolver(
        AsyncConfig(partition="uniform:128+o32", schwarz="ras", **cfg), stopping=stop
    ).solve(fv1, b)
    assert base.converged and ras.converged
    assert ras.iterations < base.iterations
    assert ras.method == "async-RAS(5,o32)"


@pytest.mark.parametrize("schwarz", ["ras", "wras"])
def test_schwarz_modes_converge(small_spd, schwarz):
    b = default_rhs(small_spd)
    solver = BlockAsyncSolver(
        _cfg(partition="uniform:16+o4", schwarz=schwarz),
        stopping=StoppingCriterion(tol=1e-12, maxiter=200),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    r = small_spd.matvec(result.x) - b
    assert np.linalg.norm(r) <= 1e-12 * np.linalg.norm(b) * 10


def test_ras_update_counts_cover_every_block(small_spd):
    b = default_rhs(small_spd)
    view = _view(small_spd, "uniform:16+o4")
    eng = AsyncEngine(view, b, _cfg(schwarz="ras"))
    x = np.zeros(small_spd.shape[0])
    for _ in range(7):
        eng.sweep(x)
    assert np.all(eng.update_counts == 7)


# --------------------------------------------------------------------- #
# Batched parity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("schwarz", ["ras", "wras"])
def test_batched_ras_matches_sequential_bitwise(small_spd, schwarz):
    b = default_rhs(small_spd)
    cfg = _cfg(schwarz=schwarz, seed=7)
    view = _view(small_spd, "uniform:16+o4")
    nrep, sweeps = 4, 9
    bat = BatchedAsyncEngine(view, b, cfg, nreplicas=nrep, seed0=7)
    assert bat.backend == "ras"
    X = np.zeros((nrep, small_spd.shape[0]))
    for _ in range(sweeps):
        bat.sweep(X)
    for r in range(nrep):
        seq = AsyncEngine(
            _view(small_spd, "uniform:16+o4"),
            b,
            dataclasses.replace(cfg, seed=7 + r),
        )
        x = np.zeros(small_spd.shape[0])
        for _ in range(sweeps):
            seq.sweep(x)
        assert np.array_equal(X[r], x), f"replica {r} diverged from sequential"


def test_batched_ras_rejects_forced_fast_backends(small_spd):
    b = default_rhs(small_spd)
    view = _view(small_spd, "uniform:16+o4")
    with pytest.raises(ValueError, match="cannot execute async-RAS"):
        BatchedAsyncEngine(view, b, _cfg(schwarz="ras", backend="fused"), nreplicas=2)
