"""Tests for the genuinely-asynchronous threaded solver.

These tests tolerate nondeterminism by construction: they assert outcome
properties (convergence, well-posedness, accuracy), never exact histories.
"""

import numpy as np
import pytest

from repro.core.threaded import ThreadedAsyncSolver
from repro.solvers import StoppingCriterion


def test_validation():
    with pytest.raises(ValueError):
        ThreadedAsyncSolver(local_iterations=0)
    with pytest.raises(ValueError):
        ThreadedAsyncSolver(workers=0)
    with pytest.raises(ValueError):
        ThreadedAsyncSolver(block_size=0)
    with pytest.raises(ValueError):
        ThreadedAsyncSolver(omega=0.0)


def test_name():
    assert ThreadedAsyncSolver(local_iterations=3).name == "threaded-async-(3)"


def test_converges_single_worker(small_spd):
    # One worker = sequential block sweeps; deterministic-ish and safe.
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(
        local_iterations=2, block_size=10, workers=1,
        stopping=StoppingCriterion(tol=1e-10, maxiter=500),
    ).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, 1.0, atol=1e-6)


def test_converges_many_workers(small_spd):
    # Genuine races; Strikwerda guarantees convergence for the dominant
    # SPD fixture under ANY schedule — including real ones.  At toy sizes
    # the GIL slices limit how often workers exchange values, so the
    # asserted accuracy is modest (see the module docstring).
    b = small_spd.matvec(np.linspace(-1, 1, 60))
    r = ThreadedAsyncSolver(
        local_iterations=2, block_size=7, workers=6,
        stopping=StoppingCriterion(tol=1e-5, maxiter=4000),
    ).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, np.linspace(-1, 1, 60), atol=1e-2)


def test_converges_on_trefethen(trefethen_small):
    A = trefethen_small
    b = A.matvec(np.ones(A.shape[0]))
    r = ThreadedAsyncSolver(
        local_iterations=5, block_size=64, workers=4,
        stopping=StoppingCriterion(tol=1e-9, maxiter=3000),
    ).solve(A, b)
    assert r.converged


def test_worker_pass_accounting(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(
        local_iterations=1, block_size=10, workers=3,
        stopping=StoppingCriterion(tol=1e-11, maxiter=2000),
    ).solve(small_spd, b)
    passes = r.info["worker_passes"]
    assert len(passes) >= 1
    # Condition (1): every worker made progress.
    assert all(p > 0 for p in passes[: r.info["workers"]])


def test_exact_initial_guess(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(block_size=10, stopping=StoppingCriterion(tol=1e-8, maxiter=50)).solve(
        small_spd, b, x0=np.ones(60)
    )
    assert r.converged
    assert r.iterations == 0  # no threads ever started


def test_budget_exhaustion_reports_nonconverged(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(
        local_iterations=1, block_size=10, workers=2,
        stopping=StoppingCriterion(tol=1e-30, relative=False, maxiter=3),
    ).solve(small_spd, b)
    assert not r.converged
    assert r.info["worker_passes"].max() <= 3


def test_more_workers_than_blocks(small_spd):
    # 6 blocks, 16 workers: surplus workers are dropped, not deadlocked,
    # and the iteration still makes progress.
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(
        local_iterations=2, block_size=10, workers=16,
        stopping=StoppingCriterion(tol=1e-4, maxiter=2000),
    ).solve(small_spd, b)
    assert r.info["workers"] <= 6
    rel = r.relative_residuals()
    assert rel[-1] < 1e-2 * rel[0]  # progress, even if the tol wasn't hit


def test_surplus_worker_telemetry_consistent(small_spd):
    # Regression: with workers > nblocks the pass counters used to be
    # sized to the *requested* worker count, so worker_passes carried
    # phantom all-zero entries for the dropped workers — which made the
    # condition-(1) check ("every worker made progress") read as violated.
    b = small_spd.matvec(np.ones(60))
    r = ThreadedAsyncSolver(
        local_iterations=1, block_size=30, workers=8,
        stopping=StoppingCriterion(tol=1e-8, maxiter=500),
    ).solve(small_spd, b)
    passes = r.info["worker_passes"]
    assert r.info["workers"] == 2  # 60 rows / 30 = 2 blocks, 6 workers dropped
    assert len(passes) == r.info["workers"]
    assert all(p > 0 for p in passes)
