"""Tests for fault scenarios (paper §4.5)."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver, FaultScenario
from repro.solvers import StoppingCriterion


def test_scenario_validation():
    with pytest.raises(ValueError):
        FaultScenario(fraction=1.5)
    with pytest.raises(ValueError):
        FaultScenario(t0=-1)
    with pytest.raises(ValueError):
        FaultScenario(recovery=-5)


def test_labels():
    assert FaultScenario(recovery=20).label == "recover-(20)"
    assert FaultScenario(recovery=None).label == "no recovery"


def test_failed_components_count_and_determinism():
    f = FaultScenario(fraction=0.25, seed=3)
    mask = f.failed_components(100)
    assert mask.sum() == 25
    assert np.array_equal(mask, f.failed_components(100))
    g = FaultScenario(fraction=0.25, seed=4)
    assert not np.array_equal(mask, g.failed_components(100))


def test_activity_windows():
    f = FaultScenario(t0=10, recovery=20)
    assert not f.is_active(9)
    assert f.is_active(10)
    assert f.is_active(29)
    assert not f.is_active(30)
    forever = FaultScenario(t0=5, recovery=None)
    assert forever.is_active(1000)


def test_frozen_rows_none_when_inactive():
    f = FaultScenario(t0=10, recovery=5)
    assert f.frozen_rows(0, 50) is None
    assert f.frozen_rows(12, 50) is not None
    assert f.frozen_rows(15, 50) is None


def test_frozen_components_do_not_change(small_spd):
    b = small_spd.matvec(np.ones(60))
    fault = FaultScenario(fraction=0.3, t0=0, recovery=None, seed=2)
    solver = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1),
        fault=fault,
        stopping=StoppingCriterion(tol=0.0, maxiter=10),
    )
    r = solver.solve(small_spd, b)
    mask = fault.failed_components(60)
    # From a zero initial guess, failed components stay exactly zero.
    assert np.all(r.x[mask] == 0.0)
    assert not np.all(r.x[~mask] == 0.0)


def test_no_recovery_stagnates(small_spd):
    b = small_spd.matvec(np.ones(60))
    fault = FaultScenario(fraction=0.25, t0=3, recovery=None, seed=2)
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1),
        fault=fault,
        stopping=StoppingCriterion(tol=1e-13, maxiter=300),
    ).solve(small_spd, b)
    assert not r.converged
    # Residual plateau: the last 100 iterations barely move.
    assert r.residuals[-1] > 0.5 * r.residuals[-100]


def test_recovery_restores_no_failure_solution(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-12, maxiter=500)
    clean = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1), stopping=stop
    ).solve(small_spd, b)
    recovered = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=1),
        fault=FaultScenario(fraction=0.25, t0=3, recovery=10, seed=2),
        stopping=stop,
    ).solve(small_spd, b)
    assert recovered.converged
    assert np.allclose(recovered.x, clean.x, atol=1e-7)
    # ... with some delay.
    assert recovered.iterations >= clean.iterations


def test_delay_grows_with_recovery_time(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-12, maxiter=800)
    iters = []
    for rec in (5, 20, 40):
        r = BlockAsyncSolver(
            AsyncConfig(local_iterations=2, block_size=10, seed=1),
            fault=FaultScenario(fraction=0.25, t0=3, recovery=rec, seed=2),
            stopping=stop,
        ).solve(small_spd, b)
        assert r.converged
        iters.append(r.iterations)
    assert iters[0] < iters[1] < iters[2]


def test_fault_label_in_result_info(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = BlockAsyncSolver(
        AsyncConfig(block_size=10),
        fault=FaultScenario(recovery=15),
        stopping=StoppingCriterion(tol=0.0, maxiter=2),
    ).solve(small_spd, b)
    assert r.info["fault"] == "recover-(15)"
