"""Tests for AsyncConfig and the wave scheduler."""

import numpy as np
import pytest

from repro._util import as_rng
from repro.core import AsyncConfig, UPDATE_ORDERS, WaveScheduler


def scheduler(order="gpu", nblocks=20, **kw):
    cfg = AsyncConfig(order=order, **kw)
    return WaveScheduler(nblocks, cfg, as_rng(cfg.seed)), cfg


# --------------------------------------------------------------------- #
# AsyncConfig validation
# --------------------------------------------------------------------- #


def test_config_defaults():
    cfg = AsyncConfig()
    assert cfg.local_iterations == 1
    assert cfg.order == "gpu"
    assert cfg.method_name == "async-(1)"


def test_method_name():
    assert AsyncConfig(local_iterations=5).method_name == "async-(5)"


@pytest.mark.parametrize(
    "kw",
    [
        dict(local_iterations=0),
        dict(block_size=0),
        dict(order="chaotic"),
        dict(concurrency=0),
        dict(stale_read_prob=1.5),
        dict(deferred_write_prob=-0.1),
        dict(omega=0.0),
        dict(pattern_pool=0),
        dict(jitter_swaps=-1),
        dict(backend="cuda"),
        dict(schwarz="as"),
        # The partition spec is validated at config construction, so a
        # typo is caught where it is written, not at first solve.
        dict(partition=""),
        dict(partition="zigzag"),
        dict(partition="uniform:abc"),
        dict(partition="uniform: 4"),
        dict(partition="uniform:4+o"),
        dict(partition="uniform:4+x2"),
    ],
)
def test_config_validation(kw):
    with pytest.raises(ValueError):
        AsyncConfig(**kw)


def test_config_schwarz_overlap_and_method_name():
    assert AsyncConfig().schwarz_overlap == 0
    assert AsyncConfig(partition="uniform:16+o4").schwarz_overlap == 0  # no mode
    cfg = AsyncConfig(partition="uniform:16+o4", schwarz="ras", local_iterations=2)
    assert cfg.schwarz_overlap == 4
    assert cfg.method_name == "async-RAS(2,o4)"
    # Mode requested on a disjoint partition: inert, and named as such.
    inert = AsyncConfig(partition="uniform:16", schwarz="ras", local_iterations=2)
    assert inert.schwarz_overlap == 0
    assert inert.method_name == "async-(2)"


def test_update_orders_registry():
    assert set(UPDATE_ORDERS) == {"synchronous", "sequential", "reversed", "random", "gpu"}


# --------------------------------------------------------------------- #
# ordering
# --------------------------------------------------------------------- #


def test_order_every_block_exactly_once_every_sweep():
    for order in UPDATE_ORDERS:
        sched, cfg = scheduler(order=order)
        rng = as_rng(1)
        for sweep in range(5):
            o = sched.order_for_sweep(sweep, rng)
            assert sorted(o.tolist()) == list(range(20)), order


def test_sequential_and_reversed():
    s_seq, _ = scheduler("sequential")
    s_rev, _ = scheduler("reversed")
    rng = as_rng(0)
    assert s_seq.order_for_sweep(0, rng).tolist() == list(range(20))
    assert s_rev.order_for_sweep(0, rng).tolist() == list(range(19, -1, -1))


def test_gpu_recurring_pattern_pool():
    sched, cfg = scheduler("gpu", pattern_pool=3, jitter_swaps=0)
    rng = as_rng(9)
    o0 = sched.order_for_sweep(0, rng)
    o3 = sched.order_for_sweep(3, rng)  # same pattern slot (3 % 3 == 0)
    assert np.array_equal(o0, o3)
    o1 = sched.order_for_sweep(1, rng)
    assert not np.array_equal(o0, o1)


def test_gpu_jitter_perturbs():
    cfg = AsyncConfig(order="gpu", pattern_pool=1, jitter_swaps=3)
    sched = WaveScheduler(50, cfg, as_rng(0))
    rng = as_rng(1)
    o0 = sched.order_for_sweep(0, rng)
    o1 = sched.order_for_sweep(1, rng)  # same pattern, fresh jitter
    assert sorted(o0.tolist()) == sorted(o1.tolist())
    assert not np.array_equal(o0, o1)


def test_random_order_varies():
    sched, _ = scheduler("random")
    rng = as_rng(2)
    assert not np.array_equal(sched.order_for_sweep(0, rng), sched.order_for_sweep(1, rng))


def test_different_seeds_different_patterns():
    cfg = AsyncConfig(order="gpu", jitter_swaps=0, pattern_pool=1)
    s1 = WaveScheduler(30, cfg, as_rng(1))
    s2 = WaveScheduler(30, cfg, as_rng(2))
    assert not np.array_equal(s1.order_for_sweep(0, as_rng(0)), s2.order_for_sweep(0, as_rng(0)))


# --------------------------------------------------------------------- #
# staleness / gamma plans
# --------------------------------------------------------------------- #


def test_synchronous_gamma_all_zero():
    sched, _ = scheduler("synchronous")
    _, gamma = sched.plan_for_sweep(0, as_rng(0))
    assert np.all(gamma == 0.0)


def test_gpu_gamma_resident_rate():
    sched, _ = scheduler("gpu", nblocks=10, concurrency=10)
    _, gamma = sched.plan_for_sweep(0, as_rng(0))
    assert np.allclose(gamma, 1.0 - sched.GPU_STALENESS_CAP)


def test_pipeline_tail_reads_live():
    sched, _ = scheduler("gpu", nblocks=10, concurrency=4)
    _, gamma = sched.plan_for_sweep(0, as_rng(0))
    assert np.all(gamma[4:] == 1.0)
    assert np.all(gamma[:4] < 1.0)


def test_sequential_fully_fresh_tail_only():
    sched, _ = scheduler("sequential", nblocks=8, concurrency=2)
    _, gamma = sched.plan_for_sweep(0, as_rng(0))
    # Resident window stale (sequential derives staleness 1), tail live.
    assert np.all(gamma[:2] == 0.0)
    assert np.all(gamma[2:] == 1.0)


def test_explicit_stale_read_prob_override():
    sched, _ = scheduler("gpu", nblocks=10, stale_read_prob=0.7)
    assert np.isclose(sched.effective_stale_prob(), 0.7)


def test_concurrency_clamped_to_nblocks():
    sched, _ = scheduler("gpu", nblocks=5, concurrency=100)
    assert sched.concurrency == 5


def test_staleness_bound_condition2():
    sched, _ = scheduler("gpu")
    assert sched.staleness_bound() <= 2


def test_waves_partition_blocks():
    sched, _ = scheduler("gpu", nblocks=10, concurrency=3)
    waves = sched.waves(0, as_rng(0))
    flat = np.concatenate(waves)
    assert sorted(flat.tolist()) == list(range(10))
    assert all(len(w) <= 3 for w in waves)


def test_invalid_nblocks():
    with pytest.raises(ValueError, match="nblocks"):
        WaveScheduler(0, AsyncConfig(), as_rng(0))
