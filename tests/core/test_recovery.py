"""Tests for the self-healing solver (detect → localize → heal)."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver, FaultScenario, SelfHealingSolver
from repro.solvers import StoppingCriterion


def make_fault(**kw):
    defaults = dict(fraction=0.15, t0=12, recovery=None, kind="silent", clustered=True, seed=9)
    defaults.update(kw)
    return FaultScenario(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        SelfHealingSolver(suspects_per_alert=0)
    with pytest.raises(ValueError):
        SelfHealingSolver(heal_cooldown=-1)


def test_heals_through_silent_fault(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    fault = make_fault()
    stop = StoppingCriterion(tol=1e-10, maxiter=400)

    plain = BlockAsyncSolver(cfg, fault=make_fault(), stopping=stop).solve(small_spd, b)
    assert not plain.converged  # the fault defeats the unprotected solver

    healed = SelfHealingSolver(cfg, fault=make_fault(), stopping=stop).solve(small_spd, b)
    assert healed.converged
    assert np.allclose(healed.x, 1.0, atol=1e-6)
    assert healed.info["heals"]  # at least one heal happened


def test_heals_through_freeze_fault(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    fault = make_fault(kind="freeze")
    stop = StoppingCriterion(tol=1e-10, maxiter=400)
    healed = SelfHealingSolver(cfg, fault=fault, stopping=stop).solve(small_spd, b)
    assert healed.converged


def test_no_fault_no_heals(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    r = SelfHealingSolver(cfg, stopping=StoppingCriterion(tol=1e-10, maxiter=300)).solve(
        small_spd, b
    )
    assert r.converged
    assert r.info["heals"] == []


def test_heal_log_structure(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    r = SelfHealingSolver(
        cfg, fault=make_fault(), stopping=StoppingCriterion(tol=1e-10, maxiter=400)
    ).solve(small_spd, b)
    for heal in r.info["heals"]:
        assert set(heal) == {"sweep", "reason", "blocks"}
        assert heal["sweep"] > 12  # after the injection
        assert all(0 <= blk < 6 for blk in heal["blocks"])


def test_engine_heal_rows_exempts_from_fault(small_spd):
    from repro.core.engine import AsyncEngine
    from repro.sparse import BlockRowView

    b = small_spd.matvec(np.ones(60))
    fault = FaultScenario(fraction=0.2, t0=0, recovery=None, kind="freeze", clustered=True, seed=3)
    view = BlockRowView(small_spd, block_size=10)
    engine = AsyncEngine(view, b, AsyncConfig(local_iterations=1, block_size=10, seed=1), fault=fault)
    mask = fault.failed_components(60)
    x = np.zeros(60)
    x = engine.sweep(x)
    assert np.all(x[mask] == 0.0)  # frozen from the start
    engine.heal_rows(np.flatnonzero(mask))
    x = engine.sweep(x)
    assert not np.all(x[mask] == 0.0)  # healed rows update again
