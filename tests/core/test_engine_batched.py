"""BatchedAsyncEngine: bitwise equivalence with the sequential engine.

The batched engine's whole contract is that replica *r* reproduces, bit for
bit, the iterates the sequential :class:`AsyncEngine` produces for seed
``seed0 + r`` — batching is an execution strategy, not an approximation.
These tests drive both engines over every scheduling regime (orders,
staleness, deferred writes, pipeline tails, relaxation) and compare raw
iterates with ``np.array_equal``.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    AsyncConfig,
    AsyncEngine,
    BatchedAsyncEngine,
    replica_rngs,
)
from repro.sparse import BlockRowView


def _sequential_iterates(A, b, config, seed, sweeps):
    view = BlockRowView(A, block_size=config.block_size)
    engine = AsyncEngine(view, b, dataclasses.replace(config, seed=seed))
    x = np.zeros(A.shape[0])
    out = []
    for _ in range(sweeps):
        engine.sweep(x)
        out.append(x.copy())
    return out


def _batched_iterates(A, b, config, nreplicas, sweeps, seed0):
    view = BlockRowView(A, block_size=config.block_size)
    engine = BatchedAsyncEngine(view, b, config, nreplicas, seed0=seed0)
    X = np.zeros((nreplicas, A.shape[0]))
    out = []
    for _ in range(sweeps):
        engine.sweep(X)
        out.append(X.copy())
    return out


def _rhs(A):
    return np.random.default_rng(1).standard_normal(A.shape[0])


def assert_batched_equivalent(A, b, config, *, nreplicas=4, sweeps=4, seed0=3):
    batched = _batched_iterates(A, b, config, nreplicas, sweeps, seed0)
    for r in range(nreplicas):
        seq = _sequential_iterates(A, b, config, seed0 + r, sweeps)
        for t in range(sweeps):
            assert np.array_equal(batched[t][r], seq[t]), (
                f"replica {r} diverged from sequential at sweep {t + 1}"
            )


#: One config per scheduling regime the engine distinguishes.
REGIMES = {
    "gpu-k1": AsyncConfig(order="gpu", local_iterations=1, block_size=32),
    "gpu-k5": AsyncConfig(order="gpu", local_iterations=5, block_size=32),
    "random-k2": AsyncConfig(order="random", local_iterations=2, block_size=32),
    "synchronous": AsyncConfig(order="synchronous", local_iterations=2, block_size=32),
    "deferred-writes": AsyncConfig(
        order="gpu", local_iterations=2, block_size=32, deferred_write_prob=0.3
    ),
    "pipeline-tail": AsyncConfig(
        order="sequential", local_iterations=1, block_size=32, concurrency=2
    ),
    "gpu-tail": AsyncConfig(
        order="gpu", local_iterations=2, block_size=32, concurrency=4
    ),
    "omega-defer": AsyncConfig(
        order="gpu", local_iterations=2, block_size=32, omega=0.9,
        deferred_write_prob=0.2,
    ),
    "live-reads": AsyncConfig(order="sequential", local_iterations=1, block_size=32),
    "stale-override": AsyncConfig(
        order="gpu", local_iterations=1, block_size=32, stale_read_prob=0.5
    ),
    "shared-order-races": AsyncConfig(
        order="sequential", local_iterations=2, block_size=32, stale_read_prob=0.5
    ),
    # All-deferred writes: the whole-sweep collapse engages (mixed γ and
    # live γ flavours) — fused-exact regimes of repro.perf.
    "all-deferred-mixed": AsyncConfig(
        order="gpu", local_iterations=2, block_size=32, deferred_write_prob=1.0
    ),
    "all-deferred-live": AsyncConfig(
        order="sequential", local_iterations=2, block_size=32, stale_read_prob=0.0,
        deferred_write_prob=1.0,
    ),
    "all-deferred-reference": AsyncConfig(
        order="gpu", local_iterations=2, block_size=32, deferred_write_prob=1.0,
        backend="reference",
    ),
}


@pytest.mark.parametrize("regime", sorted(REGIMES), ids=sorted(REGIMES))
def test_batched_matches_sequential_trefethen(trefethen_small, regime):
    cfg = REGIMES[regime]
    assert_batched_equivalent(trefethen_small, _rhs(trefethen_small), cfg)


@pytest.mark.parametrize("k", [1, 5])
def test_batched_matches_sequential_fv1(fv1, k):
    cfg = AsyncConfig(order="gpu", local_iterations=k, block_size=448)
    assert_batched_equivalent(fv1, _rhs(fv1), cfg, nreplicas=3, sweeps=3)


@pytest.mark.parametrize("fuse_min", [1, 1 << 30], ids=["rectangular", "fused"])
def test_fused_and_rectangular_paths_agree(trefethen_small, monkeypatch, fuse_min):
    # The per-position update has two kernel strategies — rectangular
    # per-block groups and the fused concatenated padded-ELL path; forcing
    # each in turn must still reproduce the sequential engine exactly.
    monkeypatch.setattr(BatchedAsyncEngine, "_FUSE_MIN", fuse_min)
    cfg = AsyncConfig(order="gpu", local_iterations=2, block_size=32)
    assert_batched_equivalent(trefethen_small, _rhs(trefethen_small), cfg)


def test_batched_replica_subset_freezes_rows(trefethen_small):
    # Sweeping only a subset of replicas must not touch (or consume RNG
    # for) the others, matching sequential runs that stopped early.
    A = trefethen_small
    b = _rhs(A)
    cfg = AsyncConfig(order="gpu", local_iterations=2, block_size=32)
    view = BlockRowView(A, block_size=cfg.block_size)
    engine = BatchedAsyncEngine(view, b, cfg, 3, seed0=0)
    X = np.zeros((3, A.shape[0]))
    engine.sweep(X)
    frozen = X[1].copy()
    engine.sweep(X, replicas=np.array([0, 2]))
    assert np.array_equal(X[1], frozen)
    # Replicas 0 and 2 still track their sequential runs.
    for r in (0, 2):
        seq = _sequential_iterates(A, b, cfg, r, 2)
        assert np.array_equal(X[r], seq[1])


def test_batched_update_counts(trefethen_small):
    cfg = AsyncConfig(order="gpu", local_iterations=1, block_size=32)
    view = BlockRowView(trefethen_small, block_size=cfg.block_size)
    engine = BatchedAsyncEngine(view, _rhs(trefethen_small), cfg, 2, seed0=0)
    X = np.zeros((2, trefethen_small.shape[0]))
    engine.sweep(X)
    engine.sweep(X, replicas=np.array([1]))
    assert engine.update_counts[0].tolist() == [1] * view.nblocks
    assert engine.update_counts[1].tolist() == [2] * view.nblocks
    assert engine.min_updates() == 1
    assert engine.staleness_bound() == 2


def test_batched_rejects_bad_shape(trefethen_small):
    cfg = AsyncConfig(block_size=32)
    view = BlockRowView(trefethen_small, block_size=32)
    engine = BatchedAsyncEngine(view, _rhs(trefethen_small), cfg, 2)
    with pytest.raises(ValueError, match="shape"):
        engine.sweep(np.zeros((3, trefethen_small.shape[0])))


def test_replica_rngs_match_sequential_seeds():
    streams = replica_rngs(10, 3)
    for r, rng in enumerate(streams):
        expected = np.random.default_rng(10 + r).random(5)
        assert np.array_equal(rng.random(5), expected)
    with pytest.raises(ValueError):
        replica_rngs(0, 0)


def test_local_jacobi_sweeps_multivector_bitwise(small_spd):
    # The shared inner kernel: an (R, bs) multi-vector advance must equal R
    # separate 1-D calls bit for bit.
    from repro.solvers.block_jacobi import local_jacobi_sweeps

    view = BlockRowView(small_spd, block_size=20)
    blk = view.blocks[1]
    gen = np.random.default_rng(5)
    S = gen.standard_normal((4, blk.nrows))
    Z = gen.standard_normal((4, blk.nrows))
    for omega in (1.0, 0.8):
        batched = local_jacobi_sweeps(
            blk.local_off_compressed(), blk.diag, S, Z, 3, omega=omega
        )
        for r in range(4):
            single = local_jacobi_sweeps(
                blk.local_off_compressed(), blk.diag, S[r], Z[r], 3, omega=omega
            )
            assert np.array_equal(batched[r], single)


# --------------------------------------------------------------------- #
# Multi-rhs batching: R independent requests on one matrix (repro.serve)


def _multi_rhs(A, R):
    gen = np.random.default_rng(7)
    return np.stack([A.matvec(gen.standard_normal(A.shape[0])) for _ in range(R)])


@pytest.mark.parametrize(
    "regime", ["gpu-k5", "random-k2", "synchronous", "deferred-writes", "live-reads"]
)
def test_multi_rhs_matches_per_request_sequential(trefethen_small, regime):
    # Replica r of a multi-rhs batch must be bitwise the sequential engine
    # solving (A, b_r) alone with replica r's seed — the exactness the
    # serving layer's admission batching relies on.
    A = trefethen_small
    cfg = REGIMES[regime]
    R, sweeps = 3, 4
    B = _multi_rhs(A, R)
    seeds = [11, 2, 29]
    view = BlockRowView(A, block_size=cfg.block_size)
    engine = BatchedAsyncEngine(view, B, cfg, R, seeds=seeds)
    X = np.zeros((R, A.shape[0]))
    batched = []
    for _ in range(sweeps):
        engine.sweep(X)
        batched.append(X.copy())
    for r in range(R):
        seq = _sequential_iterates(A, B[r], cfg, seeds[r], sweeps)
        for t in range(sweeps):
            assert np.array_equal(batched[t][r], seq[t]), (
                f"multi-rhs replica {r} diverged from sequential at sweep {t + 1}"
            )


def test_multi_rhs_run_matches_per_request_runs(trefethen_small):
    # Full run(): per-replica ||b_r||-relative stopping, histories and
    # final iterates must all match R independent sequential runs.
    from repro.runtime import StoppingCriterion

    A = trefethen_small
    cfg = AsyncConfig(order="gpu", local_iterations=3, block_size=32)
    st = StoppingCriterion(tol=1e-9, maxiter=300)
    R = 3
    B = _multi_rhs(A, R)
    seeds = [4, 0, 17]
    view = BlockRowView(A, block_size=cfg.block_size)
    out = BatchedAsyncEngine(view, B, cfg, R, seeds=seeds).run(stopping=st)
    for r in range(R):
        seq_view = BlockRowView(A, block_size=cfg.block_size)
        seq = AsyncEngine(
            seq_view, B[r], dataclasses.replace(cfg, seed=seeds[r])
        ).run(stopping=st)
        assert bool(out.converged[r]) == seq.converged
        assert np.array_equal(out.X[r], seq.x)
        assert np.array_equal(out.histories[r], seq.residuals)


def test_multi_rhs_shape_and_seeds_validation(trefethen_small):
    A = trefethen_small
    cfg = AsyncConfig(block_size=32)
    view = BlockRowView(A, block_size=32)
    with pytest.raises(ValueError, match="multi-rhs"):
        BatchedAsyncEngine(view, np.zeros((3, A.shape[0])), cfg, 2)
    with pytest.raises(ValueError, match="seeds"):
        BatchedAsyncEngine(view, _rhs(A), cfg, 2, seeds=[1, 2, 3])


def test_seeds_override_matches_seed0_arithmetic(trefethen_small):
    # seeds=[s0, s0+1, ...] must be bitwise the seed0=s0 default.
    A = trefethen_small
    b = _rhs(A)
    cfg = AsyncConfig(order="gpu", local_iterations=2, block_size=32)
    view = BlockRowView(A, block_size=32)
    e1 = BatchedAsyncEngine(view, b, cfg, 3, seed0=5)
    e2 = BatchedAsyncEngine(view, b, cfg, 3, seeds=[5, 6, 7])
    X1 = np.zeros((3, A.shape[0]))
    X2 = np.zeros((3, A.shape[0]))
    for _ in range(3):
        e1.sweep(X1)
        e2.sweep(X2)
    assert np.array_equal(X1, X2)
