"""Backend dispatch and fused-sweep exactness (:mod:`repro.perf`).

Backends are execution strategies, never approximations: wherever the
fused whole-system path may run, its iterates — and the scheduler RNG
state it leaves behind — are bitwise the reference loop's.  These tests
pin that contract across every engaging regime (orders, k, ω, deferred
writes), the dispatch rules of ``AsyncConfig.backend``, and the
compile-once guarantee of the shared sweep plan.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig, AsyncEngine, FaultScenario
from repro.perf import (
    BACKENDS,
    FusedSweepExecutor,
    ReferenceSweepExecutor,
    compile_sweep_plan,
    rhs_preserves_fold,
)
from repro.sparse import BlockRowView


def _rhs(A):
    return np.random.default_rng(2).standard_normal(A.shape[0])


def _run(A, b, config, *, sweeps=4, seed=0, fault=None):
    """Iterates after each sweep plus an RNG-state probe, for one backend."""
    view = BlockRowView(A, block_size=config.block_size)
    engine = AsyncEngine(view, b, dataclasses.replace(config, seed=seed), fault=fault)
    x = np.zeros(A.shape[0])
    iterates = []
    for _ in range(sweeps):
        engine.sweep(x)
        iterates.append(x.copy())
    # Equal post-run draws == equal generator state: the fused path must
    # consume exactly the doubles the reference loop would have.
    probe = engine.rng.random(8)
    return engine, iterates, probe


#: Every regime in which the fused path engages, spanning order, k, ω and
#: deferred writes (the ISSUE acceptance matrix).
ENGAGING = {
    "synchronous-k1": AsyncConfig(order="synchronous", local_iterations=1, block_size=32),
    "synchronous-k5-omega": AsyncConfig(
        order="synchronous", local_iterations=5, omega=0.8, block_size=32
    ),
    "snapshot-gpu-k1": AsyncConfig(
        order="gpu", stale_read_prob=1.0, local_iterations=1, block_size=32
    ),
    "snapshot-gpu-k5": AsyncConfig(
        order="gpu", stale_read_prob=1.0, local_iterations=5, block_size=32
    ),
    "snapshot-random-k2-omega": AsyncConfig(
        order="random", stale_read_prob=1.0, local_iterations=2, omega=0.9, block_size=32
    ),
    "alldefer-mixed-k2": AsyncConfig(
        order="gpu", deferred_write_prob=1.0, local_iterations=2, block_size=32
    ),
    "alldefer-live-k1": AsyncConfig(
        order="sequential", stale_read_prob=0.0, deferred_write_prob=1.0,
        local_iterations=1, block_size=32,
    ),
    "alldefer-omega-k5": AsyncConfig(
        order="gpu", deferred_write_prob=1.0, local_iterations=5, omega=0.85, block_size=32
    ),
}

#: Regimes where fusion would change the iterates (current-sweep reads are
#: observable), so auto must pick the reference loop.
NON_ENGAGING = {
    "gpu-default": AsyncConfig(order="gpu", local_iterations=2, block_size=32),
    "live-reads": AsyncConfig(
        order="sequential", stale_read_prob=0.0, local_iterations=1, block_size=32
    ),
    "partial-stale": AsyncConfig(
        order="gpu", stale_read_prob=0.5, local_iterations=1, block_size=32
    ),
    "partial-defer": AsyncConfig(
        order="gpu", deferred_write_prob=0.3, local_iterations=2, block_size=32
    ),
    "pipeline-tail": AsyncConfig(
        order="gpu", stale_read_prob=1.0, local_iterations=1, block_size=32, concurrency=2
    ),
}


@pytest.mark.parametrize("regime", sorted(ENGAGING), ids=sorted(ENGAGING))
def test_fused_bitwise_matches_reference(trefethen_small, regime):
    A = trefethen_small
    b = _rhs(A)
    cfg = ENGAGING[regime]
    eng_f, iters_f, probe_f = _run(A, b, dataclasses.replace(cfg, backend="fused"))
    eng_r, iters_r, probe_r = _run(A, b, dataclasses.replace(cfg, backend="reference"))
    assert eng_f.backend == "fused" and eng_r.backend == "reference"
    assert isinstance(eng_f._executor, FusedSweepExecutor)
    assert isinstance(eng_r._executor, ReferenceSweepExecutor)
    for t, (xf, xr) in enumerate(zip(iters_f, iters_r)):
        assert np.array_equal(xf, xr), f"backends diverged at sweep {t + 1}"
    assert np.array_equal(probe_f, probe_r), "generator states diverged"


@pytest.mark.parametrize("regime", sorted(ENGAGING), ids=sorted(ENGAGING))
def test_auto_engages_fused(trefethen_small, regime):
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), ENGAGING[regime], sweeps=1)
    assert eng.backend == "fused"


@pytest.mark.parametrize("regime", sorted(NON_ENGAGING), ids=sorted(NON_ENGAGING))
def test_auto_falls_back_to_reference(trefethen_small, regime):
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), NON_ENGAGING[regime], sweeps=1)
    assert eng.backend == "reference"


@pytest.mark.parametrize("regime", sorted(NON_ENGAGING), ids=sorted(NON_ENGAGING))
def test_forced_fused_refuses_inexact_regime(trefethen_small, regime):
    cfg = dataclasses.replace(NON_ENGAGING[regime], backend="fused")
    view = BlockRowView(trefethen_small, block_size=cfg.block_size)
    with pytest.raises(ValueError, match="not exact"):
        AsyncEngine(view, _rhs(trefethen_small), cfg)


def test_forced_reference_honoured_in_engaging_regime(trefethen_small):
    cfg = dataclasses.replace(ENGAGING["synchronous-k1"], backend="reference")
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), cfg, sweeps=1)
    assert eng.backend == "reference"


def test_fault_forces_reference(trefethen_small):
    # Faulty components need the per-block loop's freeze/corrupt logic
    # even in an otherwise fused-exact regime.
    fault = FaultScenario(fraction=0.2, t0=1, recovery=None, seed=3)
    cfg = ENGAGING["synchronous-k1"]
    eng, _, _ = _run(trefethen_small, _rhs(trefethen_small), cfg, sweeps=2, fault=fault)
    assert eng.backend == "reference"
    view = BlockRowView(trefethen_small, block_size=cfg.block_size)
    with pytest.raises(ValueError, match="not exact"):
        AsyncEngine(
            view,
            _rhs(trefethen_small),
            dataclasses.replace(cfg, backend="fused"),
            fault=fault,
        )


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        AsyncConfig(backend="turbo")
    for name in BACKENDS:
        AsyncConfig(backend=name)


def test_negative_zero_rhs_disables_mixed_gamma_fusion(trefethen_small):
    # The segment-sum scatter flips a -0.0 base to +0.0; with a rhs
    # carrying -0.0 entries the mixed-γ all-deferred collapse is no longer
    # bitwise, so auto must drop to the reference loop there — while the
    # γ-uniform all-deferred regime stays fused (no race corrections at all).
    b = _rhs(trefethen_small)
    b[5] = -0.0
    assert not rhs_preserves_fold(b)
    assert rhs_preserves_fold(np.abs(b) + 1.0)
    mixed = ENGAGING["alldefer-mixed-k2"]
    eng, _, _ = _run(trefethen_small, b, mixed, sweeps=1)
    assert eng.backend == "reference"
    live = ENGAGING["alldefer-live-k1"]
    eng, _, _ = _run(trefethen_small, b, live, sweeps=1)
    assert eng.backend == "fused"


# --------------------------------------------------------------------- #
# plan compilation and reuse
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["fused", "reference"])
def test_ell_plans_built_once_across_sweeps(trefethen_small, backend):
    # Satellite: gather plans are compiled once per block at engine
    # construction and reused by every subsequent sweep.
    cfg = AsyncConfig(
        order="gpu", stale_read_prob=1.0, local_iterations=2, block_size=32,
        backend=backend,
    )
    view = BlockRowView(trefethen_small, block_size=cfg.block_size)
    engine = AsyncEngine(view, _rhs(trefethen_small), cfg)
    x = np.zeros(trefethen_small.shape[0])
    engine.sweep(x)
    built_after_first = engine.plan.ell_plans_built
    assert built_after_first > 0
    for _ in range(3):
        engine.sweep(x)
    assert engine.plan.ell_plans_built == built_after_first
    if backend == "reference":
        for blk, lc in zip(view.blocks, engine.plan.local_c):
            assert blk.external._ell_builds == 1
            assert lc._ell_builds == 1
    else:
        assert engine.plan.external._ell_builds == 1
        assert engine.plan.local_off._ell_builds == 1


def test_sweep_plan_shared_across_engines(trefethen_small):
    # One view, many engines (sequential reruns, preconditioner-internal
    # engines): all of them must reuse the same compiled plan object.
    view = BlockRowView(trefethen_small, block_size=32)
    b = _rhs(trefethen_small)
    e1 = AsyncEngine(view, b, AsyncConfig(order="synchronous", block_size=32))
    e2 = AsyncEngine(view, b, AsyncConfig(order="gpu", block_size=32))
    assert e1.plan is e2.plan
    assert compile_sweep_plan(view) is e1.plan
