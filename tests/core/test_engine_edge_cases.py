"""Additional engine edge-case coverage (staleness extremes, deferred
writes, fault-state refresh, multi-device + fault interactions)."""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver, FaultScenario
from repro.core.engine import AsyncEngine
from repro.gpu.multigpu import MultiDeviceEngine
from repro.solvers import StoppingCriterion
from repro.sparse import BlockRowView


def sweeps(engine, n, count):
    x = np.zeros(n)
    for _ in range(count):
        x = engine.sweep(x)
    return x


def test_stale_prob_zero_is_sequential_gs_flavor(small_spd):
    # gamma = 1 everywhere: each block reads everything live, in order.
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(
        local_iterations=1, block_size=10, order="sequential",
        concurrency=1, stale_read_prob=0.0, seed=0,
    )
    view = BlockRowView(small_spd, block_size=10)
    x = sweeps(AsyncEngine(view, b, cfg), 60, 1)
    # Block Gauss-Seidel reference.
    dense = small_spd.to_dense()
    ref = np.zeros(60)
    d = np.diag(dense)
    for k in range(6):
        rows = slice(10 * k, 10 * (k + 1))
        s = b[rows] - dense[rows] @ ref + d[rows] * ref[rows]
        ref[rows] = s / d[rows]
    assert np.allclose(x, ref, atol=1e-12)


def test_deferred_write_prob_partial(small_spd):
    # 0 < p < 1 must still produce a well-defined, convergent iteration.
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, deferred_write_prob=0.5, seed=3)
    r = BlockAsyncSolver(cfg, stopping=StoppingCriterion(tol=1e-11, maxiter=500)).solve(
        small_spd, b
    )
    assert r.converged
    assert np.allclose(r.x, 1.0, atol=1e-7)


def test_fault_state_refresh_on_recovery(small_spd):
    # The engine rebuilds its frozen-row cache when the mask switches
    # on/off; verify via update behaviour before/at/after recovery.
    b = small_spd.matvec(np.ones(60))
    fault = FaultScenario(fraction=0.3, t0=2, recovery=3, seed=4)
    cfg = AsyncConfig(local_iterations=1, block_size=10, seed=0)
    view = BlockRowView(small_spd, block_size=10)
    engine = AsyncEngine(view, b, cfg, fault=fault)
    mask = fault.failed_components(60)
    x = np.zeros(60)
    x = engine.sweep(x)  # sweep 0: healthy
    assert not np.any(x[mask] == 0.0) or x[mask].size == 0
    frozen_values = None
    for _ in range(3):  # sweeps 1..3; fault active at 2, 3, 4? (t0=2, tr=3)
        x = engine.sweep(x)
    frozen_values = x[mask].copy()
    x = engine.sweep(x)  # sweep 4: still active (t0=2..t0+3)
    assert np.array_equal(x[mask], frozen_values)
    x = engine.sweep(x)  # sweep 5: recovered
    assert not np.array_equal(x[mask], frozen_values)


def test_engine_with_explicit_boundaries(small_spd):
    b = small_spd.matvec(np.ones(60))
    view = BlockRowView(small_spd, boundaries=[0, 13, 30, 60])
    cfg = AsyncConfig(local_iterations=2, block_size=20, seed=1)
    engine = AsyncEngine(view, b, cfg)
    x = sweeps(engine, 60, 120)
    assert np.allclose(x, 1.0, atol=1e-8)
    assert len(engine.update_counts) == 3


def test_multidevice_with_fault(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, seed=1)
    view = BlockRowView(small_spd, block_size=10)
    fault = FaultScenario(fraction=0.25, t0=3, recovery=None, seed=2)
    engine = MultiDeviceEngine(view, b, cfg, 2, fault=fault)
    x = sweeps(engine, 60, 80)
    mask = fault.failed_components(60)
    res = np.linalg.norm(small_spd.residual(x, b))
    assert res > 1e-6  # stagnates, same as single-device
    assert np.allclose(x[~mask], 1.0, atol=0.2)  # healthy part keeps moving


def test_silent_fault_in_multidevice(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=1, block_size=10, seed=1)
    view = BlockRowView(small_spd, block_size=10)
    fault = FaultScenario(fraction=0.2, t0=2, recovery=None, kind="silent", seed=2)
    engine = MultiDeviceEngine(view, b, cfg, 2, fault=fault)
    x = sweeps(engine, 60, 60)
    assert np.linalg.norm(small_spd.residual(x, b)) > 1e-8


def test_omega_below_one_still_converges(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=1, block_size=10, omega=0.6, seed=0)
    r = BlockAsyncSolver(cfg, stopping=StoppingCriterion(tol=1e-10, maxiter=2000)).solve(
        small_spd, b
    )
    assert r.converged


def test_single_block_system(small_spd):
    # One block spanning the whole system: pure (local) Jacobi.
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=3, block_size=60, seed=0)
    r = BlockAsyncSolver(cfg, stopping=StoppingCriterion(tol=1e-10, maxiter=500)).solve(
        small_spd, b
    )
    assert r.converged
    assert r.info["nblocks"] == 1
