"""Tests for the asynchronous execution engine."""

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.core.engine import AsyncEngine
from repro.solvers import JacobiSolver, StoppingCriterion
from repro.sparse import BlockRowView


def make_engine(A, b, **kw):
    cfg = AsyncConfig(**kw)
    view = BlockRowView(A, block_size=cfg.block_size)
    return AsyncEngine(view, b, cfg), view


def test_synchronous_sweep_is_exact_jacobi(small_spd):
    # The engine's zero-asynchronism limit must be bit-comparable to Jacobi.
    b = small_spd.matvec(np.ones(60))
    engine, _ = make_engine(small_spd, b, order="synchronous", block_size=7)
    x = np.zeros(60)
    for _ in range(15):
        x = engine.sweep(x)
    ref = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=15)).solve(small_spd, b)
    assert np.allclose(x, ref.x, atol=1e-13)


def test_sequential_fresh_is_block_gauss_seidel(small_spd):
    # order="sequential" with concurrency 1: every block reads live memory,
    # which is exactly block Gauss-Seidel with (k=1) Jacobi inside blocks.
    b = small_spd.matvec(np.ones(60))
    engine, view = make_engine(
        small_spd, b, order="sequential", block_size=10, concurrency=1, stale_read_prob=0.0
    )
    x = engine.sweep(np.zeros(60))
    # Dense reference: process blocks in order, Jacobi update per block.
    dense = small_spd.to_dense()
    ref = np.zeros(60)
    for k in range(6):
        rows = slice(10 * k, 10 * (k + 1))
        sub = dense[rows]
        d = np.diag(dense)[rows]
        s = b[rows] - sub @ ref + d * ref[rows]
        ref[rows] = s / d
    assert np.allclose(x, ref, atol=1e-12)


def test_local_iterations_applied(small_spd):
    # k=2 with a single all-covering block is two Jacobi iterations with
    # frozen (empty) off-block part -> matches two damped-free Jacobi steps
    # against constant s = b.
    b = small_spd.matvec(np.ones(60))
    engine, _ = make_engine(small_spd, b, order="synchronous", block_size=60, local_iterations=2)
    x = engine.sweep(np.zeros(60))
    dense = small_spd.to_dense()
    d = np.diag(dense)
    ref = np.zeros(60)
    for _ in range(2):
        ref = (b - (dense - np.diag(d)) @ ref) / d
    assert np.allclose(x, ref, atol=1e-13)


def test_update_counts(small_spd):
    b = np.ones(60)
    engine, view = make_engine(small_spd, b, block_size=13)
    x = np.zeros(60)
    for _ in range(4):
        x = engine.sweep(x)
    assert np.all(engine.update_counts == 4)
    assert engine.min_updates() == 4
    assert engine.sweep_index == 4


def test_seed_reproducibility(small_spd):
    b = small_spd.matvec(np.ones(60))

    def run(seed):
        engine, _ = make_engine(small_spd, b, block_size=9, seed=seed)
        x = np.zeros(60)
        for _ in range(10):
            x = engine.sweep(x)
        return x

    assert np.array_equal(run(3), run(3))
    assert not np.array_equal(run(3), run(4))


def test_omega_damping(small_spd):
    # omega=0.5 with synchronous order equals damped Jacobi.
    b = small_spd.matvec(np.ones(60))
    engine, _ = make_engine(small_spd, b, order="synchronous", block_size=12, omega=0.5)
    x = engine.sweep(np.zeros(60))
    ref = JacobiSolver(omega=0.5, stopping=StoppingCriterion(tol=0.0, maxiter=1)).solve(
        small_spd, b
    )
    assert np.allclose(x, ref.x, atol=1e-14)


def test_deferred_writes_visible_next_sweep(small_spd):
    # With deferred_write_prob=1 every write lands at sweep end: the sweep
    # is then independent of block order => equals the synchronous sweep.
    b = small_spd.matvec(np.ones(60))
    e1, _ = make_engine(
        small_spd, b, order="gpu", block_size=10, deferred_write_prob=1.0, stale_read_prob=1.0
    )
    e2, _ = make_engine(small_spd, b, order="synchronous", block_size=10)
    x1 = e1.sweep(np.zeros(60))
    x2 = e2.sweep(np.zeros(60))
    assert np.allclose(x1, x2, atol=1e-14)


def test_gamma_mixing_between_extremes(small_spd):
    # A gpu run's sweep outcome must lie "between" Jacobi and block-GS in
    # the sense of residual norm after one sweep (sanity, not exact).
    b = small_spd.matvec(np.ones(60))
    engine, _ = make_engine(small_spd, b, order="gpu", block_size=10, seed=5)
    x = engine.sweep(np.zeros(60))
    assert np.isfinite(x).all()


def test_b_length_validated(small_spd):
    view = BlockRowView(small_spd, block_size=10)
    with pytest.raises(ValueError):
        AsyncEngine(view, np.ones(59), AsyncConfig(block_size=10))
