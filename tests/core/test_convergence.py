"""Tests for convergence theory checks."""

import numpy as np
import pytest

from repro.core import (
    async_convergence_guaranteed,
    check_well_posedness,
    is_diagonally_dominant,
    jacobi_convergence_guaranteed,
    predicted_iterations,
)
from repro.sparse import CSRMatrix


def test_diagonal_dominance(small_spd):
    assert is_diagonally_dominant(small_spd)  # fixture is strictly dominant


def test_diagonal_dominance_weak_case():
    dense = np.array([[2.0, -2.0], [-1.0, 2.0]])
    A = CSRMatrix.from_dense(dense)
    assert not is_diagonally_dominant(A, strict=True)
    assert is_diagonally_dominant(A, strict=False)


def test_jacobi_guarantee(small_spd):
    assert jacobi_convergence_guaranteed(small_spd)


def test_jacobi_guarantee_fails_for_divergent():
    dense = np.array([[1.0, 3.0], [3.0, 1.0]])
    assert not jacobi_convergence_guaranteed(CSRMatrix.from_dense(dense))


def test_async_guarantee_strikwerda(small_spd):
    # Strict diagonal dominance implies rho(|B|) < 1.
    assert async_convergence_guaranteed(small_spd)


def test_async_guarantee_stricter_than_jacobi():
    # A matrix where Jacobi converges (rho(B) = 0.870 < 1) but Strikwerda's
    # condition fails (rho(|B|) = 1.057 > 1): alternating signs cancel in B
    # but not in |B|.  (Found by search; values rounded, margins re-checked.)
    off = np.array(
        [
            [0.0, -0.380, 0.504, -0.224],
            [-0.380, 0.0, 0.414, 0.371],
            [0.504, 0.414, 0.0, 0.186],
            [-0.224, 0.371, 0.186, 0.0],
        ]
    )
    A = CSRMatrix.from_dense(np.eye(4) - off)  # B = I - A = off, diag(A) = 1
    assert jacobi_convergence_guaranteed(A)
    assert not async_convergence_guaranteed(A)


def test_predicted_iterations_plain():
    # rho=0.5, reduce by 1e-6: ceil(log(1e-6)/log(0.5)) = 20.
    assert predicted_iterations(0.5, 1e-6) == 20


def test_predicted_iterations_local_acceleration():
    base = predicted_iterations(0.9, 1e-8)
    accel = predicted_iterations(0.9, 1e-8, local_iterations=5, local_coupling=1.0)
    none = predicted_iterations(0.9, 1e-8, local_iterations=5, local_coupling=0.0)
    assert accel < base
    assert none == base  # diagonal local blocks: no gain (Chem97ZtZ case)


def test_predicted_iterations_validation():
    with pytest.raises(ValueError):
        predicted_iterations(1.0, 1e-6)
    with pytest.raises(ValueError):
        predicted_iterations(0.5, 2.0)
    with pytest.raises(ValueError):
        predicted_iterations(0.5, 1e-6, local_iterations=0)
    with pytest.raises(ValueError):
        predicted_iterations(0.5, 1e-6, local_coupling=2.0)


def test_well_posedness_conditions():
    counts = np.array([5, 5, 5])
    assert check_well_posedness(counts, sweeps=5, staleness_bound=2)
    # A starved block breaks condition (1).
    assert not check_well_posedness(np.array([5, 2, 5]), sweeps=5, staleness_bound=2)
    # An unbounded shift breaks condition (2).
    assert not check_well_posedness(counts, sweeps=5, staleness_bound=10)
    assert check_well_posedness(np.array([]), sweeps=3, staleness_bound=2)


def test_well_posedness_requires_measured_bound():
    # Condition (2) cannot be checked against an unknown shift function;
    # the old behaviour silently assumed a bound of 2 and always "passed".
    counts = np.array([5, 5, 5])
    with pytest.raises(TypeError):
        check_well_posedness(counts, sweeps=5)
    with pytest.raises(ValueError, match="staleness_bound is required"):
        check_well_posedness(counts, sweeps=5, staleness_bound=None)
    with pytest.raises(ValueError):
        check_well_posedness(counts, sweeps=5, staleness_bound=0)


def test_well_posedness_from_real_run(small_spd):
    from repro.core import AsyncConfig, BlockAsyncSolver
    from repro.solvers import StoppingCriterion

    b = small_spd.matvec(np.ones(60))
    r = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=10, seed=0),
        stopping=StoppingCriterion(tol=0.0, maxiter=12),
    ).solve(small_spd, b)
    # The solver surfaces the scheduler's measured bound in the result.
    assert r.info["staleness_bound"] == 2
    assert check_well_posedness(
        r.info["update_counts"],
        sweeps=12,
        staleness_bound=r.info["staleness_bound"],
    )
