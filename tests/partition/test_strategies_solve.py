"""End-to-end strategy tests: solves, permutation semantics, telemetry."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.matrices import default_rhs
from repro.partition import Partition, make_partition
from repro.runtime import RunRecorder
from repro.solvers import BlockJacobiSolver, StoppingCriterion
from repro.experiments.runner import paper_async_config

ALL_SPECS = ("uniform", "work_balanced:10", "rcm:64", "clustered:64")


# --------------------------------------------------------------------- #
# Permuted-solve property (the refactor's core semantic contract)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_permuted_solve_is_bitwise_a_direct_solve_of_the_permuted_system(
    trefethen_small, spec
):
    """Solving through a permuting partition == solving the permuted system.

    The solver permutes A and b, iterates in partition order, and maps the
    solution back; its residual history must therefore be *bitwise* the
    history of an explicit solve of the permuted system on the same
    boundaries, and its solution the un-permutation of that solve's.
    """
    A = trefethen_small
    b = default_rhs(A)
    part = make_partition(A, spec, block_size=64)
    stopping = StoppingCriterion(tol=1e-10, maxiter=200)

    result = BlockAsyncSolver(
        paper_async_config(2, block_size=64, seed=5),
        partition=spec,
        stopping=stopping,
    ).solve(A, b)

    Ap = part.permute_matrix(A)
    bp = part.permute_vector(b)
    direct = BlockAsyncSolver(
        paper_async_config(2, block_size=64, seed=5),
        partition=Partition(boundaries=part.boundaries),
        stopping=stopping,
    ).solve(Ap, bp)

    assert np.array_equal(result.residuals, direct.residuals)
    assert np.array_equal(part.permute_vector(result.x), direct.x)
    assert result.converged == direct.converged
    assert result.info.get("permuted", False) == (part.perm is not None)


@pytest.mark.parametrize("spec", ["rcm:16", "clustered:16"])
def test_block_jacobi_permuted_solve_matches_direct(small_spd, spec):
    A = small_spd
    b = default_rhs(A)
    part = make_partition(A, spec, block_size=16)
    stopping = StoppingCriterion(tol=1e-12, maxiter=100)

    result = BlockJacobiSolver(
        block_size=16, partition=spec, stopping=stopping
    ).solve(A, b)
    direct = BlockJacobiSolver(
        block_size=16,
        partition=Partition(boundaries=part.boundaries),
        stopping=stopping,
    ).solve(part.permute_matrix(A), part.permute_vector(b))

    assert np.array_equal(result.residuals, direct.residuals)
    assert np.array_equal(part.permute_vector(result.x), direct.x)


# --------------------------------------------------------------------- #
# Convergence: every strategy is selectable and solves the system
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_every_strategy_converges_via_async_config(trefethen_small, spec):
    A = trefethen_small
    b = default_rhs(A)
    cfg = paper_async_config(2, block_size=64, seed=0, partition=spec)
    result = BlockAsyncSolver(
        cfg, stopping=StoppingCriterion(tol=1e-10, maxiter=500)
    ).solve(A, b)
    assert result.converged
    # The returned solution is in original row order regardless of any
    # internal reordering: its true residual meets the tolerance.
    res = float(np.linalg.norm(A.residual(result.x, b)))
    assert res <= 10 * 1e-10 * float(np.linalg.norm(b))


@pytest.mark.parametrize("spec", ["uniform:16", "work_balanced:4", "rcm:16", "clustered:16"])
def test_every_strategy_converges_via_block_jacobi(small_spd, spec):
    A = small_spd
    b = default_rhs(A)
    result = BlockJacobiSolver(
        block_size=16,
        partition=spec,
        stopping=StoppingCriterion(tol=1e-11, maxiter=200),
    ).solve(A, b)
    assert result.converged
    res = float(np.linalg.norm(A.residual(result.x, b)))
    assert res <= 10 * 1e-11 * float(np.linalg.norm(b))


# --------------------------------------------------------------------- #
# Telemetry surface
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_recorder_and_result_carry_partition_annotations(trefethen_small, spec):
    A = trefethen_small
    b = default_rhs(A)
    recorder = RunRecorder()
    result = BlockAsyncSolver(
        paper_async_config(1, block_size=64, seed=0),
        partition=spec,
        stopping=StoppingCriterion(tol=0.0, maxiter=5),
        recorder=recorder,
    ).solve(A, b)

    expected = make_partition(A, spec, block_size=64)
    for block in (result.info["partition"], recorder.runs[-1].annotations["partition"]):
        assert block["strategy"] == expected.strategy
        assert block["spec"] == (spec if ":" in spec else expected.strategy)
        assert block["nblocks"] == expected.nblocks
        assert block["permuted"] == (expected.perm is not None)
        assert block["imbalance"] >= 1.0
        assert 0.0 <= block["off_block_fraction"] <= 1.0


def test_engine_run_annotates_partition(trefethen_small):
    from repro.core.engine import AsyncEngine
    from repro.sparse import BlockRowView

    A = trefethen_small
    b = default_rhs(A)
    view = BlockRowView(A, partition=make_partition(A, "work_balanced:8"))
    recorder = RunRecorder()
    AsyncEngine(view, b, paper_async_config(1, block_size=64, seed=0)).run(
        stopping=StoppingCriterion(tol=0.0, maxiter=3), recorder=recorder
    )
    block = recorder.runs[-1].annotations["partition"]
    assert block["strategy"] == "work_balanced"
    assert block["nblocks"] == 8


# --------------------------------------------------------------------- #
# Spec validation at the config / solver / CLI surfaces
# --------------------------------------------------------------------- #


def test_async_config_validates_partition_spec_up_front():
    with pytest.raises(ValueError, match="unknown partition strategy"):
        AsyncConfig(partition="zigzag")
    with pytest.raises(ValueError, match="must be positive"):
        AsyncConfig(partition="uniform:0")
    assert AsyncConfig(partition="rcm:256").partition == "rcm:256"


def test_solver_rejects_bad_spec_at_solve_time(small_spd):
    b = default_rhs(small_spd)
    solver = BlockAsyncSolver(local_iterations=1, partition="zigzag")
    with pytest.raises(ValueError, match="unknown partition strategy"):
        solver.solve(small_spd, b)


def test_cli_partition_knob(capsys):
    from repro.cli import main

    # A malformed spec is a clean usage error (exit 2), not a traceback.
    code = main(["solve", "Trefethen_2000", "--partition", "zigzag", "--maxiter", "3"])
    assert code == 2
    assert "unknown partition strategy" in capsys.readouterr().err

    # A valid strategy runs end to end.
    code = main(
        [
            "solve",
            "Trefethen_2000",
            "--partition",
            "work_balanced:16",
            "--block-size",
            "128",
            "--tol",
            "1e-10",
            "--maxiter",
            "100",
        ]
    )
    assert code == 0
    assert "converged: True" in capsys.readouterr().out
