"""Overlap halos and restriction weights: the +oK partition machinery.

Property tests for the restricted-Schwarz partition extensions: halo
ranges clip at the matrix edge and cover exactly the rows reachable
within ``overlap`` hops on banded systems, restriction weights form a
partition of unity, and — the bitwise contract — an overlap-0 partition
is indistinguishable from a pre-overlap one in stats, telemetry and
fingerprint.
"""

import numpy as np
import pytest

from repro.partition import Partition, compute_stats, make_partition
from repro.sparse import CSRMatrix


def _tridiag(n):
    """Path-graph Laplacian-ish tridiagonal system (bandwidth exactly 1)."""
    dense = np.zeros((n, n))
    np.fill_diagonal(dense, 4.0)
    idx = np.arange(n - 1)
    dense[idx, idx + 1] = -1.0
    dense[idx + 1, idx] = -1.0
    return CSRMatrix.from_dense(dense)


# --------------------------------------------------------------------- #
# Halo ranges
# --------------------------------------------------------------------- #


def test_halo_ranges_clip_at_matrix_edges(small_spd):
    p = make_partition(small_spd, "uniform:16+o5")
    ranges = p.halo_ranges()
    assert ranges.shape == (p.nblocks, 2)
    assert ranges[0, 0] == 0  # first block cannot extend below row 0
    assert ranges[-1, 1] == p.n  # last block cannot extend past n
    for k in range(p.nblocks):
        start, stop = int(p.boundaries[k]), int(p.boundaries[k + 1])
        elo, ehi = int(ranges[k, 0]), int(ranges[k, 1])
        assert elo == max(start - 5, 0)
        assert ehi == min(stop + 5, p.n)
        assert elo <= start < stop <= ehi  # owned rows inside the extension


@pytest.mark.parametrize("overlap", [1, 2, 4])
def test_halo_covers_offblock_support_up_to_overlap_hops(overlap):
    # On a bandwidth-1 system the rows reachable within `overlap` hops of
    # a block are exactly [start - overlap, stop + overlap) clipped — the
    # halo range must capture all of them, i.e. every off-block column a
    # row up to `overlap` hops deep references lies inside the halo.
    A = _tridiag(64)
    p = make_partition(A, f"uniform:16+o{overlap}")
    ranges = p.halo_ranges()
    for k in range(p.nblocks):
        elo, ehi = int(ranges[k, 0]), int(ranges[k, 1])
        # BFS frontier of the owned rows, `overlap` hops deep.
        reach = set(range(int(p.boundaries[k]), int(p.boundaries[k + 1])))
        for _ in range(overlap):
            nxt = set(reach)
            for i in reach:
                lo, hi = A.indptr[i], A.indptr[i + 1]
                nxt.update(int(j) for j in A.indices[lo:hi])
            reach = nxt
        assert reach == set(range(elo, ehi))


def test_halo_captured_fraction_hits_one_past_the_bandwidth():
    # Once the halo depth reaches the matrix bandwidth, the extended
    # blocks see every off-block coupling.
    A = _tridiag(64)
    p1 = make_partition(A, "uniform:16+o1")
    s1 = p1.ensure_stats(A)
    assert s1.halo_captured_fraction == 1.0
    assert s1.overlap_rows > 0
    assert s1.duplicated_nnz > 0


# --------------------------------------------------------------------- #
# Restriction weights
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("variant", ["ras", "wras"])
def test_restriction_weights_form_partition_of_unity(small_spd, variant):
    p = make_partition(small_spd, "uniform:16+o5")
    weights = p.restriction_weights(variant)
    ranges = p.halo_ranges()
    total = np.zeros(p.n)
    for k, w in enumerate(weights):
        elo, ehi = int(ranges[k, 0]), int(ranges[k, 1])
        assert len(w) == ehi - elo
        assert np.all(w >= 0.0)
        total[elo:ehi] += w
    np.testing.assert_allclose(total, 1.0, rtol=0, atol=1e-12)


def test_ras_weights_are_the_owned_row_indicator(small_spd):
    # "ras" restriction: owned rows write with weight 1, halo rows 0 —
    # exactly (not approximately), it is the fold-back mask.
    p = make_partition(small_spd, "uniform:16+o5")
    ranges = p.halo_ranges()
    for k, w in enumerate(p.restriction_weights("ras")):
        start, stop = int(p.boundaries[k]), int(p.boundaries[k + 1])
        elo = int(ranges[k, 0])
        expect = np.zeros(int(ranges[k, 1]) - elo)
        expect[start - elo : stop - elo] = 1.0
        assert np.array_equal(w, expect)


def test_wras_weights_are_inverse_coverage(small_spd):
    p = make_partition(small_spd, "uniform:16+o5")
    cov = p.coverage_counts()
    assert cov.min() >= 1  # every row owned by at least its own block
    ranges = p.halo_ranges()
    for k, w in enumerate(p.restriction_weights("wras")):
        elo, ehi = int(ranges[k, 0]), int(ranges[k, 1])
        assert np.array_equal(w, 1.0 / cov[elo:ehi])


def test_restriction_weights_rejects_unknown_variant(small_spd):
    p = make_partition(small_spd, "uniform:16+o2")
    with pytest.raises(ValueError):
        p.restriction_weights("schwarz")


# --------------------------------------------------------------------- #
# The overlap-0 bitwise contract
# --------------------------------------------------------------------- #


def test_overlap_zero_stats_equal_baseline_exactly(small_spd):
    p0 = make_partition(small_spd, "uniform:16")
    pe = make_partition(small_spd, "uniform:16+o0")
    s0 = compute_stats(small_spd, p0.boundaries)
    se = compute_stats(small_spd, pe.boundaries, overlap=0)
    assert np.array_equal(s0.block_rows, se.block_rows)
    assert np.array_equal(s0.block_nnz, se.block_nnz)
    assert s0.summary() == se.summary()  # no overlap keys in either
    assert "overlap_rows" not in s0.summary()


def test_overlap_zero_partition_is_indistinguishable(small_spd):
    p0 = make_partition(small_spd, "uniform:16")
    pe = make_partition(small_spd, "uniform:16+o0")
    assert pe.overlap == 0
    # overlap=0 contributes nothing to the digest: a partition identical
    # except for the (unset) overlap field fingerprints identically, so
    # historical digests stay valid.  (The spec *string* is hashed as
    # before, so "uniform:16+o0" differs from "uniform:16" textually —
    # exactly as "uniform" vs "uniform:16" always did.)
    same = Partition(
        boundaries=p0.boundaries, strategy=p0.strategy, spec=p0.spec, overlap=0
    )
    assert same.fingerprint() == p0.fingerprint()
    p0.ensure_stats(small_spd), pe.ensure_stats(small_spd)
    t0, te = p0.telemetry(), pe.telemetry()
    t0.pop("spec"), te.pop("spec")  # specs differ textually ("+o0")
    assert t0 == te
    assert "overlap" not in te
    # halo ranges degenerate to the block boundaries themselves.
    ranges = pe.halo_ranges()
    assert np.array_equal(ranges[:, 0], pe.boundaries[:-1])
    assert np.array_equal(ranges[:, 1], pe.boundaries[1:])


def test_overlap_changes_the_fingerprint(small_spd):
    p0 = make_partition(small_spd, "uniform:16")
    p2 = make_partition(small_spd, "uniform:16+o2")
    assert p2.overlap == 2
    assert p2.fingerprint() != p0.fingerprint()
    assert p2.telemetry()["overlap"] == 2
    assert "overlap=2" in repr(p2)


def test_overlap_validation():
    with pytest.raises(ValueError, match="overlap"):
        Partition(boundaries=np.array([0, 5, 10]), overlap=-1)
    with pytest.raises(TypeError, match="overlap"):
        Partition(boundaries=np.array([0, 5, 10]), overlap=True)
    with pytest.raises(TypeError, match="overlap"):
        Partition(boundaries=np.array([0, 5, 10]), overlap=2.0)
