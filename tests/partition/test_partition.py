"""Tests for the Partition object, its stats, and the strategy registry."""

import numpy as np
import pytest

from repro.partition import (
    Partition,
    available_strategies,
    compute_stats,
    make_partition,
    parse_partition_spec,
    partition_rows,
    partition_rows_by_work,
    register_strategy,
)
from repro.sparse import BlockRowView

#: One spec per registered strategy, exercised across the property tests.
ALL_SPECS = ("uniform:32", "work_balanced:8", "rcm:32", "clustered:32")


# --------------------------------------------------------------------- #
# Partition object
# --------------------------------------------------------------------- #


def test_partition_validates_boundaries():
    with pytest.raises(ValueError, match="strictly increasing"):
        Partition(boundaries=np.array([0, 5, 5, 10]))
    with pytest.raises(ValueError, match="strictly increasing"):
        Partition(boundaries=np.array([1, 5, 10]))
    with pytest.raises(ValueError, match="strictly increasing"):
        Partition(boundaries=np.array([0]))


def test_partition_validates_perm():
    b = np.array([0, 5, 10])
    with pytest.raises(ValueError, match="permutation"):
        Partition(boundaries=b, perm=np.array([0] * 10))
    with pytest.raises(ValueError, match="permutation"):
        Partition(boundaries=b, perm=np.arange(9))
    # A valid permutation passes.
    Partition(boundaries=b, perm=np.arange(10)[::-1].copy())


def test_partition_basic_properties():
    p = Partition(boundaries=np.array([0, 3, 7, 10]), strategy="explicit")
    assert p.n == 10
    assert p.nblocks == 3
    assert p.block_sizes().tolist() == [3, 4, 3]
    assert p.spec == "explicit"
    assert p.perm is None and p.inverse_perm is None


def test_permute_unpermute_roundtrip(rng):
    n = 40
    perm = rng.permutation(n)
    p = Partition(boundaries=np.array([0, 13, n]), perm=perm)
    v = rng.standard_normal(n)
    vp = p.permute_vector(v)
    assert np.array_equal(vp, v[perm])
    assert np.array_equal(p.unpermute_vector(vp), v)
    # inverse_perm really is the inverse map.
    assert np.array_equal(p.inverse_perm[perm], np.arange(n))


def test_permute_matrix_identity_and_cache(small_spd):
    uniform = Partition(boundaries=partition_rows(small_spd.shape[0], 16))
    assert uniform.permute_matrix(small_spd) is small_spd

    perm = np.arange(small_spd.shape[0])[::-1].copy()
    p = Partition(boundaries=uniform.boundaries, perm=perm)
    B = p.permute_matrix(small_spd)
    assert B is not small_spd
    # Cached: same source object returns the same permuted object.
    assert p.permute_matrix(small_spd) is B
    assert np.allclose(B.to_dense(), small_spd.to_dense()[np.ix_(perm, perm)])


def test_stats_match_blockrowview(small_spd):
    bounds = partition_rows(small_spd.shape[0], 16)
    stats = compute_stats(small_spd, bounds)
    view = BlockRowView(small_spd, boundaries=bounds)
    assert stats.off_block_fraction == view.off_block_fraction()
    per_block = [
        blk.local_off.nnz + blk.external.nnz + blk.nrows for blk in view.blocks
    ]
    assert stats.block_nnz.tolist() == per_block
    assert int(stats.block_nnz.sum()) == small_spd.nnz
    assert stats.block_rows.tolist() == [blk.nrows for blk in view.blocks]
    assert stats.imbalance == max(per_block) / np.mean(per_block)
    assert 0.0 < stats.diag_block_density <= 1.0


def test_telemetry_grows_with_stats(small_spd):
    p = make_partition(small_spd, "uniform:16")
    t = p.telemetry()
    assert t["strategy"] == "uniform"
    assert t["spec"] == "uniform:16"
    assert t["nblocks"] == p.nblocks
    assert t["permuted"] is False
    assert "imbalance" not in t  # stats not computed yet
    p.ensure_stats(small_spd)
    t = p.telemetry()
    for key in ("imbalance", "off_block_fraction", "diag_block_density",
                "block_rows_min", "block_nnz_max"):
        assert key in t


# --------------------------------------------------------------------- #
# Strategy registry
# --------------------------------------------------------------------- #


def test_registry_lists_the_four_builtin_strategies():
    names = available_strategies()
    for name in ("uniform", "work_balanced", "rcm", "clustered"):
        assert name in names


def test_parse_partition_spec():
    assert parse_partition_spec("uniform") == ("uniform", None, 0)
    assert parse_partition_spec("work_balanced:16") == ("work_balanced", 16, 0)
    assert parse_partition_spec("uniform+o2") == ("uniform", None, 2)
    assert parse_partition_spec("work_balanced:8+o2") == ("work_balanced", 8, 2)
    with pytest.raises(ValueError, match="unknown partition strategy"):
        parse_partition_spec("zigzag")
    with pytest.raises(ValueError, match="must be an integer"):
        parse_partition_spec("uniform:abc")
    with pytest.raises(ValueError, match="must be positive"):
        parse_partition_spec("uniform:0")
    # Signs are not part of the digit grammar (int() would accept them).
    with pytest.raises(ValueError, match="must be an integer"):
        parse_partition_spec("uniform:-4")
    with pytest.raises(ValueError, match="must be a string"):
        parse_partition_spec(42)


def test_parse_partition_spec_rejects_malformed_input():
    # Empty / missing strategy name.
    with pytest.raises(ValueError, match="empty strategy name"):
        parse_partition_spec("")
    with pytest.raises(ValueError, match="empty strategy name"):
        parse_partition_spec(":4")
    with pytest.raises(ValueError, match="empty strategy name"):
        parse_partition_spec("+o2")
    # Non-integer params: int() would accept surrounding whitespace and
    # signs, the spec grammar must not.
    with pytest.raises(ValueError, match="must be an integer"):
        parse_partition_spec("uniform: 4")
    with pytest.raises(ValueError, match="must be an integer"):
        parse_partition_spec("uniform:4 ")
    # "+" always starts the overlap suffix, so a signed param parses as a
    # malformed suffix — still rejected, with the suffix grammar named.
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:+4")
    # Malformed overlap suffixes.
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:4+o")
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:4+x2")
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:4+o-1")
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:4+o2+o3")
    with pytest.raises(ValueError, match="overlap suffix"):
        parse_partition_spec("uniform:4+o2 ")
    # +o0 is redundant but well-formed: means "no overlap" explicitly.
    assert parse_partition_spec("uniform+o0") == ("uniform", None, 0)


def test_make_partition_uniform_matches_partition_rows(trefethen_small):
    n = trefethen_small.shape[0]
    p = make_partition(trefethen_small, "uniform", block_size=64)
    assert np.array_equal(p.boundaries, partition_rows(n, 64))
    assert p.perm is None and p.strategy == "uniform"
    # An explicit param overrides the fallback block size.
    p = make_partition(trefethen_small, "uniform:25", block_size=64)
    assert np.array_equal(p.boundaries, partition_rows(n, 25))


def test_make_partition_work_balanced_matches_by_work(trefethen_small):
    p = make_partition(trefethen_small, "work_balanced:8")
    assert np.array_equal(p.boundaries, partition_rows_by_work(trefethen_small, 8))
    assert p.perm is None
    # No param: same block count as the uniform grid at the fallback size.
    p = make_partition(trefethen_small, "work_balanced", block_size=64)
    grid = partition_rows(trefethen_small.shape[0], 64)
    assert p.nblocks == len(grid) - 1


def test_make_partition_rcm_and_clustered_reuse_matrix_analyses(trefethen_small):
    from repro.matrices.clustering import cluster_reorder
    from repro.matrices.rcm import reverse_cuthill_mckee

    p = make_partition(trefethen_small, "rcm:64")
    assert np.array_equal(p.perm, reverse_cuthill_mckee(trefethen_small))
    assert np.array_equal(p.boundaries, partition_rows(trefethen_small.shape[0], 64))

    p = make_partition(trefethen_small, "clustered:64")
    assert np.array_equal(p.perm, cluster_reorder(trefethen_small, 64))


def test_make_partition_passthrough_and_shape_check(small_spd, trefethen_small):
    p = make_partition(small_spd, "uniform:16")
    assert make_partition(small_spd, p) is p
    with pytest.raises(ValueError, match="covers 60 rows"):
        make_partition(trefethen_small, p)


def test_register_strategy_extends_the_registry(small_spd):
    from repro.partition import strategies as mod

    @register_strategy("every_row")
    def _every_row(A, n, param, block_size):
        return np.arange(n + 1, dtype=np.int64), None

    try:
        p = make_partition(small_spd, "every_row")
        assert p.nblocks == small_spd.shape[0]
    finally:
        del mod._REGISTRY["every_row"]
    with pytest.raises(ValueError, match="unknown partition strategy"):
        parse_partition_spec("every_row")


# --------------------------------------------------------------------- #
# Coverage property: every strategy covers [0, n) exactly once
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_every_strategy_covers_all_rows_exactly_once(trefethen_small, spec):
    n = trefethen_small.shape[0]
    p = make_partition(trefethen_small, spec)
    assert p.boundaries[0] == 0 and p.boundaries[-1] == n
    assert np.all(np.diff(p.boundaries) > 0)
    # Collect the original-order rows each block owns; together the blocks
    # must own every row exactly once.
    owned = []
    ident = np.arange(n)
    for k in range(p.nblocks):
        sl = slice(int(p.boundaries[k]), int(p.boundaries[k + 1]))
        owned.append((ident if p.perm is None else p.perm)[sl])
    assert np.array_equal(np.sort(np.concatenate(owned)), ident)


# --------------------------------------------------------------------- #
# BlockRowView integration
# --------------------------------------------------------------------- #


def test_view_partition_kwarg_is_exclusive(small_spd):
    p = make_partition(small_spd, "uniform:16")
    with pytest.raises(ValueError, match="mutually exclusive"):
        BlockRowView(small_spd, block_size=16, partition=p)
    with pytest.raises(ValueError, match="mutually exclusive"):
        BlockRowView(small_spd, boundaries=p.boundaries, partition=p)


def test_view_from_partition_matches_block_size_view(small_spd):
    classic = BlockRowView(small_spd, block_size=16)
    via_part = BlockRowView(small_spd, partition=make_partition(small_spd, "uniform:16"))
    assert np.array_equal(classic.boundaries, via_part.boundaries)
    assert classic.matrix is small_spd and via_part.matrix is small_spd
    assert classic.partition.strategy == "uniform"


def test_permuted_view_permutes_matrix_and_vectors(trefethen_small):
    A = trefethen_small
    part = make_partition(A, "rcm:64")
    view = BlockRowView(A, partition=part)
    assert view.original_matrix is A
    assert view.matrix is not A
    assert np.array_equal(view.perm, part.perm)
    v = np.arange(A.shape[0], dtype=float)
    assert np.array_equal(view.unpermute_vector(view.permute_vector(v)), v)
    # Telemetry fills stats on the permuted matrix.
    t = view.partition_telemetry()
    assert t["strategy"] == "rcm" and t["permuted"] is True
    assert 0.0 <= t["off_block_fraction"] <= 1.0
