"""Tests for the canonical boundary builders (repro.partition.rows)."""

import numpy as np
import pytest

from repro.partition import partition_rows, partition_rows_by_work


def test_block_size_boundaries_match_cuda_grid():
    b = partition_rows(10, 3)
    assert b.tolist() == [0, 3, 6, 9, 10]
    assert b.dtype == np.int64
    # block_size >= n collapses to a single block.
    assert partition_rows(10, 10).tolist() == [0, 10]
    assert partition_rows(10, 64).tolist() == [0, 10]


def test_nblocks_boundaries_are_balanced():
    b = partition_rows(10, nblocks=4)
    sizes = np.diff(b)
    assert b[0] == 0 and b[-1] == 10 and len(b) == 5
    assert sizes.max() - sizes.min() <= 1


@pytest.mark.parametrize("nblocks", [0, -1, 11, 1000])
def test_partition_rows_rejects_bad_nblocks(nblocks):
    with pytest.raises(ValueError, match=r"nblocks must be in \[1, n\]"):
        partition_rows(10, nblocks=nblocks)


def test_partition_rows_rejects_ambiguous_arguments():
    with pytest.raises(ValueError, match="exactly one"):
        partition_rows(10)
    with pytest.raises(ValueError, match="exactly one"):
        partition_rows(10, 3, nblocks=4)
    with pytest.raises(ValueError, match="block_size must be positive"):
        partition_rows(10, 0)
    with pytest.raises(ValueError, match="n must be positive"):
        partition_rows(0, 3)


def test_nblocks_equal_n_gives_singleton_blocks():
    b = partition_rows(7, nblocks=7)
    assert np.array_equal(b, np.arange(8))


@pytest.mark.parametrize("nblocks", [0, -3, 301, 5000])
def test_partition_rows_by_work_rejects_bad_nblocks(trefethen_small, nblocks):
    with pytest.raises(ValueError, match=r"nblocks must be in \[1, n\]"):
        partition_rows_by_work(trefethen_small, nblocks)


@pytest.mark.parametrize("nblocks", [1, 2, 16, 77])
def test_partition_rows_by_work_covers_all_rows_without_empty_blocks(
    trefethen_small, nblocks
):
    n = trefethen_small.shape[0]
    b = partition_rows_by_work(trefethen_small, nblocks)
    assert b[0] == 0 and b[-1] == n and len(b) == nblocks + 1
    assert np.all(np.diff(b) > 0)


def test_partition_rows_by_work_levels_nnz_on_skewed_rows(trefethen_small):
    # Trefethen's leading rows carry ~2 log2(n) entries, the tail far
    # fewer: equal-work cuts must beat equal-row cuts on nnz spread.
    A = trefethen_small
    nnz = A.row_nnz()

    def spread(bounds):
        per = np.add.reduceat(nnz, bounds[:-1])
        return per.max() / per.mean()

    uniform = partition_rows(A.shape[0], nblocks=16)
    work = partition_rows_by_work(A, 16)
    assert spread(work) < spread(uniform)


def test_sparse_shims_warn_and_delegate(trefethen_small):
    import repro.sparse as sparse

    with pytest.warns(DeprecationWarning, match="repro.partition"):
        via_shim = sparse.partition_rows(100, 32)
    assert np.array_equal(via_shim, partition_rows(100, 32))

    with pytest.warns(DeprecationWarning, match="repro.partition"):
        via_shim = sparse.partition_rows_by_work(trefethen_small, 8)
    assert np.array_equal(via_shim, partition_rows_by_work(trefethen_small, 8))
