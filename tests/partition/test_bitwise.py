"""Bitwise guarantees of the partition refactor.

The default ``uniform`` partition must reproduce the pre-refactor flows
byte for byte: same boundary cuts, same RNG stream, same iterates, same
residual histories.  Each test hand-rolls the historical flow — explicit
CUDA-grid boundaries computed inline, driving the engine directly — and
compares it against the partition-threaded path with ``np.array_equal``
(no tolerances).
"""

import numpy as np
import pytest

from repro.core import BlockAsyncSolver
from repro.core.engine import AsyncEngine
from repro.matrices import default_rhs
from repro.partition import Partition
from repro.solvers import BlockJacobiSolver, StoppingCriterion
from repro.sparse import BlockRowView
from repro.stats import run_ensemble
from repro.experiments.runner import paper_async_config


def _grid_boundaries(n, block_size):
    """The historical CUDA-grid cuts, computed without repro.partition."""
    return np.concatenate([np.arange(0, n, block_size, dtype=np.int64), [n]])


@pytest.mark.parametrize("k,block_size", [(1, 64), (5, 32)])
def test_async_solver_uniform_is_bitwise_the_engine_flow(trefethen_small, k, block_size):
    A = trefethen_small
    b = default_rhs(A)
    cfg = paper_async_config(k, block_size=block_size, seed=3)

    # Pre-refactor flow: explicit grid boundaries + the engine run loop.
    view = BlockRowView(A, boundaries=_grid_boundaries(A.shape[0], block_size))
    baseline = AsyncEngine(view, b, cfg).run(
        stopping=StoppingCriterion(tol=1e-10, maxiter=200)
    )

    # Partition-threaded flow: the solver builds a uniform Partition.
    result = BlockAsyncSolver(
        cfg, stopping=StoppingCriterion(tol=1e-10, maxiter=200)
    ).solve(A, b)

    assert np.array_equal(result.residuals, baseline.residuals)
    assert np.array_equal(result.x, baseline.x)
    assert result.converged == baseline.converged


def test_async_solver_uniform_is_bitwise_on_fv1(fv1):
    A = fv1
    b = default_rhs(A)
    cfg = paper_async_config(5, seed=1)
    stopping = StoppingCriterion(tol=0.0, maxiter=40)
    view = BlockRowView(A, boundaries=_grid_boundaries(A.shape[0], cfg.block_size))
    baseline = AsyncEngine(view, b, cfg).run(stopping=stopping)
    result = BlockAsyncSolver(cfg, stopping=stopping).solve(A, b)
    assert np.array_equal(result.residuals, baseline.residuals)
    assert np.array_equal(result.x, baseline.x)


@pytest.mark.parametrize("inner", ["exact", "jacobi"])
def test_block_jacobi_spec_matches_explicit_boundaries(small_spd, inner):
    A = small_spd
    b = default_rhs(A)
    stopping = StoppingCriterion(tol=1e-12, maxiter=100)
    explicit = Partition(boundaries=_grid_boundaries(A.shape[0], 16))
    via_spec = BlockJacobiSolver(
        block_size=16, inner=inner, stopping=stopping
    ).solve(A, b)
    via_part = BlockJacobiSolver(
        block_size=16, inner=inner, partition=explicit, stopping=stopping
    ).solve(A, b)
    assert np.array_equal(via_spec.residuals, via_part.residuals)
    assert np.array_equal(via_spec.x, via_part.x)


@pytest.mark.parametrize("spec", ["uniform", "work_balanced:8", "rcm:64"])
def test_ensemble_batched_matches_sequential_for_every_strategy(trefethen_small, spec):
    A = trefethen_small
    b = default_rhs(A)
    cfg = paper_async_config(2, block_size=64, seed=0, partition=spec)
    batched = run_ensemble(A, b, 4, 20, config=cfg, batched=True)
    sequential = run_ensemble(A, b, 4, 20, config=cfg, batched=False)
    for attr in ("mean", "max", "min", "variance"):
        assert np.array_equal(getattr(batched, attr), getattr(sequential, attr))


@pytest.mark.parametrize("spec", ["uniform", "clustered:64"])
def test_fig6_batched_solve_is_bitwise_the_sequential_solve(trefethen_small, spec):
    from repro.experiments.exp_fig6 import _batched_async_solve

    A = trefethen_small
    b = default_rhs(A)
    stopping = StoppingCriterion(tol=0.0, maxiter=30, divergence_limit=1e40)

    solver = BlockAsyncSolver(paper_async_config(1, seed=1, partition=spec))
    solver.stopping = stopping
    sequential = solver.solve(A, b)

    solver = BlockAsyncSolver(paper_async_config(1, seed=1, partition=spec))
    batched = _batched_async_solve(A, b, solver, stopping)

    assert np.array_equal(batched.residuals, sequential.residuals)
    assert np.array_equal(batched.x, sequential.x)
