"""Unit tests for the shared-memory state segment."""

import numpy as np
import pytest

from repro.dist.shm import SharedState


def test_create_attach_roundtrip():
    owner = SharedState.create(16, 3)
    try:
        assert owner.name.startswith("repro-dist-")
        owner.x[:] = np.arange(16, dtype=np.float64)
        owner.epochs[:] = [4, 5, 6]
        owner.set_range(1, 2, 5)

        peer = SharedState.attach(owner.name)
        try:
            assert peer.n == 16 and peer.nshards == 3
            assert np.array_equal(peer.x, np.arange(16.0))
            assert peer.epochs[2] == 6
            assert peer.get_range(1) == (2, 5)
            # Writes travel the other way too.
            peer.x[0] = -1.0
            assert owner.x[0] == -1.0
        finally:
            peer.close()
    finally:
        owner.close()
        owner.unlink()


def test_stop_and_target_flags():
    state = SharedState.create(4, 2)
    try:
        assert not state.stop
        assert state.target == 0
        state.publish_target(7)
        assert state.target == 7
        state.request_stop()
        assert state.stop
    finally:
        state.close()
        state.unlink()


def test_live_shards_and_min_epoch():
    state = SharedState.create(4, 3)
    try:
        state.epochs[:] = [10, 3, 7]
        assert state.min_live_epoch() == 3
        state.alive[1] = 0
        assert list(state.live_shards()) == [0, 2]
        assert state.min_live_epoch() == 7
        state.alive[:] = 0
        assert state.min_live_epoch() == 0
    finally:
        state.close()
        state.unlink()


def test_unlink_is_owner_only_and_idempotent():
    owner = SharedState.create(4, 1)
    peer = SharedState.attach(owner.name)
    peer.close()
    peer.unlink()  # non-owner: must be a no-op
    # Segment still reachable after the peer's unlink attempt.
    check = SharedState.attach(owner.name)
    check.close()
    owner.close()
    owner.unlink()
    owner.unlink()  # idempotent
    with pytest.raises(FileNotFoundError):
        SharedState.attach(owner.name)
