"""Multi-shard solves: convergence, staleness bound, telemetry shape."""

import numpy as np

from repro.dist import DistAsyncSolver
from repro.runtime import StoppingCriterion


def test_two_shards_converge(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2, local_iterations=2, block_size=32, stopping=stopping
    )
    result = solver.solve(A, b)
    assert result.converged
    assert result.method == "dist(2)-async-(2)"
    res = float(np.linalg.norm(b - A.matvec(result.x)))
    assert res <= stopping.threshold(float(np.linalg.norm(b)))

    dist = result.info["dist"]
    assert dist["nshards"] == 2
    assert dist["max_staleness"] == 2
    assert dist["lead"] == 1
    # The bound is enforced, not just declared.
    assert dist["staleness_max_observed"] < dist["max_staleness"]
    assert len(dist["staleness_histogram"]) >= dist["max_staleness"]
    assert sum(dist["staleness_histogram"]) > 0
    assert len(dist["shards"]) == 2
    for row in dist["shards"]:
        assert row["sweeps"] > 0
        assert row["error"] is None
        lo, hi = row["row_range"]
        assert 0 <= lo < hi <= A.shape[0]
    assert dist["recoveries"] == []


def test_telemetry_document_schema(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2, local_iterations=2, block_size=32, stopping=stopping
    )
    solver.solve(A, b)
    doc = solver.last_telemetry
    assert doc["schema"] == "repro.dist/v1"
    assert doc["plan"]["ngroups"] == 2
    assert len(doc["shards"]) == 2
    runs = doc["driver"]["runs"]
    assert len(runs) == 1  # one driver run; worker runs live in shards[*]
    for payload in doc["shards"]:
        assert payload["run"]["meta"]["method"].startswith("shard-")
        assert len(payload["staleness"]) == payload["sweeps"]
    # The document must be JSON-ready as emitted (the CLI dumps it raw).
    import json

    json.dumps(doc, allow_nan=False)


def test_synchronous_outer_stage(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2,
        max_staleness=1,
        local_iterations=2,
        block_size=32,
        stopping=stopping,
    )
    result = solver.solve(A, b)
    assert result.converged
    dist = result.info["dist"]
    assert dist["lead"] == 0
    assert dist["staleness_max_observed"] == 0


def test_work_placement_and_three_shards(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=3,
        placement="work",
        local_iterations=2,
        block_size=16,
        stopping=stopping,
    )
    result = solver.solve(A, b)
    assert result.converged
    dist = result.info["dist"]
    assert dist["placement"] == "work"
    assert dist["shard_map"]["placement"] == "work"
    rows = [tuple(r["row_range"]) for r in dist["shards"]]
    assert rows[0][0] == 0 and rows[-1][1] == A.shape[0]


def test_x0_passthrough(small_system):
    A, b = small_system
    stopping = StoppingCriterion(tol=1e-10, maxiter=300)
    solver = DistAsyncSolver(
        shards=2, local_iterations=2, block_size=32, stopping=stopping
    )
    cold = solver.solve(A, b)
    warm = DistAsyncSolver(
        shards=2, local_iterations=2, block_size=32, stopping=stopping
    ).solve(A, b, x0=cold.x)
    assert warm.converged
    # Starting at the solution: essentially no outer sweeps needed.
    assert warm.info["sweeps"] <= 2


def test_update_counts_cover_all_blocks(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2, local_iterations=2, block_size=32, stopping=stopping
    )
    result = solver.solve(A, b)
    counts = result.info["update_counts"]
    assert len(counts) == result.info["nblocks"]
    assert np.all(counts > 0)
