"""CLI front-end: ``repro solve --shards N`` routes through repro.dist."""

import json

import pytest

from repro.cli import main


def test_solve_with_shards_emits_dist_telemetry(tmp_path, capsys):
    out = tmp_path / "telemetry.json"
    rc = main(
        [
            "solve",
            "Trefethen_2000",
            "--solver",
            "async",
            "--shards",
            "2",
            "--local-iterations",
            "2",
            "--block-size",
            "128",
            "--maxiter",
            "300",
            "--telemetry-json",
            str(out),
        ]
    )
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "dist(2)-async-(2)" in stdout

    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.dist/v1"
    assert doc["dist"]["nshards"] == 2
    assert len(doc["shards"]) == 2
    assert doc["plan"]["ngroups"] == 2


def test_solve_without_shards_keeps_runtime_schema(tmp_path):
    out = tmp_path / "telemetry.json"
    rc = main(
        [
            "solve",
            "Trefethen_2000",
            "--solver",
            "async",
            "--local-iterations",
            "2",
            "--maxiter",
            "300",
            "--telemetry-json",
            str(out),
        ]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.runtime/v1"


def test_max_staleness_flag(tmp_path, capsys):
    rc = main(
        [
            "solve",
            "Trefethen_2000",
            "--solver",
            "async",
            "--shards",
            "2",
            "--max-staleness",
            "1",
            "--local-iterations",
            "2",
            "--maxiter",
            "300",
        ]
    )
    assert rc == 0
    assert "dist(2)" in capsys.readouterr().out
