"""Shard fault injection: detection, recovery, convergence (§4.5, process level)."""

import numpy as np
import pytest

from repro.core.schedules import AsyncConfig
from repro.dist import DistAsyncSolver, make_shard_plan
from repro.dist.runtime import DistRuntime
from repro.partition import make_partition


def _kill_once(victim, at):
    fired = {"done": False}

    def hook(it, runtime):
        if it == at and not fired["done"]:
            fired["done"] = True
            runtime.kill_shard(victim)

    return hook


def test_respawn_recovers_killed_shard(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2,
        local_iterations=2,
        block_size=32,
        recovery="respawn",
        stopping=stopping,
        fault_injector=_kill_once(victim=1, at=5),
    )
    result = solver.solve(A, b)
    assert result.converged
    recoveries = result.info["dist"]["recoveries"]
    assert len(recoveries) == 1
    event = recoveries[0]
    assert event["shard"] == 1
    assert event["cause"] == "died"
    assert event["action"] == "respawn"
    assert event["respawn"] == 1
    # The replacement worker reported a payload of its own.
    shards = {row["shard"] for row in result.info["dist"]["shards"]}
    assert shards == {0, 1}


def test_reassign_absorbs_killed_shard(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2,
        local_iterations=2,
        block_size=32,
        recovery="reassign",
        stopping=stopping,
        fault_injector=_kill_once(victim=1, at=5),
    )
    result = solver.solve(A, b)
    assert result.converged
    recoveries = result.info["dist"]["recoveries"]
    assert len(recoveries) == 1
    event = recoveries[0]
    assert event["shard"] == 1
    assert event["cause"] == "died"
    assert event["action"] == "reassign"
    assert event["absorbed_by"] == 0
    # Only the absorber survives to report, and it rebuilt its local
    # system mid-solve to take over the dead shard's rows.
    rows = result.info["dist"]["shards"]
    survivor = [r for r in rows if r["error"] is None and r["sweeps"] > 0]
    absorber = next(r for r in survivor if r["shard"] == 0)
    assert absorber["rebuilds"] >= 1
    assert tuple(absorber["row_range"]) == (0, A.shape[0])
    # Solution is still correct after the handover.
    res = float(np.linalg.norm(b - A.matvec(result.x)))
    assert res <= stopping.threshold(float(np.linalg.norm(b)))


def test_recovery_event_lands_in_driver_telemetry(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(
        shards=2,
        local_iterations=2,
        block_size=32,
        recovery="respawn",
        stopping=stopping,
        fault_injector=_kill_once(victim=0, at=3),
    )
    solver.solve(A, b)
    events = solver.last_telemetry["driver"]["runs"][0]["events"]
    kinds = [e["kind"] for e in events]
    assert "shard-recovery" in kinds
    ev = next(e for e in events if e["kind"] == "shard-recovery")
    assert ev["shard"] == 0
    assert ev["action"] == "respawn"


def test_respawn_limit_raises(small_system):
    A, b = small_system
    part = make_partition(A, "uniform", block_size=32)
    plan = make_shard_plan(part, 2)
    config = AsyncConfig(local_iterations=2, block_size=32)

    def keep_killing(it, runtime):
        runtime.kill_shard(1)

    runtime = DistRuntime(
        A,
        np.asarray(b, dtype=np.float64),
        plan,
        config,
        max_respawns=2,
        advance_timeout=60.0,
        fault_injector=keep_killing,
    )
    with runtime:
        with pytest.raises(RuntimeError, match="exceeded 2 respawns"):
            for it in range(50):
                runtime.advance(it)
