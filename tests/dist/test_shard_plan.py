"""Unit tests for the shard plan and the shared placement helper."""

import numpy as np
import pytest

from repro.dist import ShardPlan, make_shard_plan
from repro.gpu import device_partition
from repro.partition import (
    contiguous_placement,
    group_ranges,
    make_partition,
    placement_telemetry,
)


# --------------------------------------------------------------------- #
# contiguous_placement
# --------------------------------------------------------------------- #


def _legacy_formula(nblocks, ngroups):
    return np.minimum((np.arange(nblocks) * ngroups) // nblocks, ngroups - 1).astype(
        np.int64
    )


@pytest.mark.parametrize(
    "nblocks,ngroups", [(10, 4), (7, 1), (16, 16), (5, 2), (100, 7), (3, 3)]
)
def test_unweighted_matches_legacy_device_formula(nblocks, ngroups):
    a = contiguous_placement(nblocks, ngroups)
    assert np.array_equal(a, _legacy_formula(nblocks, ngroups))
    assert a.dtype == np.int64


def test_unweighted_every_group_owns_a_block():
    for nblocks in range(1, 20):
        for ngroups in range(1, nblocks + 1):
            a = contiguous_placement(nblocks, ngroups)
            assert len(np.unique(a)) == ngroups
            assert np.all(np.diff(a) >= 0)


def test_more_groups_than_blocks_rejected():
    with pytest.raises(ValueError, match="ngroups must be <= nblocks"):
        contiguous_placement(2, 4)
    with pytest.raises(ValueError):
        contiguous_placement(0, 1)


def test_weighted_balances_work():
    # Front-loaded weights: the first group should take fewer blocks.
    w = np.array([100.0, 100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
    a = contiguous_placement(8, 2, weights=w)
    sizes = np.bincount(a)
    assert len(sizes) == 2 and sizes.sum() == 8
    loads = [w[a == g].sum() for g in range(2)]
    uniform = [w[_legacy_formula(8, 2) == g].sum() for g in range(2)]
    assert max(loads) <= max(uniform)


def test_weighted_degenerate_falls_back_to_unweighted():
    a = contiguous_placement(6, 3, weights=np.zeros(6))
    assert np.array_equal(a, _legacy_formula(6, 3))
    # All mass on the first block still gives every group a block.
    w = np.zeros(6)
    w[0] = 1.0
    a = contiguous_placement(6, 3, weights=w)
    assert len(np.unique(a)) == 3


def test_weighted_validation():
    with pytest.raises(ValueError, match="shape"):
        contiguous_placement(4, 2, weights=np.ones(3))
    with pytest.raises(ValueError, match="non-negative"):
        contiguous_placement(4, 2, weights=np.array([1.0, -1.0, 1.0, 1.0]))


# --------------------------------------------------------------------- #
# group_ranges / placement_telemetry
# --------------------------------------------------------------------- #


def test_group_ranges_roundtrip():
    a = contiguous_placement(10, 3)
    ranges = group_ranges(a)
    assert ranges[0][0] == 0 and ranges[-1][1] == 10
    for g, (lo, hi) in enumerate(ranges):
        assert np.all(a[lo:hi] == g)


def test_group_ranges_rejects_gaps_and_disorder():
    with pytest.raises(ValueError, match="non-decreasing"):
        group_ranges(np.array([0, 1, 0]))
    with pytest.raises(ValueError, match="at least one block"):
        group_ranges(np.array([0, 0, 2]))


def test_placement_telemetry_shape():
    t = placement_telemetry(contiguous_placement(10, 4))
    assert t["ngroups"] == 4
    assert sum(t["blocks_per_group"]) == 10
    assert t["group_blocks"][0][0] == 0 and t["group_blocks"][-1][1] == 10


def test_placement_telemetry_tolerates_empty_groups():
    # The simulated-GPU layer allows more devices than blocks.
    t = placement_telemetry(device_partition(2, 4))
    assert t["ngroups"] >= 2
    assert sum(t["blocks_per_group"]) == 2


# --------------------------------------------------------------------- #
# device_partition delegation (gpu layer agreement)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("nblocks,ngpus", [(10, 4), (7, 1), (16, 3), (5, 5), (2, 4)])
def test_device_partition_bitwise_legacy(nblocks, ngpus):
    assert np.array_equal(
        device_partition(nblocks, ngpus), _legacy_formula(nblocks, ngpus)
    )


def test_shard_and_device_placement_agree(small_system):
    A, _ = small_system
    part = make_partition(A, "uniform", block_size=16)
    plan = make_shard_plan(part, 4)
    assert np.array_equal(plan.assignment, device_partition(part, 4))
    assert plan.telemetry()["group_blocks"] == placement_telemetry(
        device_partition(part, 4)
    )["group_blocks"]


# --------------------------------------------------------------------- #
# make_shard_plan
# --------------------------------------------------------------------- #


def test_plan_rows_cover_system(small_system):
    A, _ = small_system
    part = make_partition(A, "uniform", block_size=32)
    plan = make_shard_plan(part, 3)
    rows = [plan.row_range(s) for s in range(3)]
    assert rows[0][0] == 0 and rows[-1][1] == A.shape[0]
    for (lo0, hi0), (lo1, hi1) in zip(rows, rows[1:]):
        assert hi0 == lo1  # contiguous, no gaps, no overlap


def test_plan_work_placement_balances_nnz(small_system):
    A, _ = small_system
    part = make_partition(A, "uniform", block_size=8)
    plan = make_shard_plan(part, 4, placement="work", A=A)
    nnz = [
        A.indptr[plan.row_range(s)[1]] - A.indptr[plan.row_range(s)[0]]
        for s in range(4)
    ]
    blocks_plan = make_shard_plan(part, 4)
    nnz_blocks = [
        A.indptr[blocks_plan.row_range(s)[1]] - A.indptr[blocks_plan.row_range(s)[0]]
        for s in range(4)
    ]
    assert max(nnz) <= max(nnz_blocks)
    assert plan.telemetry()["placement"] == "work"


def test_plan_validation(small_system):
    A, _ = small_system
    part = make_partition(A, "uniform", block_size=32)
    with pytest.raises(ValueError, match="placement"):
        make_shard_plan(part, 2, placement="nope")
    with pytest.raises(ValueError, match="nshards"):
        make_shard_plan(part, 0)
    with pytest.raises(ValueError, match="nshards must be <="):
        make_shard_plan(part, part.nblocks + 1)
    with pytest.raises(ValueError, match="needs the matrix"):
        make_shard_plan(part, 2, placement="work")


def test_plan_telemetry_structure(small_system):
    A, _ = small_system
    part = make_partition(A, "uniform", block_size=32)
    plan = make_shard_plan(part, 2)
    assert isinstance(plan, ShardPlan)
    t = plan.telemetry()
    assert t["ngroups"] == 2
    assert len(t["shard_rows"]) == 2
    assert t["shard_rows"][0][0] == 0 and t["shard_rows"][-1][1] == A.shape[0]
