"""Shared fixtures for the distributed-sharding tests.

Every test in this directory runs under the leak check: after each test no
worker process may still be alive and no ``repro-dist-*`` shared-memory
segment may remain in ``/dev/shm`` — the teardown *asserts* both, so a
cleanup regression fails the suite instead of silently accumulating
orphans.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.matrices import trefethen
from repro.runtime import StoppingCriterion


def _dist_children():
    return [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-dist-shard")
    ]


def _dist_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob("/dev/shm/repro-dist-*")


@pytest.fixture(autouse=True)
def no_orphans():
    """Assert no leaked worker processes or shm segments after each test."""
    yield
    deadline = time.monotonic() + 10.0
    while _dist_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = _dist_children()
    for p in leaked:  # reap before failing so one leak doesn't cascade
        p.terminate()
        p.join(timeout=5.0)
    segments = _dist_segments()
    for path in segments:
        try:
            os.unlink(path)
        except OSError:
            pass
    assert not leaked, f"leaked shard processes: {leaked}"
    assert not segments, f"leaked shared-memory segments: {segments}"


@pytest.fixture(scope="session")
def small_system():
    """A small SPD system every dist test can share."""
    A = trefethen(240)
    b = np.ones(A.shape[0])
    return A, b


@pytest.fixture(scope="session")
def stopping():
    return StoppingCriterion(tol=1e-10, maxiter=300)
