"""``DistAsyncSolver(shards=1)`` is bitwise the in-process solver.

A single shard owns every block, its halo is empty, and the driver runs
strict lock-step — so the multiprocess pipeline must reproduce
:class:`repro.core.BlockAsyncSolver` exactly: same iterates, same residual
history, same update counts, same telemetry residuals.  Any drift here
means the sharded split changed the method instead of just distributing it.
"""

import numpy as np
import pytest

from repro.core import BlockAsyncSolver
from repro.dist import DistAsyncSolver
from repro.runtime import StoppingCriterion
from repro.runtime.recorder import RunRecorder


def _pair(**kwargs):
    """(reference solver, one-shard dist solver) with identical settings."""
    ref_rec, dist_rec = RunRecorder(), RunRecorder()
    ref = BlockAsyncSolver(recorder=ref_rec, **kwargs)
    dist = DistAsyncSolver(shards=1, recorder=dist_rec, **kwargs)
    return ref, dist, ref_rec, dist_rec


def _assert_bitwise(small_system, **kwargs):
    A, b = small_system
    ref, dist, ref_rec, dist_rec = _pair(**kwargs)
    r_ref = ref.solve(A, b)
    r_dist = dist.solve(A, b)

    assert np.array_equal(r_ref.x, r_dist.x)
    assert np.array_equal(r_ref.residuals, r_dist.residuals)
    assert np.array_equal(r_ref.residual_iters, r_dist.residual_iters)
    assert r_ref.converged == r_dist.converged
    assert r_ref.method == r_dist.method
    assert np.array_equal(
        r_ref.info["update_counts"], r_dist.info["update_counts"]
    )
    assert r_ref.info["staleness_bound"] == r_dist.info["staleness_bound"]
    assert r_ref.info["nblocks"] == r_dist.info["nblocks"]

    # Telemetry residual streams match bitwise too.
    ref_run = ref_rec.to_dict()["runs"][0]
    dist_run = dist_rec.to_dict()["runs"][0]
    assert ref_run["residuals"]["norms"] == dist_run["residuals"]["norms"]
    assert ref_run["residuals"]["iters"] == dist_run["residuals"]["iters"]
    return r_ref, r_dist


def test_default_config_bitwise(small_system, stopping):
    _assert_bitwise(
        small_system, local_iterations=2, block_size=32, seed=3, stopping=stopping
    )


def test_relaxed_omega_bitwise(small_system, stopping):
    _assert_bitwise(
        small_system,
        local_iterations=3,
        block_size=48,
        seed=11,
        omega=0.9,
        stopping=stopping,
    )


def test_work_balanced_partition_bitwise(small_system, stopping):
    _assert_bitwise(
        small_system,
        local_iterations=2,
        block_size=32,
        seed=0,
        partition="work_balanced:6",
        stopping=stopping,
    )


def test_permuted_partition_bitwise(small_system, stopping):
    r_ref, r_dist = _assert_bitwise(
        small_system,
        local_iterations=2,
        block_size=32,
        seed=1,
        partition="rcm:48",
        stopping=stopping,
    )
    assert r_dist.info.get("permuted") is True
    assert r_ref.info.get("permuted") is True


def test_sparse_residual_cadence_bitwise(small_system, stopping):
    r_ref, r_dist = _assert_bitwise(
        small_system,
        local_iterations=2,
        block_size=32,
        seed=5,
        residual_every=3,
        stopping=stopping,
    )
    # The sparse cadence path actually exercised residual_iters.
    assert len(r_dist.residual_iters) == len(r_dist.residuals)
    assert len(r_dist.residuals) < r_dist.info["sweeps"] + 2


def test_one_shard_method_name_matches(small_system, stopping):
    A, b = small_system
    solver = DistAsyncSolver(shards=1, local_iterations=2, stopping=stopping)
    assert solver.name == "async-(2)"
    result = solver.solve(A, b)
    assert result.method == "async-(2)"
    assert result.info["dist"]["nshards"] == 1
    assert result.info["dist"]["lead"] == 0


def test_shards_must_be_positive():
    with pytest.raises(ValueError, match="shards"):
        DistAsyncSolver(shards=0)
