"""Tier-1 smoke test of the batched-ensemble benchmark.

Loads ``benchmarks/bench_batched_ensemble.py`` as a module and runs its
:func:`compare_ensemble_paths` at toy scale (R = 10, Trefethen-150), so the
benchmark's machinery — both ensemble paths plus the bitwise comparison —
is exercised on every test run without benchmark-scale wall-clock.
"""

import importlib.util
from pathlib import Path

import numpy as np

from repro.core import AsyncConfig
from repro.matrices import trefethen

BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_batched_ensemble.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_batched_ensemble", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_benchmark_smoke():
    bench = _load_bench()
    A = trefethen(150)
    b = np.random.default_rng(0).standard_normal(A.shape[0])
    cfg = AsyncConfig(local_iterations=2, block_size=32, order="gpu")
    r = bench.compare_ensemble_paths(A, b, 10, 5, cfg)
    assert r["nruns"] == 10
    assert r["identical"], "batched and sequential ensemble paths disagree"
    assert r["sequential_s"] > 0 and r["batched_s"] > 0
    # Benchmark plumbing sanity: the scale table and report render.
    assert 100 in bench.ensemble_sizes()
    assert "speedup" in bench.render([r])
