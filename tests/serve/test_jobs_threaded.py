"""Threaded stress test of the JobQueue's eviction/expiry accounting.

The queue is documented "not thread-safe by design" — callers that share
it across threads must serialise access themselves.  This test does
exactly that (one external lock around every queue call) and hammers the
two racy admission paths at once: overflow eviction by higher-priority
arrivals and queue-wait timeout expiry.  The invariant under test is the
accounting one: every submitted job ends with exactly one fate —
accepted-then-admitted, accepted-then-expired, evicted, or rejected —
and the queue never exceeds its bound.
"""

import random
import threading
import time

import numpy as np
import pytest

from repro.matrices import trefethen
from repro.serve.jobs import JobQueue, SolveRequest, _Job

N_SUBMITTERS = 4
JOBS_PER_SUBMITTER = 60
MAX_QUEUE = 8


@pytest.fixture(scope="module")
def tiny_system():
    A = trefethen(16)
    return A, np.ones(A.shape[0])


def test_concurrent_submit_expire_admit_accounting(tiny_system):
    A, b = tiny_system
    queue = JobQueue(max_queue=MAX_QUEUE)
    lock = threading.Lock()

    fates = {}  # request_id -> "rejected" | "evicted" | "expired" | "admitted"
    fates_lock = threading.Lock()
    submitted = []
    overflow_seen = threading.Event()
    expiry_seen = threading.Event()
    bound_violations = []
    eviction_violations = []
    done = threading.Event()

    def record_fate(request_id, fate):
        with fates_lock:
            assert request_id not in fates, (
                f"{request_id} got a second fate: {fates[request_id]} then {fate}"
            )
            fates[request_id] = fate

    def submitter(seed):
        rng = random.Random(seed)
        for _ in range(JOBS_PER_SUBMITTER):
            req = SolveRequest(
                A,
                b,
                priority=rng.randrange(0, 10),
                # Short but nonzero timeouts so expiry genuinely races
                # with eviction; a few immortal jobs mix in.
                timeout=rng.choice([0.001, 0.005, 0.02, None]),
            )
            job = _Job(request=req, seq=0, submitted_at=time.monotonic())
            with lock:
                bounced = queue.push(job)
                if len(queue) > MAX_QUEUE:
                    bound_violations.append(len(queue))
            submitted.append(req.request_id)
            if bounced is job:
                record_fate(req.request_id, "rejected")
            elif bounced is not None:
                overflow_seen.set()
                if not (bounced.request.priority < req.priority):
                    eviction_violations.append(
                        (bounced.request.priority, req.priority)
                    )
                record_fate(bounced.request.request_id, "evicted")
            rng.random() < 0.5 and time.sleep(0)  # encourage interleaving

    def pump():
        while not done.is_set() or len(queue):
            with lock:
                expired = queue.expire(time.monotonic())
                batch = queue.admit(max_batch=3)
            for j in expired:
                expiry_seen.set()
                record_fate(j.request.request_id, "expired")
            for j in batch:
                record_fate(j.request.request_id, "admitted")
            time.sleep(0.002)

    threads = [
        threading.Thread(target=submitter, args=(1000 + i,))
        for i in range(N_SUBMITTERS)
    ]
    pumper = threading.Thread(target=pump)
    pumper.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    done.set()
    pumper.join(timeout=30)
    assert not pumper.is_alive()

    # Drain anything the pump missed after `done` flipped.
    leftovers = queue.admit(max_batch=10**9)
    for j in leftovers:
        record_fate(j.request.request_id, "admitted")

    assert len(queue) == 0
    assert not bound_violations, f"queue exceeded bound: {bound_violations}"
    assert not eviction_violations, (
        f"evicted jobs that were not outranked: {eviction_violations}"
    )
    # Every submitted job has exactly one fate (record_fate asserts
    # uniqueness; here we assert totality).
    assert len(submitted) == N_SUBMITTERS * JOBS_PER_SUBMITTER
    missing = [rid for rid in submitted if rid not in fates]
    assert not missing, f"jobs with no terminal fate: {missing}"
    # The stress actually exercised both racy paths.
    assert overflow_seen.is_set(), "no overflow eviction occurred; weaken MAX_QUEUE"
    assert expiry_seen.is_set(), "no timeout expiry occurred; shrink timeouts"
