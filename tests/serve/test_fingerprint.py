"""Content fingerprints: the "same system" decisions of the serve cache."""

import numpy as np

from repro.serve import matrix_fingerprint, structure_fingerprint
from repro.sparse import CSRMatrix


def _copy(A):
    return CSRMatrix(A.indptr.copy(), A.indices.copy(), A.data.copy(), A.shape)


def test_content_identical_objects_share_fingerprints(small_spd):
    B = _copy(small_spd)
    assert B is not small_spd
    assert structure_fingerprint(B) == structure_fingerprint(small_spd)
    assert matrix_fingerprint(B) == matrix_fingerprint(small_spd)


def test_value_change_flips_matrix_but_not_structure(small_spd):
    B = _copy(small_spd)
    B.data[0] += 1.0
    assert structure_fingerprint(B) == structure_fingerprint(small_spd)
    assert matrix_fingerprint(B) != matrix_fingerprint(small_spd)


def test_structure_change_flips_both(small_spd):
    dense = np.zeros((60, 60))
    dense[np.diag_indices(60)] = small_spd.diagonal()
    D = CSRMatrix.from_dense(dense)
    assert structure_fingerprint(D) != structure_fingerprint(small_spd)
    assert matrix_fingerprint(D) != matrix_fingerprint(small_spd)


def test_fingerprint_is_stable_and_hexadecimal(small_spd):
    fp = matrix_fingerprint(small_spd)
    assert fp == matrix_fingerprint(small_spd)
    assert len(fp) == 32
    int(fp, 16)  # must be hex


def test_shape_disambiguates_identical_arrays():
    # Two matrices with identical raw arrays but different declared shapes
    # (trailing empty columns) must not collide.
    A = CSRMatrix.from_dense(np.array([[2.0, 1.0], [0.0, 3.0]]))
    B = CSRMatrix(A.indptr, A.indices, A.data, (2, 3))
    assert structure_fingerprint(A) != structure_fingerprint(B)
