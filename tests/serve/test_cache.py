"""PlanCache: compile once per structure, LRU eviction, honest counters."""

import numpy as np
import pytest

from repro.perf import plan_compile_count
from repro.serve import PlanCache
from repro.sparse import CSRMatrix


def _system(n, seed):
    gen = np.random.default_rng(seed)
    dense = gen.standard_normal((n, n))
    dense[np.abs(dense) < 1.0] = 0.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense)


def test_hit_returns_same_artifacts(small_spd):
    cache = PlanCache()
    e1, hit1 = cache.lookup(small_spd, "uniform", 10)
    e2, hit2 = cache.lookup(small_spd, "uniform", 10)
    assert (hit1, hit2) == (False, True)
    assert e2 is e1
    assert e2.view is e1.view and e2.plan is e1.plan
    assert e1.hits == 1
    assert cache.stats()["hit_rate"] == 0.5


def test_plan_compiled_exactly_once_per_structure(small_spd):
    # The whole point of the cache: repeat lookups — including from a
    # different but content-identical matrix object — must not recompile.
    cache = PlanCache()
    clone = CSRMatrix(
        small_spd.indptr.copy(), small_spd.indices.copy(),
        small_spd.data.copy(), small_spd.shape,
    )
    before = plan_compile_count()
    cache.lookup(small_spd, "uniform", 10)
    assert plan_compile_count() == before + 1
    _, hit = cache.lookup(clone, "uniform", 10)
    assert hit is True
    assert plan_compile_count() == before + 1  # no second compilation


def test_distinct_decompositions_are_distinct_entries(small_spd):
    cache = PlanCache()
    e1, _ = cache.lookup(small_spd, "uniform", 10)
    e2, hit = cache.lookup(small_spd, "uniform", 20)
    assert hit is False and e2 is not e1
    e3, hit = cache.lookup(small_spd, "work_balanced:6", 10)
    assert hit is False and e3 is not e1
    assert len(cache) == 3


def test_lru_eviction(small_spd):
    cache = PlanCache(capacity=2)
    a, b, c = _system(40, 1), _system(40, 2), _system(40, 3)
    cache.lookup(a, "uniform", 10)
    cache.lookup(b, "uniform", 10)
    cache.lookup(a, "uniform", 10)  # refresh a: b is now LRU
    cache.lookup(c, "uniform", 10)  # evicts b
    assert cache.evictions == 1
    _, hit = cache.lookup(a, "uniform", 10)
    assert hit is True
    _, hit = cache.lookup(b, "uniform", 10)  # recompiled
    assert hit is False


def test_permuting_partitions_rejected(small_spd):
    cache = PlanCache()
    with pytest.raises(ValueError, match="non-permuting"):
        cache.lookup(small_spd, "rcm", 10)


def test_validation():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_backend_is_part_of_the_cache_key(small_spd):
    # A plan compiled under auto (stencil-eligible) dispatch must never be
    # served to a request that forced a specific backend, and vice versa:
    # the requested backend is part of the key.
    cache = PlanCache()
    e_auto, hit = cache.lookup(small_spd, "uniform", 10, backend="auto")
    assert hit is False
    e_ref, hit = cache.lookup(small_spd, "uniform", 10, backend="reference")
    assert hit is False and e_ref is not e_auto
    assert e_auto.key[3] == "auto" and e_ref.key[3] == "reference"
    # Same backend again is a hit on its own entry.
    e2, hit = cache.lookup(small_spd, "uniform", 10, backend="reference")
    assert hit is True and e2 is e_ref
    assert len(cache) == 2


def test_backend_defaults_to_auto(small_spd):
    cache = PlanCache()
    e1, _ = cache.lookup(small_spd, "uniform", 10)
    e2, hit = cache.lookup(small_spd, "uniform", 10, backend="auto")
    assert hit is True and e2 is e1


def test_service_routes_forced_backend_to_its_own_entry(small_spd):
    from repro.core import AsyncConfig
    from repro.serve import SolveService

    b = small_spd.matvec(np.ones(small_spd.shape[0]))
    service = SolveService()
    cfg = dict(local_iterations=2, block_size=10)
    r1 = service.solve(small_spd, b, config=AsyncConfig(**cfg))
    r2 = service.solve(small_spd, b, config=AsyncConfig(backend="reference", **cfg))
    assert r1.completed and r2.completed
    # Different requested backends → different cache entries, no false hit.
    assert service.cache.stats()["misses"] == 2
    assert service.cache.stats()["hits"] == 0
    r3 = service.solve(small_spd, b, config=AsyncConfig(backend="reference", **cfg))
    assert r3.completed and service.cache.stats()["hits"] == 1
    # Identical iterates regardless of which entry served the request.
    assert np.array_equal(r2.result.x, r3.result.x)


def test_overlap_is_part_of_the_cache_key(small_spd):
    # Two requests differing only in the +oK overlap suffix compile
    # different extended block systems and must never share a plan.
    cache = PlanCache()
    before = plan_compile_count()
    e0, hit = cache.lookup(small_spd, "uniform:10", 10)
    assert hit is False and plan_compile_count() == before + 1
    e2, hit = cache.lookup(small_spd, "uniform:10+o2", 10)
    assert hit is False and e2 is not e0
    assert plan_compile_count() == before + 2  # second compilation happened
    assert e0.key[4] == 0 and e2.key[4] == 2
    assert e2.partition.overlap == 2
    # Each spec still hits its own entry.
    _, hit = cache.lookup(small_spd, "uniform:10+o2", 10)
    assert hit is True
    assert plan_compile_count() == before + 2
    assert len(cache) == 2


def test_service_jobs_differing_only_in_overlap_compile_separately(small_spd):
    from repro.core import AsyncConfig
    from repro.serve import SolveService

    b = small_spd.matvec(np.ones(small_spd.shape[0]))
    service = SolveService()
    cfg = dict(local_iterations=2, block_size=10)
    r1 = service.solve(small_spd, b, config=AsyncConfig(partition="uniform:10", **cfg))
    r2 = service.solve(
        small_spd, b,
        config=AsyncConfig(partition="uniform:10+o3", schwarz="ras", **cfg),
    )
    assert r1.completed and r2.completed
    assert service.cache.stats()["misses"] == 2
    assert service.cache.stats()["hits"] == 0
