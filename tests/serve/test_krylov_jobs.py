"""Krylov-method jobs through the serve layer: keys, routing, exactness."""

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.krylov import make_outer_solver
from repro.matrices import default_rhs
from repro.runtime import StoppingCriterion
from repro.serve import SolveRequest, SolveService
from repro.serve.jobs import batch_key_of
from repro.serve.stream import parse_job, run_job_stream


def _service(**kw):
    kw.setdefault("config", AsyncConfig(local_iterations=2, block_size=128))
    kw.setdefault("stopping", StoppingCriterion(tol=1e-8, maxiter=3000))
    return SolveService(**kw)


# --- request validation / canonicalisation --------------------------------


def test_precond_spec_canonicalised(small_spd):
    b = default_rhs(small_spd)
    assert SolveRequest(A=small_spd, b=b, method="pcg", precond="async").precond == "async:2"
    assert SolveRequest(A=small_spd, b=b, method="pcg", precond="none").precond is None
    assert SolveRequest(A=small_spd, b=b, method="cg").precond is None
    assert SolveRequest(A=small_spd, b=b, method="gmres", precond="jacobi").precond == "jacobi"


def test_unknown_method_rejected(small_spd):
    with pytest.raises(ValueError, match="unknown method"):
        SolveRequest(A=small_spd, b=default_rhs(small_spd), method="sor")


def test_precond_without_krylov_method_rejected(small_spd):
    with pytest.raises(ValueError, match="krylov method"):
        SolveRequest(A=small_spd, b=default_rhs(small_spd), precond="jacobi")


# --- batching keys --------------------------------------------------------


def test_batch_key_separates_methods_and_preconds():
    cfg = AsyncConfig(block_size=64)
    stop = StoppingCriterion(tol=1e-8, maxiter=100)
    base = batch_key_of("fp", cfg, stop, "pcg", "async:2")
    assert base == batch_key_of("fp", cfg, stop, "pcg", "async:2")
    assert base != batch_key_of("fp", cfg, stop, "pcg", "async:3")
    assert base != batch_key_of("fp", cfg, stop, "cg", "async:2")
    assert base != batch_key_of("fp", cfg, stop)  # native async path


def test_equivalent_specs_share_a_batch(small_spd):
    # "async" and "async:2" canonicalise identically, so the two requests
    # must land in one admission batch.
    service = _service(config=AsyncConfig(local_iterations=2, block_size=16))
    b = default_rhs(small_spd)
    for spec in ("async", "async:2"):
        assert (
            service.submit(SolveRequest(A=small_spd, b=b, method="pcg", precond=spec))
            is None
        )
    responses = service.drain()
    assert [r.batch_size for r in responses] == [2, 2]
    assert all(r.completed and r.result.converged for r in responses)


# --- routing exactness ----------------------------------------------------


def test_krylov_response_bitwise_matches_direct_solver(small_spd):
    cfg = AsyncConfig(local_iterations=2, block_size=16)
    stop = StoppingCriterion(tol=1e-10, maxiter=500)
    service = _service(config=cfg, stopping=stop)
    b = default_rhs(small_spd)
    response = service.solve(small_spd, b, method="pcg", precond="async:2")
    assert response.completed and response.result.converged

    direct = make_outer_solver("pcg", small_spd, precond="async:2", config=cfg, stopping=stop)
    expected = direct.solve(small_spd, b)
    assert np.array_equal(response.result.x, expected.x)
    assert np.array_equal(response.result.residuals, expected.residuals)
    assert response.result.method == "pcg"


def test_mixed_stream_methods_run_and_report(small_spd, tmp_path):
    mtx = tmp_path / "small.mtx"
    from repro.matrices import write_matrix_market

    write_matrix_market(mtx, small_spd)
    service = _service(config=AsyncConfig(local_iterations=2, block_size=16))
    lines = [
        '{"matrix": "%s", "method": "cg", "tol": 1e-10}' % mtx,
        '{"matrix": "%s", "method": "pcg", "precond": "async:2", "tol": 1e-10}' % mtx,
        '{"matrix": "%s", "method": "richardson", "tol": 1e-8, "maxiter": 2000}' % mtx,
        '{"matrix": "%s"}' % mtx,  # native async path still works alongside
    ]
    responses = run_job_stream(lines, service)
    assert len(responses) == 4
    assert all(r.completed and r.result.converged for r in responses)
    methods = sorted(r.result.method for r in responses)
    assert "cg" in methods and "pcg" in methods and "richardson" in methods


def test_parse_job_carries_method_and_precond(small_spd, tmp_path):
    from repro.matrices import write_matrix_market

    mtx = tmp_path / "small.mtx"
    write_matrix_market(mtx, small_spd)
    service = _service()
    req = parse_job(
        {"matrix": str(mtx), "method": "gmres", "precond": "jacobi"}, service
    )
    assert req.method == "gmres" and req.precond == "jacobi"
