"""SolveService: batching exactness, queue policy, telemetry rollups."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.matrices import default_rhs, get_matrix
from repro.runtime import StoppingCriterion
from repro.serve import SolveRequest, SolveService
from repro.sparse import CSRMatrix


def _reject_constant(token):
    raise ValueError(f"non-standard JSON token {token!r}")


class FakeClock:
    """Deterministic injectable time source."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture(scope="module")
def fv1():
    return get_matrix("fv1")


def _service(**kw):
    kw.setdefault("config", AsyncConfig(local_iterations=2, block_size=128))
    kw.setdefault("stopping", StoppingCriterion(tol=1e-8, maxiter=300))
    return SolveService(**kw)


# --- batching exactness ---------------------------------------------------


def test_batched_responses_bitwise_equal_sequential_solves(fv1):
    # The admission batcher stacks R same-matrix requests into one
    # multi-vector solve; each response must be bitwise what a lone
    # per-request BlockAsyncSolver.solve would have produced.
    service = _service()
    rhs = {}
    for seed in range(6):
        b = default_rhs(fv1, kind="random", seed=seed)
        rhs[f"req-{seed}"] = b
        assert (
            service.submit(
                SolveRequest(A=fv1, b=b, request_id=f"req-{seed}", seed=seed)
            )
            is None
        )
    responses = {r.request_id: r for r in service.drain()}
    assert len(responses) == 6
    assert {r.batch_size for r in responses.values()} == {6}
    for seed in range(6):
        rid = f"req-{seed}"
        got = responses[rid]
        assert got.completed
        solver = BlockAsyncSolver(
            dataclasses.replace(service.config, seed=seed), stopping=service.stopping
        )
        ref = solver.solve(fv1, rhs[rid])
        assert got.result.converged == ref.converged
        assert np.array_equal(got.result.x, ref.x)
        assert np.array_equal(got.result.residuals, ref.residuals)


def test_single_request_uses_sequential_engine(fv1):
    service = _service()
    response = service.solve(fv1, default_rhs(fv1), seed=3)
    assert response.completed and response.batch_size == 1
    ref = BlockAsyncSolver(
        dataclasses.replace(service.config, seed=3), stopping=service.stopping
    ).solve(fv1, default_rhs(fv1))
    assert np.array_equal(response.result.x, ref.x)
    assert np.array_equal(response.result.residuals, ref.residuals)


def test_plan_compiled_once_across_batches(fv1):
    from repro.perf import plan_compile_count

    service = _service()
    before = plan_compile_count()
    for wave in range(3):
        for seed in range(2):
            service.submit(
                SolveRequest(A=fv1, b=default_rhs(fv1, kind="random", seed=seed))
            )
        assert all(r.completed for r in service.drain())
    assert plan_compile_count() == before + 1  # first wave compiles; rest hit
    cache = service.stats()["cache"]
    assert cache["misses"] == 1 and cache["hits"] == 2


def test_different_stopping_or_config_do_not_batch(fv1):
    # Batch keys cover the full config and stopping rule: requests that
    # differ in either must run in separate batches.
    service = _service(max_batch=8)
    b = default_rhs(fv1)
    service.submit(SolveRequest(A=fv1, b=b))
    service.submit(SolveRequest(A=fv1, b=b, stopping=StoppingCriterion(tol=1e-4)))
    service.submit(
        SolveRequest(A=fv1, b=b, config=AsyncConfig(local_iterations=7, block_size=128))
    )
    responses = service.drain()
    assert [r.batch_size for r in responses] == [1, 1, 1]
    assert service.stats()["batches"]["count"] == 3


def test_seed_only_difference_still_batches(fv1):
    service = _service(max_batch=8)
    for seed in (9, 4):
        service.submit(SolveRequest(A=fv1, b=default_rhs(fv1), seed=seed))
    responses = service.drain()
    assert [r.batch_size for r in responses] == [2, 2]


# --- queue policy ---------------------------------------------------------


def test_priority_orders_admission(small_spd):
    b = small_spd.matvec(np.ones(60))
    clock = FakeClock()
    service = _service(max_batch=1, clock=clock)
    service.submit(SolveRequest(A=small_spd, b=b, request_id="low", priority=0))
    service.submit(SolveRequest(A=small_spd, b=b, request_id="high", priority=5))
    service.submit(SolveRequest(A=small_spd, b=b, request_id="mid", priority=3))
    assert [r.request_id for r in service.drain()] == ["high", "mid", "low"]


def test_timeout_expires_queued_jobs(small_spd):
    b = small_spd.matvec(np.ones(60))
    clock = FakeClock()
    service = _service(max_batch=1, clock=clock)
    service.submit(SolveRequest(A=small_spd, b=b, request_id="impatient", timeout=1.0))
    service.submit(SolveRequest(A=small_spd, b=b, request_id="patient"))
    clock.advance(2.0)  # "impatient" out-waits its budget before admission
    responses = {r.request_id: r for r in service.drain()}
    assert responses["impatient"].status == "timeout"
    assert responses["impatient"].result is None
    assert responses["patient"].completed
    stats = service.stats()["requests"]
    assert stats["timed_out"] == 1 and stats["completed"] == 1


def test_overflow_rejects_lowest_priority(small_spd):
    b = small_spd.matvec(np.ones(60))
    service = _service(max_queue=2)
    service.submit(SolveRequest(A=small_spd, b=b, request_id="a", priority=1))
    service.submit(SolveRequest(A=small_spd, b=b, request_id="b", priority=0))
    # Queue full; a low-priority arrival is rejected immediately...
    rejection = service.submit(
        SolveRequest(A=small_spd, b=b, request_id="c", priority=0)
    )
    assert rejection is not None and rejection.status == "rejected"
    assert rejection.request_id == "c"
    # ...while a high-priority arrival evicts the lowest-priority job.
    assert (
        service.submit(SolveRequest(A=small_spd, b=b, request_id="d", priority=9))
        is None
    )
    responses = {r.request_id: r for r in service.drain()}
    assert responses["b"].status == "rejected"
    assert responses["a"].completed and responses["d"].completed
    assert service.stats()["requests"]["rejected"] == 2


# --- telemetry ------------------------------------------------------------


def test_stats_rollup_shape(fv1):
    service = _service()
    for seed in range(3):
        service.submit(
            SolveRequest(A=fv1, b=default_rhs(fv1, kind="random", seed=seed))
        )
    service.drain()
    stats = service.stats()
    assert stats["requests"]["submitted"] == 3
    assert stats["requests"]["completed"] == 3
    assert stats["latency_seconds"]["count"] == 3
    assert stats["latency_seconds"]["p99"] >= stats["latency_seconds"]["p50"] > 0
    assert stats["batches"] == {
        "count": 1,
        "mean_size": 3.0,
        "max_size": 3,
        "occupancy": 3.0 / service.max_batch,
    }
    assert stats["queue"]["depth"] == 0 and stats["queue"]["max_depth"] == 3


def test_recorder_gets_one_run_per_request_plus_batch(fv1):
    service = _service()
    for seed in range(3):
        service.submit(
            SolveRequest(A=fv1, b=default_rhs(fv1, kind="random", seed=seed),
                         request_id=f"q{seed}", seed=seed)
        )
    service.drain()
    methods = [r.meta["method"] for r in service.recorder.runs]
    assert len(methods) == 4  # one batched drive + three per-request runs
    assert methods[0].startswith("batched-")
    ids = [r.meta.get("request_id") for r in service.recorder.runs[1:]]
    assert ids == ["q0", "q1", "q2"]
    # Per-request runs carry the request's own residual trace and outcome.
    for run in service.recorder.runs[1:]:
        assert run.residual_norms[0] > 0
        assert run.summary["converged"] is True


def test_telemetry_strict_json_with_diverged_request():
    # A rho(B) > 1 system diverges; with no finite divergence limit the
    # residuals genuinely overflow to inf, so the export must sanitise
    # non-finite floats to stay parseable under a strict JSON parser.
    A = CSRMatrix.from_dense(np.array([[1.0, 8.0], [8.0, 1.0]]))
    service = _service(
        stopping=StoppingCriterion(
            tol=1e-10, maxiter=400, divergence_limit=float("inf")
        )
    )
    response = service.solve(A, np.ones(2))
    assert response.completed
    assert response.result.info["diverged"]
    doc = json.loads(service.telemetry_json(), parse_constant=_reject_constant)
    assert doc["schema"] == "repro.serve/v1"
    assert doc["service"]["requests"]["diverged"] == 1
    assert doc["telemetry"]["schema"] == "repro.runtime/v1"
    assert any(run["residuals"]["finite"] is False for run in doc["telemetry"]["runs"])
    line = json.dumps(response.to_dict(), allow_nan=False)
    assert json.loads(line, parse_constant=_reject_constant)["diverged"] is True


def test_diverged_request_batched_strict_json():
    A = CSRMatrix.from_dense(np.array([[1.0, 8.0], [8.0, 1.0]]))
    service = _service(
        stopping=StoppingCriterion(
            tol=1e-10, maxiter=400, divergence_limit=float("inf")
        )
    )
    for seed in range(2):
        service.submit(SolveRequest(A=A, b=np.ones(2), seed=seed))
    responses = service.drain()
    assert [r.batch_size for r in responses] == [2, 2]
    assert all(r.result.info["diverged"] for r in responses)
    json.loads(service.telemetry_json(), parse_constant=_reject_constant)


def test_dump_telemetry(tmp_path, small_spd):
    service = _service()
    service.solve(small_spd, small_spd.matvec(np.ones(60)))
    path = tmp_path / "serve.json"
    service.dump_telemetry(path)
    doc = json.loads(path.read_text(), parse_constant=_reject_constant)
    assert doc["schema"] == "repro.serve/v1"


# --- validation -----------------------------------------------------------


def test_request_validation(small_spd):
    with pytest.raises(ValueError):
        SolveRequest(A=small_spd, b=np.ones(60), timeout=-1.0)
    service = _service()
    with pytest.raises(ValueError):
        service.submit(SolveRequest(A=small_spd, b=np.ones(3)))  # wrong length
    with pytest.raises(ValueError):
        SolveService(max_batch=0)
    with pytest.raises(ValueError):
        SolveService(max_queue=0)
