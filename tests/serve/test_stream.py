"""JSON-lines job streams: parsing, overrides, end-to-end driving."""

import numpy as np
import pytest

from repro.serve import JobStreamError, SolveService, parse_job, run_job_stream


def _loader(small_spd):
    def load(spec):
        assert spec == "toy"
        return small_spd

    return load


def test_parse_job_overrides(small_spd):
    service = SolveService()
    req = parse_job(
        {
            "matrix": "toy",
            "rhs": "random",
            "id": "j1",
            "priority": 2,
            "timeout": 5,
            "seed": 7,
            "tol": 1e-6,
            "maxiter": 50,
            "local_iterations": 3,
            "block_size": 16,
        },
        service,
        load_matrix=_loader(small_spd),
    )
    assert req.request_id == "j1" and req.priority == 2 and req.seed == 7
    assert req.stopping.tol == 1e-6 and req.stopping.maxiter == 50
    assert req.config.local_iterations == 3 and req.config.block_size == 16
    # Unspecified knobs inherit the service defaults.
    assert req.config.order == service.config.order
    assert req.b.shape == (60,)


def test_parse_job_defaults_fall_through(small_spd):
    service = SolveService()
    req = parse_job({"matrix": "toy"}, service, load_matrix=_loader(small_spd))
    assert req.config is None and req.stopping is None  # service defaults apply
    assert np.array_equal(req.b, small_spd.matvec(np.ones(60)))


def test_parse_job_explicit_rhs(small_spd):
    service = SolveService()
    req = parse_job(
        {"matrix": "toy", "rhs": [1.0] * 60}, service, load_matrix=_loader(small_spd)
    )
    assert np.array_equal(req.b, np.ones(60))


@pytest.mark.parametrize(
    "obj, match",
    [
        ({"rhs": "ones"}, "matrix"),
        ({"matrix": "toy", "typo_key": 1}, "unknown job keys"),
        ({"matrix": "toy", "local_iterations": 0}, "local_iterations"),
    ],
)
def test_parse_job_errors(small_spd, obj, match):
    service = SolveService()
    with pytest.raises(JobStreamError, match=match):
        parse_job(obj, service, load_matrix=_loader(small_spd))


def test_run_job_stream_end_to_end(small_spd):
    service = SolveService()
    lines = [
        '{"matrix": "toy", "id": "a", "seed": 0}',
        "",
        "# a comment",
        '{"matrix": "toy", "id": "b", "seed": 1}',
    ]
    emitted = []
    responses = run_job_stream(
        lines, service, emit=emitted.append, load_matrix=_loader(small_spd)
    )
    assert [r.request_id for r in responses] == ["a", "b"]
    assert emitted == responses
    assert all(r.completed and r.batch_size == 2 for r in responses)
    # One load, one matrix object: both jobs shared the cache entry.
    assert service.stats()["cache"]["misses"] == 1


def test_run_job_stream_bad_line_reports_lineno(small_spd):
    service = SolveService()
    with pytest.raises(JobStreamError, match="line 2"):
        run_job_stream(
            ['{"matrix": "toy"}', "{not json"],
            service,
            load_matrix=_loader(small_spd),
        )


def test_parse_job_schwarz_override(small_spd):
    service = SolveService()
    req = parse_job(
        {"matrix": "toy", "partition": "uniform:10+o2", "schwarz": "ras"},
        service,
        load_matrix=_loader(small_spd),
    )
    assert req.config.schwarz == "ras"
    assert req.config.partition == "uniform:10+o2"
    assert req.config.schwarz_overlap == 2


def test_parse_job_rejects_bad_schwarz_and_spec(small_spd):
    service = SolveService()
    with pytest.raises(JobStreamError, match="schwarz"):
        parse_job(
            {"matrix": "toy", "schwarz": "as"}, service, load_matrix=_loader(small_spd)
        )
    with pytest.raises(JobStreamError, match="overlap suffix"):
        parse_job(
            {"matrix": "toy", "partition": "uniform:4+x2"},
            service,
            load_matrix=_loader(small_spd),
        )
