"""Tests for shared experiment plumbing."""

import numpy as np
import pytest

from repro.experiments.runner import (
    FIG6_ITERS,
    ensemble_runs,
    is_full_mode,
    iterations_to_tolerance,
    pad_history,
    paper_async_config,
)
from repro.solvers.base import SolveResult


def test_paper_async_config_occupancy():
    cfg = paper_async_config(5)
    assert cfg.local_iterations == 5
    assert cfg.block_size == 448
    assert cfg.concurrency == 42  # C2070 occupancy at 448 threads


def test_paper_async_config_block128():
    cfg = paper_async_config(5, block_size=128)
    assert cfg.concurrency == 168


def test_fig6_budgets():
    assert FIG6_ITERS["fv3"] == 25000  # the paper's extreme panel


def test_ensemble_runs_env(monkeypatch):
    monkeypatch.delenv("REPRO_RUNS", raising=False)
    assert ensemble_runs(True) == 50
    assert ensemble_runs(False) == 1000
    monkeypatch.setenv("REPRO_RUNS", "7")
    assert ensemble_runs(True) == 7


def test_is_full_mode(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not is_full_mode()
    monkeypatch.setenv("REPRO_FULL", "1")
    assert is_full_mode()


def _result(residuals, b_norm=1.0):
    return SolveResult(
        x=np.zeros(1), residuals=np.array(residuals), converged=True, method="t", b_norm=b_norm
    )


def test_iterations_to_tolerance():
    r = _result([1.0, 0.1, 0.01, 0.001])
    assert iterations_to_tolerance(r, 0.05) == 2
    assert iterations_to_tolerance(r, 1e-9) is None


def test_pad_history():
    h = np.array([1.0, 0.5])
    assert pad_history(h, 4).tolist() == [1.0, 0.5, 0.5, 0.5]
    assert pad_history(h, 2).tolist() == [1.0, 0.5]
    assert pad_history(np.arange(5.0), 3).tolist() == [0.0, 1.0, 2.0]
