"""Tests for report rendering."""

import numpy as np
import pytest

from repro.experiments import ExperimentResult, TableArtifact, ascii_table
from repro.experiments.report import format_value, series_table


def test_format_value_kinds():
    assert format_value(None) == "-"
    assert format_value("abc") == "abc"
    assert format_value(5) == "5"
    assert format_value(True) == "True"
    assert format_value(0.0) == "0"
    assert format_value(1.5) == "1.5"
    assert format_value(3.2e-7) == "3.2000e-07"
    assert format_value(float("inf")) == "inf"
    assert format_value(float("nan")) == "nan"
    assert format_value(np.float64(2.0)) == "2"


def test_ascii_table_alignment():
    out = ascii_table(["a", "bb"], [[1, 2.0], [333, 4.5e-9]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "---" in lines[2]
    assert len({len(l) for l in lines[1:]}) == 1  # aligned widths


def test_ascii_table_row_length_mismatch():
    with pytest.raises(ValueError, match="cells"):
        ascii_table(["a", "b"], [[1]])


def test_table_artifact_render():
    t = TableArtifact("title", ["x"], [[1], [2]])
    out = t.render()
    assert out.startswith("title")
    assert "2" in out


def test_experiment_result_render():
    r = ExperimentResult("T9", "demo", [TableArtifact("t", ["x"], [[1]])], {}, ["a note"])
    out = r.render()
    assert "=== T9: demo ===" in out
    assert "note: a note" in out


def test_series_table_sampling():
    x = np.arange(100, dtype=float)
    t = series_table("s", x, {"y": x * 2}, max_points=5)
    assert len(t.rows) == 5
    assert t.rows[0][0] == 0.0
    assert t.rows[-1][0] == 99.0


def test_series_table_validation():
    with pytest.raises(ValueError, match="length"):
        series_table("s", np.arange(5.0), {"y": np.arange(4.0)})
    with pytest.raises(ValueError, match="empty"):
        series_table("s", np.zeros(0), {})


def test_to_dict_and_json_roundtrip():
    import json

    r = ExperimentResult(
        "T0",
        "demo",
        [TableArtifact("t", ["x", "y"], [[1, np.float64(2.5)], ["s", None]])],
        {"fig": {"x": np.arange(3.0), "y": np.ones(3)}},
        ["note"],
    )
    data = json.loads(r.to_json())
    assert data["tables"][0]["rows"][0] == [1, 2.5]
    assert data["tables"][0]["rows"][1] == ["s", None]
    assert data["series"]["fig"]["y"] == [1.0, 1.0, 1.0]
    assert data["notes"] == ["note"]
