"""Smoke + shape tests for the fast experiments.

The heavy experiments (ensembles, Fig. 6/7/9 full panels) are exercised by
the benchmark harness; here the cheap ones run end to end and the paper's
qualitative claims are asserted on their outputs.
"""

import os

import numpy as np
import pytest

from repro.experiments import run_experiment

pytestmark = pytest.mark.filterwarnings("ignore")

# Keep any ensemble-based path tiny if accidentally triggered.
os.environ.setdefault("REPRO_RUNS", "8")


@pytest.fixture(scope="module")
def t4():
    return run_experiment("T4")


@pytest.fixture(scope="module")
def f11():
    return run_experiment("F11")


def test_t1_matches_table1_rhos():
    r = run_experiment("T1")
    rows = {row[0]: row for row in r.tables[0].rows}
    for name in ("fv1", "fv3", "Trefethen_2000", "s1rmt3m1", "Chem97ZtZ"):
        paper_rho, measured_rho = rows[name][7], rows[name][8]
        assert abs(measured_rho - paper_rho) < 5e-3, name


def test_f1_structure_metrics():
    r = run_experiment("F1")
    rows = {row[0]: row for row in r.tables[0].rows}
    assert rows["Chem97ZtZ"][4] == 1.0  # diagonal local blocks
    assert rows["s1rmt3m1"][3] == 24  # band width of the Gram surrogate
    assert rows["fv1"][4] > rows["fv1"][5]  # off-block mass falls with block size


def test_t4_model_matches_paper(t4):
    modelled = {row[0]: row[1:] for row in t4.tables[0].rows}
    paper = {row[0]: row[1:] for row in t4.tables[1].rows}
    for k, vals in modelled.items():
        for ours, theirs in zip(vals, paper[k]):
            assert abs(ours - theirs) / theirs < 0.02


def test_t4_measured_monotone_in_k(t4):
    secs = [row[1] for row in t4.tables[2].rows]
    assert secs[0] < secs[-1]  # more local iterations cost more


def test_f8_shapes():
    r = run_experiment("F8")
    s = r.series["fig8_fv3"]
    gs = s["Gauss-Seidel (CPU)"]
    jac = s["Jacobi (GPU)"]
    assert np.allclose(gs, gs[0])  # flat CPU line
    assert np.all(np.diff(jac) <= 1e-12)  # decaying GPU averages
    assert jac[0] > 2 * jac[-1]


def test_f11_shapes(f11):
    rows = {row[0]: row[1:] for row in f11.tables[0].rows}
    amc = rows["AMC"]
    assert amc[1] < 0.6 * amc[0]  # two GPUs nearly halve
    assert amc[1] < amc[2] < amc[0]  # three between two and one
    assert amc[3] < amc[1]  # four best
    for strat in ("DC", "DK"):
        vals = rows[strat]
        assert vals[0] < amc[0]  # direct faster on one GPU
        assert vals[2] > vals[1]  # degrade past the socket


def test_f11_convergence_unaffected(f11):
    iters = [row[1] for row in f11.tables[1].rows]
    assert max(iters) - min(iters) <= 2


def test_x1_smoother_ordering():
    r = run_experiment("X1")
    by_kind = {}
    for kind, sweeps, _, cf in r.tables[0].rows:
        if sweeps == 2:
            by_kind[kind] = cf
    assert by_kind["gauss-seidel"] <= by_kind["async"] <= by_kind["jacobi"] + 0.02
    assert all(cf < 0.3 for cf in by_kind.values())


def test_x3_rcm_reduces_bandwidth():
    r = run_experiment("X3")
    rows = {row[0]: row for row in r.tables[0].rows}
    assert rows["RCM-reordered"][1] < rows["original"][1]
