"""Tests for the experiment registry."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


def test_all_paper_artifacts_registered():
    expected = {"T1", "F1", "T2", "T3", "F5", "F6", "F7", "T4", "T5", "F8", "F9", "F10", "T6", "F11", "X1", "X2", "X3"}
    assert expected <= set(EXPERIMENTS)


def test_aliases_share_runner():
    assert get_experiment("T3").runner is get_experiment("T2").runner
    assert get_experiment("F5").runner is get_experiment("T2").runner
    assert get_experiment("T6").runner is get_experiment("F10").runner


def test_case_insensitive_lookup():
    assert get_experiment("t1") is get_experiment("T1")


def test_unknown_experiment():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("T99")


def test_runner_signature():
    for e in set(EXPERIMENTS.values()):
        assert callable(e.runner)
        assert e.title
