"""Tests for the run-ensemble driver."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.stats import run_ensemble


def test_ensemble_shapes(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10)
    s = run_ensemble(small_spd, b, nruns=5, iterations=20, config=cfg, checkpoints=[5, 10, 20])
    assert s.nruns == 5
    assert s.checkpoints.tolist() == [5, 10, 20]
    assert np.all(s.mean > 0)
    assert np.all(s.max >= s.min)


def test_ensemble_relative_vs_absolute(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=1, block_size=10)
    rel = run_ensemble(small_spd, b, 3, 5, config=cfg)
    absolute = run_ensemble(small_spd, b, 3, 5, config=cfg, relative=False)
    assert np.allclose(absolute.mean, rel.mean * np.linalg.norm(b))


def test_ensemble_seeds_distinct_runs(fv1):
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    cfg = AsyncConfig(local_iterations=2, block_size=128, order="gpu", concurrency=168)
    s = run_ensemble(fv1, b, nruns=4, iterations=15, config=cfg, checkpoints=[15])
    # gpu order with per-entry races: different seeds must differ.
    assert s.abs_variation[0] > 0


def test_ensemble_synchronous_is_deterministic(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=1, block_size=10, order="synchronous")
    s = run_ensemble(small_spd, b, nruns=4, iterations=10, config=cfg)
    assert np.all(s.abs_variation == 0.0)


def test_ensemble_custom_factory(small_spd):
    b = small_spd.matvec(np.ones(60))
    seen = []

    def factory(seed):
        seen.append(seed)
        return BlockAsyncSolver(AsyncConfig(local_iterations=1, block_size=10, seed=seed))

    run_ensemble(small_spd, b, nruns=3, iterations=4, factory=factory, seed0=100)
    assert seen == [100, 101, 102]


def test_ensemble_requires_config_or_factory(small_spd):
    with pytest.raises(ValueError, match="factory or config"):
        run_ensemble(small_spd, np.ones(60), 2, 3)


def test_ensemble_validation(small_spd):
    cfg = AsyncConfig(block_size=10)
    with pytest.raises(ValueError):
        run_ensemble(small_spd, np.ones(60), 0, 3, config=cfg)
    with pytest.raises(ValueError):
        run_ensemble(small_spd, np.ones(60), 2, 0, config=cfg)


def test_ensemble_pads_early_converged(small_spd):
    # Identity-like trivial system converges to exact zero quickly; the
    # histories must still align.
    from repro.sparse import CSRMatrix

    A = CSRMatrix.identity(20)
    b = np.ones(20)
    cfg = AsyncConfig(local_iterations=1, block_size=5)
    s = run_ensemble(A, b, nruns=3, iterations=10, config=cfg)
    assert len(s.mean) == 11
    assert s.mean[-1] == 0.0


def test_ensemble_batched_matches_sequential(small_spd):
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=2, block_size=10, order="gpu")
    seq = run_ensemble(small_spd, b, 6, 8, config=cfg, batched=False)
    bat = run_ensemble(small_spd, b, 6, 8, config=cfg, batched=True)
    for field in ("mean", "max", "min", "variance"):
        assert np.array_equal(getattr(seq, field), getattr(bat, field))


def test_ensemble_batched_is_default_for_configs(small_spd, monkeypatch):
    # Config-driven ensembles take the batched path unless told otherwise.
    from repro.stats import ensembles

    called = {}
    orig = ensembles._batched_histories

    def spy(*args, **kwargs):
        called["batched"] = True
        return orig(*args, **kwargs)

    monkeypatch.setattr(ensembles, "_batched_histories", spy)
    b = small_spd.matvec(np.ones(60))
    cfg = AsyncConfig(local_iterations=1, block_size=10)
    run_ensemble(small_spd, b, 2, 3, config=cfg)
    assert called.get("batched")


def test_ensemble_batched_rejects_factory(small_spd):
    b = small_spd.matvec(np.ones(60))

    def factory(seed):
        return BlockAsyncSolver(AsyncConfig(block_size=10, seed=seed))

    with pytest.raises(ValueError, match="batched"):
        run_ensemble(small_spd, b, 2, 3, factory=factory, batched=True)


def test_ensemble_preserves_factory_stopping(small_spd):
    # Only maxiter is capped; the factory's tolerance and divergence limit
    # must survive (they used to be clobbered wholesale).
    from repro.solvers import StoppingCriterion

    b = small_spd.matvec(np.ones(60))
    solvers = []

    def factory(seed):
        s = BlockAsyncSolver(
            AsyncConfig(local_iterations=1, block_size=10, seed=seed),
            stopping=StoppingCriterion(tol=1e-3, maxiter=99, divergence_limit=1e7),
        )
        solvers.append(s)
        return s

    run_ensemble(small_spd, b, 2, 5, factory=factory)
    for s in solvers:
        assert s.stopping.maxiter == 5
        assert s.stopping.tol == 1e-3
        assert s.stopping.divergence_limit == 1e7


def test_ensemble_rejects_overlong_history(small_spd):
    # A factory whose solver ignores the installed maxiter would silently
    # misalign every checkpoint; that is an error, not a shrug.
    from repro.solvers.base import SolveResult

    b = small_spd.matvec(np.ones(60))

    class RogueSolver(BlockAsyncSolver):
        def solve(self, A, bb, x0=None):
            return SolveResult(
                x=np.zeros(60),
                residuals=np.linspace(1.0, 0.1, 12),  # 11 iterations > 4
                converged=False,
                method="rogue",
                b_norm=float(np.linalg.norm(bb)),
            )

    def factory(seed):
        return RogueSolver(AsyncConfig(block_size=10, seed=seed))

    with pytest.raises(ValueError, match="more than the requested"):
        run_ensemble(small_spd, b, 2, 4, factory=factory)
