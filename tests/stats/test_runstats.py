"""Tests for ensemble statistics."""

import numpy as np
import pytest

from repro.stats import EnsembleStats


def make_histories():
    # Three runs with known values at 3 checkpoints (iterations 0, 1, 2).
    return [
        np.array([1.0, 0.5, 0.25]),
        np.array([1.0, 0.4, 0.20]),
        np.array([1.0, 0.6, 0.30]),
    ]


def test_basic_statistics():
    s = EnsembleStats.from_histories(make_histories())
    assert s.nruns == 3
    assert np.allclose(s.mean, [1.0, 0.5, 0.25])
    assert np.allclose(s.max, [1.0, 0.6, 0.30])
    assert np.allclose(s.min, [1.0, 0.4, 0.20])
    assert np.allclose(s.abs_variation, [0.0, 0.2, 0.1])
    assert np.allclose(s.rel_variation, [0.0, 0.4, 0.4])


def test_variance_and_derived():
    s = EnsembleStats.from_histories(make_histories())
    expected_var = np.var([0.5, 0.4, 0.6], ddof=1)
    assert np.isclose(s.variance[1], expected_var)
    assert np.isclose(s.std[1], np.sqrt(expected_var))
    assert np.isclose(s.stderr[1], np.sqrt(expected_var) / np.sqrt(3))


def test_checkpoints_selection():
    s = EnsembleStats.from_histories(make_histories(), checkpoints=[2])
    assert s.checkpoints.tolist() == [2]
    assert np.allclose(s.mean, [0.25])


def test_checkpoint_out_of_range():
    with pytest.raises(ValueError, match="checkpoint"):
        EnsembleStats.from_histories(make_histories(), checkpoints=[5])


def test_unequal_lengths_rejected():
    with pytest.raises(ValueError, match="length"):
        EnsembleStats.from_histories([np.ones(3), np.ones(4)])


def test_empty_rejected():
    with pytest.raises(ValueError, match="at least one"):
        EnsembleStats.from_histories([])


def test_single_run_zero_variance():
    s = EnsembleStats.from_histories([np.array([1.0, 0.5])])
    assert np.all(s.variance == 0.0)
    assert np.all(s.abs_variation == 0.0)


def test_rel_variation_zero_mean_guard():
    s = EnsembleStats.from_histories([np.array([0.0]), np.array([0.0])])
    assert s.rel_variation[0] == 0.0


def test_rows_format():
    s = EnsembleStats.from_histories(make_histories(), checkpoints=[1, 2])
    rows = s.rows()
    assert len(rows) == 2
    assert rows[0][0] == 1  # checkpoint index
    assert len(rows[0]) == 9  # the paper's 8 statistics + index


def test_variation_growth_slope():
    # Construct histories whose relative variation grows linearly.
    base = 0.5 ** np.arange(20.0)
    hi = base * (1.0 + 0.01 * np.arange(20.0))
    lo = base * (1.0 - 0.01 * np.arange(20.0))
    s = EnsembleStats.from_histories([base, hi, lo])
    slope = s.variation_growth()
    assert 0.015 < slope < 0.025  # rel variation = 0.02 * k


def test_variation_growth_flat_when_constant():
    base = 0.5 ** np.arange(20.0)
    s = EnsembleStats.from_histories([base, base * 1.001])
    assert abs(s.variation_growth()) < 1e-6


def test_variation_growth_empty_after_floor():
    s = EnsembleStats.from_histories([np.full(5, 1e-16), np.full(5, 1e-16)])
    assert s.variation_growth() == 0.0
