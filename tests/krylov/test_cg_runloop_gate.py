"""History gate: CG-on-RunLoop is bitwise the pre-refactor bespoke loop.

:class:`~repro.solvers.ConjugateGradientSolver` carries its recurrence
state through a closure driven by :class:`~repro.runtime.RunLoop`, with
the direction refresh deferred from the end of iteration *k* (the
classical placement) to the start of iteration *k+1*.  That deferral runs
the identical floating-point operations on identical values whenever the
loop continues — so against the classical loop written out longhand, the
iterates *and* the recorded residual histories must match **bitwise**,
with and without a preconditioner, across the matrix suite.
"""

import numpy as np
import pytest

from repro.krylov import AsyncSweepPreconditioner
from repro.matrices import default_rhs, get_matrix
from repro.solvers import ConjugateGradientSolver, StoppingCriterion


def classical_pcg(A, b, M=None, *, stopping):
    """The pre-refactor loop: refresh at iteration end, own bookkeeping."""
    n = A.shape[0]
    x = np.zeros(n)
    b_norm = float(np.linalg.norm(b))
    threshold = stopping.threshold(b_norm)
    r = A.residual(x, b)
    z = M(r) if M else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r))]
    converged = residuals[0] <= threshold
    it = 0
    while not converged and it < stopping.maxiter:
        Ap = A.matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0 or not np.isfinite(pAp):
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        it += 1
        res = float(np.linalg.norm(A.residual(x, b)))
        residuals.append(res)
        if res <= threshold:
            converged = True
            break
        # Classical placement: refresh the search direction here.
        z = M(r) if M else r
        rz_new = float(r @ z)
        if rz == 0.0:
            break
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return x, np.asarray(residuals), converged


@pytest.mark.parametrize(
    "name,tol,maxiter",
    [
        ("fv1", 1e-10, 4000),
        ("fv2", 1e-10, 4000),
        ("fv3", 1e-8, 4000),
        ("Chem97ZtZ", 1e-10, 1000),
        ("Trefethen_2000", 1e-10, 500),
    ],
)
def test_cg_history_bitwise_across_suite(name, tol, maxiter):
    A = get_matrix(name)
    b = default_rhs(A)
    stop = StoppingCriterion(tol=tol, maxiter=maxiter)
    result = ConjugateGradientSolver(stopping=stop).solve(A, b)
    x, residuals, converged = classical_pcg(A, b, stopping=stop)
    assert np.array_equal(result.residuals, residuals)
    assert np.array_equal(result.x, x)
    assert result.converged == converged


@pytest.mark.parametrize("name", ["fv1", "Trefethen_2000"])
def test_preconditioned_cg_history_bitwise(name):
    A = get_matrix(name)
    b = default_rhs(A)
    stop = StoppingCriterion(tol=1e-10, maxiter=2000)
    M = AsyncSweepPreconditioner(A, sweeps=2)
    result = ConjugateGradientSolver(preconditioner=M, stopping=stop).solve(A, b)
    x, residuals, converged = classical_pcg(A, b, M, stopping=stop)
    assert np.array_equal(result.residuals, residuals)
    assert np.array_equal(result.x, x)
    assert result.converged == converged


def test_truncated_budget_history_bitwise(small_spd):
    # Budget exhaustion (no convergence) must also leave identical traces.
    b = default_rhs(small_spd)
    stop = StoppingCriterion(tol=0.0, maxiter=7)
    result = ConjugateGradientSolver(stopping=stop).solve(small_spd, b)
    x, residuals, _ = classical_pcg(small_spd, b, stopping=stop)
    assert np.array_equal(result.residuals, residuals)
    assert np.array_equal(result.x, x)
    assert len(result.residuals) == 8
