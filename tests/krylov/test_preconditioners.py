"""Operator-property tests for the repro.krylov preconditioners."""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.krylov import (
    AsyncSweepPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
)
from repro.sparse import BlockRowView


def _assemble(M, n):
    P = np.zeros((n, n))
    for i in range(n):
        e = np.zeros(n)
        e[i] = 1.0
        P[:, i] = M(e)
    return P


# --- protocol -------------------------------------------------------------


def test_implementations_satisfy_protocol(small_spd):
    assert isinstance(AsyncSweepPreconditioner(small_spd, sweeps=1), Preconditioner)
    assert isinstance(JacobiPreconditioner(small_spd), Preconditioner)


# --- linearity / determinism ----------------------------------------------


def test_linearity_to_fp_tolerance(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=2)
    gen = np.random.default_rng(0)
    r1 = gen.standard_normal(60)
    r2 = gen.standard_normal(60)
    assert np.allclose(M(3.0 * r1 - 0.5 * r2), 3.0 * M(r1) - 0.5 * M(r2), atol=1e-12)


def test_bitwise_deterministic_across_applications(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=2)
    r = np.random.default_rng(1).standard_normal(60)
    first = M(r)
    for _ in range(3):
        assert np.array_equal(M(r), first)


def test_zero_guess_maps_zero_to_zero_exactly(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=3)
    assert np.all(M(np.zeros(60)) == 0.0)


# --- compile-once ---------------------------------------------------------


def test_engines_and_plan_persist_across_applications(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=1)
    fwd, rev, view = M._forward, M._reverse, M.view
    r = np.random.default_rng(2).standard_normal(60)
    M(r)
    M(r)
    assert M._forward is fwd and M._reverse is rev and M.view is view


def test_shared_view_is_used_verbatim(small_spd):
    cfg = AsyncConfig(local_iterations=1, block_size=16)
    view = BlockRowView(small_spd, block_size=16)
    M = AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg, view=view)
    assert M.view is view


# --- schedule freezing ----------------------------------------------------


def test_freeze_forces_deterministic_schedule(small_spd):
    cfg = AsyncConfig(
        local_iterations=2,
        block_size=16,
        order="gpu",
        stale_read_prob=0.3,
        deferred_write_prob=0.2,
        seed=42,
    )
    M = AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg)
    assert M.config.order == "sequential"
    assert M.config.stale_read_prob == 0.0
    assert M.config.deferred_write_prob == 0.0
    assert M.config.seed == 0


@pytest.mark.parametrize(
    "order,reverse", [("sequential", "reversed"), ("reversed", "sequential"), ("synchronous", "synchronous")]
)
def test_deterministic_orders_kept_and_paired(small_spd, order, reverse):
    cfg = AsyncConfig(local_iterations=1, block_size=16, order=order)
    M = AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg)
    assert M.config.order == order
    assert M.reverse_config.order == reverse


def test_unfrozen_is_a_smoother_not_an_operator(small_spd):
    cfg = AsyncConfig(local_iterations=2, block_size=16, order="gpu", seed=5)
    M = AsyncSweepPreconditioner(small_spd, sweeps=2, config=cfg, freeze=False)
    assert M.config.order == "gpu"  # kept verbatim
    with pytest.raises(ValueError, match="smoother"):
        M(np.zeros(60))
    b = np.ones(60)
    x = M.smooth(np.zeros(60), b)
    assert x.shape == (60,) and np.linalg.norm(small_spd.residual(x, b)) < np.linalg.norm(b)


def test_schwarz_configs_rejected(small_spd):
    cfg = AsyncConfig(local_iterations=1, block_size=16, schwarz="ras", partition="uniform+o1")
    with pytest.raises(ValueError, match="[Ss]chwarz"):
        AsyncSweepPreconditioner(small_spd, config=cfg)


def test_shape_and_sweeps_validation(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=1)
    with pytest.raises(ValueError, match="shape"):
        M(np.zeros(7))
    with pytest.raises(ValueError, match="sweeps"):
        AsyncSweepPreconditioner(small_spd, sweeps=0)


# --- symmetry -------------------------------------------------------------


def test_symmetrize_reduces_symmetry_defect(small_spd):
    cfg = AsyncConfig(local_iterations=2, block_size=10)
    one_sided = _assemble(
        AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=False), 60
    )
    paired = _assemble(
        AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=True), 60
    )

    def defect(P):
        return np.linalg.norm(P - P.T) / np.linalg.norm(P)

    assert defect(paired) < defect(one_sided)


def test_snapshot_operator_is_exactly_symmetric_up_to_fp(small_spd):
    # order="synchronous", k=1: each sweep is one damped-Jacobi step, so
    # the assembled operator is a polynomial in D^-1 A — symmetric in the
    # D inner product; in the Euclidean one D^{1/2} P D^{-1/2} is symmetric.
    cfg = AsyncConfig(local_iterations=1, block_size=16, order="synchronous", omega=0.5)
    P = _assemble(
        AsyncSweepPreconditioner(small_spd, sweeps=2, config=cfg, symmetrize=False), 60
    )
    d = small_spd.diagonal()
    S = np.sqrt(d)[:, None] * P * np.sqrt(d)[None, :]
    assert np.linalg.norm(S - S.T) / np.linalg.norm(S) < 1e-12


# --- spectrum bounds ------------------------------------------------------


def test_snapshot_spectrum_bounds_enclose_assembled_eigenvalues(small_spd):
    cfg = AsyncConfig(local_iterations=1, block_size=16, order="synchronous", omega=0.4)
    M = AsyncSweepPreconditioner(small_spd, sweeps=2, config=cfg, symmetrize=False)
    lo, hi = M.spectrum_bounds()
    assert 0.0 < lo <= hi
    PA = _assemble(M, 60) @ small_spd.to_dense()
    eig = np.linalg.eigvals(PA).real
    assert eig.min() >= lo - 1e-8 and eig.max() <= hi + 1e-8


def test_spectrum_bounds_requires_snapshot_regime(small_spd):
    M = AsyncSweepPreconditioner(small_spd, sweeps=1)  # sequential, k=2
    with pytest.raises(ValueError, match="snapshot"):
        M.spectrum_bounds()


def test_spectrum_bounds_rejects_indefinite_operator(small_spd):
    # omega far beyond 2/lambda_max with an even sweep count makes
    # 1-(1-omega*lam)^m dip below zero.
    cfg = AsyncConfig(local_iterations=1, block_size=16, order="synchronous", omega=1e6)
    with pytest.raises(ValueError, match="not positive"):
        AsyncSweepPreconditioner(
            small_spd, sweeps=2, config=cfg, symmetrize=False
        ).spectrum_bounds()


def test_snapshot_backend_is_not_reference(small_spd):
    cfg = AsyncConfig(local_iterations=1, block_size=16, order="synchronous", omega=0.4)
    M = AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=False)
    assert M.backend != "reference"


# --- jacobi baseline ------------------------------------------------------


def test_jacobi_matches_diagonal_scaling(small_spd):
    M = JacobiPreconditioner(small_spd)
    r = np.random.default_rng(3).standard_normal(60)
    assert np.array_equal(M(r), r * (1.0 / small_spd.diagonal()))
    assert M.name == "jacobi"


def test_jacobi_spectrum_bounds(small_spd):
    M = JacobiPreconditioner(small_spd)
    lo, hi = M.spectrum_bounds()
    assert 0.0 < lo <= hi
    assert M.spectrum_bounds(lambda_bounds=(0.5, 2.0)) == (0.5, 2.0)


def test_jacobi_rejects_nonpositive_diagonal():
    from repro.sparse import CSRMatrix

    bad = CSRMatrix.from_dense(np.diag([1.0, -2.0, 3.0]))
    with pytest.raises(ValueError, match="diagonal"):
        JacobiPreconditioner(bad)


# --- name -----------------------------------------------------------------


def test_name_encodes_inner_sweep_shape(small_spd):
    cfg = AsyncConfig(local_iterations=3, block_size=16)
    assert (
        AsyncSweepPreconditioner(small_spd, sweeps=2, config=cfg).name == "async(3x2,sym)"
    )
    assert (
        AsyncSweepPreconditioner(small_spd, sweeps=1, config=cfg, symmetrize=False).name
        == "async(3x1)"
    )
