"""First/second-order async Richardson: identities, tuning, validation."""

import dataclasses

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.core.engine import AsyncEngine
from repro.krylov import AsyncRichardsonSolver, AsyncSweepPreconditioner
from repro.matrices import default_rhs
from repro.solvers import StoppingCriterion
from repro.sparse import BlockRowView


def test_alpha_one_equals_plain_engine_sweeps(small_spd):
    # With alpha=1 and P = m frozen zero-guess sweeps, each outer step is
    # exactly m ordinary engine sweeps from the current iterate.
    cfg = AsyncConfig(local_iterations=2, block_size=16, order="sequential")
    b = default_rhs(small_spd)
    iters = 5
    solver = AsyncRichardsonSolver(
        cfg, order=1, sweeps=2, alpha=1.0,
        stopping=StoppingCriterion(tol=0.0, maxiter=iters),
    )
    result = solver.solve(small_spd, b)

    frozen = dataclasses.replace(cfg, stale_read_prob=0.0, deferred_write_prob=0.0, seed=0)
    engine = AsyncEngine(BlockRowView(small_spd, block_size=16), b, frozen)
    x = np.zeros(60)
    for _ in range(iters * 2):
        x = engine.sweep(x)

    scale = np.linalg.norm(x)
    assert np.allclose(result.x, x, atol=1e-10 * max(scale, 1.0))


def test_order1_defaults_to_alpha_one(small_spd):
    b = default_rhs(small_spd)
    solver = AsyncRichardsonSolver(
        AsyncConfig(local_iterations=2, block_size=16),
        stopping=StoppingCriterion(tol=1e-10, maxiter=500),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    assert result.info["alpha"] == 1.0 and result.info["beta"] == 0.0
    assert result.info["preconditioner"].startswith("async(")
    assert result.method == "richardson"


def test_order2_auto_tunes_and_converges(small_spd):
    b = default_rhs(small_spd)
    solver = AsyncRichardsonSolver(
        AsyncConfig(block_size=16),
        order=2,
        stopping=StoppingCriterion(tol=1e-10, maxiter=2000),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    assert result.info["beta"] > 0.0
    assert result.method == "richardson2"


def test_order2_momentum_beats_order1_on_same_operator(trefethen_small):
    b = default_rhs(trefethen_small)
    stop = StoppingCriterion(tol=1e-10, maxiter=4000)
    kw = dict(config=AsyncConfig(block_size=64), stopping=stop)
    r1 = AsyncRichardsonSolver(order=1, **kw).solve(trefethen_small, b)
    r2 = AsyncRichardsonSolver(order=2, **kw).solve(trefethen_small, b)
    assert r1.converged and r2.converged
    assert r2.iterations <= r1.iterations


def test_explicit_alpha_beta_used_verbatim(small_spd):
    b = default_rhs(small_spd)
    solver = AsyncRichardsonSolver(
        AsyncConfig(block_size=16),
        order=2,
        alpha=0.8,
        beta=0.1,
        stopping=StoppingCriterion(tol=1e-10, maxiter=2000),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    assert result.info["alpha"] == 0.8 and result.info["beta"] == 0.1


def test_explicit_mu_bounds_drive_heavy_ball(small_spd):
    b = default_rhs(small_spd)
    solver = AsyncRichardsonSolver(
        AsyncConfig(block_size=16),
        order=2,
        mu_min=0.2,
        mu_max=1.5,
        stopping=StoppingCriterion(tol=1e-10, maxiter=2000),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    s_lo, s_hi = np.sqrt(0.2), np.sqrt(1.5)
    assert result.info["alpha"] == pytest.approx((2.0 / (s_hi + s_lo)) ** 2)
    assert result.info["beta"] == pytest.approx(((s_hi - s_lo) / (s_hi + s_lo)) ** 2)


def test_order2_custom_operator_without_bounds_raises(small_spd):
    class Opaque:
        name = "opaque"

        def __call__(self, r):
            return r

    solver = AsyncRichardsonSolver(order=2, preconditioner=Opaque())
    with pytest.raises(ValueError, match="bounds"):
        solver.solve(small_spd, default_rhs(small_spd))


def test_custom_preconditioner_is_used(small_spd):
    cfg = AsyncConfig(local_iterations=1, block_size=16, order="synchronous", omega=0.4)
    P = AsyncSweepPreconditioner(small_spd, sweeps=2, config=cfg, symmetrize=False)
    solver = AsyncRichardsonSolver(
        order=2, preconditioner=P, stopping=StoppingCriterion(tol=1e-10, maxiter=2000)
    )
    result = solver.solve(small_spd, default_rhs(small_spd))
    assert result.converged
    assert result.info["preconditioner"] == P.name


def test_predicted_rate():
    s = AsyncRichardsonSolver(order=2, mu_min=0.25, mu_max=1.0)
    kappa = 4.0
    assert s.predicted_rate() == pytest.approx((2.0 - 1.0) / (2.0 + 1.0))
    s1 = AsyncRichardsonSolver(order=1, mu_min=0.25, mu_max=1.0)
    assert s1.predicted_rate() == pytest.approx((kappa - 1.0) / (kappa + 1.0))
    assert AsyncRichardsonSolver().predicted_rate() is None


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(order=3), "order"),
        (dict(beta=0.5), "order=2"),
        (dict(order=2, beta=0.5), "alpha"),
        (dict(mu_min=0.1), "both"),
        (dict(order=2, mu_min=-1.0, mu_max=2.0), "0 < mu_min"),
        (dict(sweeps=0), "sweeps"),
    ],
)
def test_constructor_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        AsyncRichardsonSolver(**kwargs)
