"""The solve CLI's --method/--precond outer-solver path."""

import json

import pytest

from repro.cli import main


def test_solve_pcg_method(capsys):
    assert main(["solve", "fv1", "--method", "pcg", "--tol", "1e-8"]) == 0
    out = capsys.readouterr().out
    assert "method:    pcg" in out
    assert "converged: True" in out


def test_solve_cg_json(capsys):
    assert main(["solve", "fv1", "--method", "cg", "--tol", "1e-8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["method"] == "cg" and doc["converged"]


def test_solve_richardson2_small(capsys):
    assert (
        main(
            [
                "solve",
                "Trefethen_2000",
                "--method",
                "richardson2",
                "--tol",
                "1e-8",
                "--maxiter",
                "4000",
            ]
        )
        == 0
    )
    assert "richardson2" in capsys.readouterr().out


def test_solve_gmres_with_jacobi(capsys):
    assert (
        main(
            [
                "solve",
                "fv1",
                "--method",
                "gmres",
                "--precond",
                "jacobi",
                "--restart",
                "25",
                "--tol",
                "1e-8",
            ]
        )
        == 0
    )
    assert "gmres" in capsys.readouterr().out


def test_precond_requires_method(capsys):
    assert main(["solve", "fv1", "--precond", "async:2"]) == 2
    assert "--precond requires --method" in capsys.readouterr().err


def test_bad_precond_spec_is_a_clean_error(capsys):
    assert main(["solve", "fv1", "--method", "pcg", "--precond", "ilu"]) == 2
    assert "unknown preconditioner" in capsys.readouterr().err


def test_parser_accepts_method_choices():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["solve", "fv1", "--method", "pcg", "--precond", "async:3"]
    )
    assert args.method == "pcg" and args.precond == "async:3"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["solve", "fv1", "--method", "sor"])
