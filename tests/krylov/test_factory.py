"""The string-spec factory shared by the CLI and the serve job stream."""

import numpy as np
import pytest

from repro.core import AsyncConfig
from repro.krylov import (
    OUTER_METHODS,
    PRECOND_KINDS,
    AsyncRichardsonSolver,
    AsyncSweepPreconditioner,
    JacobiPreconditioner,
    make_outer_solver,
    make_preconditioner,
    parse_precond_spec,
)
from repro.matrices import default_rhs
from repro.solvers import ConjugateGradientSolver, GMRESSolver, StoppingCriterion


# --- spec parsing ---------------------------------------------------------


@pytest.mark.parametrize(
    "spec,expected",
    [
        (None, ("none", None)),
        ("none", ("none", None)),
        ("jacobi", ("jacobi", None)),
        ("async", ("async", 2)),
        ("async:1", ("async", 1)),
        ("async:5", ("async", 5)),
    ],
)
def test_parse_precond_spec(spec, expected):
    assert parse_precond_spec(spec) == expected


@pytest.mark.parametrize(
    "spec,match",
    [
        ("ilu", "unknown"),
        ("jacobi:2", ":K"),
        ("async:zero", "bad sweep"),
        ("async:0", ">= 1"),
    ],
)
def test_parse_precond_spec_errors(spec, match):
    with pytest.raises(ValueError, match=match):
        parse_precond_spec(spec)


# --- preconditioner construction ------------------------------------------


def test_make_preconditioner_kinds(small_spd):
    assert make_preconditioner(None, small_spd) is None
    assert make_preconditioner("none", small_spd) is None
    assert isinstance(make_preconditioner("jacobi", small_spd), JacobiPreconditioner)
    M = make_preconditioner("async:3", small_spd, config=AsyncConfig(block_size=16))
    assert isinstance(M, AsyncSweepPreconditioner)
    assert M.sweeps == 3


# --- outer solvers --------------------------------------------------------


def test_make_cg_and_pcg(small_spd):
    cg = make_outer_solver("cg", small_spd)
    assert isinstance(cg, ConjugateGradientSolver)
    assert cg.preconditioner is None and cg.name == "cg"
    pcg = make_outer_solver("pcg", small_spd, config=AsyncConfig(block_size=16))
    assert isinstance(pcg.preconditioner, AsyncSweepPreconditioner)
    assert pcg.name == "pcg"


def test_make_gmres_with_restart(small_spd):
    solver = make_outer_solver("gmres", small_spd, precond="jacobi", restart=17)
    assert isinstance(solver, GMRESSolver)
    assert solver.restart == 17
    assert isinstance(solver.preconditioner, JacobiPreconditioner)


def test_make_richardson_variants(small_spd):
    r1 = make_outer_solver("richardson", small_spd, precond="jacobi")
    assert isinstance(r1, AsyncRichardsonSolver)
    assert r1.order == 1 and isinstance(r1.preconditioner, JacobiPreconditioner)
    r2 = make_outer_solver("richardson2", small_spd, precond="async:3")
    assert r2.order == 2 and r2.sweeps == 3 and r2.preconditioner is None


def test_unknown_method(small_spd):
    with pytest.raises(ValueError, match="unknown method"):
        make_outer_solver("sor", small_spd)


@pytest.mark.parametrize("method", OUTER_METHODS)
def test_every_method_solves_the_small_system(small_spd, method):
    b = default_rhs(small_spd)
    solver = make_outer_solver(
        method,
        small_spd,
        config=AsyncConfig(block_size=16),
        stopping=StoppingCriterion(tol=1e-10, maxiter=3000),
    )
    result = solver.solve(small_spd, b)
    assert result.converged
    assert np.linalg.norm(small_spd.residual(result.x, b)) <= 1e-9 * np.linalg.norm(b)


def test_constants_are_consistent():
    assert set(PRECOND_KINDS) == {"none", "jacobi", "async"}
    assert "pcg" in OUTER_METHODS and "richardson2" in OUTER_METHODS
