"""Edge cases of the packed SpMV kernels and the segment-sum scatter.

``CSRMatrix.matvec`` / ``matvec_rows`` route every product through
``_packed_product`` over the lazily built length-class (ELL) plan; the
block decomposition feeds it degenerate shapes — blocks whose external
part is empty, rows with zero nonzeros, single-row blocks — that the
dense-backed tests never exercise.  ``scatter_add_fold`` is the
``np.add.at`` replacement used by the sweep executors and must match it
bitwise (modulo the documented ``-0.0`` base flip).
"""

import numpy as np
import pytest

from repro.sparse import BlockRowView, CSRMatrix
from repro.sparse.csr import scatter_add_fold


def _dense_cases():
    gen = np.random.default_rng(42)
    wide = CSRMatrix._ELL_MAX_WIDTH + 8  # force a reduceat (long-row) run

    mixed = gen.standard_normal((12, 9))
    mixed[np.abs(mixed) < 0.8] = 0.0
    mixed[3, :] = 0.0  # zero-nnz row
    mixed[8, :] = 0.0  # another, non-adjacent

    dense_wide = np.zeros((6, wide + 4))
    dense_wide[0, :wide] = gen.standard_normal(wide)  # wider than the panel cap
    dense_wide[2, :3] = gen.standard_normal(3)
    dense_wide[5, 1] = 2.5  # single-entry row

    return {
        "mixed-with-empty-rows": mixed,
        "all-empty": np.zeros((5, 7)),
        "single-row": gen.standard_normal((1, 6)),
        "single-row-empty": np.zeros((1, 6)),
        "wide-rows": dense_wide,
    }


CASES = _dense_cases()


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_matvec_matches_dense(case):
    dense = CASES[case]
    A = CSRMatrix.from_dense(dense)
    gen = np.random.default_rng(3)
    x = gen.standard_normal(dense.shape[1])
    assert np.allclose(A.matvec(x), dense @ x)
    # Multi-vector path: bitwise equal to R separate 1-D calls.
    X = gen.standard_normal((4, dense.shape[1]))
    Y = A.matvec(X)
    assert Y.shape == (4, dense.shape[0])
    for r in range(4):
        assert np.array_equal(Y[r], A.matvec(X[r]))
    # Zero-nnz rows produce exact zeros on every path.
    empty = np.flatnonzero(A.row_nnz() == 0)
    assert np.array_equal(Y[:, empty], np.zeros((4, len(empty))))


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_matvec_rows_matches_per_row_matvec(case):
    dense = CASES[case]
    A = CSRMatrix.from_dense(dense)
    X = np.random.default_rng(4).standard_normal((5, dense.shape[1]))
    rows = np.array([3, 0, 3, 4])  # out of order, with a duplicate
    Y = A.matvec_rows(X, rows)
    assert Y.shape == (len(rows), dense.shape[0])
    for i, r in enumerate(rows):
        assert np.array_equal(Y[i], A.matvec(X[r]))


def test_matvec_rows_empty_selection():
    A = CSRMatrix.from_dense(CASES["mixed-with-empty-rows"])
    X = np.ones((3, A.ncols))
    Y = A.matvec_rows(X, np.array([], dtype=np.int64))
    assert Y.shape == (0, A.nrows)


def test_matvec_rows_rejects_bad_shapes():
    A = CSRMatrix.from_dense(CASES["mixed-with-empty-rows"])
    with pytest.raises(ValueError, match="shape"):
        A.matvec_rows(np.ones(A.ncols), np.array([0]))
    with pytest.raises(ValueError, match="shape"):
        A.matvec_rows(np.ones((2, A.ncols + 1)), np.array([0]))


def test_single_row_blocks_decomposition(small_spd):
    # block_size=1 degenerates every block to one row, with empty local
    # off-diagonal parts — the sweep kernels must survive and the external
    # parts must reproduce the full matrix row by row.
    view = BlockRowView(small_spd, block_size=1)
    assert view.nblocks == small_spd.shape[0]
    x = np.random.default_rng(6).standard_normal(view.n)
    full = small_spd.matvec(x)
    for blk in view.blocks:
        assert blk.nrows == 1
        local = blk.local_off_compressed()
        assert local.nnz == 0 and local.shape == (1, 1)
        row = blk.external.matvec(x) + blk.diag * x[blk.rows]
        assert np.allclose(row, full[blk.rows])


def test_empty_external_block():
    # A block decoupled from the rest of the system: its external part has
    # zero nonzeros, and its products are exact zeros of the right shape.
    dense = np.zeros((6, 6))
    dense[:3, :3] = np.random.default_rng(8).standard_normal((3, 3)) + 4 * np.eye(3)
    dense[3:, 3:] = np.random.default_rng(9).standard_normal((3, 3)) + 4 * np.eye(3)
    view = BlockRowView(CSRMatrix.from_dense(dense), block_size=3)
    x = np.arange(6, dtype=float)
    for blk in view.blocks:
        assert blk.external.nnz == 0
        assert np.array_equal(blk.external.matvec(x), np.zeros(blk.nrows))
        assert np.array_equal(
            blk.external.matvec(np.tile(x, (3, 1))), np.zeros((3, blk.nrows))
        )


# --------------------------------------------------------------------- #
# scatter_add_fold
# --------------------------------------------------------------------- #


def test_scatter_add_fold_matches_add_at():
    gen = np.random.default_rng(12)
    base = gen.standard_normal(40)
    ids = gen.integers(0, 40, size=300)
    weights = gen.standard_normal(300)
    expected = base.copy()
    np.add.at(expected, ids, weights)
    got = scatter_add_fold(base, ids, weights)
    assert np.array_equal(got, expected)
    # base is untouched; precomputed base_ids give the same result.
    assert np.array_equal(
        got, scatter_add_fold(base, ids, weights, base_ids=np.arange(40, dtype=np.int64))
    )


def test_scatter_add_fold_2d_base_flat_ids():
    gen = np.random.default_rng(13)
    base = gen.standard_normal((3, 8))
    ids = gen.integers(0, base.size, size=50)
    weights = gen.standard_normal(50)
    expected = base.copy()
    np.add.at(expected.reshape(-1), ids, weights)
    assert np.array_equal(scatter_add_fold(base, ids, weights), expected)


def test_scatter_add_fold_empty_and_zero_flip():
    base = np.array([1.0, -0.0, 0.0])
    # No updates: the fold still flips the -0.0 base (documented), values
    # are otherwise identical.
    out = scatter_add_fold(base, np.array([], dtype=np.int64), np.array([]))
    assert np.array_equal(out, np.array([1.0, 0.0, 0.0]))
    assert not np.signbit(out[1])
