"""Unit tests for the CSR compute format."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


def dense_pair(rng, shape=(12, 9), thresh=0.8):
    dense = rng.standard_normal(shape)
    dense[np.abs(dense) < thresh] = 0.0
    return CSRMatrix.from_dense(dense), dense


# --------------------------------------------------------------------- #
# construction / validation
# --------------------------------------------------------------------- #


def test_validation_indptr_length():
    with pytest.raises(ValueError, match="indptr"):
        CSRMatrix([0, 1], [0], [1.0], (3, 3))


def test_validation_indptr_monotone():
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRMatrix([0, 2, 1, 3], [0, 1, 0], [1.0, 2.0, 3.0], (3, 3))


def test_validation_indptr_ends_at_nnz():
    with pytest.raises(ValueError, match="nnz"):
        CSRMatrix([0, 1, 1, 5], [0], [1.0], (3, 3))


def test_validation_column_bounds():
    with pytest.raises(ValueError, match="column index"):
        CSRMatrix([0, 1], [5], [1.0], (1, 3))


def test_validation_sorted_unique_columns():
    with pytest.raises(ValueError, match="sorted"):
        CSRMatrix([0, 2], [1, 0], [1.0, 2.0], (1, 3))
    with pytest.raises(ValueError, match="sorted"):
        CSRMatrix([0, 2], [1, 1], [1.0, 2.0], (1, 3))


def test_identity():
    eye = CSRMatrix.identity(4)
    assert np.array_equal(eye.to_dense(), np.eye(4))


def test_diagonal_matrix():
    d = CSRMatrix.diagonal_matrix([1.0, 2.0, 3.0])
    assert np.array_equal(d.to_dense(), np.diag([1.0, 2.0, 3.0]))


def test_from_scipy(rng):
    import scipy.sparse as sp

    dense = rng.standard_normal((7, 7))
    dense[np.abs(dense) < 1.0] = 0.0
    m = CSRMatrix.from_scipy(sp.csr_matrix(dense))
    assert np.array_equal(m.to_dense(), dense)


# --------------------------------------------------------------------- #
# kernels
# --------------------------------------------------------------------- #


def test_matvec_matches_dense(rng):
    A, dense = dense_pair(rng)
    x = rng.standard_normal(dense.shape[1])
    assert np.allclose(A.matvec(x), dense @ x)


def test_matvec_via_matmul(rng):
    A, dense = dense_pair(rng)
    x = rng.standard_normal(dense.shape[1])
    assert np.allclose(A @ x, dense @ x)


def test_matvec_out_parameter(rng):
    A, dense = dense_pair(rng)
    x = rng.standard_normal(dense.shape[1])
    out = np.empty(dense.shape[0])
    y = A.matvec(x, out=out)
    assert y is out
    assert np.allclose(out, dense @ x)


def test_matvec_empty_rows(small_rect):
    A, dense = small_rect
    x = np.ones(dense.shape[1])
    y = A.matvec(x)
    assert np.allclose(y, dense @ x)
    assert y[7] == 0.0  # the empty row


def test_matvec_wrong_length(rng):
    A, dense = dense_pair(rng)
    with pytest.raises(ValueError, match="shape"):
        A.matvec(np.ones(dense.shape[1] + 1))


def test_matvec_zero_matrix():
    A = COOMatrix.empty((3, 4)).tocsr()
    assert np.array_equal(A.matvec(np.ones(4)), np.zeros(3))


def test_rmatvec_matches_dense(rng):
    A, dense = dense_pair(rng)
    y = rng.standard_normal(dense.shape[0])
    assert np.allclose(A.rmatvec(y), dense.T @ y)


def test_rmatvec_wrong_length(rng):
    A, dense = dense_pair(rng)
    with pytest.raises(ValueError, match="shape"):
        A.rmatvec(np.ones(dense.shape[0] + 2))


def test_residual(rng):
    A, dense = dense_pair(rng, shape=(8, 8))
    x = rng.standard_normal(8)
    b = rng.standard_normal(8)
    assert np.allclose(A.residual(x, b), b - dense @ x)


def test_diagonal(small_spd):
    dense = small_spd.to_dense()
    assert np.allclose(small_spd.diagonal(), np.diag(dense))


def test_diagonal_rectangular(rng):
    A, dense = dense_pair(rng, shape=(5, 9))
    assert np.allclose(A.diagonal(), np.diag(dense)[:5])


# --------------------------------------------------------------------- #
# structural surgery
# --------------------------------------------------------------------- #


def test_split_diagonal(small_spd):
    dense = small_spd.to_dense()
    d, off = small_spd.split_diagonal()
    assert np.allclose(d, np.diag(dense))
    assert np.allclose(off.to_dense(), dense - np.diag(np.diag(dense)))
    assert np.all(off.diagonal() == 0.0)


def test_triangles(rng):
    A, dense = dense_pair(rng, shape=(10, 10))
    assert np.allclose(A.lower_triangle().to_dense(), np.tril(dense, -1))
    assert np.allclose(A.upper_triangle().to_dense(), np.triu(dense, 1))
    assert np.allclose(A.lower_triangle(strict=False).to_dense(), np.tril(dense))
    assert np.allclose(A.upper_triangle(strict=False).to_dense(), np.triu(dense))


def test_row_slice(rng):
    A, dense = dense_pair(rng)
    s = A.row_slice(3, 8)
    assert s.shape == (5, dense.shape[1])
    assert np.allclose(s.to_dense(), dense[3:8])


def test_row_slice_bounds(rng):
    A, _ = dense_pair(rng)
    with pytest.raises(ValueError, match="row range"):
        A.row_slice(5, 100)
    with pytest.raises(ValueError, match="row range"):
        A.row_slice(-1, 3)


def test_row_slice_empty():
    A = CSRMatrix.identity(4)
    s = A.row_slice(2, 2)
    assert s.shape == (0, 4)
    assert s.nnz == 0


def test_column_range_split(rng):
    A, dense = dense_pair(rng, shape=(10, 12))
    local, glob = A.column_range_split(4, 9)
    mask = np.zeros(12, dtype=bool)
    mask[4:9] = True
    assert np.allclose(local.to_dense(), dense * mask)
    assert np.allclose(glob.to_dense(), dense * ~mask)
    # The two parts exactly reassemble the matrix.
    assert np.allclose(local.to_dense() + glob.to_dense(), dense)


def test_column_range_split_bounds(rng):
    A, _ = dense_pair(rng)
    with pytest.raises(ValueError, match="column range"):
        A.column_range_split(5, 100)


def test_transpose(rng):
    A, dense = dense_pair(rng, shape=(6, 11))
    assert np.allclose(A.transpose().to_dense(), dense.T)


def test_abs(rng):
    A, dense = dense_pair(rng)
    assert np.allclose(A.abs().to_dense(), np.abs(dense))


def test_scale_rows_cols(rng):
    A, dense = dense_pair(rng, shape=(5, 7))
    r = rng.standard_normal(5)
    c = rng.standard_normal(7)
    assert np.allclose(A.scale_rows(r).to_dense(), np.diag(r) @ dense)
    assert np.allclose(A.scale_cols(c).to_dense(), dense @ np.diag(c))
    with pytest.raises(ValueError):
        A.scale_rows(np.ones(6))
    with pytest.raises(ValueError):
        A.scale_cols(np.ones(6))


def test_add(rng):
    A, da = dense_pair(rng, shape=(6, 6))
    B, db = dense_pair(np.random.default_rng(5), shape=(6, 6))
    assert np.allclose(A.add(B).to_dense(), da + db)
    assert np.allclose(A.add(B, alpha=-2.0).to_dense(), da - 2 * db)


def test_add_shape_mismatch(rng):
    A, _ = dense_pair(rng, shape=(6, 6))
    B, _ = dense_pair(rng, shape=(5, 6))
    with pytest.raises(ValueError, match="shape"):
        A.add(B)


def test_eliminate_zeros():
    A = CSRMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
    B = A.add(A, alpha=-1.0)  # all-zero values, full pattern
    assert B.nnz == 4
    assert B.eliminate_zeros().nnz == 0


def test_copy_independent(small_spd):
    c = small_spd.copy()
    c.data[0] += 1.0
    assert small_spd.data[0] != c.data[0]


# --------------------------------------------------------------------- #
# norms
# --------------------------------------------------------------------- #


def test_norms(rng):
    A, dense = dense_pair(rng)
    assert np.isclose(A.norm_inf(), np.abs(dense).sum(axis=1).max())
    assert np.isclose(A.norm_fro(), np.linalg.norm(dense))
    assert np.allclose(A.row_abs_sums(), np.abs(dense).sum(axis=1))


def test_row_nnz(small_rect):
    A, dense = small_rect
    assert np.array_equal(A.row_nnz(), (dense != 0).sum(axis=1))


def test_to_scipy_roundtrip(rng):
    A, dense = dense_pair(rng)
    B = CSRMatrix.from_scipy(A.to_scipy())
    assert np.array_equal(B.to_dense(), dense)


def test_to_coo_roundtrip(rng):
    A, dense = dense_pair(rng)
    assert np.array_equal(A.to_coo().tocsr().to_dense(), dense)


# --------------------------------------------------------------------- #
# multi-vector products
# --------------------------------------------------------------------- #


def test_matvec_multivector_bitwise(rng):
    # The (R, n) path must be bitwise the R stacked 1-D calls — the batched
    # ensemble engine's exactness rests on this.
    A, dense = dense_pair(rng, shape=(40, 30), thresh=0.5)
    X = rng.standard_normal((5, 30))
    Y = A.matvec(X)
    assert Y.shape == (5, 40)
    for r in range(5):
        assert np.array_equal(Y[r], A.matvec(X[r]))


def test_matvec_multivector_wide_rows(rng):
    # Rows wider than the packed-panel cap reduce via reduceat; the 2-D
    # path must still match the 1-D path entry for entry.
    dense = rng.standard_normal((6, CSRMatrix._ELL_MAX_WIDTH + 40))
    A = CSRMatrix.from_dense(dense)
    X = rng.standard_normal((3, dense.shape[1]))
    Y = A.matvec(X)
    for r in range(3):
        assert np.array_equal(Y[r], A.matvec(X[r]))


def test_matvec_multivector_out_and_validation(rng):
    A, _ = dense_pair(rng)
    X = rng.standard_normal((4, 9))
    out = np.empty((4, 12))
    assert A.matvec(X, out=out) is out
    with pytest.raises(ValueError):
        A.matvec(np.ones((4, 8)))
    with pytest.raises(ValueError):
        A.matvec(np.ones((2, 4, 9)))


def test_matvec_rows_bitwise(rng):
    A, _ = dense_pair(rng, shape=(25, 18), thresh=0.6)
    X = rng.standard_normal((7, 18))
    rows = np.array([5, 0, 5, 3])
    Y = A.matvec_rows(X, rows)
    assert Y.shape == (4, 25)
    for i, r in enumerate(rows):
        assert np.array_equal(Y[i], A.matvec(X[r]))
    with pytest.raises(ValueError):
        A.matvec_rows(np.ones(18), rows)


def test_residual_multivector(rng):
    A, dense = dense_pair(rng, shape=(20, 20), thresh=0.6)
    X = rng.standard_normal((3, 20))
    b = rng.standard_normal(20)
    R = A.residual(X, b)
    for r in range(3):
        assert np.array_equal(R[r], A.residual(X[r], b))
