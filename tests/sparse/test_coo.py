"""Unit tests for the COO builder format."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


def test_basic_construction():
    m = COOMatrix([0, 1], [1, 2], [3.0, 4.0], (2, 3))
    assert m.shape == (2, 3)
    assert m.nnz == 2


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="equal length"):
        COOMatrix([0, 1], [1], [3.0, 4.0], (2, 3))


def test_row_out_of_bounds_rejected():
    with pytest.raises(ValueError, match="row index"):
        COOMatrix([2], [0], [1.0], (2, 3))


def test_col_out_of_bounds_rejected():
    with pytest.raises(ValueError, match="column index"):
        COOMatrix([0], [3], [1.0], (2, 3))


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        COOMatrix([-1], [0], [1.0], (2, 3))


def test_invalid_shape_rejected():
    with pytest.raises(ValueError, match="shape"):
        COOMatrix([], [], [], (2,))


def test_empty_matrix():
    m = COOMatrix.empty((4, 5))
    assert m.nnz == 0
    assert np.array_equal(m.to_dense(), np.zeros((4, 5)))


def test_duplicates_summed_by_canonicalize():
    m = COOMatrix([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0], (2, 2))
    c = m.canonicalize()
    assert c.nnz == 2
    dense = c.to_dense()
    assert dense[0, 1] == 5.0
    assert dense[1, 0] == 1.0


def test_canonicalize_sorts_row_major():
    m = COOMatrix([1, 0, 0], [0, 2, 1], [1.0, 2.0, 3.0], (2, 3))
    c = m.canonicalize()
    keys = list(zip(c.rows.tolist(), c.cols.tolist()))
    assert keys == sorted(keys)


def test_canonicalize_idempotent():
    m = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (2, 2)).canonicalize()
    assert m.canonicalize() is m


def test_to_dense_sums_duplicates():
    m = COOMatrix([0, 0], [0, 0], [1.5, 2.5], (1, 1))
    assert m.to_dense()[0, 0] == 4.0


def test_from_dense_roundtrip(rng):
    dense = rng.standard_normal((9, 13))
    dense[np.abs(dense) < 0.8] = 0.0
    m = COOMatrix.from_dense(dense)
    assert np.array_equal(m.to_dense(), dense)


def test_from_dense_tolerance():
    dense = np.array([[0.1, 1.0], [0.0, -0.05]])
    m = COOMatrix.from_dense(dense, tol=0.2)
    assert m.nnz == 1
    assert m.to_dense()[0, 1] == 1.0


def test_from_dense_rejects_1d():
    with pytest.raises(ValueError, match="2-D"):
        COOMatrix.from_dense(np.ones(4))


def test_transpose():
    m = COOMatrix([0, 1], [2, 0], [5.0, 7.0], (2, 3))
    t = m.transpose()
    assert t.shape == (3, 2)
    assert np.array_equal(t.to_dense(), m.to_dense().T)


def test_concatenate_sums():
    a = COOMatrix([0], [0], [1.0], (2, 2))
    b = COOMatrix([0], [0], [2.0], (2, 2))
    c = COOMatrix.concatenate([a, b]).canonicalize()
    assert c.to_dense()[0, 0] == 3.0


def test_concatenate_shape_mismatch():
    a = COOMatrix([0], [0], [1.0], (2, 2))
    b = COOMatrix([0], [0], [2.0], (3, 3))
    with pytest.raises(ValueError, match="share a shape"):
        COOMatrix.concatenate([a, b])


def test_concatenate_empty_list():
    with pytest.raises(ValueError, match="at least one"):
        COOMatrix.concatenate([])


def test_tocsr_matches_dense(rng):
    dense = rng.standard_normal((15, 10))
    dense[np.abs(dense) < 1.0] = 0.0
    m = COOMatrix.from_dense(dense)
    csr = m.tocsr()
    assert isinstance(csr, CSRMatrix)
    assert np.array_equal(csr.to_dense(), dense)


def test_tocsr_handles_empty_rows():
    m = COOMatrix([2], [1], [4.0], (5, 3))
    csr = m.tocsr()
    assert csr.row_nnz().tolist() == [0, 0, 1, 0, 0]


def test_to_scipy_roundtrip(rng):
    dense = rng.standard_normal((6, 8))
    dense[np.abs(dense) < 0.9] = 0.0
    m = COOMatrix.from_dense(dense)
    assert np.array_equal(m.to_scipy().toarray(), dense)
