"""Tests for the ELLPACK / SELL GPU storage formats."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, ELLMatrix, SlicedELLMatrix


def test_from_csr_roundtrip(rng):
    dense = rng.standard_normal((11, 9))
    dense[np.abs(dense) < 0.9] = 0.0
    A = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(A)
    assert np.array_equal(ell.to_csr().to_dense(), dense)


def test_width_is_max_row_nnz():
    dense = np.array([[1.0, 2.0, 3.0], [0.0, 4.0, 0.0], [0.0, 0.0, 0.0]])
    ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
    assert ell.width == 3
    assert ell.row_nnz.tolist() == [3, 1, 0]


def test_padding_repeats_last_column():
    dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
    ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
    # Row 1 has one entry at column 1; its padding slot repeats column 1.
    assert ell.col_indices[1, 1] == 1
    assert ell.values[1, 1] == 0.0


def test_matvec_matches_csr(rng):
    dense = rng.standard_normal((20, 15))
    dense[np.abs(dense) < 1.0] = 0.0
    A = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(A)
    x = rng.standard_normal(15)
    assert np.allclose(ell.matvec(x), A.matvec(x))


def test_matvec_out_param(rng):
    dense = rng.standard_normal((8, 8))
    A = CSRMatrix.from_dense(dense)
    ell = ELLMatrix.from_csr(A)
    out = np.empty(8)
    y = ell.matvec(np.ones(8), out=out)
    assert y is out
    assert np.allclose(out, dense @ np.ones(8))


def test_matvec_wrong_length():
    ell = ELLMatrix.from_csr(CSRMatrix.identity(4))
    with pytest.raises(ValueError, match="shape"):
        ell.matvec(np.ones(5))


def test_empty_matrix():
    from repro.sparse import COOMatrix

    ell = ELLMatrix.from_csr(COOMatrix.empty((3, 4)).tocsr())
    assert ell.width == 0
    assert np.array_equal(ell.matvec(np.ones(4)), np.zeros(3))
    assert ell.padding_efficiency() == 1.0


def test_empty_matrix_matvec_out_is_zeroed():
    from repro.sparse import COOMatrix

    ell = ELLMatrix.from_csr(COOMatrix.empty((3, 4)).tocsr())
    out = np.full(3, 7.0)
    y = ell.matvec(np.ones(4), out=out)
    assert y is out
    assert np.array_equal(out, np.zeros(3))


def test_zero_width_csr_product_skips_the_gather():
    # An empty block (e.g. cut by a clustered partition) compiles to a
    # zero-width ELL plan; products must short-circuit to zero without
    # building a (rows, 0) float intermediate per call.
    from repro.sparse import COOMatrix

    A = COOMatrix.empty((5, 5)).tocsr()
    cols, data, runs, empty = A._ell_plan()
    assert len(cols) == 0 and len(runs) == 0

    def poisoned_gather(_cols):
        raise AssertionError("zero-width plan must not gather")

    out = np.full(5, 3.0)
    y = A._packed_product(poisoned_gather, out)
    assert y is out and np.array_equal(out, np.zeros(5))
    # And the public entry points agree, 1-D and multi-vector.
    assert np.array_equal(A.matvec(np.ones(5)), np.zeros(5))
    X = np.arange(15.0).reshape(3, 5)
    assert np.array_equal(A.matvec(X), np.zeros((3, 5)))
    assert np.array_equal(
        A.matvec_rows(X, np.array([2, 0])), np.zeros((2, 5))
    )


def test_padding_efficiency_regular_stencil():
    from repro.matrices.grids import stencil_laplacian_2d

    A = stencil_laplacian_2d(20, stencil="9pt")
    ell = ELLMatrix.from_csr(A)
    # Almost every row has the full 9 entries: ELL suits it.
    assert ell.padding_efficiency() > 0.9


def test_padding_efficiency_irregular_rows():
    from repro.matrices import trefethen

    A = trefethen(256)
    ell = ELLMatrix.from_csr(A)
    sell = SlicedELLMatrix.from_csr(A, slice_height=16)
    # Log-varying row lengths: plain ELL wastes slots, SELL recovers some.
    assert ell.padding_efficiency() < 0.95
    assert sell.padding_efficiency() >= ell.padding_efficiency()


def test_sliced_matvec_matches_csr(rng):
    dense = rng.standard_normal((37, 23))
    dense[np.abs(dense) < 1.1] = 0.0
    A = CSRMatrix.from_dense(dense)
    sell = SlicedELLMatrix.from_csr(A, slice_height=8)
    x = rng.standard_normal(23)
    assert np.allclose(sell.matvec(x), A.matvec(x))


def test_sliced_roundtrip(rng):
    dense = rng.standard_normal((19, 19))
    dense[np.abs(dense) < 1.0] = 0.0
    A = CSRMatrix.from_dense(dense)
    sell = SlicedELLMatrix.from_csr(A, slice_height=4)
    assert np.array_equal(sell.to_csr().to_dense(), dense)
    assert sell.nnz == A.nnz


def test_sliced_invalid_height():
    with pytest.raises(ValueError, match="slice_height"):
        SlicedELLMatrix.from_csr(CSRMatrix.identity(4), slice_height=0)


def test_validation():
    with pytest.raises(ValueError, match="equal shape"):
        ELLMatrix(np.zeros((2, 3)), np.zeros((2, 4), dtype=np.int64), np.zeros(3, dtype=np.int64), (3, 3))
    with pytest.raises(ValueError, match="row_nnz"):
        ELLMatrix(np.zeros((2, 3)), np.zeros((2, 3), dtype=np.int64), np.zeros(2, dtype=np.int64), (3, 3))
    with pytest.raises(ValueError, match="exceeds"):
        ELLMatrix(
            np.zeros((1, 2)), np.zeros((1, 2), dtype=np.int64), np.array([2, 0]), (2, 2)
        )
