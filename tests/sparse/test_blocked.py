"""Unit tests for the block-row decomposition."""

import numpy as np
import pytest

from repro.sparse import BlockRowView, CSRMatrix, partition_rows


# --------------------------------------------------------------------- #
# partition_rows
# --------------------------------------------------------------------- #


def test_partition_by_block_size():
    b = partition_rows(10, 3)
    assert b.tolist() == [0, 3, 6, 9, 10]


def test_partition_exact_division():
    b = partition_rows(9, 3)
    assert b.tolist() == [0, 3, 6, 9]


def test_partition_by_nblocks_balanced():
    b = partition_rows(10, nblocks=3)
    sizes = np.diff(b)
    assert b[0] == 0 and b[-1] == 10
    assert sizes.max() - sizes.min() <= 1


def test_partition_block_larger_than_n():
    assert partition_rows(5, 100).tolist() == [0, 5]


def test_partition_invalid():
    with pytest.raises(ValueError):
        partition_rows(0, 3)
    with pytest.raises(ValueError):
        partition_rows(5, -1)
    with pytest.raises(ValueError):
        partition_rows(5)
    with pytest.raises(ValueError):
        partition_rows(5, 2, nblocks=2)
    with pytest.raises(ValueError):
        partition_rows(5, nblocks=6)


# --------------------------------------------------------------------- #
# BlockRowView
# --------------------------------------------------------------------- #


def test_blocks_reassemble_matrix(small_spd):
    view = BlockRowView(small_spd, block_size=7)
    dense = small_spd.to_dense()
    recon = np.zeros_like(dense)
    for blk in view.blocks:
        recon[blk.rows] += blk.local_off.to_dense() + blk.external.to_dense()
        idx = np.arange(blk.start, blk.stop)
        recon[idx, idx] += blk.diag
    assert np.allclose(recon, dense)


def test_local_entries_within_block(small_spd):
    view = BlockRowView(small_spd, block_size=13)
    for blk in view.blocks:
        if blk.local_off.nnz:
            assert blk.local_off.indices.min() >= blk.start
            assert blk.local_off.indices.max() < blk.stop
        if blk.external.nnz:
            inside = (blk.external.indices >= blk.start) & (blk.external.indices < blk.stop)
            assert not inside.any()


def test_local_off_excludes_diagonal(small_spd):
    view = BlockRowView(small_spd, block_size=11)
    for blk in view.blocks:
        rows = blk.local_off._expanded_rows() + blk.start
        assert not np.any(rows == blk.local_off.indices)


def test_diag_matches_matrix(small_spd):
    view = BlockRowView(small_spd, block_size=9)
    d = small_spd.diagonal()
    for blk in view.blocks:
        assert np.allclose(blk.diag, d[blk.start : blk.stop])


def test_zero_diagonal_rejected():
    dense = np.array([[0.0, 1.0], [1.0, 2.0]])
    with pytest.raises(ValueError, match="zero diagonal"):
        BlockRowView(CSRMatrix.from_dense(dense), block_size=1)


def test_nonsquare_rejected():
    A = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        BlockRowView(A, block_size=1)


def test_explicit_boundaries(small_spd):
    view = BlockRowView(small_spd, boundaries=[0, 10, 25, 60])
    assert view.nblocks == 3
    assert view.block_sizes().tolist() == [10, 15, 35]


def test_bad_boundaries(small_spd):
    for bad in ([0, 10], [1, 30, 60], [0, 30, 30, 60], [0, 70]):
        if bad[-1] == small_spd.shape[0] and bad[0] == 0 and len(bad) > 2 and all(
            bad[i] < bad[i + 1] for i in range(len(bad) - 1)
        ):
            continue
        with pytest.raises(ValueError):
            BlockRowView(small_spd, boundaries=bad)


def test_block_of_row(small_spd):
    view = BlockRowView(small_spd, block_size=7)
    for i in (0, 6, 7, 59):
        k = view.block_of_row(i)
        blk = view.blocks[k]
        assert blk.start <= i < blk.stop
    with pytest.raises(IndexError):
        view.block_of_row(60)


def test_off_block_fraction_extremes(small_spd):
    # One block: everything local.
    whole = BlockRowView(small_spd, block_size=60)
    assert whole.off_block_fraction() == 0.0
    # Size-1 blocks: everything external.
    single = BlockRowView(small_spd, block_size=1)
    assert single.off_block_fraction() == 1.0


def test_off_block_fraction_monotone_in_block_size(fv1):
    f128 = BlockRowView(fv1, block_size=128).off_block_fraction()
    f448 = BlockRowView(fv1, block_size=448).off_block_fraction()
    f896 = BlockRowView(fv1, block_size=896).off_block_fraction()
    assert f128 > f448 > f896


def test_rows_of(small_spd):
    view = BlockRowView(small_spd, block_size=25)
    rows = view.rows_of([0, 2])
    assert rows.tolist() == list(range(0, 25)) + list(range(50, 60))
    assert view.rows_of([]).size == 0


def test_block_mass_properties(small_spd):
    view = BlockRowView(small_spd, block_size=15)
    dense = small_spd.to_dense()
    for blk in view.blocks:
        sub = dense[blk.start : blk.stop]
        inside = np.abs(sub[:, blk.start : blk.stop]).sum() - np.abs(blk.diag).sum()
        outside = np.abs(sub).sum() - inside - np.abs(blk.diag).sum()
        assert np.isclose(blk.local_mass, inside)
        assert np.isclose(blk.external_mass, outside)
