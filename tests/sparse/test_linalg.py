"""Unit tests for spectral estimation (power method, Lanczos, conditioning)."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    condition_number,
    gershgorin_bounds,
    lanczos_extreme_eigenvalues,
    power_method,
    spectral_radius,
)
from repro.sparse.linalg import smallest_eigenvalue_shift_invert


def test_gershgorin_contains_spectrum(small_spd):
    lo, hi = gershgorin_bounds(small_spd)
    lam = np.linalg.eigvalsh(small_spd.to_dense())
    assert lo <= lam[0] and lam[-1] <= hi


def test_gershgorin_diagonal_matrix():
    d = CSRMatrix.diagonal_matrix([1.0, -3.0, 5.0])
    assert gershgorin_bounds(d) == (-3.0, 5.0)


def test_power_method_dominant_eigenvalue(small_spd):
    lam, v, it = power_method(small_spd, tol=1e-12)
    exact = np.max(np.abs(np.linalg.eigvalsh(small_spd.to_dense())))
    assert np.isclose(lam, exact, rtol=1e-8)
    assert it < 2000


def test_power_method_callable():
    n = 30
    d = np.linspace(1.0, 9.0, n)
    lam, _, _ = power_method(lambda x: d * x, n, tol=1e-12)
    assert np.isclose(lam, 9.0, rtol=1e-8)


def test_power_method_requires_n_for_callable():
    with pytest.raises(ValueError, match="n must be given"):
        power_method(lambda x: x)


def test_power_method_zero_operator():
    lam, _, it = power_method(lambda x: 0.0 * x, 5)
    assert lam == 0.0


def test_spectral_radius_dense_vs_power(small_spd):
    rd = spectral_radius(small_spd, method="dense")
    rp = spectral_radius(small_spd, method="power", tol=1e-12)
    assert np.isclose(rd, rp, rtol=1e-6)


def test_spectral_radius_negative_dominant():
    # Dominant eigenvalue is negative: radius must use magnitudes.
    A = CSRMatrix.diagonal_matrix([-5.0, 2.0, 1.0])
    assert np.isclose(spectral_radius(A, method="dense"), 5.0)
    assert np.isclose(spectral_radius(A, method="power"), 5.0, rtol=1e-6)


def test_spectral_radius_plus_minus_pair():
    # Bipartite-like spectrum {+r, -r}: squaring resolves the degeneracy.
    dense = np.array([[0.0, 2.0], [2.0, 0.0]])
    A = CSRMatrix.from_dense(dense)
    assert np.isclose(spectral_radius(A, method="power"), 2.0, rtol=1e-6)


def test_spectral_radius_unknown_method(small_spd):
    with pytest.raises(ValueError, match="method"):
        spectral_radius(small_spd, method="nope")


def test_lanczos_extremes(small_spd):
    lmin, lmax = lanczos_extreme_eigenvalues(small_spd, steps=60)
    lam = np.linalg.eigvalsh(small_spd.to_dense())
    assert np.isclose(lmin, lam[0], rtol=1e-6)
    assert np.isclose(lmax, lam[-1], rtol=1e-6)


def test_lanczos_early_invariant_subspace():
    # Diagonal with few distinct values: Lanczos finds them in few steps.
    A = CSRMatrix.diagonal_matrix([1.0] * 10 + [4.0] * 10)
    lmin, lmax = lanczos_extreme_eigenvalues(A, steps=20)
    assert np.isclose(lmin, 1.0, atol=1e-8)
    assert np.isclose(lmax, 4.0, atol=1e-8)


def test_shift_invert_lambda_min(small_spd):
    lam = np.linalg.eigvalsh(small_spd.to_dense())
    est = smallest_eigenvalue_shift_invert(small_spd)
    assert np.isclose(est, lam[0], rtol=1e-6)


def test_condition_number_dense(small_spd):
    lam = np.linalg.eigvalsh(small_spd.to_dense())
    assert np.isclose(condition_number(small_spd), lam[-1] / lam[0], rtol=1e-8)


def test_condition_number_sparse_path(small_spd):
    # Force the Lanczos/shift-invert branch.
    import repro.sparse.linalg as L

    lam = np.linalg.eigvalsh(small_spd.to_dense())
    old = L.DENSE_CUTOFF
    L.DENSE_CUTOFF = 10
    try:
        est = condition_number(small_spd, steps=60)
    finally:
        L.DENSE_CUTOFF = old
    assert np.isclose(est, lam[-1] / lam[0], rtol=1e-4)


def test_condition_number_non_spd(rng):
    dense = rng.standard_normal((20, 20))
    A = CSRMatrix.from_dense(dense)
    s = np.linalg.svd(dense, compute_uv=False)
    assert np.isclose(condition_number(A, assume_spd=False), s[0] / s[-1], rtol=1e-8)


def test_condition_number_indefinite_is_inf():
    A = CSRMatrix.diagonal_matrix([1.0, -1.0])
    assert condition_number(A) == float("inf")
