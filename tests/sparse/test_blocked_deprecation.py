"""The ``sparse.blocked`` partition shims: deprecated but bitwise-faithful."""

import warnings

import numpy as np
import pytest

from repro.matrices import trefethen
from repro.partition.rows import partition_rows as canonical_rows
from repro.partition.rows import partition_rows_by_work as canonical_work
from repro.sparse.blocked import partition_rows, partition_rows_by_work


def test_partition_rows_warns_and_delegates():
    with pytest.warns(DeprecationWarning, match="moved to repro.partition"):
        legacy = partition_rows(100, 32)
    assert np.array_equal(legacy, canonical_rows(100, 32))


def test_partition_rows_nblocks_keyword_delegates():
    with pytest.warns(DeprecationWarning, match="moved to repro.partition"):
        legacy = partition_rows(97, nblocks=5)
    assert np.array_equal(legacy, canonical_rows(97, nblocks=5))


def test_partition_rows_by_work_warns_and_delegates():
    A = trefethen(240)
    with pytest.warns(DeprecationWarning, match="moved to repro.partition"):
        legacy = partition_rows_by_work(A, 6)
    assert np.array_equal(legacy, canonical_work(A, 6))


def test_canonical_functions_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        canonical_rows(100, 32)
        canonical_work(trefethen(240), 4)
