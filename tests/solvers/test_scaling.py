"""Tests for the τ-scaling remedy (paper §4.2)."""

import numpy as np
import pytest

from repro.matrices.structural import banded_gram, gram_jacobi_radius
from repro.solvers import JacobiSolver, StoppingCriterion, estimate_tau, tau_scaling
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def divergent_spd():
    """A small SPD system with rho(B) > 1 but moderate conditioning."""
    return banded_gram(400, 4, taper_power=1.0, eps=1e-2, seed=5)


def test_estimate_tau_formula(divergent_spd):
    ts = estimate_tau(divergent_spd, steps=120)
    d = divergent_spd.diagonal()
    w = 1.0 / np.sqrt(d)
    sym = np.diag(w) @ divergent_spd.to_dense() @ np.diag(w)
    lam = np.linalg.eigvalsh(sym)
    # Lanczos estimates converge to the extremes from inside the spectrum.
    assert lam[0] - 1e-10 <= ts.lambda_min <= 3.0 * lam[0]
    assert np.isclose(ts.lambda_max, lam[-1], rtol=1e-3)
    assert np.isclose(ts.tau, 2.0 / (ts.lambda_min + ts.lambda_max), rtol=1e-12)


def test_predicted_rho(divergent_spd):
    ts = estimate_tau(divergent_spd, steps=120)
    assert 0 < ts.predicted_rho < 1


def test_tau_restores_convergence(divergent_spd):
    A = divergent_spd
    assert gram_jacobi_radius(A) > 1.0  # plain Jacobi diverges
    b = A.matvec(np.ones(A.shape[0]))
    stop = StoppingCriterion(tol=1e-10, maxiter=4000)
    plain = JacobiSolver(stopping=StoppingCriterion(maxiter=60)).solve(A, b)
    assert plain.relative_residuals()[-1] > 1.0
    tau = tau_scaling(A, steps=120)
    damped = JacobiSolver(omega=tau, stopping=stop).solve(A, b)
    assert damped.converged


def test_tau_rate_matches_prediction(divergent_spd):
    A = divergent_spd
    ts = estimate_tau(A, steps=120)
    b = A.matvec(np.ones(A.shape[0]))
    r = JacobiSolver(omega=ts.tau, stopping=StoppingCriterion(tol=0.0, maxiter=300)).solve(A, b)
    rate = (r.residuals[-1] / r.residuals[100]) ** (1.0 / 200)
    assert rate < ts.predicted_rho + 0.02


def test_estimate_tau_requires_positive_diagonal():
    A = CSRMatrix.from_dense(np.diag([1.0, -2.0]))
    with pytest.raises(ValueError, match="positive diagonal"):
        estimate_tau(A)


def test_estimate_tau_rejects_indefinite():
    dense = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
    with pytest.raises(ValueError, match="SPD"):
        estimate_tau(CSRMatrix.from_dense(dense))
