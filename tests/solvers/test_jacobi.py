"""Tests for the Jacobi solver."""

import numpy as np
import pytest

from repro.matrices.analysis import iteration_matrix
from repro.solvers import JacobiSolver, StoppingCriterion
from repro.sparse import CSRMatrix
from repro.sparse.linalg import spectral_radius


def test_converges_to_solution(small_spd):
    x_star = np.arange(60, dtype=float)
    b = small_spd.matvec(x_star)
    r = JacobiSolver(stopping=StoppingCriterion(tol=1e-13, maxiter=2000)).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_one_step_matches_formula(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=1)).solve(small_spd, b)
    d = small_spd.diagonal()
    expected = b / d  # from x0 = 0
    assert np.allclose(r.x, expected)


def test_error_contracts_at_spectral_rate(trefethen_small):
    A = trefethen_small
    rho = spectral_radius(iteration_matrix(A), method="dense")
    b = A.matvec(np.ones(A.shape[0]))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=120)).solve(A, b)
    rate = (r.residuals[-1] / r.residuals[20]) ** (1.0 / 100)
    assert rate < rho + 0.02  # asymptotic contraction no worse than rho


def test_weighted_jacobi_damps():
    # On the 5-point Laplacian, omega=2/3 damps high frequencies faster,
    # but plain Jacobi has the better overall radius; both must converge.
    from repro.matrices.grids import stencil_laplacian_2d

    A = stencil_laplacian_2d(10, stencil="5pt", shift=0.5)
    b = A.matvec(np.ones(100))
    for omega in (1.0, 2.0 / 3.0):
        r = JacobiSolver(omega=omega, stopping=StoppingCriterion(tol=1e-12, maxiter=500)).solve(A, b)
        assert r.converged, omega


def test_omega_name_tag():
    assert JacobiSolver().name == "jacobi"
    assert "0.5" in JacobiSolver(omega=0.5).name


def test_invalid_omega():
    with pytest.raises(ValueError, match="omega"):
        JacobiSolver(omega=0.0)


def test_zero_diagonal_rejected():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        JacobiSolver().solve(A, np.ones(2))


def test_matches_dense_reference_iteration(small_spd):
    # x_{k+1} = D^-1 (b - (A - D) x_k), iterated densely.
    dense = small_spd.to_dense()
    d = np.diag(dense)
    b = dense @ np.linspace(0, 1, 60)
    x = np.zeros(60)
    for _ in range(7):
        x = (b - (dense - np.diag(d)) @ x) / d
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=7)).solve(small_spd, b)
    assert np.allclose(r.x, x, atol=1e-12)
