"""Tests for the synchronous block-Jacobi / two-stage solvers."""

import numpy as np
import pytest

from repro.core import AsyncConfig, BlockAsyncSolver
from repro.solvers import BlockJacobiSolver, JacobiSolver, StoppingCriterion


def test_block_size_one_is_point_jacobi(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=0.0, maxiter=6)
    bj = BlockJacobiSolver(block_size=1, inner="exact", stopping=stop).solve(small_spd, b)
    pj = JacobiSolver(stopping=stop).solve(small_spd, b)
    assert np.allclose(bj.x, pj.x, atol=1e-12)


def test_single_block_is_direct_solve(small_spd):
    b = small_spd.matvec(np.linspace(0, 1, 60))
    r = BlockJacobiSolver(block_size=60, inner="exact", stopping=StoppingCriterion(tol=1e-12, maxiter=3)).solve(
        small_spd, b
    )
    assert r.converged
    assert r.iterations == 1  # one exact solve of the whole system


def test_exact_beats_point_jacobi(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-11, maxiter=2000)
    it_block = BlockJacobiSolver(block_size=15, inner="exact", stopping=stop).solve(small_spd, b).iterations
    it_point = JacobiSolver(stopping=stop).solve(small_spd, b).iterations
    assert it_block < it_point


def test_two_stage_matches_synchronous_async(small_spd):
    # Two-stage(q) == async-(q) with the synchronous schedule, exactly.
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=0.0, maxiter=7)
    ts = BlockJacobiSolver(block_size=10, inner="jacobi", inner_sweeps=3, stopping=stop).solve(
        small_spd, b
    )
    ba = BlockAsyncSolver(
        AsyncConfig(local_iterations=3, block_size=10, order="synchronous"), stopping=stop
    ).solve(small_spd, b)
    assert np.allclose(ts.x, ba.x, atol=1e-12)


def test_more_inner_sweeps_approach_exact(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-11, maxiter=2000)
    it_exact = BlockJacobiSolver(block_size=15, inner="exact", stopping=stop).solve(small_spd, b).iterations
    iters = {}
    for q in (1, 4, 16):
        iters[q] = BlockJacobiSolver(
            block_size=15, inner="jacobi", inner_sweeps=q, stopping=stop
        ).solve(small_spd, b).iterations
    assert iters[1] >= iters[4] >= iters[16] >= it_exact


def test_converges_to_solution(small_spd):
    x_star = np.sin(np.arange(60.0))
    b = small_spd.matvec(x_star)
    r = BlockJacobiSolver(block_size=13, stopping=StoppingCriterion(tol=1e-13, maxiter=500)).solve(
        small_spd, b
    )
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_names():
    assert "block-jacobi" in BlockJacobiSolver(block_size=32).name
    assert "two-stage" in BlockJacobiSolver(block_size=32, inner="jacobi").name


def test_validation():
    with pytest.raises(ValueError, match="inner"):
        BlockJacobiSolver(inner="gs")
    with pytest.raises(ValueError, match="block_size"):
        BlockJacobiSolver(block_size=0)
    with pytest.raises(ValueError, match="inner_sweeps"):
        BlockJacobiSolver(inner="jacobi", inner_sweeps=0)
