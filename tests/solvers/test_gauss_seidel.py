"""Tests for Gauss-Seidel and SOR."""

import numpy as np
import pytest

from repro.solvers import GaussSeidelSolver, JacobiSolver, SORSolver, StoppingCriterion
from repro.sparse import CSRMatrix


def reference_gs_sweep(dense, b, x):
    """Textbook sequential forward Gauss-Seidel sweep."""
    n = len(b)
    x = x.copy()
    for i in range(n):
        s = dense[i] @ x - dense[i, i] * x[i]
        x[i] = (b[i] - s) / dense[i, i]
    return x


def reference_sor_sweep(dense, b, x, omega):
    n = len(b)
    x = x.copy()
    for i in range(n):
        s = dense[i] @ x - dense[i, i] * x[i]
        gs = (b[i] - s) / dense[i, i]
        x[i] = (1 - omega) * x[i] + omega * gs
    return x


def test_gs_matches_sequential_reference(small_spd):
    dense = small_spd.to_dense()
    b = dense @ np.linspace(-1, 1, 60)
    r = GaussSeidelSolver(stopping=StoppingCriterion(tol=0.0, maxiter=3)).solve(small_spd, b)
    x = np.zeros(60)
    for _ in range(3):
        x = reference_gs_sweep(dense, b, x)
    assert np.allclose(r.x, x, atol=1e-12)


def test_sor_matches_sequential_reference(small_spd):
    dense = small_spd.to_dense()
    b = dense @ np.linspace(-1, 1, 60)
    omega = 1.3
    r = SORSolver(omega=omega, stopping=StoppingCriterion(tol=0.0, maxiter=4)).solve(small_spd, b)
    x = np.zeros(60)
    for _ in range(4):
        x = reference_sor_sweep(dense, b, x, omega)
    assert np.allclose(r.x, x, atol=1e-11)


def test_gs_equals_sor_omega_one(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=0.0, maxiter=5)
    rg = GaussSeidelSolver(stopping=stop).solve(small_spd, b)
    rs = SORSolver(omega=1.0, stopping=stop).solve(small_spd, b)
    assert np.allclose(rg.x, rs.x, atol=1e-14)


def test_gs_converges(small_spd):
    x_star = np.sin(np.arange(60.0))
    b = small_spd.matvec(x_star)
    r = GaussSeidelSolver(stopping=StoppingCriterion(tol=1e-13, maxiter=500)).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_gs_faster_than_jacobi_on_grid():
    # Classical result: GS rate ~ rho_J^2 on consistently ordered systems.
    from repro.matrices import fv_like

    A = fv_like(1, nx=24, coeff_ratio=1.0)
    b = A.matvec(np.ones(A.shape[0]))
    stop = StoppingCriterion(tol=1e-11, maxiter=2000)
    itg = GaussSeidelSolver(stopping=stop).solve(A, b).iterations
    itj = JacobiSolver(stopping=stop).solve(A, b).iterations
    assert itg < itj
    assert itg < 0.65 * itj  # close to the 2x classical speedup


def test_sor_optimal_omega_beats_gs():
    # On a Laplacian-like SPD system there is an omega in (1, 2) beating GS.
    from repro.matrices import fv_like

    A = fv_like(1, nx=20, coeff_ratio=1.0)
    b = A.matvec(np.ones(A.shape[0]))
    stop = StoppingCriterion(tol=1e-11, maxiter=3000)
    itg = GaussSeidelSolver(stopping=stop).solve(A, b).iterations
    best = min(
        SORSolver(omega=w, stopping=stop).solve(A, b).iterations for w in (1.3, 1.5, 1.7)
    )
    assert best < itg


def test_sor_invalid_omega():
    for w in (0.0, 2.0, -1.0, 2.5):
        with pytest.raises(ValueError, match="omega"):
            SORSolver(omega=w)


def test_zero_diagonal_rejected():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(ValueError, match="diagonal"):
        GaussSeidelSolver().solve(A, np.ones(2))


def test_gs_matches_scipy_splitting(small_spd):
    # One GS iteration is (D+L)^-1 (b - U x), verified via scipy dense solve.
    import scipy.linalg

    dense = small_spd.to_dense()
    b = dense @ np.ones(60)
    L = np.tril(dense)
    U = np.triu(dense, 1)
    x = scipy.linalg.solve_triangular(L, b - U @ np.zeros(60), lower=True)
    r = GaussSeidelSolver(stopping=StoppingCriterion(tol=0.0, maxiter=1)).solve(small_spd, b)
    assert np.allclose(r.x, x, atol=1e-12)


def test_names():
    assert GaussSeidelSolver().name == "gauss-seidel"
    assert "1.4" in SORSolver(omega=1.4).name
