"""Tests for level scheduling and triangular sweeps."""

import numpy as np
import pytest

from repro.solvers import LevelSchedule, solve_lower_triangular
from repro.solvers.triangular import TriangularSweep, _concat_ranges
from repro.sparse import CSRMatrix


def lower_system(rng, n=30, density=0.2):
    dense = rng.standard_normal((n, n))
    dense = np.tril(dense, -1)
    dense[np.abs(dense) < np.quantile(np.abs(dense[dense != 0]), 1 - density) if (dense != 0).any() else 0] = 0.0
    np.fill_diagonal(dense, rng.standard_normal(n) + 4.0)
    return CSRMatrix.from_dense(dense), dense


# --------------------------------------------------------------------- #
# _concat_ranges
# --------------------------------------------------------------------- #


def test_concat_ranges_basic():
    out = _concat_ranges(np.array([2, 10, 5]), np.array([3, 2, 1]))
    assert out.tolist() == [2, 3, 4, 10, 11, 5]


def test_concat_ranges_with_empty():
    out = _concat_ranges(np.array([2, 7, 9]), np.array([2, 0, 1]))
    assert out.tolist() == [2, 3, 9]


def test_concat_ranges_all_empty():
    assert _concat_ranges(np.array([1, 2]), np.array([0, 0])).size == 0


# --------------------------------------------------------------------- #
# LevelSchedule
# --------------------------------------------------------------------- #


def test_levels_diagonal_matrix():
    sched = LevelSchedule(CSRMatrix.identity(5))
    assert sched.nlevels == 1
    assert np.all(sched.levels == 0)


def test_levels_bidiagonal_chain():
    dense = np.eye(6) + np.diag(np.ones(5), -1)
    sched = LevelSchedule(CSRMatrix.from_dense(dense))
    assert sched.nlevels == 6
    assert np.array_equal(sched.levels, np.arange(6))


def test_levels_respect_dependencies(rng):
    A, dense = lower_system(rng)
    sched = LevelSchedule(A)
    strict = np.tril(dense, -1)
    for i in range(30):
        for j in range(i):
            if strict[i, j] != 0:
                assert sched.levels[j] < sched.levels[i]


def test_level_rows_partition(rng):
    A, _ = lower_system(rng)
    sched = LevelSchedule(A)
    seen = np.concatenate(sched.level_rows)
    assert sorted(seen.tolist()) == list(range(30))


def test_levels_grid_wavefronts():
    # 9-point stencil on an m x m grid: level(i,j) = 2i + j.
    from repro.matrices.grids import stencil_laplacian_2d

    m = 7
    A = stencil_laplacian_2d(m, stencil="9pt")
    sched = LevelSchedule(A)
    expected = np.array([2 * i + j for i in range(m) for j in range(m)])
    assert np.array_equal(sched.levels, expected)
    assert sched.nlevels == 3 * m - 2


def test_upper_entries_ignored(rng):
    A, dense = lower_system(rng)
    with_upper = CSRMatrix.from_dense(dense + np.triu(np.ones((30, 30)), 1))
    assert np.array_equal(LevelSchedule(A).levels, LevelSchedule(with_upper).levels)


# --------------------------------------------------------------------- #
# solves
# --------------------------------------------------------------------- #


def test_solve_matches_numpy(rng):
    A, dense = lower_system(rng)
    rhs = rng.standard_normal(30)
    x = solve_lower_triangular(A, rhs)
    assert np.allclose(np.tril(dense) @ x, rhs)


def test_solve_ignores_upper_triangle(rng):
    A, dense = lower_system(rng)
    noisy = CSRMatrix.from_dense(dense + np.triu(rng.standard_normal((30, 30)), 1))
    rhs = rng.standard_normal(30)
    assert np.allclose(solve_lower_triangular(noisy, rhs), solve_lower_triangular(A, rhs))


def test_sweep_reusable(rng):
    A, dense = lower_system(rng)
    sweep = TriangularSweep(A)
    for seed in range(3):
        rhs = np.random.default_rng(seed).standard_normal(30)
        x = sweep.solve(rhs)
        assert np.allclose(np.tril(dense) @ x, rhs)


def test_sweep_out_parameter(rng):
    A, dense = lower_system(rng)
    sweep = TriangularSweep(A)
    rhs = rng.standard_normal(30)
    out = np.empty(30)
    x = sweep.solve(rhs, out=out)
    assert x is out


def test_sweep_inplace_rhs_alias_safe(rng):
    # Solving with out=x where x initially holds the rhs must NOT be done;
    # but out distinct from rhs while x prefilled is fine.
    A, dense = lower_system(rng)
    sweep = TriangularSweep(A)
    rhs = rng.standard_normal(30)
    out = rng.standard_normal(30)  # garbage prefill
    x = sweep.solve(rhs, out=out)
    assert np.allclose(np.tril(dense) @ x, rhs)


def test_zero_diagonal_rejected():
    dense = np.tril(np.ones((3, 3)))
    dense[1, 1] = 0.0
    with pytest.raises(ValueError, match="diagonal"):
        TriangularSweep(CSRMatrix.from_dense(dense))


def test_diagonal_only_system():
    A = CSRMatrix.diagonal_matrix([2.0, 4.0, 8.0])
    x = solve_lower_triangular(A, np.array([2.0, 4.0, 8.0]))
    assert np.allclose(x, 1.0)


def test_dense_lower_triangle(rng):
    # Fully dense lower triangle: n levels, fully sequential.
    n = 25
    dense = np.tril(rng.standard_normal((n, n)), -1)
    np.fill_diagonal(dense, 3.0)
    A = CSRMatrix.from_dense(dense)
    sched = LevelSchedule(A)
    assert sched.nlevels == n
    rhs = rng.standard_normal(n)
    assert np.allclose(dense @ solve_lower_triangular(A, rhs), rhs)
