"""Tests for the SSOR solver."""

import numpy as np
import pytest

from repro.solvers import GaussSeidelSolver, SSORSolver, StoppingCriterion


def reference_ssor_sweep(dense, b, x, omega):
    """Textbook forward + backward SOR sweeps."""
    n = len(b)
    x = x.copy()
    for i in range(n):
        s = dense[i] @ x - dense[i, i] * x[i]
        x[i] = (1 - omega) * x[i] + omega * (b[i] - s) / dense[i, i]
    for i in range(n - 1, -1, -1):
        s = dense[i] @ x - dense[i, i] * x[i]
        x[i] = (1 - omega) * x[i] + omega * (b[i] - s) / dense[i, i]
    return x


@pytest.mark.parametrize("omega", [1.0, 1.4])
def test_matches_sequential_reference(small_spd, omega):
    dense = small_spd.to_dense()
    b = dense @ np.linspace(-1, 1, 60)
    r = SSORSolver(omega=omega, stopping=StoppingCriterion(tol=0.0, maxiter=3)).solve(small_spd, b)
    x = np.zeros(60)
    for _ in range(3):
        x = reference_ssor_sweep(dense, b, x, omega)
    assert np.allclose(r.x, x, atol=1e-11)


def test_converges(small_spd):
    x_star = np.cos(np.arange(60.0))
    b = small_spd.matvec(x_star)
    r = SSORSolver(stopping=StoppingCriterion(tol=1e-13, maxiter=500)).solve(small_spd, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_fewer_iterations_than_gs(small_spd):
    # Each SSOR iteration does two sweeps, so it needs at most about half
    # the iterations of plain GS.
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-11, maxiter=1000)
    it_ssor = SSORSolver(stopping=stop).solve(small_spd, b).iterations
    it_gs = GaussSeidelSolver(stopping=stop).solve(small_spd, b).iterations
    assert it_ssor <= it_gs


def test_invalid_omega():
    for w in (0.0, 2.0):
        with pytest.raises(ValueError, match="omega"):
            SSORSolver(omega=w)


def test_name():
    assert SSORSolver().name == "ssor"
    assert "1.3" in SSORSolver(omega=1.3).name
