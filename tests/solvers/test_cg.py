"""Tests for the Conjugate Gradient solver."""

import numpy as np
import pytest

from repro.solvers import ConjugateGradientSolver, StoppingCriterion
from repro.sparse import CSRMatrix


def test_exact_in_n_iterations():
    # CG terminates in at most n steps in exact arithmetic.
    rng = np.random.default_rng(0)
    n = 12
    m = rng.standard_normal((n, n))
    dense = m @ m.T + n * np.eye(n)
    A = CSRMatrix.from_dense(dense)
    b = rng.standard_normal(n)
    r = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=n + 2)).solve(A, b)
    assert r.converged
    assert np.allclose(dense @ r.x, b, atol=1e-8)


def test_converges_on_suite_matrix(trefethen_small):
    A = trefethen_small
    x_star = np.cos(np.arange(A.shape[0], dtype=float))
    b = A.matvec(x_star)
    r = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-13, maxiter=500)).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_matches_scipy(small_spd):
    import scipy.sparse.linalg as spla

    b = small_spd.matvec(np.ones(60))
    ours = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=300)).solve(
        small_spd, b
    )
    ref, info = spla.cg(small_spd.to_scipy(), b, rtol=1e-12, maxiter=300)
    assert info == 0
    assert np.allclose(ours.x, ref, atol=1e-8)


def test_diagonal_preconditioner_reduces_iterations():
    # Strongly scaled diagonal: Jacobi preconditioning should help a lot.
    rng = np.random.default_rng(3)
    n = 80
    d = np.logspace(0, 5, n)
    dense = np.diag(d)
    off = rng.standard_normal((n, n)) * 0.01
    dense += (off + off.T) * np.sqrt(np.outer(d, d))
    A = CSRMatrix.from_dense(dense)
    b = dense @ np.ones(n)
    stop = StoppingCriterion(tol=1e-10, maxiter=2000)
    plain = ConjugateGradientSolver(stopping=stop).solve(A, b)
    inv_d = 1.0 / A.diagonal()
    pcg = ConjugateGradientSolver(preconditioner=lambda r: inv_d * r, stopping=stop).solve(A, b)
    assert pcg.converged
    assert pcg.iterations < plain.iterations


def test_breakdown_on_indefinite():
    A = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
    r = ConjugateGradientSolver(stopping=StoppingCriterion(maxiter=10)).solve(A, np.ones(2))
    assert r.info["breakdown"] or not r.converged


def test_zero_rhs_immediate():
    A = CSRMatrix.identity(5)
    r = ConjugateGradientSolver().solve(A, np.zeros(5))
    assert r.converged
    assert r.iterations == 0


def test_x0_nonzero(small_spd):
    x_star = np.ones(60)
    b = small_spd.matvec(x_star)
    r = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=200)).solve(
        small_spd, b, x0=0.9 * x_star
    )
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_residual_history_recorded(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = ConjugateGradientSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=100)).solve(
        small_spd, b
    )
    assert len(r.residuals) == r.iterations + 1
    # Recorded residuals are true residuals, not the recurrence estimate.
    assert np.isclose(r.residuals[-1], np.linalg.norm(small_spd.residual(r.x, b)))


def test_name_tags():
    assert ConjugateGradientSolver().name == "cg"
    assert ConjugateGradientSolver(preconditioner=lambda r: r).name == "pcg"
