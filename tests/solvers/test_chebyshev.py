"""Tests for the Chebyshev semi-iteration."""

import numpy as np
import pytest

from repro.matrices import fv_like
from repro.solvers import ChebyshevSolver, JacobiSolver, StoppingCriterion


@pytest.fixture(scope="module")
def system():
    A = fv_like(1, nx=24, coeff_ratio=1.0)
    return A, A.matvec(np.ones(A.shape[0]))


def test_converges(system):
    A, b = system
    r = ChebyshevSolver(stopping=StoppingCriterion(tol=1e-10, maxiter=2000)).solve(A, b)
    assert r.converged
    assert np.allclose(A.matvec(r.x), b, atol=1e-5)


def test_beats_jacobi(system):
    A, b = system
    stop = StoppingCriterion(tol=1e-10, maxiter=2000)
    it_cheb = ChebyshevSolver(stopping=stop).solve(A, b).iterations
    it_jac = JacobiSolver(stopping=stop).solve(A, b).iterations
    assert it_cheb < 0.5 * it_jac  # the sqrt(kappa) acceleration


def test_rate_matches_prediction(system):
    A, b = system
    solver = ChebyshevSolver(stopping=StoppingCriterion(tol=0.0, maxiter=60))
    r = solver.solve(A, b)
    rel = r.relative_residuals()
    measured = (rel[-1] / rel[10]) ** (1.0 / 50)
    assert abs(measured - solver.predicted_rate()) < 0.06


def test_explicit_bounds(system):
    A, b = system
    # Exact bounds of D^-1 A for the constant-diagonal stencil.
    from repro.matrices.fem import stencil_jacobi_extremes, fv_shift_for_rho

    c = fv_shift_for_rho(24, 0.8541)
    lo, hi = stencil_jacobi_extremes(24)
    d0 = 8.0 / 3.0 + c
    solver = ChebyshevSolver(
        lambda_min=(lo + c) / d0, lambda_max=(hi + c) / d0,
        stopping=StoppingCriterion(tol=1e-10, maxiter=2000),
    )
    r = solver.solve(A, b)
    assert r.converged


def test_predicted_rate_requires_bounds():
    with pytest.raises(ValueError, match="bounds"):
        ChebyshevSolver().predicted_rate()


def test_bounds_validation():
    with pytest.raises(ValueError, match="both"):
        ChebyshevSolver(lambda_min=0.1)
    with pytest.raises(ValueError, match="lambda"):
        ChebyshevSolver(lambda_min=-1.0, lambda_max=2.0)


def test_positive_diagonal_required():
    from repro.sparse import CSRMatrix

    A = CSRMatrix.from_dense(np.diag([1.0, -2.0]))
    solver = ChebyshevSolver(lambda_min=0.5, lambda_max=1.5)
    with pytest.raises(ValueError, match="diagonal"):
        solver.solve(A, np.ones(2))
