"""Tests for the solver interface, result record and stopping rules."""

import numpy as np
import pytest

from repro.solvers import JacobiSolver, SolveResult, StoppingCriterion
from repro.sparse import CSRMatrix


def test_stopping_defaults():
    s = StoppingCriterion()
    assert s.relative and s.tol == 1e-14


def test_stopping_validation():
    with pytest.raises(ValueError):
        StoppingCriterion(tol=-1.0)
    with pytest.raises(ValueError):
        StoppingCriterion(maxiter=-1)


def test_stopping_threshold_relative():
    s = StoppingCriterion(tol=1e-3)
    assert s.threshold(10.0) == 1e-2
    assert s.threshold(0.0) == 1e-3  # falls back to absolute


def test_stopping_threshold_absolute():
    s = StoppingCriterion(tol=1e-3, relative=False)
    assert s.threshold(10.0) == 1e-3


def test_stopping_diverged():
    s = StoppingCriterion(divergence_limit=1e10)
    assert s.diverged(1e11)
    assert s.diverged(float("nan"))
    assert not s.diverged(1e9)


def test_result_accessors(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=1e-12, maxiter=500)).solve(small_spd, b)
    assert isinstance(r, SolveResult)
    assert r.iterations == len(r.residuals) - 1
    assert r.final_residual == r.residuals[-1]
    assert np.allclose(r.relative_residuals(), r.residuals / np.linalg.norm(b))


def test_residual_history_starts_with_initial(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=3)).solve(small_spd, b)
    assert np.isclose(r.residuals[0], np.linalg.norm(b))
    assert r.iterations == 3


def test_x0_respected(small_spd):
    b = small_spd.matvec(np.ones(60))
    x0 = np.ones(60)
    r = JacobiSolver(stopping=StoppingCriterion(tol=1e-10, maxiter=5)).solve(small_spd, b, x0=x0)
    assert r.converged
    assert r.iterations == 0  # exact initial guess


def test_x0_not_mutated(small_spd):
    b = small_spd.matvec(np.ones(60))
    x0 = np.zeros(60)
    JacobiSolver(stopping=StoppingCriterion(maxiter=3)).solve(small_spd, b, x0=x0)
    assert np.all(x0 == 0.0)


def test_maxiter_zero(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=1e-20, maxiter=0)).solve(small_spd, b)
    assert r.iterations == 0
    assert not r.converged


def test_nonsquare_rejected():
    A = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        JacobiSolver().solve(A, np.ones(2))


def test_wrong_b_length(small_spd):
    with pytest.raises(ValueError, match="b"):
        JacobiSolver().solve(small_spd, np.ones(59))


def test_divergence_aborts_early():
    # A matrix with rho(B) > 1 under plain Jacobi must stop on blow-up.
    dense = np.array([[1.0, 3.0], [3.0, 1.0]])
    A = CSRMatrix.from_dense(dense)
    r = JacobiSolver(stopping=StoppingCriterion(maxiter=10000, divergence_limit=1e10)).solve(
        A, np.ones(2)
    )
    assert r.info["diverged"]
    assert r.iterations < 100


def test_asymptotic_rate_matches_spectral_radius():
    from repro.matrices import fv_like
    from repro.matrices.analysis import iteration_matrix
    from repro.sparse.linalg import spectral_radius

    A = fv_like(1, nx=20, coeff_ratio=1.0)
    b = A.matvec(np.ones(400))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=150)).solve(A, b)
    rho = spectral_radius(iteration_matrix(A), method="dense")
    rate = r.asymptotic_rate()
    assert rate is not None
    assert abs(rate - rho) < 0.02


def test_asymptotic_rate_none_when_too_short(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=3)).solve(small_spd, b)
    assert r.asymptotic_rate(skip=10) is None


def test_to_dict_serialisable(small_spd):
    import json

    b = small_spd.matvec(np.ones(60))
    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=5)).solve(small_spd, b)
    d = json.loads(json.dumps(r.to_dict()))
    assert d["method"] == "jacobi"
    assert len(d["residuals"]) == 6
    assert "x" not in d
    d2 = r.to_dict(include_solution=True)
    assert len(d2["x"]) == 60
