"""Tests for restarted GMRES."""

import numpy as np
import pytest

from repro.solvers import GMRESSolver, StoppingCriterion
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def nonsym():
    rng = np.random.default_rng(0)
    n = 80
    dense = rng.standard_normal((n, n)) * 0.3
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    A = CSRMatrix.from_dense(dense)
    x_star = rng.standard_normal(n)
    return A, x_star, A.matvec(x_star)


def test_converges_nonsymmetric(nonsym):
    A, x_star, b = nonsym
    r = GMRESSolver(restart=20, stopping=StoppingCriterion(tol=1e-12, maxiter=500)).solve(A, b)
    assert r.converged
    assert np.allclose(r.x, x_star, atol=1e-8)


def test_matches_scipy(nonsym):
    import scipy.sparse.linalg as spla

    A, _, b = nonsym
    ours = GMRESSolver(restart=20, stopping=StoppingCriterion(tol=1e-12, maxiter=500)).solve(A, b)
    ref, info = spla.gmres(A.to_scipy(), b, rtol=1e-12, restart=20, maxiter=50)
    assert info == 0
    assert np.allclose(ours.x, ref, atol=1e-7)


def test_full_gmres_exact_in_n_steps():
    rng = np.random.default_rng(3)
    n = 15
    dense = rng.standard_normal((n, n)) + n * np.eye(n)
    A = CSRMatrix.from_dense(dense)
    b = rng.standard_normal(n)
    r = GMRESSolver(restart=n, stopping=StoppingCriterion(tol=1e-12, maxiter=n + 1)).solve(A, b)
    assert r.converged
    assert r.iterations <= n


def test_restart_smaller_is_weaker(small_spd):
    b = small_spd.matvec(np.ones(60))
    stop = StoppingCriterion(tol=1e-10, maxiter=2000)
    it_small = GMRESSolver(restart=5, stopping=stop).solve(small_spd, b).iterations
    it_large = GMRESSolver(restart=40, stopping=stop).solve(small_spd, b).iterations
    assert it_large <= it_small


def test_right_preconditioning_reports_true_residuals(fv1):
    from repro.extensions import AsyncPreconditioner
    from repro.matrices import default_rhs

    b = default_rhs(fv1)
    r = GMRESSolver(
        restart=30,
        preconditioner=AsyncPreconditioner(fv1, sweeps=2),
        stopping=StoppingCriterion(tol=1e-10, maxiter=200),
    ).solve(fv1, b)
    assert r.converged
    assert r.iterations < 40  # strongly accelerated
    # Reported final residual is the residual of the ORIGINAL system.
    true_res = np.linalg.norm(fv1.residual(r.x, b))
    assert np.isclose(r.final_residual, true_res, rtol=1e-6)


def test_zero_rhs():
    A = CSRMatrix.identity(6)
    r = GMRESSolver().solve(A, np.zeros(6))
    assert r.converged and r.iterations == 0


def test_budget_counts_inner_iterations(small_spd):
    b = small_spd.matvec(np.ones(60))
    r = GMRESSolver(restart=10, stopping=StoppingCriterion(tol=1e-30, relative=False, maxiter=25)).solve(
        small_spd, b
    )
    assert not r.converged
    # residual history: initial + one entry per inner step (budget-capped),
    # each restart's last entry replaced by the true residual.
    assert len(r.residuals) <= 27


def test_invalid_restart():
    with pytest.raises(ValueError, match="restart"):
        GMRESSolver(restart=0)


def test_names():
    assert GMRESSolver(restart=25).name == "gmres(25)"
    assert GMRESSolver(preconditioner=lambda r: r).name.startswith("pgmres")
