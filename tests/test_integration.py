"""End-to-end integration tests across modules.

These reproduce, at test scale, each of the paper's qualitative claims:
the full pipeline matrix-generator → block decomposition → async engine →
statistics → timing model working together.
"""

import numpy as np
import pytest

from repro import (
    AsyncConfig,
    BlockAsyncSolver,
    ConjugateGradientSolver,
    GaussSeidelSolver,
    JacobiSolver,
    StoppingCriterion,
    default_rhs,
    get_matrix,
)
from repro.core import FaultScenario
from repro.experiments.runner import paper_async_config


class TestPaperClaimFig6:
    """async-(1) converges like Jacobi; GS roughly twice as fast."""

    @pytest.fixture(scope="class")
    def runs(self, fv1):
        b = default_rhs(fv1)
        stop = StoppingCriterion(tol=1e-10, maxiter=400)
        return {
            "gs": GaussSeidelSolver(stopping=stop).solve(fv1, b),
            "jacobi": JacobiSolver(stopping=stop).solve(fv1, b),
            "async1": BlockAsyncSolver(
                paper_async_config(1, block_size=128, seed=4), stopping=stop
            ).solve(fv1, b),
        }

    def test_all_converge(self, runs):
        assert all(r.converged for r in runs.values())

    def test_async1_tracks_jacobi(self, runs):
        assert abs(runs["async1"].iterations - runs["jacobi"].iterations) <= 25

    def test_gs_half_of_jacobi(self, runs):
        ratio = runs["jacobi"].iterations / runs["gs"].iterations
        assert 1.5 < ratio < 2.5


class TestPaperClaimFig7:
    """async-(5) roughly doubles GS's per-iteration convergence on fv*."""

    def test_fv1_speedup(self, fv1):
        b = default_rhs(fv1)
        stop = StoppingCriterion(tol=1e-10, maxiter=400)
        gs = GaussSeidelSolver(stopping=stop).solve(fv1, b)
        a5 = BlockAsyncSolver(paper_async_config(5, seed=4), stopping=stop).solve(fv1, b)
        assert 1.3 < gs.iterations / a5.iterations < 3.0

    def test_chem_no_gain_from_local_iterations(self):
        # Chem97ZtZ's local blocks are diagonal: k=5 ~ k=1.
        A = get_matrix("Chem97ZtZ")
        b = default_rhs(A)
        stop = StoppingCriterion(tol=1e-10, maxiter=400)
        it1 = BlockAsyncSolver(
            paper_async_config(1, block_size=128, seed=4), stopping=stop
        ).solve(A, b).iterations
        it5 = BlockAsyncSolver(
            paper_async_config(5, block_size=128, seed=4), stopping=stop
        ).solve(A, b).iterations
        assert abs(it5 - it1) <= 0.2 * it1


class TestPaperClaimS1rmt3m1:
    """rho(B) > 1: Jacobi and async diverge; tau-scaling helps."""

    @pytest.fixture(scope="class")
    def system(self):
        A = get_matrix("s1rmt3m1")
        return A, default_rhs(A)

    def test_jacobi_diverges(self, system):
        A, b = system
        r = JacobiSolver(stopping=StoppingCriterion(maxiter=60)).solve(A, b)
        assert r.relative_residuals()[-1] > 1e3

    def test_async_diverges(self, system):
        A, b = system
        r = BlockAsyncSolver(
            paper_async_config(5, seed=4), stopping=StoppingCriterion(maxiter=60)
        ).solve(A, b)
        assert r.relative_residuals()[-1] > 1e3

    def test_gauss_seidel_crawls(self, system):
        # SPD => GS converges, but the ill-conditioning makes it useless
        # within the paper's 200-iteration window.
        A, b = system
        r = GaussSeidelSolver(stopping=StoppingCriterion(tol=1e-10, maxiter=200)).solve(A, b)
        assert not r.converged
        assert r.relative_residuals()[-1] < r.relative_residuals()[0]  # but not divergent


class TestPaperClaimFaultTolerance:
    """§4.5 at test scale."""

    def test_recovery_path(self, fv1):
        b = default_rhs(fv1)
        stop = StoppingCriterion(tol=1e-10, maxiter=300)
        clean = BlockAsyncSolver(paper_async_config(5, seed=4), stopping=stop).solve(fv1, b)
        rec = BlockAsyncSolver(
            paper_async_config(5, seed=4),
            fault=FaultScenario(fraction=0.25, t0=10, recovery=20, seed=3),
            stopping=stop,
        ).solve(fv1, b)
        norec = BlockAsyncSolver(
            paper_async_config(5, seed=4),
            fault=FaultScenario(fraction=0.25, t0=10, recovery=None, seed=3),
            stopping=stop,
        ).solve(fv1, b)
        assert clean.converged and rec.converged
        assert clean.iterations < rec.iterations
        assert not norec.converged
        assert norec.relative_residuals()[-1] > 1e-6  # stagnated far away


class TestExactReconstruction:
    """Trefethen is exact: cross-check a solver against scipy on it."""

    def test_solution_matches_scipy(self, trefethen_small):
        import scipy.sparse.linalg as spla

        A = trefethen_small
        b = default_rhs(A)
        ours = ConjugateGradientSolver(
            stopping=StoppingCriterion(tol=1e-12, maxiter=1000)
        ).solve(A, b)
        ref = spla.spsolve(A.to_scipy().tocsc(), b)
        assert np.allclose(ours.x, ref, atol=1e-6)


class TestSolversAgree:
    """All convergent methods agree on the solution."""

    def test_same_fixed_point(self, small_spd):
        x_star = np.linspace(0, 1, 60)
        b = small_spd.matvec(x_star)
        stop = StoppingCriterion(tol=1e-13, maxiter=3000)
        solutions = [
            JacobiSolver(stopping=stop).solve(small_spd, b).x,
            GaussSeidelSolver(stopping=stop).solve(small_spd, b).x,
            ConjugateGradientSolver(stopping=stop).solve(small_spd, b).x,
            BlockAsyncSolver(
                AsyncConfig(local_iterations=3, block_size=13, seed=0), stopping=stop
            ).solve(small_spd, b).x,
        ]
        for x in solutions:
            assert np.allclose(x, x_star, atol=1e-7)
