"""Tests for the `repro experiment all` driver (on a trimmed registry)."""

import json

import pytest

import repro.experiments
from repro.cli import main


@pytest.fixture()
def tiny_registry(monkeypatch):
    """Registry containing only the fastest experiments."""
    full = repro.experiments.EXPERIMENTS
    tiny = {k: full[k] for k in ("F8", "T4")}
    monkeypatch.setattr(repro.experiments, "EXPERIMENTS", tiny)
    return tiny


def test_experiment_all_writes_artifacts(tmp_path, tiny_registry, capsys):
    code = main(["experiment", "all", "--outdir", str(tmp_path)])
    assert code == 0
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == ["F8.txt", "T4.txt"]
    assert "Figure 8" in (tmp_path / "F8.txt").read_text()
    out = capsys.readouterr().out
    assert "wrote 2 artifacts" in out


def test_experiment_all_json_sidecars(tmp_path, tiny_registry, capsys):
    code = main(["experiment", "all", "--outdir", str(tmp_path), "--json"])
    assert code == 0
    data = json.loads((tmp_path / "F8.json").read_text())
    assert data["experiment_id"] == "F8"
