"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import SOLVER_CHOICES, build_parser, main


def test_parser_builds():
    p = build_parser()
    args = p.parse_args(["solve", "fv1", "--solver", "jacobi"])
    assert args.matrix == "fv1"
    assert args.solver == "jacobi"


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "Chem97ZtZ" in out and "Trefethen_20000" in out
    assert "NO" in out  # s1rmt3m1 flagged non-convergent


def test_characterize_suite_matrix(capsys):
    assert main(["characterize", "Trefethen_2000", "--lanczos-steps", "60"]) == 0
    out = capsys.readouterr().out
    assert "rho(B)" in out
    assert "0.86" in out


def test_characterize_mtx_file(tmp_path, capsys):
    from repro.matrices import write_matrix_market
    from repro.sparse import CSRMatrix

    dense = np.diag([4.0, 5.0, 6.0])
    dense[0, 1] = dense[1, 0] = 1.0
    path = tmp_path / "tiny.mtx"
    write_matrix_market(path, CSRMatrix.from_dense(dense))
    assert main(["characterize", str(path)]) == 0
    assert "nnz" in capsys.readouterr().out


@pytest.mark.parametrize("solver", ["jacobi", "gauss-seidel", "cg", "async", "block-jacobi"])
def test_solve_command(solver, capsys):
    code = main(
        ["solve", "Trefethen_2000", "--solver", solver, "--tol", "1e-8", "--maxiter", "1200"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "converged: True" in out


def test_solve_history_flag(capsys):
    main(["solve", "Trefethen_2000", "--solver", "cg", "--tol", "1e-6", "--history"])
    out = capsys.readouterr().out
    assert "iter " in out


def test_solve_nonconvergent_exit_code(capsys):
    code = main(["solve", "s1rmt3m1", "--solver", "jacobi", "--maxiter", "20"])
    assert code == 1


def test_experiment_list(capsys):
    assert main(["experiment", "list"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "F11" in out and "X2" in out


def test_experiment_run(capsys):
    assert main(["experiment", "F8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out


def test_all_solver_choices_constructible():
    p = build_parser()
    for s in SOLVER_CHOICES:
        args = p.parse_args(["solve", "fv1", "--solver", s])
        assert args.solver == s


def test_experiment_json_output(capsys):
    import json

    assert main(["experiment", "F8", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["experiment_id"] == "F8"
    assert data["series"]


def test_solve_telemetry_json(tmp_path, capsys):
    import json

    path = tmp_path / "run.json"
    code = main(
        [
            "solve",
            "Trefethen_2000",
            "--solver",
            "async",
            "--block-size",
            "64",
            "--tol",
            "1e-8",
            "--telemetry-json",
            str(path),
        ]
    )
    assert code == 0
    data = json.loads(path.read_text())
    assert data["schema"] == "repro.runtime/v1"
    (run,) = data["runs"]
    assert run["meta"]["method"].startswith("async-")
    assert run["annotations"]["matrix"] == "Trefethen_2000"
    assert len(run["sweeps"]["seconds"]) == len(run["sweeps"]["index"])
    assert run["residuals"]["norms"][0] > run["residuals"]["norms"][-1]
    assert run["summary"]["converged"] is True


def test_solve_residual_every_records_cadence(tmp_path):
    import json

    path = tmp_path / "run.json"
    code = main(
        [
            "solve",
            "Trefethen_2000",
            "--solver",
            "jacobi",
            "--tol",
            "1e-8",
            "--maxiter",
            "1200",
            "--residual-every",
            "50",
            "--telemetry-json",
            str(path),
        ]
    )
    assert code == 0
    (run,) = json.loads(path.read_text())["runs"]
    assert run["meta"]["residual_every"] == 50
    iters = run["residuals"]["iters"]
    assert iters[0] == 0
    assert all(i % 50 == 0 for i in iters[:-1])


def test_experiment_telemetry_json(tmp_path, capsys):
    import json

    path = tmp_path / "f6.json"
    assert main(["experiment", "F6", "--telemetry-json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["schema"] == "repro.runtime/v1"
    # One async run per Figure 6 panel, each tagged with its matrix.
    matrices = {run["annotations"]["matrix"] for run in data["runs"]}
    assert "fv1" in matrices and "s1rmt3m1" in matrices


def test_experiment_telemetry_unsupported_errors(tmp_path, capsys):
    path = tmp_path / "t1.json"
    assert main(["experiment", "T1", "--telemetry-json", str(path)]) == 2
    assert "telemetry" in capsys.readouterr().err
    assert not path.exists()


def test_experiment_all_rejects_telemetry(tmp_path, capsys):
    assert (
        main(
            [
                "experiment",
                "all",
                "--outdir",
                str(tmp_path),
                "--telemetry-json",
                str(tmp_path / "t.json"),
            ]
        )
        == 2
    )
    assert "single experiment" in capsys.readouterr().err


def test_serve_command_jobs_file(tmp_path, capsys):
    import json

    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text(
        "\n".join(
            [
                '{"matrix": "Trefethen_2000", "id": "a", "rhs": "random", "seed": 0}',
                '{"matrix": "Trefethen_2000", "id": "b", "rhs": "random", "seed": 1}',
                "# comment lines and blanks are skipped",
                "",
                '{"matrix": "Trefethen_2000", "id": "c", "tol": 1e-6}',
            ]
        )
        + "\n"
    )
    telemetry = tmp_path / "serve.json"
    code = main(
        [
            "serve", str(jobs),
            "--tol", "1e-8", "--maxiter", "600",
            "--block-size", "128",
            "--stats",
            "--telemetry-json", str(telemetry),
        ]
    )
    assert code == 0
    out_lines = capsys.readouterr().out.strip().splitlines()
    responses = [json.loads(line) for line in out_lines[:3]]
    by_id = {r["id"]: r for r in responses}
    assert set(by_id) == {"a", "b", "c"}
    # a and b share matrix/config/stopping → one batch; c stops differently.
    assert by_id["a"]["batch_size"] == 2 and by_id["b"]["batch_size"] == 2
    assert by_id["c"]["batch_size"] == 1
    assert all(r["status"] == "completed" and r["converged"] for r in responses)
    stats = json.loads("\n".join(out_lines[3:]))
    assert stats["service"]["requests"]["completed"] == 3

    def _reject(token):
        raise ValueError(token)

    doc = json.loads(telemetry.read_text(), parse_constant=_reject)
    assert doc["schema"] == "repro.serve/v1"
    assert len(doc["telemetry"]["runs"]) == 4  # 1 batched drive + 3 requests


def test_serve_command_stdin(monkeypatch, capsys):
    import io
    import json

    monkeypatch.setattr(
        "sys.stdin",
        io.StringIO('{"matrix": "Trefethen_2000", "id": "only", "tol": 1e-6}\n'),
    )
    code = main(["serve", "--block-size", "128", "--maxiter", "600"])
    assert code == 0
    response = json.loads(capsys.readouterr().out.strip())
    assert response["id"] == "only" and response["status"] == "completed"


def test_serve_command_bad_job_errors(tmp_path, capsys):
    jobs = tmp_path / "bad.jsonl"
    jobs.write_text('{"matrix": "Trefethen_2000", "typo_key": 1}\n')
    assert main(["serve", str(jobs)]) == 2
    assert "unknown job keys" in capsys.readouterr().err


def test_solve_schwarz_ras(capsys):
    code = main(
        ["solve", "Trefethen_2000", "--solver", "async", "--local-iterations", "3",
         "--partition", "uniform:32+o8", "--schwarz", "ras",
         "--tol", "1e-8", "--maxiter", "300"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "async-RAS(3,o8)" in out
    assert "converged: True" in out


def test_solve_bad_partition_spec_is_a_clean_error(capsys):
    # Spec validation surfaces as an actionable CLI error (exit 2), not a
    # traceback — at the solver-construction level where AsyncConfig parses.
    code = main(["solve", "fv1", "--solver", "async", "--partition", "uniform:abc"])
    assert code == 2
    assert "must be an integer" in capsys.readouterr().err
    code = main(["solve", "fv1", "--solver", "async", "--partition", "uniform:4+x2"])
    assert code == 2
    assert "overlap suffix" in capsys.readouterr().err


def test_serve_schwarz_flag_threads_to_config(tmp_path, capsys):
    import json

    jobs = tmp_path / "jobs.jsonl"
    jobs.write_text('{"matrix": "Trefethen_2000", "id": "r", "tol": 1e-6}\n')
    code = main(
        ["serve", str(jobs), "--partition", "uniform:64+o8", "--schwarz", "ras",
         "--block-size", "64", "--local-iterations", "3", "--maxiter", "600"]
    )
    assert code == 0
    response = json.loads(capsys.readouterr().out.strip().splitlines()[0])
    assert response["status"] == "completed"
