"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import SOLVER_CHOICES, build_parser, main


def test_parser_builds():
    p = build_parser()
    args = p.parse_args(["solve", "fv1", "--solver", "jacobi"])
    assert args.matrix == "fv1"
    assert args.solver == "jacobi"


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "Chem97ZtZ" in out and "Trefethen_20000" in out
    assert "NO" in out  # s1rmt3m1 flagged non-convergent


def test_characterize_suite_matrix(capsys):
    assert main(["characterize", "Trefethen_2000", "--lanczos-steps", "60"]) == 0
    out = capsys.readouterr().out
    assert "rho(B)" in out
    assert "0.86" in out


def test_characterize_mtx_file(tmp_path, capsys):
    from repro.matrices import write_matrix_market
    from repro.sparse import CSRMatrix

    dense = np.diag([4.0, 5.0, 6.0])
    dense[0, 1] = dense[1, 0] = 1.0
    path = tmp_path / "tiny.mtx"
    write_matrix_market(path, CSRMatrix.from_dense(dense))
    assert main(["characterize", str(path)]) == 0
    assert "nnz" in capsys.readouterr().out


@pytest.mark.parametrize("solver", ["jacobi", "gauss-seidel", "cg", "async", "block-jacobi"])
def test_solve_command(solver, capsys):
    code = main(
        ["solve", "Trefethen_2000", "--solver", solver, "--tol", "1e-8", "--maxiter", "1200"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "converged: True" in out


def test_solve_history_flag(capsys):
    main(["solve", "Trefethen_2000", "--solver", "cg", "--tol", "1e-6", "--history"])
    out = capsys.readouterr().out
    assert "iter " in out


def test_solve_nonconvergent_exit_code(capsys):
    code = main(["solve", "s1rmt3m1", "--solver", "jacobi", "--maxiter", "20"])
    assert code == 1


def test_experiment_list(capsys):
    assert main(["experiment", "list"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "F11" in out and "X2" in out


def test_experiment_run(capsys):
    assert main(["experiment", "F8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out


def test_all_solver_choices_constructible():
    p = build_parser()
    for s in SOLVER_CHOICES:
        args = p.parse_args(["solve", "fv1", "--solver", s])
        assert args.solver == s


def test_experiment_json_output(capsys):
    import json

    assert main(["experiment", "F8", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["experiment_id"] == "F8"
    assert data["series"]
