"""Smoke tests: every shipped example runs end to end and says what it should."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=420):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "async-(5)" in out
    assert "Gauss-Seidel" in out


def test_fault_tolerant_solve():
    out = run_example("fault_tolerant_solve.py")
    assert "recover-(20)" in out
    assert "no recovery" in out


def test_divergent_system_rescue():
    out = run_example("divergent_system_rescue.py")
    assert "tau" in out
    assert "monotone decrease restored" in out


def test_multigrid_smoothing():
    out = run_example("multigrid_smoothing.py")
    assert "gauss-seidel" in out
    assert "async" in out


def test_nondeterminism_study():
    out = run_example("nondeterminism_study.py", "6")
    assert "rel var" in out
    assert "off-block" in out


def test_silent_error_watch():
    out = run_example("silent_error_watch.py")
    assert "ALERT" in out
    assert "no alarm" in out


def test_multigpu_scaling():
    out = run_example("multigpu_scaling.py")
    assert "AMC" in out and "DK" in out
    assert "GPU(s)" in out
