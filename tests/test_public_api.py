"""Public-API surface tests: everything advertised imports and works."""

import numpy as np


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_quickstart_docstring_flow():
    # The README / package-docstring quickstart, verbatim in spirit.
    from repro import BlockAsyncSolver, default_rhs, get_matrix

    A = get_matrix("fv1")
    b = default_rhs(A)
    result = BlockAsyncSolver(local_iterations=5, block_size=448, seed=0).solve(A, b)
    assert result.converged
    assert result.method == "async-(5)"


def test_subpackage_exports():
    from repro import (
        core,
        experiments,
        extensions,
        gpu,
        matrices,
        serve,
        solvers,
        sparse,
        stats,
    )

    for mod in (core, experiments, extensions, gpu, matrices, serve, solvers, sparse, stats):
        assert mod.__doc__
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{mod.__name__}.{name}"


def test_all_public_callables_documented():
    # Every public class/function in the advertised API carries a docstring.
    import inspect

    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_solve_result_repr(small_spd):
    from repro import JacobiSolver, StoppingCriterion

    r = JacobiSolver(stopping=StoppingCriterion(tol=0.0, maxiter=2)).solve(
        small_spd, np.ones(60)
    )
    text = repr(r)
    assert "jacobi" in text and "iters=2" in text
