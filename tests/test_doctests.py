"""Run the executable examples embedded in docstrings.

Only modules whose examples are fast and deterministic are collected; the
ThreadedAsyncSolver example is exercised despite being nondeterministic
because its asserted outcome (convergence) is schedule-independent.
"""

import doctest

import pytest

import repro
import repro.core.block_async
import repro.core.threaded
import repro.extensions.multigrid
import repro.serve


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.core.block_async,
        repro.core.threaded,
        repro.extensions.multigrid,
        repro.serve,
    ],
    ids=lambda m: m.__name__,
)
def test_docstring_examples(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
