"""Discrete-event simulation of streams, kernels and copies.

CUDA streams let copies and kernels overlap subject to (a) explicit
dependencies and (b) physical resource serialisation (a PCIe link moves one
DMA at a time; an SM array runs one resident kernel wave at a time at our
modelling granularity).  :class:`EventSimulator` captures exactly that: a
DAG of :class:`Task` s, each occupying one or more :class:`Resource` s for
its duration, scheduled greedily in dependency order.  The makespan of one
iteration's task graph is the modelled iteration time — this is what the
multi-GPU strategies (:mod:`repro.gpu.multigpu`) are compared on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Resource", "Task", "EventSimulator"]


@dataclass
class Resource:
    """A serially-used hardware resource (a PCIe link, a GPU, the QPI)."""

    name: str
    available_at: float = 0.0

    def reset(self) -> None:
        self.available_at = 0.0


@dataclass
class Task:
    """One unit of work occupying resources for a fixed duration.

    Attributes
    ----------
    name:
        Task label (for traces).
    duration:
        Seconds of occupancy.
    resources:
        Resources held for the whole duration (all simultaneously).
    deps:
        Tasks that must finish before this one starts.
    start / finish:
        Filled in by the simulator.
    """

    name: str
    duration: float
    resources: Sequence[Resource] = field(default_factory=tuple)
    deps: Sequence["Task"] = field(default_factory=tuple)
    start: Optional[float] = None
    finish: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")


class EventSimulator:
    """Greedy list scheduler over a task DAG.

    Tasks are processed in a topological order; each starts as soon as all
    dependencies have finished *and* all its resources are free, and holds
    its resources until it finishes.  This matches how the CUDA runtime
    dispatches stream work conservatively and is sufficient for comparing
    communication strategies (we care about contention structure, not
    cycle-accurate DMA behaviour).
    """

    def __init__(self) -> None:
        self.tasks: List[Task] = []

    def add(self, task: Task) -> Task:
        """Register a task (dependencies must already be registered)."""
        for dep in task.deps:
            if dep not in self.tasks:
                raise ValueError(f"dependency {dep.name!r} of {task.name!r} not registered")
        self.tasks.append(task)
        return task

    def task(
        self,
        name: str,
        duration: float,
        resources: Sequence[Resource] = (),
        deps: Sequence[Task] = (),
    ) -> Task:
        """Convenience: build and register a task in one call."""
        return self.add(Task(name=name, duration=duration, resources=tuple(resources), deps=tuple(deps)))

    def run(self) -> float:
        """Schedule all tasks; returns the makespan.

        Registration order is required to be a valid topological order
        (guaranteed by :meth:`add`'s dependency check), so one pass
        suffices.
        """
        makespan = 0.0
        for t in self.tasks:
            ready = max((d.finish for d in t.deps), default=0.0)
            ready = max(ready, *(r.available_at for r in t.resources)) if t.resources else ready
            t.start = ready
            t.finish = ready + t.duration
            for r in t.resources:
                r.available_at = t.finish
            makespan = max(makespan, t.finish)
        return makespan

    def timeline(self) -> List[Tuple[str, float, float]]:
        """(name, start, finish) triples after :meth:`run` (trace/debug)."""
        return [(t.name, t.start if t.start is not None else -1.0, t.finish if t.finish is not None else -1.0) for t in self.tasks]
