"""ASCII Gantt rendering of event-simulator timelines.

Makes the multi-GPU strategy models inspectable: after
:meth:`repro.gpu.streams.EventSimulator.run`, :func:`render_gantt` draws
which resource was busy with what, when — the picture that explains *why*
DC serialises on the master link while AMC's lanes overlap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .streams import EventSimulator, Task

__all__ = ["render_gantt"]


def render_gantt(sim: EventSimulator, *, width: int = 64, by_resource: bool = True) -> str:
    """Render a completed simulation as an ASCII Gantt chart.

    Parameters
    ----------
    sim:
        An :class:`EventSimulator` whose :meth:`run` has been called.
    width:
        Character columns for the time axis.
    by_resource:
        Group rows by resource (default) instead of one row per task.
    """
    tasks = [t for t in sim.tasks if t.start is not None and t.finish is not None]
    if not tasks:
        return "(empty timeline)"
    makespan = max(t.finish for t in tasks)
    if makespan <= 0:
        return "(zero-length timeline)"

    def span(t: Task) -> Tuple[int, int]:
        a = int(round(t.start / makespan * (width - 1)))
        b = int(round(t.finish / makespan * (width - 1)))
        return a, max(b, a)  # zero-duration tasks still get one cell

    rows: List[Tuple[str, List[Task]]] = []
    if by_resource:
        grouped: Dict[str, List[Task]] = {}
        for t in tasks:
            if t.resources:
                for r in t.resources:
                    grouped.setdefault(r.name, []).append(t)
            else:
                grouped.setdefault("(none)", []).append(t)
        rows = sorted(grouped.items())
    else:
        rows = [(t.name, [t]) for t in tasks]

    label_w = max(len(name) for name, _ in rows)
    lines = [f"{'':{label_w}s}  |{'-' * width}|  makespan {makespan:.4g}s"]
    for name, ts in rows:
        cells = [" "] * width
        for t in ts:
            a, b = span(t)
            mark = t.name[0] if t.name else "#"
            for i in range(a, min(b + 1, width)):
                cells[i] = "#" if cells[i] not in (" ", mark) else mark
        lines.append(f"{name:{label_w}s}  |{''.join(cells)}|")
    return "\n".join(lines)
