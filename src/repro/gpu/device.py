"""Device specifications and occupancy.

:class:`DeviceSpec` captures the handful of hardware parameters the
execution and timing models consume.  The Fermi C2070 preset matches the
paper's §3.2 hardware (14 multiprocessors × 32 CUDA cores @ 1.15 GHz, 6 GB);
the Xeon E5540 preset stands in for the 4-core CPU reference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "FERMI_C2070", "XEON_E5540", "occupancy"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of one compute device.

    Attributes
    ----------
    name:
        Human-readable device name.
    sm_count:
        Streaming multiprocessors (or CPU cores for a CPU device).
    cores_per_sm:
        Scalar lanes per multiprocessor.
    clock_ghz:
        Core clock.
    mem_bandwidth_gbs:
        Device memory bandwidth (GB/s).
    cache_per_sm_kb:
        Per-SM local storage (shared memory + L1); bounds how large a
        subdomain fits on chip — the reason the paper's local iterations
        "almost come for free".
    max_threads_per_sm:
        Occupancy limit used to derive concurrent thread blocks.
    kernel_launch_overhead_s:
        Per-kernel launch latency (host-side).
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    cache_per_sm_kb: float
    max_threads_per_sm: int
    kernel_launch_overhead_s: float

    def flops(self) -> float:
        """Nominal peak FLOP/s (fused multiply-add not double counted)."""
        return self.sm_count * self.cores_per_sm * self.clock_ghz * 1e9


#: The paper's GPU: NVIDIA Fermi C2070 (§3.2).
FERMI_C2070 = DeviceSpec(
    name="Fermi C2070",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    cache_per_sm_kb=64.0,
    max_threads_per_sm=1536,
    kernel_launch_overhead_s=7e-6,
)

#: The paper's CPU (one socket of the Supermicro host).
XEON_E5540 = DeviceSpec(
    name="Xeon E5540",
    sm_count=4,
    cores_per_sm=1,
    clock_ghz=2.53,
    mem_bandwidth_gbs=25.6,
    cache_per_sm_kb=256.0,
    max_threads_per_sm=1,
    kernel_launch_overhead_s=0.0,
)


def occupancy(device: DeviceSpec, threads_per_block: int) -> int:
    """Concurrent resident thread blocks across the whole device.

    The classic occupancy bound: blocks per SM limited by the thread budget,
    times the SM count.  This is the ``concurrency`` the wave scheduler uses
    — e.g. 448-thread blocks on the C2070 give 3 blocks/SM × 14 SMs = 42
    concurrent blocks.
    """
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be positive")
    per_sm = max(1, device.max_threads_per_sm // threads_per_block)
    return per_sm * device.sm_count
