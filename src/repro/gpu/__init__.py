"""Simulated GPU substrate.

The paper's experiments ran on a Supermicro host with two Intel Xeon E5540
CPUs and four NVIDIA Fermi C2070 GPUs.  None of that hardware is available
here; what the algorithms actually depend on is

1. the *scheduling behaviour* (which blocks execute concurrently, in what
   recurring order) — modelled by :class:`repro.core.schedules.WaveScheduler`
   parameterised from a :class:`DeviceSpec`'s occupancy;
2. the *relative cost* of kernels, local iterations, synchronisation and
   transfers — modelled by :mod:`repro.gpu.timing`, calibrated against the
   paper's own measurements (its Tables 4/5 and Figure 8);
3. the *interconnect contention* between devices — modelled by the
   discrete-event simulator in :mod:`repro.gpu.streams` over the topology in
   :mod:`repro.gpu.cluster`, with the three §3.4 communication strategies in
   :mod:`repro.gpu.multigpu`.
"""

from .device import DeviceSpec, FERMI_C2070, XEON_E5540, occupancy
from .memory import Link, transfer_time, PCIE_GEN2_X16, QPI
from .streams import Resource, Task, EventSimulator
from .timing import IterationCostModel, SetupCostModel, PAPER_TABLE5, PAPER_TABLE4_FV3
from .cluster import GPUClusterSpec, SUPERMICRO_4GPU
from .multigpu import MultiDeviceEngine, MultiGPUModel, STRATEGIES, device_partition

__all__ = [
    "DeviceSpec",
    "FERMI_C2070",
    "XEON_E5540",
    "occupancy",
    "Link",
    "transfer_time",
    "PCIE_GEN2_X16",
    "QPI",
    "Resource",
    "Task",
    "EventSimulator",
    "IterationCostModel",
    "SetupCostModel",
    "PAPER_TABLE5",
    "PAPER_TABLE4_FV3",
    "GPUClusterSpec",
    "SUPERMICRO_4GPU",
    "MultiDeviceEngine",
    "MultiGPUModel",
    "STRATEGIES",
    "device_partition",
]
