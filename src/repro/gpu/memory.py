"""Interconnect links and transfer-time model.

Transfers follow the standard latency + size/bandwidth model.  The presets
match the paper's host (§3.2/§4.6): PCIe 2.0 ×16 per GPU, and the QPI link
between the two CPU sockets that §4.6 identifies as the bottleneck once
more than two GPUs participate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link", "transfer_time", "PCIE_GEN2_X16", "QPI"]


@dataclass(frozen=True)
class Link:
    """A serial interconnect link.

    Attributes
    ----------
    name:
        Label used by the event simulator's resource accounting.
    bandwidth_gbs:
        Sustained bandwidth in GB/s (effective, not theoretical peak).
    latency_s:
        Per-transfer initiation latency (driver + DMA setup).
    """

    name: str
    bandwidth_gbs: float
    latency_s: float

    def time(self, nbytes: float) -> float:
        """Transfer duration for a message of *nbytes*."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


def transfer_time(nbytes: float, link: Link) -> float:
    """Function-style alias for :meth:`Link.time`."""
    return link.time(nbytes)


#: PCIe 2.0 ×16: ~8 GB/s theoretical, ~5.5 GB/s sustained for device copies.
PCIE_GEN2_X16 = Link(name="pcie2x16", bandwidth_gbs=5.5, latency_s=15e-6)

#: Intel QPI between the two Xeon sockets (shared by all cross-socket traffic).
QPI = Link(name="qpi", bandwidth_gbs=11.0, latency_s=2e-6)
