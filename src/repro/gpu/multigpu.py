"""Multi-GPU block-asynchronous iteration: strategies, timing and convergence.

§3.4 of the paper proposes three ways to move the iterate between devices:

* **AMC** (asynchronous multicopy) — every GPU exchanges data with host
  memory over its *own* PCIe link; the per-GPU streams run concurrently.
* **DC** (GPU-direct memory transfer) — the iterate lives on a master GPU;
  every exchange crosses the *master's* PCIe link, which serialises all
  peers' traffic.
* **DK** (GPU-direct kernel access) — kernels on non-master GPUs read and
  write the master's memory directly; compute slows to remote-access speed
  and the remote traffic also contends on the master link.

CUDA 4.0 restricts GPU-direct to same-socket pairs, so for 3+ GPUs the DC
and DK paths fall back to host-staged transfers across the QPI (the paper
hits exactly this wall).  Timing is produced by the discrete-event stream
simulator over the cluster topology; compute durations come from the
Table 5-calibrated :class:`repro.gpu.timing.IterationCostModel`.

The module also provides :class:`MultiDeviceEngine` — a convergence-level
simulation where blocks are partitioned over devices and *cross-device*
reads only see sweep-boundary snapshots (communication happens once per
sweep), which is the extra layer of asynchronism §3.4 describes.  Its
convergence is nearly identical to the single-device engine's, reproducing
the paper's implicit assumption that accuracy depends (almost) only on
run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.engine import AsyncEngine
from ..core.schedules import AsyncConfig
from ..sparse import BlockRowView, CSRMatrix
from .cluster import GPUClusterSpec, SUPERMICRO_4GPU
from .streams import EventSimulator, Resource
from .timing import IterationCostModel

__all__ = ["STRATEGIES", "MultiGPUTimingParams", "MultiGPUModel", "MultiDeviceEngine", "device_partition"]

#: The §3.4 communication strategies.
STRATEGIES = ("AMC", "DC", "DK")


@dataclass(frozen=True)
class MultiGPUTimingParams:
    """Calibrated constants of the multi-GPU model.

    All three are contention/latency effects the paper observes but does
    not measure in isolation; they are calibrated so the Figure 11 bar
    pattern is reproduced (see EXPERIMENTS.md, experiment F11):

    block_transfer_s:
        Cost of streaming one thread block's updated components (DMA setup
        + stream bookkeeping dominate for these tiny messages).
    qpi_staging_factor:
        Multiplier on transfer costs that cross the QPI via host staging.
    remote_access_factor:
        DK only — slowdown of a kernel whose operands live in another
        GPU's memory.
    single_gpu_sync_s:
        Residual per-block stream-synchronisation cost when no transfers
        are needed (single-GPU DC/DK).
    """

    block_transfer_s: float = 2.0e-4
    qpi_staging_factor: float = 2.6
    remote_access_factor: float = 1.8
    single_gpu_sync_s: float = 5.0e-5


class MultiGPUModel:
    """Per-iteration timing of the three strategies on a cluster.

    Parameters
    ----------
    cluster:
        Host topology (default: the paper's Supermicro 2×2 layout).
    cost_model:
        Compute-cost calibration.
    params:
        Contention constants (see :class:`MultiGPUTimingParams`).
    """

    def __init__(
        self,
        cluster: GPUClusterSpec = SUPERMICRO_4GPU,
        cost_model: Optional[IterationCostModel] = None,
        params: MultiGPUTimingParams = MultiGPUTimingParams(),
    ):
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else IterationCostModel()
        self.params = params

    # ------------------------------------------------------------------ #

    def _shares(self, matrix, ngpus: int, block_size: int) -> Tuple[float, int, List[int]]:
        """(compute seconds per GPU share, total blocks, blocks per GPU)."""
        name, n, nnz = self.cost_model._size_of(matrix)
        if isinstance(matrix, str):
            name = matrix
        t_full = self.cost_model.per_iteration("async", matrix, local_iterations=5)
        nblocks = max(1, -(-n // block_size))
        per_gpu = [nblocks // ngpus + (1 if g < nblocks % ngpus else 0) for g in range(ngpus)]
        return t_full, nblocks, per_gpu

    def iteration_time(
        self,
        strategy: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        ngpus: int,
        *,
        block_size: int = 448,
    ) -> float:
        """Modelled seconds for one global iteration.

        Builds the strategy's task graph for one iteration and returns the
        event simulator's makespan.
        """
        return self._build_simulation(strategy, matrix, ngpus, block_size=block_size).run()

    def _build_simulation(
        self,
        strategy: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        ngpus: int,
        *,
        block_size: int = 448,
    ) -> EventSimulator:
        """The one-iteration task graph for a strategy (unrun)."""
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
        if not (1 <= ngpus <= self.cluster.ngpus):
            raise ValueError(f"ngpus must be in [1, {self.cluster.ngpus}]")
        t_full, nblocks, per_gpu = self._shares(matrix, ngpus, block_size)
        p = self.params
        sim = EventSimulator()
        gpu_res = [Resource(f"gpu{g}") for g in range(ngpus)]
        link_res = [Resource(f"pcie{g}") for g in range(ngpus)]
        master_link = link_res[0]

        def staging(g: int) -> float:
            """Transfer-cost multiplier for GPU g's host traffic."""
            return p.qpi_staging_factor if self.cluster.crosses_qpi_to_host(g) else 1.0

        def peer_staging(g: int) -> float:
            """Multiplier for master<->g GPU-direct traffic."""
            return 1.0 if self.cluster.peer_possible(0, g) else p.qpi_staging_factor

        if strategy == "AMC":
            # The iterate lives in HOST memory (the "communication
            # facility"), so even a single GPU pays the round trip — this
            # is exactly why the paper finds DC/DK slightly faster at one
            # GPU, and why AMC halves almost perfectly at two.
            for g in range(ngpus):
                comp = sim.task(f"compute{g}", t_full * per_gpu[g] / nblocks, [gpu_res[g]])
                # Updated components out, assembled vector back in — on
                # this GPU's own link, QPI-staged if cross-socket.
                cost = per_gpu[g] * p.block_transfer_s * staging(g)
                d2h = sim.task(f"d2h{g}", cost, [link_res[g]], [comp])
                sim.task(f"h2d{g}", cost, [link_res[g]], [d2h])
        elif strategy == "DC":
            for g in range(ngpus):
                comp = sim.task(f"compute{g}", t_full * per_gpu[g] / nblocks, [gpu_res[g]])
                if g == 0:
                    sim.task("sync0", per_gpu[g] * p.single_gpu_sync_s, [master_link], [comp])
                else:
                    # Peer traffic both ways crosses the master's link.
                    cost = per_gpu[g] * p.block_transfer_s * peer_staging(g)
                    back = sim.task(f"d2d_back{g}", cost, [master_link, link_res[g]], [comp])
                    sim.task(f"d2d_out{g}", cost, [master_link, link_res[g]], [back])
        else:  # DK
            # Peer kernels launch first (they are the long pole and start
            # immediately); the master's stream sync then queues behind
            # their remote traffic on its own link.
            for g in range(1, ngpus):
                # Remote-operand kernels: slower, and their traffic
                # occupies the master link for the whole kernel.
                dur = (t_full * per_gpu[g] / nblocks) * p.remote_access_factor * peer_staging(g)
                sim.task(f"compute{g}", dur, [gpu_res[g], master_link])
            comp = sim.task("compute0", t_full * per_gpu[0] / nblocks, [gpu_res[0]])
            sim.task("sync0", per_gpu[0] * p.single_gpu_sync_s, [master_link], [comp])
        return sim

    def trace(
        self,
        strategy: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        ngpus: int,
        *,
        block_size: int = 448,
        width: int = 64,
    ) -> str:
        """ASCII Gantt chart of one iteration's task timeline.

        Rebuilds the strategy's task graph and renders which resource was
        busy with what — the picture behind the Figure 11 bars (AMC's
        parallel lanes vs DC/DK's master-link serialisation).
        """
        from .trace import render_gantt

        sim = self._build_simulation(strategy, matrix, ngpus, block_size=block_size)
        sim.run()
        return render_gantt(sim, width=width)

    def time_to_convergence(
        self,
        strategy: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        ngpus: int,
        iterations: int,
        *,
        block_size: int = 448,
    ) -> float:
        """Figure 11's quantity: iterations × per-iteration time.

        The paper subtracts initialisation overhead in Figure 11, so no
        setup model is applied here.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return iterations * self.iteration_time(strategy, matrix, ngpus, block_size=block_size)


def device_partition(nblocks, ngpus: int) -> np.ndarray:
    """Device id per block: contiguous balanced ranges (paper §3.4).

    *nblocks* is a block count or a :class:`repro.partition.Partition`
    (whose block count is used) — the splitter rides on whatever
    decomposition the engine runs, uniform or not.  Delegates to the
    shared :func:`repro.partition.contiguous_placement` helper (also used
    by the multiprocess sharding layer, :mod:`repro.dist`), whose
    unweighted split is bitwise the historical formula.
    """
    from ..partition import Partition, contiguous_placement

    if isinstance(nblocks, Partition):
        nblocks = nblocks.nblocks
    nblocks = int(nblocks)
    if nblocks < 1 or ngpus < 1:
        raise ValueError("nblocks and ngpus must be positive")
    if ngpus > nblocks:
        # More devices than blocks: the shared helper insists every group
        # owns a block, so keep the historical spread (surplus devices
        # simply receive none) for this edge.
        return np.minimum((np.arange(nblocks) * ngpus) // nblocks, ngpus - 1).astype(np.int64)
    return contiguous_placement(nblocks, ngpus)


class MultiDeviceEngine(AsyncEngine):
    """Convergence-level multi-GPU simulation.

    Blocks are partitioned over *ngpus* devices.  Within a device the usual
    wave semantics apply; values owned by *other* devices are read from the
    sweep-start snapshot, modelling once-per-sweep inter-device
    communication (the extra asynchronism layer of §3.4).
    """

    def __init__(
        self,
        view: BlockRowView,
        b: np.ndarray,
        config: AsyncConfig,
        ngpus: int,
        **kwargs,
    ):
        super().__init__(view, b, config, **kwargs)
        if ngpus < 1:
            raise ValueError("ngpus must be >= 1")
        self.ngpus = ngpus
        # This engine overrides sweep() with device-snapshot semantics the
        # backend executors don't model, so it keeps its own per-block
        # right-hand-side slices (the base engine's are plan/executor
        # internals).
        self._b_blocks = [self.b[blk.rows] for blk in view.blocks]
        self.assignment = device_partition(view.partition, ngpus)
        # Per block: split the external part into same-device columns
        # (read live) and remote columns (read from the sweep snapshot).
        self._near: List = []
        self._far: List = []
        for blk in view.blocks:
            dev = self.assignment[blk.index]
            owned = np.flatnonzero(self.assignment == dev)
            lo = int(view.boundaries[owned[0]])
            hi = int(view.boundaries[owned[-1] + 1])
            near, far = blk.external.column_range_split(lo, hi)
            self._near.append(near)
            self._far.append(far)

    def device_map(self) -> dict:
        """JSON-friendly device→block map (shared shape with ``repro.dist``).

        Rendered by :func:`repro.partition.placement_telemetry` so the
        simulated multi-device layer and the real multiprocess sharding
        layer annotate the exact same structure into their telemetry.
        """
        from ..partition import placement_telemetry

        return placement_telemetry(self.assignment)

    def run(self, x0=None, **kwargs):
        """Engine-level run (see :meth:`AsyncEngine.run`) plus the device map.

        The resolved device→block assignment is annotated into both the
        telemetry run and ``result.info``, mirroring the shard map the
        multiprocess layer reports.
        """
        result = super().run(x0, **kwargs)
        result.info["device_map"] = self.device_map()
        result.info["ngpus"] = self.ngpus
        if self.recorder is not None:
            self.recorder.annotate(device_map=self.device_map(), ngpus=self.ngpus)
        return result

    def sweep(self, x: np.ndarray) -> np.ndarray:
        """One global iteration with per-device snapshot isolation.

        Same-device neighbours follow the usual stochastic-staleness rule;
        other devices' values always come from the sweep-start snapshot
        (they are only exchanged at sweep boundaries).
        """
        cfg = self.config
        rng = self.rng
        view = self.view
        self._refresh_fault_state()
        frozen = self._frozen_local if self._frozen_mask is not None else None
        order, gamma = self.scheduler.plan_for_sweep(self.sweep_index, rng)
        snapshot = x.copy()

        for pos, bid in enumerate(order):
            blk = view.blocks[bid]
            rows = blk.rows
            g = gamma[pos]
            near = self._near[bid].matvec(snapshot)
            if g > 0.0:
                near += g * (self._near[bid].matvec(x) - near)
            s = self._b_blocks[bid] - near - self._far[bid].matvec(snapshot)
            frozen_local = frozen[bid] if frozen is not None else None
            for _ in range(cfg.local_iterations):
                old_local = x[rows]
                new_local = (s - blk.local_off.matvec(x)) / blk.diag
                if cfg.omega != 1.0:
                    new_local = (1.0 - cfg.omega) * old_local + cfg.omega * new_local
                if frozen_local is not None and len(frozen_local):
                    new_local[frozen_local] = old_local[frozen_local]
                x[rows] = new_local
            self.update_counts[bid] += 1
        self.sweep_index += 1
        return x
