"""Calibrated iteration-time model (paper Tables 4/5, Figure 8).

We cannot measure a 2011 Fermi system, and Python wall-clock times would say
nothing about it.  Instead the timing substrate is *calibrated against the
paper's own measurements*:

* :data:`PAPER_TABLE5` — the paper's measured average per-global-iteration
  times (seconds) for Gauss-Seidel on the CPU, Jacobi on the GPU and
  async-(5) on the GPU, for each suite matrix.
* :data:`PAPER_TABLE4_FV3` — the paper's measured total times for
  async-(1)…async-(9) on fv3 at 100…500 global iterations, from which the
  model extracts (a) the per-extra-local-iteration cost fraction (≈ 4.8 %,
  the paper's "local iterations almost come for free") and (b) the one-off
  setup overhead that makes Figure 8's average-per-iteration curves decay
  like 1/N.

For matrices outside the suite, a least-squares (n, nnz) regression over
the calibration rows extrapolates.  Every benchmark that reports modelled
times says so explicitly; the model's own *self-consistency* against
Tables 4/5 is part of the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..sparse import CSRMatrix
from .device import DeviceSpec, FERMI_C2070, XEON_E5540
from .memory import PCIE_GEN2_X16, Link

__all__ = [
    "MethodTimes",
    "PAPER_TABLE5",
    "PAPER_TABLE4_FV3",
    "LOCAL_ITER_FRACTION",
    "ASYNC_SETUP_OVERHEAD_S",
    "IterationCostModel",
    "SetupCostModel",
]


@dataclass(frozen=True)
class MethodTimes:
    """One row of the paper's Table 5 (seconds per global iteration)."""

    gs_cpu: float
    jacobi_gpu: float
    async5_gpu: float


#: Paper Table 5, verbatim: average per-iteration timings in seconds.
PAPER_TABLE5: Dict[str, MethodTimes] = {
    "Chem97ZtZ": MethodTimes(0.008448, 0.002051, 0.001742),
    "fv1": MethodTimes(0.120191, 0.019449, 0.012964),
    "fv2": MethodTimes(0.125572, 0.020997, 0.014729),
    "fv3": MethodTimes(0.125577, 0.021009, 0.014737),
    "s1rmt3m1": MethodTimes(0.039530, 0.006442, 0.004967),
    "Trefethen_2000": MethodTimes(0.007603, 0.001494, 0.001305),
}

#: Paper Table 4, verbatim: total seconds for async-(k) on fv3, k -> {iters: s}.
PAPER_TABLE4_FV3: Dict[int, Dict[int, float]] = {
    1: {100: 1.376425, 200: 2.437521, 300: 3.501462, 400: 4.563519, 500: 5.624792},
    2: {100: 1.431110, 200: 2.546361, 300: 3.660030, 400: 4.773864, 500: 5.891870},
    3: {100: 1.482574, 200: 2.654470, 300: 3.819478, 400: 4.987472, 500: 6.156434},
    4: {100: 1.532940, 200: 2.749808, 300: 3.972644, 400: 5.191812, 500: 6.410378},
    5: {100: 1.577105, 200: 2.838185, 300: 4.099068, 400: 5.363081, 500: 6.655686},
    6: {100: 1.629628, 200: 2.938897, 300: 4.255335, 400: 5.569045, 500: 6.879329},
    7: {100: 1.680975, 200: 3.044979, 300: 4.412199, 400: 5.778823, 500: 7.144304},
    8: {100: 1.736295, 200: 3.148895, 300: 4.571684, 400: 5.990520, 500: 7.409536},
    9: {100: 1.786658, 200: 3.259132, 300: 4.730689, 400: 6.202893, 500: 7.676786},
}


def _table4_slopes() -> Tuple[np.ndarray, np.ndarray]:
    """Per-iteration slope and intercept of total time vs iterations, per k."""
    ks = sorted(PAPER_TABLE4_FV3)
    slopes = []
    intercepts = []
    for k in ks:
        pts = PAPER_TABLE4_FV3[k]
        iters = np.array(sorted(pts))
        total = np.array([pts[i] for i in iters])
        slope, intercept = np.polyfit(iters, total, 1)
        slopes.append(slope)
        intercepts.append(intercept)
    return np.array(slopes), np.array(intercepts)


_SLOPES, _INTERCEPTS = _table4_slopes()

#: Relative cost of one extra local Jacobi sweep, extracted from Table 4:
#: the per-iteration slope grows linearly in k at ~4.8 % of the k=1 slope —
#: the paper's "less than 5 % per local iteration".
LOCAL_ITER_FRACTION = float(np.polyfit(np.arange(1, 10), _SLOPES / _SLOPES[0], 1)[0])

#: One-off GPU setup overhead (context, allocation, initial transfers) for an
#: fv3-sized problem, from Table 4's intercept; drives Figure 8's 1/N decay.
ASYNC_SETUP_OVERHEAD_S = float(np.mean(_INTERCEPTS))

def async_total_time_fv3(local_iterations: int, iterations: int) -> float:
    """Modelled total seconds for async-(k) on fv3 (Table 4 reproduction).

    Uses the per-k linear fits (slope + setup intercept) extracted from the
    paper's own Table 4, so this reproduces that table to fit accuracy; the
    general :class:`IterationCostModel` path reconciles Table 4 with
    Table 5 instead (whose averages fold in amortised setup).
    """
    k = local_iterations
    if not (1 <= k <= 9):
        raise ValueError("Table 4 covers local_iterations in [1, 9]")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    return float(_INTERCEPTS[k - 1] + _SLOPES[k - 1] * iterations)


_METHODS = ("gauss-seidel", "jacobi", "async", "cg")

#: Modelled CG-on-GPU per-iteration cost as a fraction of the Jacobi kernel:
#: the paper's CG is "highly tuned" with fused BLAS-1 ops, while its Jacobi
#: timing includes the per-iteration synchronisation; calibrated so the
#: Figure 9 orderings (CG ≈ 1/3 faster than async-(5) on fv1, comparable on
#: Chem97ZtZ, slower on Trefethen_2000) are reproduced.
CG_JACOBI_FRACTION = 0.085


class IterationCostModel:
    """Seconds per global iteration for each method on each matrix.

    Parameters
    ----------
    gpu / cpu:
        Device specs (reserved for alternative calibrations; the default
        model is anchored to the paper's published numbers, which already
        encode the C2070/E5540 pair).
    """

    def __init__(self, gpu: DeviceSpec = FERMI_C2070, cpu: DeviceSpec = XEON_E5540):
        self.gpu = gpu
        self.cpu = cpu
        # Least-squares (n, nnz) -> time fits for out-of-suite matrices.
        from ..matrices.suite import PAPER_TABLE1

        rows = [name for name in PAPER_TABLE5]
        X = np.array([[PAPER_TABLE1[r].n, PAPER_TABLE1[r].nnz] for r in rows], dtype=float)
        self._fits: Dict[str, np.ndarray] = {}
        for method, col in (("gauss-seidel", 0), ("jacobi", 1), ("async", 2)):
            y = np.array(
                [
                    (
                        PAPER_TABLE5[r].gs_cpu,
                        PAPER_TABLE5[r].jacobi_gpu,
                        PAPER_TABLE5[r].async5_gpu,
                    )[col]
                    for r in rows
                ]
            )
            from scipy.optimize import nnls

            coef, _ = nnls(X, y)
            if not np.any(coef > 0):  # pragma: no cover - degenerate data
                coef = np.array([0.0, y.mean() / X[:, 1].mean()])
            self._fits[method] = coef

    # ------------------------------------------------------------------ #

    def _size_of(self, matrix: Union[str, CSRMatrix, Tuple[int, int]]) -> Tuple[Optional[str], int, int]:
        from ..matrices.suite import PAPER_TABLE1

        if isinstance(matrix, str):
            if matrix in PAPER_TABLE1:
                info = PAPER_TABLE1[matrix]
                return matrix, info.n, info.nnz
            raise KeyError(f"unknown matrix name {matrix!r}")
        if isinstance(matrix, CSRMatrix):
            return None, matrix.shape[0], matrix.nnz
        n, nnz = matrix
        return None, int(n), int(nnz)

    def _calibrated(self, name: Optional[str], method: str, n: int, nnz: int) -> float:
        if name is not None and name in PAPER_TABLE5:
            row = PAPER_TABLE5[name]
            return {"gauss-seidel": row.gs_cpu, "jacobi": row.jacobi_gpu, "async": row.async5_gpu}[method]
        if name == "Trefethen_20000":
            # Not in Table 5; scale Trefethen_2000 by work (nnz ratio).
            base = PAPER_TABLE5["Trefethen_2000"]
            scale = nnz / 41906
            return {
                "gauss-seidel": base.gs_cpu,
                "jacobi": base.jacobi_gpu,
                "async": base.async5_gpu,
            }[method] * scale
        coef = self._fits[method]
        return float(coef[0] * n + coef[1] * nnz)

    def per_iteration(
        self,
        method: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        *,
        local_iterations: int = 5,
    ) -> float:
        """Modelled seconds per global iteration.

        ``method`` is one of ``"gauss-seidel"`` (CPU), ``"jacobi"`` (GPU),
        ``"async"`` (GPU, uses *local_iterations*) or ``"cg"`` (GPU).
        ``matrix`` is a suite name, a :class:`CSRMatrix` or an ``(n, nnz)``
        pair.  Table 5 is calibrated at async-(5); other k values scale by
        the Table 4 local-iteration fraction.
        """
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        name, n, nnz = self._size_of(matrix)
        if isinstance(matrix, str):
            name = matrix
        if method == "cg":
            return CG_JACOBI_FRACTION * self._calibrated(name, "jacobi", n, nnz)
        if method == "async":
            if local_iterations < 1:
                raise ValueError("local_iterations must be >= 1")
            t5 = self._calibrated(name, "async", n, nnz)
            base = t5 / (1.0 + 4.0 * LOCAL_ITER_FRACTION)
            return base * (1.0 + (local_iterations - 1) * LOCAL_ITER_FRACTION)
        return self._calibrated(name, method, n, nnz)

    def total_time(
        self,
        method: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        iterations: int,
        *,
        local_iterations: int = 5,
        setup: Optional["SetupCostModel"] = None,
    ) -> float:
        """Modelled wall-clock for *iterations* global iterations."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        per = self.per_iteration(method, matrix, local_iterations=local_iterations)
        t = per * iterations
        if setup is not None and method != "gauss-seidel":
            name, n, nnz = self._size_of(matrix)
            t += setup.setup_time(n, nnz)
        return t

    def average_iteration_time(
        self,
        method: str,
        matrix: Union[str, CSRMatrix, Tuple[int, int]],
        iterations: int,
        *,
        local_iterations: int = 5,
        setup: Optional["SetupCostModel"] = None,
    ) -> float:
        """Figure 8's quantity: total time / iteration count."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        return (
            self.total_time(
                method, matrix, iterations, local_iterations=local_iterations, setup=setup
            )
            / iterations
        )


class SetupCostModel:
    """One-off GPU setup cost: context/allocation constant + data transfer.

    The constant is dominant (Table 4's fv3 intercept ≈ 0.3 s); the transfer
    term moves the full CSR structure and vectors over PCIe once.  For the
    CPU Gauss-Seidel reference the setup is zero — the paper notes its
    average iteration times are "almost constant".
    """

    def __init__(self, base_s: Optional[float] = None, link: Link = PCIE_GEN2_X16):
        self.base_s = ASYNC_SETUP_OVERHEAD_S if base_s is None else base_s
        if self.base_s < 0:
            raise ValueError("base_s must be non-negative")
        self.link = link

    def setup_time(self, n: int, nnz: int) -> float:
        """Seconds of one-off setup for an (n, nnz) system."""
        csr_bytes = nnz * 12 + (n + 1) * 8  # data + int32 indices + indptr
        vector_bytes = 3 * n * 8  # x, b, r
        return self.base_s + self.link.time(csr_bytes + vector_bytes)
