"""Multi-GPU system topology.

The paper's host (§3.2, [35]) is a Supermicro X8DTG-QF: two Xeon E5540
sockets connected by QPI, with two Fermi C2070 GPUs attached to each
socket's PCIe root.  Two topology facts drive all of §4.6's results:

* each GPU has its *own* PCIe link (AMC can use them in parallel);
* traffic between a GPU and memory attached to the *other* socket crosses
  the shared QPI link; and CUDA 4.0's GPU-direct P2P only works between
  GPUs on the same socket ("CUDA's GPU-GPU communication is only supported
  for GPUs connected to the same CPU").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .device import DeviceSpec, FERMI_C2070
from .memory import Link, PCIE_GEN2_X16, QPI

__all__ = ["GPUClusterSpec", "SUPERMICRO_4GPU"]


@dataclass(frozen=True)
class GPUClusterSpec:
    """A host with several GPUs distributed over CPU sockets.

    Attributes
    ----------
    device:
        GPU model (all GPUs identical).
    gpus_per_socket:
        PCIe attachment layout, e.g. ``(2, 2)``.
    pcie:
        The per-GPU PCIe link spec.
    qpi:
        The inter-socket link spec (shared by all cross-socket traffic).
    host_socket:
        Socket whose memory controller owns the pinned host buffers.
    """

    device: DeviceSpec = FERMI_C2070
    gpus_per_socket: Tuple[int, ...] = (2, 2)
    pcie: Link = PCIE_GEN2_X16
    qpi: Link = QPI
    host_socket: int = 0

    @property
    def ngpus(self) -> int:
        """Total GPU count."""
        return sum(self.gpus_per_socket)

    def socket_of(self, gpu: int) -> int:
        """Socket index a GPU is attached to."""
        if not (0 <= gpu < self.ngpus):
            raise ValueError(f"gpu index {gpu} out of range")
        acc = 0
        for s, count in enumerate(self.gpus_per_socket):
            acc += count
            if gpu < acc:
                return s
        raise AssertionError("unreachable")

    def crosses_qpi_to_host(self, gpu: int) -> bool:
        """Whether host<->GPU traffic for this GPU crosses the QPI."""
        return self.socket_of(gpu) != self.host_socket

    def peer_possible(self, gpu_a: int, gpu_b: int) -> bool:
        """Whether CUDA-4.0 GPU-direct P2P works between two GPUs.

        Only same-socket pairs are supported (the restriction §4.6 hits
        when scaling past two GPUs).
        """
        return self.socket_of(gpu_a) == self.socket_of(gpu_b)


#: The paper's host: 2 sockets x 2 C2070s.
SUPERMICRO_4GPU = GPUClusterSpec()
