"""Coupling-aware block orderings.

The engine's subdomains are *contiguous row ranges* (that is what a CUDA
thread block addresses), so the only way to change which couplings are
local is to **reorder the matrix**.  §4.3 of the paper suggests reordering
for Chem97ZtZ; `repro.matrices.rcm` provides the classical
bandwidth-reducing answer, and this module provides the one actually
aimed at the method's objective: greedy BFS *clustering*, which grows
clusters of exactly ``block_size`` strongly-coupled rows and lays them out
consecutively — directly minimising the off-block coupling mass that local
iterations cannot see, rather than the bandwidth proxy.

The X3 extension experiment compares natural vs RCM vs cluster orderings.
"""

from __future__ import annotations

import numpy as np

from .._util import check_square
from ..sparse import CSRMatrix

__all__ = ["cluster_reorder"]


def cluster_reorder(A: CSRMatrix, block_size: int, *, weighted: bool = True) -> np.ndarray:
    """Permutation laying out BFS-grown coupling clusters consecutively.

    Parameters
    ----------
    A:
        Square sparse matrix (structure symmetrised internally).
    block_size:
        Target cluster size — use the block size the solver will run with,
        so cluster boundaries coincide with block boundaries.
    weighted:
        Grow clusters by descending coupling magnitude ``|a_ij|`` (default)
        instead of plain breadth-first order.

    Returns
    -------
    numpy.ndarray
        Permutation ``p`` (new index → old index): apply with
        :func:`repro.matrices.rcm.permute_symmetric`.

    Notes
    -----
    Greedy algorithm: repeatedly seed an unassigned vertex (lowest degree
    first), grow it to ``block_size`` members by repeatedly absorbing the
    unassigned neighbour with the strongest total coupling to the cluster,
    then emit the cluster.  O(nnz log n)-ish with the frontier kept in a
    dict; exact optimisation is NP-hard (graph partitioning) and
    unnecessary — the greedy already captures most of the gain.
    """
    n = check_square(A.shape, "cluster_reorder input")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    sym = A.add(A.transpose())
    _, off = sym.split_diagonal()
    indptr, indices, data = off.indptr, off.indices, np.abs(off.data)
    degree = off.row_nnz()

    assigned = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = np.argsort(degree, kind="stable")
    for seed in seeds:
        if assigned[seed]:
            continue
        # Grow one cluster from this seed.
        assigned[seed] = True
        order[pos] = seed
        pos += 1
        size = 1
        # frontier: candidate -> accumulated coupling weight to the cluster
        frontier = {}
        lo, hi = indptr[seed], indptr[seed + 1]
        for j, w in zip(indices[lo:hi], data[lo:hi]):
            if not assigned[j]:
                frontier[int(j)] = frontier.get(int(j), 0.0) + (w if weighted else 1.0)
        while size < block_size and frontier:
            # Absorb the strongest-coupled candidate.
            best = max(frontier.items(), key=lambda kv: kv[1])[0]
            del frontier[best]
            if assigned[best]:
                continue
            assigned[best] = True
            order[pos] = best
            pos += 1
            size += 1
            lo, hi = indptr[best], indptr[best + 1]
            for j, w in zip(indices[lo:hi], data[lo:hi]):
                if not assigned[j]:
                    frontier[int(j)] = frontier.get(int(j), 0.0) + (w if weighted else 1.0)
        # Cluster complete (or component exhausted); next seed starts a new one.
    assert pos == n
    return order
