"""Exact Trefethen "primes" matrices.

``Trefethen_n`` (UFMC, group *JGD_Trefethen*) is defined exactly:

* ``A[i, i] = p_{i+1}`` — the (i+1)-th prime (2, 3, 5, 7, ...),
* ``A[i, j] = 1`` whenever ``|i - j|`` is a power of two (1, 2, 4, 8, ...).

Because the definition is published, this module is a reconstruction, not a
surrogate: for n = 2,000 it yields 41,906 nonzeros and for n = 20,000 it
yields 554,466 — both exactly the counts in the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["primes", "trefethen"]


def primes(count: int) -> np.ndarray:
    """The first *count* prime numbers, via a sized Eratosthenes sieve.

    The sieve bound uses the Rosser–Schoenfeld upper estimate
    ``p_k < k (ln k + ln ln k)`` for ``k >= 6`` and grows (rarely needed)
    until enough primes are found.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if count < 6:
        return np.array([2, 3, 5, 7, 11][:count], dtype=np.int64)
    bound = int(count * (np.log(count) + np.log(np.log(count)))) + 10
    while True:
        sieve = np.ones(bound + 1, dtype=bool)
        sieve[:2] = False
        for p in range(2, int(bound**0.5) + 1):
            if sieve[p]:
                sieve[p * p :: p] = False
        found = np.flatnonzero(sieve)
        if len(found) >= count:
            return found[:count].astype(np.int64)
        bound *= 2


def trefethen(n: int) -> CSRMatrix:
    """The exact n-by-n Trefethen primes matrix (SPD, paper §3.1).

    Diagonal dominance note: row *i* has at most ``2 log2(n)`` unit
    off-diagonal entries against a diagonal of ``p_{i+1}``, so only the first
    few rows are not strictly diagonally dominant; the matrix is SPD and its
    Jacobi iteration matrix has ρ(B) ≈ 0.86 for n = 2,000 and 20,000
    (Table 1's value, reproduced by construction).
    """
    if n < 1:
        raise ValueError("n must be positive")
    diag = primes(n).astype(np.float64)
    rows = [np.arange(n, dtype=np.int64)]
    cols = [np.arange(n, dtype=np.int64)]
    vals = [diag]
    offset = 1
    while offset < n:
        i = np.arange(n - offset, dtype=np.int64)
        # Superdiagonal at +offset and its symmetric mirror.
        rows.extend([i, i + offset])
        cols.extend([i + offset, i])
        ones = np.ones(n - offset)
        vals.extend([ones, ones])
        offset *= 2
    coo = COOMatrix(np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), (n, n))
    return coo.tocsr()
