"""fv1 / fv2 / fv3 reconstructions (2-D FEM "2D/3D problem" matrices).

The paper's Table 1 lists fv1 with n = 9,604 = 98² and nnz = 85,264, and
fv2/fv3 with n = 9,801 = 99² and nnz = 87,025.  Both nonzero counts match a
9-point (Q1 bilinear FEM) stencil with Dirichlet legs dropped *exactly*
(9·n minus 3 per boundary edge point minus 5 per corner), so the generators
here assemble exactly that stencil and then place the Jacobi spectrum
analytically:

* A reaction shift ``c`` is chosen in closed form so that the Jacobi
  iteration matrix ``B = I − D⁻¹A`` has exactly the paper's spectral radius
  (0.8541 for fv1/fv2, 0.9993 for fv3).  The 9-point stencil on a Dirichlet
  grid is diagonalized by the tensor sine basis, so the extreme eigenvalues
  — and hence the required shift — are analytic.
* A smooth log-linear coefficient field (a symmetric diagonal scaling,
  which leaves the Jacobi spectrum *invariant*) then spreads the diagonal
  to push cond(A) to the Table 1 order of magnitude (9.3e4 / 3.6e7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..sparse import CSRMatrix
from .grids import stencil_laplacian_2d

__all__ = ["fv_like", "fv_shift_for_rho", "stencil_jacobi_extremes", "FV_VARIANTS"]

#: Q1 9-point stencil diagonal value.
_D0 = 8.0 / 3.0


@dataclass(frozen=True)
class _FVSpec:
    """Generation parameters for one fv variant."""

    nx: int              # grid extent (n = nx**2)
    rho: float           # target Jacobi spectral radius (Table 1's rho(M))
    coeff_ratio: float   # max/min of the smooth coefficient field (sets cond(A))


#: Variant table.  ``coeff_ratio`` values were calibrated once against the
#: Table 1 cond(A) targets (9.3e4, 9.5e4, 3.6e7) using the package's own
#: Lanczos estimator; they are stored so generation is deterministic and fast.
FV_VARIANTS = {
    1: _FVSpec(nx=98, rho=0.8541, coeff_ratio=9.6e3),
    2: _FVSpec(nx=99, rho=0.8541, coeff_ratio=9.8e3),
    3: _FVSpec(nx=99, rho=0.9993, coeff_ratio=2.55e4),
}


def stencil_jacobi_extremes(nx: int, ny: Optional[int] = None) -> Tuple[float, float]:
    """Analytic extreme eigenvalues of the unshifted 9-point stencil.

    The Dirichlet 9-point operator is diagonalized by the tensor sine basis
    ``sin(p π x / (nx+1)) sin(q π y / (ny+1))`` with eigenvalues

        f(ca, cb) = 8/3 − (2/3)(ca + cb) − (4/3) ca·cb,

    ``ca = cos(p π / (nx+1))``.  ``f`` is bilinear in (ca, cb), so extremes
    occur at the corner frequencies; this returns ``(λ_min, λ_max)``.
    """
    ny = nx if ny is None else ny
    ca = np.cos(np.pi / (nx + 1))
    cb = np.cos(np.pi / (ny + 1))

    def f(x: float, y: float) -> float:
        return _D0 - (2.0 / 3.0) * (x + y) - (4.0 / 3.0) * x * y

    corners = [f(sx * ca, sy * cb) for sx in (1.0, -1.0) for sy in (1.0, -1.0)]
    return min(corners), max(corners)


def fv_shift_for_rho(nx: int, rho: float, ny: Optional[int] = None) -> float:
    """Reaction shift *c* making the Jacobi radius of ``L + cI`` equal *rho*.

    With constant diagonal ``d0 + c`` the Jacobi eigenvalues are
    ``(λ + c) / (d0 + c)``, so ρ(B) = K / (d0 + c) with
    ``K = max(d0 − λ_min, λ_max − d0)`` — solved in closed form.

    Raises
    ------
    ValueError
        If *rho* is not achievable with a shift keeping the matrix SPD.
    """
    lo, hi = stencil_jacobi_extremes(nx, ny)
    K = max(_D0 - lo, hi - _D0)
    c = K / rho - _D0
    if lo + c <= 0:
        raise ValueError(f"target rho={rho} requires a shift breaking positive definiteness")
    return c


def fv_like(
    variant: int = 1,
    *,
    nx: Optional[int] = None,
    rho: Optional[float] = None,
    coeff_ratio: Optional[float] = None,
) -> CSRMatrix:
    """Generate an fv1/fv2/fv3-like SPD matrix.

    Parameters
    ----------
    variant:
        1, 2 or 3 — selects the paper configuration (grid size, ρ(B),
        conditioning); see :data:`FV_VARIANTS`.
    nx, rho, coeff_ratio:
        Optional overrides of the variant parameters (e.g. for scaled-down
        test problems).  ``coeff_ratio=1`` disables the coefficient field,
        giving the constant-diagonal stencil.

    Returns
    -------
    CSRMatrix
        SPD matrix of dimension ``nx**2`` whose Jacobi iteration matrix has
        spectral radius *rho* (to analytic accuracy).
    """
    if variant not in FV_VARIANTS:
        raise ValueError(f"variant must be one of {sorted(FV_VARIANTS)}")
    spec = FV_VARIANTS[variant]
    nx = spec.nx if nx is None else nx
    rho = spec.rho if rho is None else rho
    ratio = spec.coeff_ratio if coeff_ratio is None else coeff_ratio
    if nx < 2:
        raise ValueError("nx must be at least 2")
    if not (0 < rho < 1):
        raise ValueError("rho must lie in (0, 1) for a convergent fv-like system")
    if ratio < 1.0:
        raise ValueError("coeff_ratio must be >= 1")

    c = fv_shift_for_rho(nx, rho)
    coeff = None
    if ratio > 1.0:
        # Two-material jump across the domain diagonal: a stand-in for the
        # coefficient/element-size contrast that gives the real fv matrices
        # their large cond(A) at small cond(D^-1A).  A *sharp* jump keeps
        # the spectrum clustered in two groups (plus interface modes), so
        # Krylov methods deflate it quickly — matching the paper's CG
        # behaviour — whereas a smooth ramp would grade the spectrum and
        # artificially cripple CG without changing any relaxation rate.
        x = np.linspace(0.0, 1.0, nx)
        g = (0.5 * (x[:, None] + x[None, :]) > 0.5).astype(np.float64)
        coeff = np.power(ratio, g)
    return stencil_laplacian_2d(nx, stencil="9pt", shift=c, coefficient=coeff)
