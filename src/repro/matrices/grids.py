"""Structured 2-D grid stencil assembly.

The fv* matrices in the paper are finite-element discretizations of 2-D
problems; their nonzero counts identify them as 9-point stencils on uniform
grids with Dirichlet boundaries (98×98 for fv1, 99×99 for fv2/fv3).  This
module assembles such stencil operators in CSR form, fully vectorized.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["stencil_laplacian_2d", "STENCILS"]

#: Named stencils: offset -> coefficient maps (row-sum zero for pure Laplacians).
STENCILS: Dict[str, Dict[Tuple[int, int], float]] = {
    # Classical finite-difference 5-point Laplacian (h^2-scaled).
    "5pt": {
        (0, 0): 4.0,
        (-1, 0): -1.0,
        (1, 0): -1.0,
        (0, -1): -1.0,
        (0, 1): -1.0,
    },
    # Q1 bilinear FEM Laplacian: the 9-point stencil 1/3 * [[-1,-1,-1],[-1,8,-1],[-1,-1,-1]].
    "9pt": {
        (0, 0): 8.0 / 3.0,
        (-1, -1): -1.0 / 3.0,
        (-1, 0): -1.0 / 3.0,
        (-1, 1): -1.0 / 3.0,
        (0, -1): -1.0 / 3.0,
        (0, 1): -1.0 / 3.0,
        (1, -1): -1.0 / 3.0,
        (1, 0): -1.0 / 3.0,
        (1, 1): -1.0 / 3.0,
    },
}


def stencil_laplacian_2d(
    nx: int,
    ny: Optional[int] = None,
    *,
    stencil: str = "9pt",
    shift: float = 0.0,
    coefficient: Optional[np.ndarray] = None,
) -> CSRMatrix:
    """Assemble a stencil operator on an ``nx × ny`` grid of unknowns.

    Parameters
    ----------
    nx, ny:
        Grid extents (``ny`` defaults to ``nx``).  Unknowns are the grid
        points themselves; Dirichlet boundary conditions are imposed by
        simply dropping stencil legs that leave the grid (the diagonal is
        *not* modified, which keeps the operator SPD and the diagonal
        constant — the calibration in :mod:`repro.matrices.fem` relies on
        this).
    stencil:
        Key into :data:`STENCILS` (``"5pt"`` or ``"9pt"``).
    shift:
        Constant added to the diagonal (a reaction/mass term ``shift * I``);
        this is the knob the fv generators use to place the Jacobi spectrum.
    coefficient:
        Optional per-point positive coefficient field ``c`` of shape
        ``(nx, ny)``; entry ``(i, j)`` of the operator is multiplied by
        ``sqrt(c_i * c_j)``, a symmetric scaling that models jumping PDE
        coefficients (used for the ill-conditioned fv3 surrogate).

    Returns
    -------
    CSRMatrix
        The ``(nx*ny) × (nx*ny)`` operator, rows ordered lexicographically
        (x-major).
    """
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError("grid extents must be positive")
    try:
        legs = STENCILS[stencil]
    except KeyError:
        raise ValueError(f"unknown stencil {stencil!r}; options: {sorted(STENCILS)}") from None
    n = nx * ny
    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    ix = ix.ravel()
    iy = iy.ravel()
    base = ix * ny + iy

    if coefficient is not None:
        coeff = np.asarray(coefficient, dtype=np.float64)
        if coeff.shape != (nx, ny):
            raise ValueError(f"coefficient must have shape ({nx}, {ny})")
        if np.any(coeff <= 0):
            raise ValueError("coefficient field must be strictly positive")
        w = np.sqrt(coeff.ravel())
    else:
        w = None

    rows, cols, vals = [], [], []
    for (dx, dy), a in legs.items():
        jx = ix + dx
        jy = iy + dy
        inside = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny)
        r = base[inside]
        c = (jx * ny + jy)[inside]
        v = np.full(len(r), a)
        if dx == 0 and dy == 0:
            v = v + shift
        if w is not None:
            v = v * w[r] * w[c]
        rows.append(r)
        cols.append(c)
        vals.append(v)
    coo = COOMatrix(np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), (n, n))
    return coo.tocsr()
