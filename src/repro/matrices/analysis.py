"""Matrix characterization — everything the paper's Table 1 / Figure 1 report.

:func:`characterize` computes, for any square sparse matrix, the quantities
the paper's analysis is phrased in:

* ``rho_jacobi``   — ρ(B), B = I − D⁻¹A (Jacobi convergence);
* ``rho_abs``      — ρ(|B|), the Strikwerda sufficient condition for
  *asynchronous* convergence (§2.2);
* ``cond_a`` / ``cond_scaled`` — cond(A) and cond(D⁻¹A);
* diagonal-dominance statistics and the off-block mass profile that predicts
  how much local iterations help (§4.3).

:func:`sparsity_grid` reproduces Figure 1 as a density grid (renderable as
ASCII art for terminal output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from .._util import check_square
from ..sparse import BlockRowView, CSRMatrix
from ..sparse.linalg import condition_number, spectral_radius

__all__ = ["MatrixProperties", "iteration_matrix", "characterize", "sparsity_grid", "render_sparsity"]


def iteration_matrix(A: CSRMatrix, *, absolute: bool = False) -> CSRMatrix:
    """The Jacobi iteration matrix ``B = I − D⁻¹A`` (explicitly assembled).

    Since ``diag(B) = 0``, B is exactly ``−D⁻¹ · offdiag(A)``; with
    ``absolute=True`` the entrywise absolute value ``|B|`` is returned.

    Raises
    ------
    ValueError
        If A has zero diagonal entries.
    """
    check_square(A.shape, "iteration_matrix input")
    d, off = A.split_diagonal()
    if np.any(d == 0.0):
        raise ValueError("matrix has zero diagonal entries; Jacobi iteration matrix undefined")
    B = off.scale_rows(-1.0 / d)
    return B.abs() if absolute else B


@dataclass
class MatrixProperties:
    """Characterization record for one matrix (cf. the paper's Table 1)."""

    name: str
    n: int
    nnz: int
    rho_jacobi: float              #: ρ(B) — Jacobi convergence iff < 1
    rho_abs: float                 #: ρ(|B|) — async convergence (sufficient) iff < 1
    cond_a: float                  #: cond(A) estimate
    cond_scaled: float             #: cond(D⁻¹A) estimate
    diag_dominant_fraction: float  #: fraction of rows with |a_ii| ≥ Σ|a_ij|
    off_block_fraction: Dict[int, float] = field(default_factory=dict)
    #: off-block |mass| fraction per tested block size (predicts async-(k) gains)

    def converges_jacobi(self) -> bool:
        """Whether the synchronous Jacobi method is guaranteed to converge."""
        return self.rho_jacobi < 1.0

    def converges_async(self) -> bool:
        """Whether asynchronous iteration is guaranteed to converge (Strikwerda)."""
        return self.rho_abs < 1.0


def characterize(
    A: CSRMatrix,
    name: str = "",
    *,
    block_sizes: Sequence[int] = (128, 256, 512),
    compute_cond: bool = True,
    lanczos_steps: int = 200,
    seed: int = 0,
) -> MatrixProperties:
    """Compute a :class:`MatrixProperties` record for *A*.

    Spectral radii use the dense path below :data:`DENSE_CUTOFF` and the
    power method above it; condition numbers use Lanczos for large SPD
    matrices (``compute_cond=False`` skips them, returning NaN — useful
    when only convergence quantities are needed).
    """
    n = check_square(A.shape, "characterize input")
    B = iteration_matrix(A)
    rho = spectral_radius(B, seed=seed)
    rho_abs_val = spectral_radius(B.abs(), seed=seed)

    if compute_cond:
        cond_a = condition_number(A, steps=lanczos_steps, seed=seed)
        d = A.diagonal()
        # cond(D^-1 A) via the similar symmetric form D^-1/2 A D^-1/2.
        w = 1.0 / np.sqrt(np.abs(d))
        scaled = A.scale_rows(w).scale_cols(w)
        cond_s = condition_number(scaled, steps=lanczos_steps, seed=seed)
    else:
        cond_a = cond_s = float("nan")

    d, off = A.split_diagonal()
    radii = off.row_abs_sums()
    dom_frac = float(np.mean(np.abs(d) >= radii)) if n else 1.0

    off_frac: Dict[int, float] = {}
    for bs in block_sizes:
        if 0 < bs < n:
            off_frac[bs] = BlockRowView(A, block_size=bs).off_block_fraction()

    return MatrixProperties(
        name=name,
        n=n,
        nnz=A.nnz,
        rho_jacobi=rho,
        rho_abs=rho_abs_val,
        cond_a=cond_a,
        cond_scaled=cond_s,
        diag_dominant_fraction=dom_frac,
        off_block_fraction=off_frac,
    )


def sparsity_grid(A: CSRMatrix, resolution: int = 40) -> np.ndarray:
    """Nonzero-density grid of *A* (Figure 1 as data).

    Returns a ``resolution × resolution`` array whose cell (i, j) counts the
    nonzeros falling into the corresponding index rectangle.
    """
    if resolution < 1:
        raise ValueError("resolution must be positive")
    m, n = A.shape
    rows = A._expanded_rows()
    r = np.minimum((rows * resolution) // max(m, 1), resolution - 1)
    c = np.minimum((A.indices * resolution) // max(n, 1), resolution - 1)
    grid = np.zeros((resolution, resolution), dtype=np.int64)
    np.add.at(grid, (r, c), 1)
    return grid


def render_sparsity(A: CSRMatrix, resolution: int = 40) -> str:
    """ASCII rendering of :func:`sparsity_grid` (darker = denser)."""
    grid = sparsity_grid(A, resolution)
    shades = " .:-=+*#%@"
    peak = grid.max()
    if peak == 0:
        return "\n".join(" " * resolution for _ in range(resolution))
    # Log-ish scaling so isolated diagonals stay visible next to dense blocks.
    levels = np.ceil(np.log1p(grid) / np.log1p(peak) * (len(shades) - 1)).astype(int)
    return "\n".join("".join(shades[v] for v in row) for row in levels)
