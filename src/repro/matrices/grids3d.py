"""3-D stencil assembly.

The fv matrices are labelled "2D/3D problem" in the UFMC; the evaluation
only needs the 2-D reconstructions, but a credible release of the system
supports the 3-D case too — the block decomposition is *more* interesting
there (a row block of a lexicographic 3-D grid captures whole xy-planes,
so off-block mass concentrates in the two z-neighbour planes).

Provides the 7-point (face-neighbour) and 27-point (full-cube) Dirichlet
Laplacians, with the same shift/coefficient conventions as the 2-D module.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Tuple

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["stencil_laplacian_3d", "STENCILS_3D"]


def _stencil_19pt() -> Dict[Tuple[int, int, int], float]:
    """19-point (face + edge neighbour) Laplacian stencil.

    The standard fourth-order compact form divided by 6: center 4, face
    −1/3, edge −1/6, corners absent — zero row-sum excess like the other
    stencils, so Dirichlet clipping keeps the operator diagonally
    dominant and SPD.
    """
    legs: Dict[Tuple[int, int, int], float] = {}
    for dx, dy, dz in product((-1, 0, 1), repeat=3):
        dist = abs(dx) + abs(dy) + abs(dz)
        if dist == 0:
            legs[(0, 0, 0)] = 4.0
        elif dist == 1:
            legs[(dx, dy, dz)] = -1.0 / 3.0
        elif dist == 2:
            legs[(dx, dy, dz)] = -1.0 / 6.0
    return legs


def _stencil_27pt() -> Dict[Tuple[int, int, int], float]:
    """Trilinear (Q1) FEM Laplacian stencil on the unit cube mesh.

    Coefficients by neighbour type (face/edge/corner) from the standard
    Q1 element matrix: center 8/3, face 0, edge −1/6, corner −1/12.
    """
    legs: Dict[Tuple[int, int, int], float] = {}
    for dx, dy, dz in product((-1, 0, 1), repeat=3):
        dist = abs(dx) + abs(dy) + abs(dz)
        if dist == 0:
            legs[(0, 0, 0)] = 8.0 / 3.0
        elif dist == 1:
            legs[(dx, dy, dz)] = 0.0
        elif dist == 2:
            legs[(dx, dy, dz)] = -1.0 / 6.0
        else:
            legs[(dx, dy, dz)] = -1.0 / 12.0
    return legs


#: Named 3-D stencils.
STENCILS_3D: Dict[str, Dict[Tuple[int, int, int], float]] = {
    "7pt": {
        (0, 0, 0): 6.0,
        (-1, 0, 0): -1.0,
        (1, 0, 0): -1.0,
        (0, -1, 0): -1.0,
        (0, 1, 0): -1.0,
        (0, 0, -1): -1.0,
        (0, 0, 1): -1.0,
    },
    "19pt": _stencil_19pt(),
    "27pt": _stencil_27pt(),
}


def stencil_laplacian_3d(
    nx: int,
    ny: Optional[int] = None,
    nz: Optional[int] = None,
    *,
    stencil: str = "7pt",
    shift: float = 0.0,
    coefficient: Optional[np.ndarray] = None,
    anisotropy: Optional[Tuple[float, float, float]] = None,
) -> CSRMatrix:
    """Assemble a 3-D stencil operator on an ``nx × ny × nz`` grid.

    Same conventions as :func:`repro.matrices.grids.stencil_laplacian_2d`:
    Dirichlet legs are dropped (diagonal untouched, so the operator stays
    SPD with a constant diagonal), *shift* adds a reaction term, and the
    optional positive *coefficient* field applies the symmetric scaling
    ``sqrt(c_i c_j)`` per entry.  Rows are ordered lexicographically
    (x-major, then y, then z).

    *anisotropy* ``(ex, ey, ez)`` scales each off-center leg by
    ``ex**|dx| * ey**|dy| * ez**|dz|`` and recomputes the center so the
    row-sum excess stays zero — the standard anisotropic-diffusion
    stencil family (still constant-coefficient, hence stencil-regular
    for the matrix-free backend, but with strongly directional
    coupling).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("grid extents must be positive")
    try:
        legs = STENCILS_3D[stencil]
    except KeyError:
        raise ValueError(f"unknown stencil {stencil!r}; options: {sorted(STENCILS_3D)}") from None
    if anisotropy is not None:
        ex, ey, ez = (float(e) for e in anisotropy)
        if min(ex, ey, ez) <= 0.0:
            raise ValueError("anisotropy factors must be strictly positive")
        legs = {
            (dx, dy, dz): a * ex ** abs(dx) * ey ** abs(dy) * ez ** abs(dz)
            for (dx, dy, dz), a in legs.items()
            if (dx, dy, dz) != (0, 0, 0)
        }
        legs[(0, 0, 0)] = -sum(legs.values())
    n = nx * ny * nz
    ix, iy, iz = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    ix, iy, iz = ix.ravel(), iy.ravel(), iz.ravel()
    base = (ix * ny + iy) * nz + iz

    if coefficient is not None:
        coeff = np.asarray(coefficient, dtype=np.float64)
        if coeff.shape != (nx, ny, nz):
            raise ValueError(f"coefficient must have shape ({nx}, {ny}, {nz})")
        if np.any(coeff <= 0):
            raise ValueError("coefficient field must be strictly positive")
        w = np.sqrt(coeff.ravel())
    else:
        w = None

    rows, cols, vals = [], [], []
    for (dx, dy, dz), a in legs.items():
        if a == 0.0 and (dx, dy, dz) != (0, 0, 0):
            continue  # the 27pt stencil's zero face legs add no entries
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        inside = (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny) & (jz >= 0) & (jz < nz)
        r = base[inside]
        c = ((jx * ny + jy) * nz + jz)[inside]
        v = np.full(len(r), a)
        if dx == dy == dz == 0:
            v = v + shift
        if w is not None:
            v = v * w[r] * w[c]
        rows.append(r)
        cols.append(c)
        vals.append(v)
    coo = COOMatrix(np.concatenate(rows), np.concatenate(cols), np.concatenate(vals), (n, n))
    return coo.tocsr()
