"""Minimal MatrixMarket I/O.

The paper's matrices come from the University of Florida collection, which
distributes MatrixMarket files.  The reconstruction generators make network
access unnecessary, but this module lets a user drop in the *real* UFMC
files and run every experiment against them unchanged.

Supported: ``matrix coordinate real/integer/pattern`` with ``general`` or
``symmetric`` symmetry (the formats UFMC SPD matrices use).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

PathLike = Union[str, Path]


def _parse_header(line: str) -> Tuple[str, str]:
    parts = line.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise ValueError(f"not a MatrixMarket matrix header: {line.strip()!r}")
    fmt, field, symmetry = parts[2], parts[3], parts[4]
    if fmt != "coordinate":
        raise ValueError(f"only coordinate format is supported, got {fmt!r}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")
    return field, symmetry


def read_matrix_market(path: PathLike) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`.

    Symmetric files are expanded to full storage (both triangles), matching
    how the solvers consume matrices.
    """
    text = Path(path).read_text()
    lines = iter(text.splitlines())
    field, symmetry = _parse_header(next(lines))
    # Skip comments; first non-comment line is the size line.
    for line in lines:
        s = line.strip()
        if s and not s.startswith("%"):
            size_line = s
            break
    else:
        raise ValueError("missing size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise ValueError(f"bad size line: {size_line!r}")
    nrows, ncols, nnz = (int(p) for p in parts)

    body = "\n".join(l for l in lines if l.strip() and not l.lstrip().startswith("%"))
    if nnz == 0:
        return COOMatrix.empty((nrows, ncols)).tocsr()
    cols_needed = 2 if field == "pattern" else 3
    raw = np.loadtxt(io.StringIO(body), ndmin=2)
    if raw.shape != (nnz, cols_needed):
        raise ValueError(f"expected {nnz} entries with {cols_needed} columns, got shape {raw.shape}")
    r = raw[:, 0].astype(np.int64) - 1
    c = raw[:, 1].astype(np.int64) - 1
    v = raw[:, 2].astype(np.float64) if field != "pattern" else np.ones(nnz)

    if symmetry == "symmetric":
        if np.any(c > r):
            raise ValueError("symmetric files must store the lower triangle only")
        off = r != c
        r = np.concatenate([r, c[off]])
        c = np.concatenate([c, raw[:, 0].astype(np.int64)[off] - 1])
        v = np.concatenate([v, v[off]])
    return COOMatrix(r, c, v, (nrows, ncols)).tocsr()


def write_matrix_market(path: PathLike, A: CSRMatrix, *, comment: str = "") -> None:
    """Write *A* as a ``general real coordinate`` MatrixMarket file."""
    coo = A.to_coo()
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.data):
            fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
