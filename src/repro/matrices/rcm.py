"""Reverse Cuthill–McKee reordering.

The paper notes (§4.3) that matrices whose diagonal blocks are themselves
diagonal — Chem97ZtZ — gain nothing from local iterations, and that "an
improvement for this case could potentially be obtained by reordering".
This module provides that reordering (bandwidth-reducing RCM, own BFS
implementation) plus helpers to apply a symmetric permutation; the X3
extension benchmark quantifies the effect.
"""

from __future__ import annotations

import numpy as np

from .._util import check_square
from ..sparse import CSRMatrix

__all__ = ["reverse_cuthill_mckee", "permute_symmetric", "bandwidth"]


def bandwidth(A: CSRMatrix) -> int:
    """Maximum distance of a stored entry from the diagonal."""
    check_square(A.shape, "bandwidth input")
    if A.nnz == 0:
        return 0
    return int(np.abs(A._expanded_rows() - A.indices).max())


def _adjacency(A: CSRMatrix) -> CSRMatrix:
    """Symmetrised structural adjacency of A (diagonal dropped)."""
    sym = A.add(A.transpose())
    _, off = sym.split_diagonal()
    return off


def reverse_cuthill_mckee(A: CSRMatrix) -> np.ndarray:
    """RCM permutation *p* such that ``A[p][:, p]`` has reduced bandwidth.

    The classic algorithm: per connected component, breadth-first search
    from a pseudo-peripheral low-degree vertex, visiting neighbours in
    increasing-degree order, then reverse the visit order.  Works on the
    symmetrized structure, so unsymmetric input is accepted.
    """
    n = check_square(A.shape, "reverse_cuthill_mckee input")
    adj = _adjacency(A)
    degree = adj.row_nnz()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Process vertices globally by increasing degree so each component
    # starts from a low-degree (pseudo-peripheral) seed.
    seeds = np.argsort(degree, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue = [int(seed)]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order[pos] = v
            pos += 1
            nbrs = adj.indices[adj.indptr[v] : adj.indptr[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if len(fresh):
                fresh = fresh[np.argsort(degree[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(u) for u in fresh)
    assert pos == n
    return order[::-1].copy()


def permute_symmetric(A: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetric permutation ``A[perm][:, perm]``.

    *perm* maps new index → old index (the convention RCM returns).
    """
    n = check_square(A.shape, "permute_symmetric input")
    perm = np.asarray(perm, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm must be a permutation of range(n)")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n, dtype=np.int64)
    from ..sparse import COOMatrix

    coo = COOMatrix(inv[A._expanded_rows()], inv[A.indices], A.data.copy(), A.shape)
    return coo.tocsr()
