"""The experiment suite: the paper's seven test systems, by name.

:func:`get_matrix` maps the UFMC names used throughout the paper to the
reconstruction generators, and :data:`PAPER_TABLE1` records the published
Table 1 values so benchmarks and tests can print paper-vs-measured
comparisons side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from .._util import RNGLike, as_rng
from ..sparse import CSRMatrix
from .chem import chem97ztz_like
from .fem import fv_like
from .grids3d import stencil_laplacian_3d
from .structural import s1rmt3m1_like
from .trefethen import trefethen

__all__ = ["PaperMatrixInfo", "PAPER_TABLE1", "SUITE_NAMES", "get_matrix", "default_rhs"]


@dataclass(frozen=True)
class PaperMatrixInfo:
    """One row of the paper's Table 1."""

    name: str
    description: str
    n: int
    nnz: int
    cond_a: float
    cond_scaled: float
    rho: float

    @property
    def jacobi_convergent(self) -> bool:
        """Whether the paper's ρ(M) implies Jacobi convergence."""
        return self.rho < 1.0


#: Published Table 1, verbatim.
PAPER_TABLE1: Dict[str, PaperMatrixInfo] = {
    info.name: info
    for info in [
        PaperMatrixInfo("Chem97ZtZ", "statistical problem", 2541, 7361, 1.3e3, 7.2e3, 0.7889),
        PaperMatrixInfo("fv1", "2D/3D problem", 9604, 85264, 9.3e4, 12.76, 0.8541),
        PaperMatrixInfo("fv2", "2D/3D problem", 9801, 87025, 9.5e4, 12.76, 0.8541),
        PaperMatrixInfo("fv3", "2D/3D problem", 9801, 87025, 3.6e7, 4.4e3, 0.9993),
        PaperMatrixInfo("s1rmt3m1", "structural problem", 5489, 262411, 2.2e6, 7.2e6, 2.65),
        PaperMatrixInfo("Trefethen_2000", "combinatorial problem", 2000, 41906, 5.1e4, 6.1579, 0.8601),
        PaperMatrixInfo("Trefethen_20000", "combinatorial problem", 20000, 554466, 5.1e4, 6.1579, 0.8601),
    ]
}

#: Canonical suite order (as in Table 1).
SUITE_NAMES = tuple(PAPER_TABLE1)

_GENERATORS: Dict[str, Callable[[], CSRMatrix]] = {
    "Chem97ZtZ": lambda: chem97ztz_like(),
    "fv1": lambda: fv_like(1),
    "fv2": lambda: fv_like(2),
    "fv3": lambda: fv_like(3),
    "s1rmt3m1": lambda: s1rmt3m1_like(),
    "Trefethen_2000": lambda: trefethen(2000),
    "Trefethen_20000": lambda: trefethen(20000),
    # 3-D constant-coefficient stencil family (beyond the paper's Table 1):
    # the stencil-regular workloads the matrix-free backend targets.
    "lap3d7pt_32": lambda: stencil_laplacian_3d(32),
    "lap3d19pt_32": lambda: stencil_laplacian_3d(32, stencil="19pt"),
    "lap3d27pt_24": lambda: stencil_laplacian_3d(24, stencil="27pt"),
    "lap3d7pt_aniso_32": lambda: stencil_laplacian_3d(32, anisotropy=(1.0, 1.0, 0.01)),
}

_CACHE: Dict[str, CSRMatrix] = {}


def get_matrix(name: str, *, cache: bool = True) -> CSRMatrix:
    """Build (or fetch from the in-process cache) a suite matrix by name.

    Names are the UFMC names of the paper ("Chem97ZtZ", "fv1", "fv2",
    "fv3", "s1rmt3m1", "Trefethen_2000", "Trefethen_20000") plus the
    3-D stencil family ("lap3d7pt_32", "lap3d19pt_32", "lap3d27pt_24",
    "lap3d7pt_aniso_32").  Generators are deterministic, so cached and
    fresh instances are identical; pass ``cache=False`` to force
    regeneration (the cached matrix is shared — callers must not mutate
    it).
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown suite matrix {name!r}; options: {list(_GENERATORS)}")
    if cache and name in _CACHE:
        return _CACHE[name]
    A = _GENERATORS[name]()
    if cache:
        _CACHE[name] = A
    return A


def default_rhs(A: CSRMatrix, *, kind: str = "ones", seed: RNGLike = 0) -> np.ndarray:
    """The right-hand side used throughout the experiments.

    The paper solves with a single right-hand side (§3.1).  ``kind`` is

    * ``"ones"``      — ``b = A @ 1`` (exact solution is the ones vector;
      the package default so every experiment has a known solution),
    * ``"random"``    — ``b = A @ z`` with standard-normal ``z``,
    * ``"unit"``      — ``b = 1`` (no known solution; residual-only runs).
    """
    n = A.shape[0]
    if kind == "ones":
        return A.matvec(np.ones(n))
    if kind == "random":
        return A.matvec(as_rng(seed).standard_normal(n))
    if kind == "unit":
        return np.ones(n)
    raise ValueError(f"unknown rhs kind {kind!r}")
