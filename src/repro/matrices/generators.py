"""Parameterised random test-problem generators.

The suite reconstructions (:mod:`repro.matrices.suite`) pin down the
paper's seven systems; this module provides the *families* around them so
users (and the property-based tests) can probe behaviour across controlled
parameter ranges: diagonal dominance, density, conditioning, and known
solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .._util import RNGLike, as_rng
from ..sparse import COOMatrix, CSRMatrix
from .grids import stencil_laplacian_2d
from .grids3d import stencil_laplacian_3d

__all__ = ["random_spd", "random_nonsymmetric", "Problem", "poisson_2d", "poisson_3d"]


def random_spd(
    n: int,
    *,
    density: float = 0.05,
    dominance: float = 1.5,
    seed: RNGLike = 0,
) -> CSRMatrix:
    """Random sparse SPD matrix with controlled diagonal dominance.

    Off-diagonal entries are symmetric standard normals at the requested
    *density*; the diagonal is set to ``dominance ×`` the row's absolute
    off-diagonal sum (plus a positive floor), so

    * ``dominance > 1``  → strictly diagonally dominant: ρ(|B|) < 1 and
      every asynchronous schedule converges (Strikwerda);
    * ``dominance = 1``  → weakly dominant (ρ(B) ≈ 1, slow);
    * ``dominance < 1``  → SPD is no longer guaranteed — rejected.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not (0.0 < density <= 1.0):
        raise ValueError("density must be in (0, 1]")
    if dominance < 1.0:
        raise ValueError("dominance must be >= 1 (SPD guarantee)")
    rng = as_rng(seed)
    nnz_target = max(1, int(density * n * (n - 1) / 2))
    i = rng.integers(0, n, size=nnz_target)
    j = rng.integers(0, n, size=nnz_target)
    keep = i < j
    i, j = i[keep], j[keep]
    v = rng.standard_normal(len(i))
    rows = np.concatenate([i, j])
    cols = np.concatenate([j, i])
    vals = np.concatenate([v, v])
    off = COOMatrix(rows, cols, vals, (n, n)).tocsr()
    radii = off.row_abs_sums()
    diag = dominance * radii + 0.1 + rng.random(n)
    return off.add(CSRMatrix.diagonal_matrix(diag))


def random_nonsymmetric(
    n: int,
    *,
    density: float = 0.05,
    dominance: float = 1.5,
    seed: RNGLike = 0,
) -> CSRMatrix:
    """Random diagonally dominant nonsymmetric matrix (GMRES fodder)."""
    if n < 1:
        raise ValueError("n must be positive")
    if not (0.0 < density <= 1.0):
        raise ValueError("density must be in (0, 1]")
    if dominance <= 1.0:
        raise ValueError("dominance must be > 1 for guaranteed invertibility")
    rng = as_rng(seed)
    nnz_target = max(1, int(density * n * n))
    i = rng.integers(0, n, size=nnz_target)
    j = rng.integers(0, n, size=nnz_target)
    keep = i != j
    off = COOMatrix(i[keep], j[keep], rng.standard_normal(keep.sum()), (n, n)).tocsr()
    radii = off.row_abs_sums()
    diag = dominance * radii + 0.1 + rng.random(n)
    return off.add(CSRMatrix.diagonal_matrix(diag))


@dataclass(frozen=True)
class Problem:
    """A linear system with its known solution."""

    A: CSRMatrix
    b: np.ndarray
    x_star: np.ndarray
    name: str = ""

    def error(self, x: np.ndarray) -> float:
        """∞-norm error of an approximate solution."""
        return float(np.abs(np.asarray(x) - self.x_star).max())

    def residual_norm(self, x: np.ndarray) -> float:
        """l2 residual of an approximate solution."""
        return float(np.linalg.norm(self.A.residual(np.asarray(x, dtype=np.float64), self.b)))


def _manufactured(A: CSRMatrix, kind: str, seed: RNGLike, name: str) -> Problem:
    n = A.shape[0]
    if kind == "ones":
        x_star = np.ones(n)
    elif kind == "random":
        x_star = as_rng(seed).standard_normal(n)
    elif kind == "smooth":
        t = np.linspace(0.0, np.pi, n)
        x_star = np.sin(t) + 0.3 * np.cos(3 * t)
    else:
        raise ValueError(f"unknown solution kind {kind!r}")
    return Problem(A=A, b=A.matvec(x_star), x_star=x_star, name=name)


def poisson_2d(
    nx: int,
    *,
    stencil: str = "5pt",
    shift: float = 0.0,
    solution: str = "smooth",
    seed: RNGLike = 0,
) -> Problem:
    """2-D Dirichlet Poisson(+reaction) problem with a manufactured solution."""
    A = stencil_laplacian_2d(nx, stencil=stencil, shift=shift)
    return _manufactured(A, solution, seed, f"poisson2d({nx}, {stencil})")


def poisson_3d(
    nx: int,
    *,
    stencil: str = "7pt",
    shift: float = 0.0,
    solution: str = "smooth",
    seed: RNGLike = 0,
) -> Problem:
    """3-D Dirichlet Poisson(+reaction) problem with a manufactured solution."""
    A = stencil_laplacian_3d(nx, stencil=stencil, shift=shift)
    return _manufactured(A, solution, seed, f"poisson3d({nx}, {stencil})")
