"""Test-problem substrate: synthetic reconstructions of the paper's UFMC matrices.

The paper evaluates on seven University of Florida Matrix Collection systems
(its Table 1).  This subpackage rebuilds each one:

* ``Trefethen_2000`` / ``Trefethen_20000`` — **exact**: the published
  definition (primes on the diagonal, unit entries at power-of-two offsets)
  reproduces the paper's nnz counts to the digit.
* ``fv1`` / ``fv2`` / ``fv3`` — 9-point stencil Laplacians on 98×98 / 99×99
  grids (the paper's nnz counts match these stencils exactly), spectrally
  calibrated so ρ(B) and cond(D⁻¹A) match Table 1, then symmetrically
  diagonally scaled to match cond(A) (symmetric diagonal scaling leaves the
  Jacobi iteration matrix's spectrum invariant).
* ``Chem97ZtZ`` — a statistical normal-equations surrogate: near-diagonal
  blocks plus long-range pair couplings, calibrated to ρ(B) = 0.7889.
* ``s1rmt3m1`` — a structural-stiffness surrogate: wide band, strong
  off-diagonal coupling, calibrated to ρ(B) ≈ 2.65 > 1 (Jacobi-divergent).
"""

from .suite import SUITE_NAMES, PAPER_TABLE1, get_matrix, default_rhs, PaperMatrixInfo
from .analysis import MatrixProperties, characterize, iteration_matrix, sparsity_grid
from .trefethen import trefethen, primes
from .grids import stencil_laplacian_2d
from .grids3d import stencil_laplacian_3d
from .fem import fv_like
from .chem import chem97ztz_like
from .structural import s1rmt3m1_like
from .mmio import read_matrix_market, write_matrix_market
from .rcm import reverse_cuthill_mckee, permute_symmetric, bandwidth
from .clustering import cluster_reorder
from .generators import Problem, poisson_2d, poisson_3d, random_nonsymmetric, random_spd

__all__ = [
    "SUITE_NAMES",
    "PAPER_TABLE1",
    "PaperMatrixInfo",
    "get_matrix",
    "default_rhs",
    "MatrixProperties",
    "characterize",
    "iteration_matrix",
    "sparsity_grid",
    "trefethen",
    "primes",
    "stencil_laplacian_2d",
    "stencil_laplacian_3d",
    "fv_like",
    "chem97ztz_like",
    "s1rmt3m1_like",
    "read_matrix_market",
    "write_matrix_market",
    "reverse_cuthill_mckee",
    "permute_symmetric",
    "bandwidth",
    "cluster_reorder",
    "Problem",
    "poisson_2d",
    "poisson_3d",
    "random_nonsymmetric",
    "random_spd",
]
