"""s1rmt3m1 surrogate — an ill-conditioned SPD matrix with ρ(B) > 1.

The paper uses s1rmt3m1 (a cylindrical-shell FEM stiffness matrix,
n = 5,489, nnz = 262,411, cond(A) ≈ 2.2e6) as its *negative* example: the
matrix is SPD, yet the Jacobi iteration matrix has ρ(B) ≈ 2.65, so Jacobi
and every asynchronous variant diverge (§4.2, Figs. 6e/7e) while
Gauss-Seidel — convergent on any SPD system — merely crawls at the
ill-conditioning-limited rate.  A τ-scaling restores (slow) convergence.

An SPD matrix with ρ(B) > 1 needs its Jacobi-scaled off-diagonal part to
have an eigenvalue far *above* +1 while staying above −1.  A Gram matrix
``M = F Fᵀ + ε·d̄·I`` with banded random F does this naturally:

* PSD-ness bounds the scaled off-diagonal spectrum below by ≈ −1;
* ρ(B) is set by how strongly F's rows overlap, controlled smoothly by the
  **taper power** *p* of its diagonals (``F[i, i+d] ∝ (1+|d|)^{-p}``) —
  larger *p* concentrates F and lowers ρ(B);
* the ``ε`` ridge sets cond(A) independently (ε ≈ 2e-6 lands the paper's
  ~1e6-1e7 conditioning), because the taper calibration never adds
  diagonal mass.

``s1rmt3m1_like()`` with default arguments uses a pre-calibrated taper
power; custom targets trigger an on-the-fly bisection with the package's
power method.
"""

from __future__ import annotations

import numpy as np

from .._util import RNGLike, as_rng
from ..sparse import COOMatrix, CSRMatrix
from ..sparse.linalg import power_method

__all__ = ["s1rmt3m1_like", "banded_gram", "gram_jacobi_radius", "calibrate_taper_power"]

#: Paper dimensions (Table 1).
_N = 5489
_HALF_BAND = 12  # F half-band; M = F F^T then has half-band 24 (~49 nnz/row)
_EPS = 2e-6

#: Taper power calibrated once (package power method, bisection to 1e-4)
#: for the default configuration (n=5489, half_band=12, eps=2e-6,
#: seed=1912, target rho=2.65); regenerate with calibrate_taper_power().
_CALIBRATED_TAPER = 1.2775421142578125
_CALIBRATED_FOR = (_N, _HALF_BAND, _EPS, 1912, 2.65)


def banded_gram(
    n: int,
    half_band: int = _HALF_BAND,
    *,
    taper_power: float = _CALIBRATED_TAPER,
    eps: float = _EPS,
    seed: RNGLike = 1912,
) -> CSRMatrix:
    """Symmetric positive-definite banded Gram matrix ``F Fᵀ + eps·d̄·I``.

    ``F`` has zero-mean random diagonals tapered as ``(1+|d|)^{-taper_power}``;
    the product is computed diagonal-by-diagonal (never materialising a
    dense array):

        (F Fᵀ)_{i, i+s} = Σ_d  f_d[i] · f_{d-s}[i+s]

    where ``f_d`` is F's d-th diagonal padded into full-length vectors.
    ``eps`` (relative to the mean diagonal) lifts the smallest eigenvalue,
    setting the conditioning of the result.
    """
    if n < 2 * half_band + 2:
        raise ValueError("n too small for the requested band")
    if taper_power <= 0:
        raise ValueError("taper_power must be positive")
    if eps < 0:
        raise ValueError("eps must be non-negative")
    rng = as_rng(seed)
    # F's diagonals on a padded frame: fpad[d + hb] has F[i, i+d] at slot i.
    hb = half_band
    fpad = np.zeros((2 * hb + 1, n + 2 * hb))
    for d in range(-hb, hb + 1):
        taper = (1.0 + abs(d)) ** -taper_power
        vals = taper * rng.standard_normal(n)
        lo = max(0, -d)
        hi = min(n, n - d)
        fpad[d + hb, lo + hb : hi + hb] = vals[lo:hi]

    rows, cols, data = [], [], []
    idx = np.arange(n, dtype=np.int64)
    for s in range(0, 2 * hb + 1):
        # Diagonal s of F F^T: sum over F-diagonals d of f_d[i] * f_{d-s}[i+s].
        acc = np.zeros(n - s)
        i = idx[: n - s]
        for d in range(-hb, hb + 1):
            dprime = d - s
            if dprime < -hb or dprime > hb:
                continue
            acc += fpad[d + hb, hb + i] * fpad[dprime + hb, hb + i + s]
        if s == 0:
            rows.append(i)
            cols.append(i)
            data.append(acc)
        else:
            rows.extend([i, i + s])
            cols.extend([i + s, i])
            data.extend([acc, acc])
    coo = COOMatrix(np.concatenate(rows), np.concatenate(cols), np.concatenate(data), (n, n))
    M = coo.tocsr()
    dbar = float(M.diagonal().mean())
    return M.add(CSRMatrix.identity(n), alpha=eps * dbar)


def gram_jacobi_radius(M: CSRMatrix, *, maxiter: int = 3000, tol: float = 1e-9) -> float:
    """ρ(I − D⁻¹M) via the squared power method (handles ± pairs)."""
    d, off = M.split_diagonal()
    inv_d = 1.0 / d

    def b(x: np.ndarray) -> np.ndarray:
        return -inv_d * off.matvec(x)

    lam2, _, _ = power_method(lambda x: b(b(x)), M.shape[0], maxiter=maxiter, tol=tol, seed=7)
    return float(np.sqrt(lam2))


def calibrate_taper_power(
    n: int,
    half_band: int,
    rho: float,
    *,
    eps: float = _EPS,
    seed: RNGLike = 1912,
    bracket=(1.0, 2.5),
    iterations: int = 14,
) -> float:
    """Bisection on the taper power so that ρ(B) of the Gram hits *rho*.

    ρ(B) decreases monotonically in the taper power over the bracket; the
    bracket is validated before bisecting.
    """
    lo, hi = bracket
    r_lo = gram_jacobi_radius(banded_gram(n, half_band, taper_power=lo, eps=eps, seed=seed))
    r_hi = gram_jacobi_radius(banded_gram(n, half_band, taper_power=hi, eps=eps, seed=seed))
    if not (r_hi <= rho <= r_lo):
        raise ValueError(
            f"target rho={rho} outside achievable range [{r_hi:.3f}, {r_lo:.3f}] "
            f"for n={n}, half_band={half_band}"
        )
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        r_mid = gram_jacobi_radius(banded_gram(n, half_band, taper_power=mid, eps=eps, seed=seed))
        if r_mid > rho:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def s1rmt3m1_like(
    n: int = _N,
    *,
    rho: float = 2.65,
    half_band: int = _HALF_BAND,
    eps: float = _EPS,
    seed: RNGLike = 1912,
) -> CSRMatrix:
    """Generate an s1rmt3m1-like SPD matrix.

    Properties by construction: SPD (Gram + ridge), Jacobi radius *rho*
    (taper calibration; > 1 by default, so Jacobi/async diverge), and
    cond(A) ~ 1/eps (Gauss-Seidel converges but crawls, as on the real
    matrix).  Defaults reuse the pre-calibrated taper power; any deviation
    triggers a fresh (seconds-scale) calibration.
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    if (n, half_band, eps, seed, rho) == _CALIBRATED_FOR:
        p = _CALIBRATED_TAPER
    else:
        p = calibrate_taper_power(n, half_band, rho, eps=eps, seed=seed)
    return banded_gram(n, half_band, taper_power=p, eps=eps, seed=seed)
