"""Chem97ZtZ surrogate — a "statistical problem" normal-equations matrix.

The real Chem97ZtZ (UFMC) is the cross-product ``ZᵀZ`` of a statistical
design matrix: n = 2,541 with only 7,361 nonzeros (≈ 2.9 per row), i.e. a
heavy diagonal plus sparse *long-range* couplings.  The paper leans on two
of its properties (§4.3):

* the couplings are far from the diagonal, so the diagonal blocks of any
  moderate row-block partition are essentially **diagonal** — local Jacobi
  iterations add nothing, and async-(k) behaves like plain Jacobi;
* ρ(B) = 0.7889.

This surrogate reproduces both by construction: ``m`` symmetric unit-weight
couplings are laid out between hub rows and far-away partner rows (distance
≥ n/3), and every row's diagonal is set to (row coupling mass) / ρ, which
makes ``|B| = D⁻¹|offdiag|`` a nonnegative matrix with **constant row sums
ρ** — so ρ(|B|) = ρ exactly (Perron), and because all couplings carry one
sign, ρ(B) = ρ as well.  A final symmetric log-ramp scaling spreads the
diagonal to land cond(A) near the Table 1 order without touching the Jacobi
spectrum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import RNGLike, as_rng
from ..sparse import COOMatrix, CSRMatrix

__all__ = ["chem97ztz_like"]

#: Paper dimensions (Table 1).
_N = 2541
_NNZ = 7361


def chem97ztz_like(
    n: int = _N,
    *,
    nnz: Optional[int] = None,
    rho: float = 0.7889,
    coeff_ratio: float = 22.0,
    seed: RNGLike = 1997,
) -> CSRMatrix:
    """Generate a Chem97ZtZ-like SPD matrix.

    Parameters
    ----------
    n:
        Dimension (paper: 2,541).
    nnz:
        Target nonzero count (paper: 7,361); must satisfy
        ``nnz >= n`` and ``nnz - n`` even (each coupling adds two entries).
        Defaults to a pro-rated share of the paper's count.
    rho:
        Jacobi spectral radius, hit exactly by construction.
    coeff_ratio:
        Diagonal spread of the symmetric scaling field (sets cond(A)'s
        order of magnitude; the Jacobi spectrum is invariant to it).
    seed:
        Seed for the small jitter in partner selection.

    Notes
    -----
    A coupling is placed between hub row ``h`` and partner ``p`` at distance
    at least ``n // 3``; hubs take several partners each, mimicking the
    factor/observation structure of normal equations.  Duplicate pairs are
    merged by COO canonicalization, so the exact nnz can drop below the
    target by a handful in degenerate configurations — the generator retries
    partner jitter to avoid that at the paper size.
    """
    if n < 8:
        raise ValueError("n must be at least 8")
    if not (0 < rho < 1):
        raise ValueError("rho must lie in (0, 1)")
    if nnz is None:
        nnz = max(n, int(round(_NNZ * (n / _N) / 2)) * 2 + (n % 2))
        # Keep parity: nnz - n must be even.
        if (nnz - n) % 2:
            nnz += 1
    if nnz < n or (nnz - n) % 2:
        raise ValueError("nnz must be >= n with nnz - n even")
    m = (nnz - n) // 2  # number of symmetric couplings
    rng = as_rng(seed)

    min_gap = max(1, n // 3)
    nhubs = max(1, int(np.ceil(m / max(1, (n - min_gap) // 8))))
    hubs = np.linspace(0, max(0, n - min_gap - 1), nhubs).astype(np.int64)
    # Partners cycle through the far range [hub + min_gap, n) with jitter.
    pairs = set()
    attempts = 0
    k = 0
    while len(pairs) < m:
        h = int(hubs[k % nhubs])
        span = n - (h + min_gap)
        offset = min_gap + int((k // nhubs) * 7 + rng.integers(0, 5)) % span
        p = h + offset
        key = (h, p) if h < p else (p, h)
        if key[0] != key[1]:
            pairs.add(key)
        k += 1
        attempts += 1
        if attempts > 50 * m + 1000:
            raise RuntimeError("could not place the requested number of couplings")
    idx = np.array(sorted(pairs), dtype=np.int64)
    ii, jj = idx[:, 0], idx[:, 1]

    ones = np.ones(m)
    # Degree (coupling mass) per row; diagonal = mass / rho gives |B| rows
    # summing to rho exactly (isolated rows get a unit diagonal).
    mass = np.bincount(ii, minlength=n).astype(np.float64)
    mass += np.bincount(jj, minlength=n)
    diag = np.where(mass > 0, mass / rho, 1.0)

    rows = np.concatenate([ii, jj, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([jj, ii, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([ones, ones, diag])
    A = COOMatrix(rows, cols, vals, (n, n)).tocsr()

    if coeff_ratio > 1.0:
        g = np.linspace(0.0, 1.0, n)
        w = np.power(coeff_ratio, 0.5 * g)  # W = sqrt(field); A' = W A W
        A = A.scale_rows(w).scale_cols(w)
    return A
