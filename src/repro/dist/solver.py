"""``DistAsyncSolver`` — the solver front-end over the sharded runtime.

Presents a multiprocess two-stage multisplitting solve behind the exact
:class:`repro.solvers.IterativeSolver` contract: same ``solve(A, b, x0)``
call, same :class:`SolveResult`, same residual-history semantics, driven
through the shared :class:`repro.runtime.RunLoop` (which also gives it
stopping, divergence guards, sparse residual cadences and telemetry for
free).  The driver's step is "wait until every live shard finished sweep
``it + 1``, then read the shared iterate"; the workers meanwhile run the
inner sweeps through the ordinary engine stack (:mod:`repro.dist.worker`).

With ``shards=1`` the runtime is strict lock-step and the whole pipeline
is bitwise-identical to :class:`repro.core.BlockAsyncSolver` — same
iterates, same residual history, same telemetry residuals (asserted by
``tests/dist/test_dist_bitwise.py``).  With more shards the recorded
history samples the mixed-epoch shared iterate (that *is* the method);
after the loop stops, the settled iterate — every worker parked — gets
one final residual evaluation appended to the history iff it differs
from the last recorded sample.

The full distributed telemetry (driver run + per-shard worker runs +
shard map + staleness/halo samples + recovery log) is exported as one
``repro.dist/v1`` document on :attr:`DistAsyncSolver.last_telemetry`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

from .._util import check_square, check_vector
from ..core.schedules import AsyncConfig
from ..partition import Partition, make_partition
from ..runtime import RunLoop, StoppingCriterion
from ..runtime.recorder import RunRecorder
from ..solvers.base import IterativeSolver, SolveResult
from ..sparse import CSRMatrix
from .plan import make_shard_plan
from .runtime import DIST_SCHEMA, DistRuntime

__all__ = ["DistAsyncSolver"]


class DistAsyncSolver(IterativeSolver):
    """Block-asynchronous relaxation sharded over worker processes.

    Parameters
    ----------
    config:
        Full :class:`repro.core.AsyncConfig`; alternatively pass the same
        shortcuts :class:`repro.core.BlockAsyncSolver` takes and a default
        config is built.  Shard *s* runs with seed ``config.seed + s``.
    shards:
        Number of worker processes (must not exceed the block count).
    max_staleness:
        Outer-sweep staleness bound between shards (≥ 1; 1 = synchronous
        outer stage).
    placement:
        ``"blocks"`` (equal block counts — bitwise the simulated
        multi-GPU split) or ``"work"`` (equal stored nonzeros).
    recovery:
        Reaction to a dead/silent shard: ``"respawn"`` (same slot, no
        progress lost beyond the interrupted sweep) or ``"reassign"``
        (adjacent live shard absorbs the block range mid-solve).
    heartbeat_timeout, advance_timeout:
        Failure-detection and progress-ceiling clocks of the
        :class:`repro.dist.DistRuntime`.
    local_iterations, block_size, seed, omega, partition, stopping,
    residual_every, recorder:
        As on :class:`repro.core.BlockAsyncSolver`.
    fault_injector:
        Optional ``hook(it, runtime)`` run at the top of every outer
        sweep — the fault-experiment seam (kill a worker mid-solve).

    Attributes
    ----------
    last_telemetry:
        The ``repro.dist/v1`` telemetry document of the most recent
        solve (driver run, per-shard worker runs, shard map, staleness
        histograms, halo latency, recovery log).

    Examples
    --------
    >>> from repro import DistAsyncSolver, get_matrix, default_rhs
    >>> A = get_matrix("Trefethen_2000"); b = default_rhs(A)
    >>> result = DistAsyncSolver(shards=2, local_iterations=2).solve(A, b)
    >>> result.info["dist"]["nshards"]
    2
    """

    name = "dist-async"

    def __init__(
        self,
        config: Optional[AsyncConfig] = None,
        *,
        shards: int = 1,
        max_staleness: int = 2,
        placement: str = "blocks",
        recovery: str = "respawn",
        heartbeat_timeout: float = 5.0,
        advance_timeout: float = 120.0,
        local_iterations: int = 1,
        block_size: int = 128,
        seed=0,
        omega: float = 1.0,
        partition: Optional[Union[str, Partition]] = None,
        stopping: Optional[StoppingCriterion] = None,
        residual_every: Optional[int] = None,
        recorder: Optional[RunRecorder] = None,
        fault_injector=None,
    ):
        if config is None:
            config = AsyncConfig(
                local_iterations=local_iterations,
                block_size=block_size,
                seed=seed,
                omega=omega,
            )
        super().__init__(
            stopping,
            residual_every=(
                config.residual_every if residual_every is None else residual_every
            ),
            recorder=recorder,
        )
        self.config = config
        self.shards = int(shards)
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.max_staleness = int(max_staleness)
        self.placement = placement
        self.recovery = recovery
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.advance_timeout = float(advance_timeout)
        self.partition = partition if partition is not None else config.partition
        self.fault_injector = fault_injector
        self.name = (
            config.method_name
            if self.shards == 1
            else f"dist({self.shards})-{config.method_name}"
        )
        self.last_telemetry: Optional[Dict[str, Any]] = None

    # IterativeSolver's template hooks are unused: the distributed solve
    # owns its whole drive (processes cannot be stepped from _iterate).
    def _setup(self, A, b):  # pragma: no cover - contract stub
        raise NotImplementedError("DistAsyncSolver drives its own loop")

    def _iterate(self, state, x):  # pragma: no cover - contract stub
        raise NotImplementedError("DistAsyncSolver drives its own loop")

    # ------------------------------------------------------------------ #

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` across the configured worker processes."""
        n = check_square(A.shape, f"{self.name} matrix")
        b = check_vector(b, n, "b")
        part = make_partition(A, self.partition, block_size=self.config.block_size)
        Ap = part.permute_matrix(A)
        bp = part.permute_vector(b)
        x0p = None if x0 is None else part.permute_vector(check_vector(x0, n, "x0"))
        plan = make_shard_plan(
            part, self.shards, placement=self.placement, A=Ap
        )
        x = np.zeros(n) if x0p is None else x0p.copy()
        recorder = self.recorder if self.recorder is not None else RunRecorder()
        b_norm = float(np.linalg.norm(bp))
        loop = RunLoop(
            self.stopping, residual_every=self.residual_every, recorder=recorder
        )
        runtime = DistRuntime(
            Ap,
            bp,
            plan,
            self.config,
            x0=x,
            max_staleness=self.max_staleness,
            recovery=self.recovery,
            heartbeat_timeout=self.heartbeat_timeout,
            advance_timeout=self.advance_timeout,
            recorder=recorder,
            fault_injector=self.fault_injector,
        )

        def step(xv: np.ndarray, it: int) -> None:
            runtime.advance(it)
            xv[:] = runtime.state.x
            return None

        def residual_norm(xv: np.ndarray) -> float:
            return float(np.linalg.norm(Ap.residual(xv, bp)))

        with runtime:
            outcome = loop.run(
                x, step, residual_norm, b_norm=b_norm, method=self.name
            )
            runtime.stop_workers()
            settled = np.array(runtime.state.x)
            payloads = runtime.shard_payloads()
            recoveries = list(runtime.recoveries)

        residuals = outcome.residuals
        riters = outcome.residual_iters
        converged = outcome.converged
        max_epoch = max(
            [int(p.get("sweeps", 0)) for p in payloads.values()],
            default=outcome.sweeps,
        )
        settled_res = residual_norm(settled)
        if settled_res != float(residuals[-1]):
            # Shards that ran ahead of the last recorded residual moved the
            # iterate after the loop's final sample; the settled state gets
            # its own sample.  (Never fires with one shard: lock-step means
            # nothing moved, keeping that history bitwise the in-process
            # solver's.)
            residuals = np.append(residuals, settled_res)
            riters = np.append(riters, max(max_epoch, int(riters[-1]) + 1))
            recorder.record_residual(int(riters[-1]), settled_res)
            threshold = self.stopping.threshold(b_norm)
            converged = bool(settled_res <= threshold)

        dist_info = self._dist_summary(plan, payloads, recoveries, runtime.lead)
        result = SolveResult(
            x=part.unpermute_vector(settled) if part.perm is not None else settled,
            residuals=residuals,
            converged=converged,
            method=self.name,
            b_norm=b_norm,
            info={
                "diverged": outcome.diverged,
                "sweeps": outcome.sweeps,
            },
        )
        if self.residual_every != 1 or len(riters) != len(residuals):
            result.residual_iters = riters

        update_counts = np.zeros(part.nblocks, dtype=np.int64)
        backends = sorted(
            {str(p.get("backend")) for p in payloads.values() if "backend" in p}
        )
        sched_bound = 0
        for p in payloads.values():
            blo, bhi = p.get("block_range", (0, 0))
            counts = np.asarray(p.get("update_counts", []), dtype=np.int64)
            m = min(len(counts), bhi - blo)
            update_counts[blo : blo + m] += counts[:m]
            sched_bound = max(sched_bound, int(p.get("scheduler_staleness_bound", 0)))
        part.ensure_stats(Ap)
        result.info.update(
            {
                "backend": backends[0] if len(backends) == 1 else backends,
                "nblocks": part.nblocks,
                "block_size": self.config.block_size,
                "local_iterations": self.config.local_iterations,
                "update_counts": update_counts,
                "staleness_bound": sched_bound,
                "off_block_fraction": float(part.stats.off_block_fraction),
                "order": self.config.order,
                "partition": part.telemetry(),
                "dist": dist_info,
            }
        )
        if part.perm is not None:
            result.info["permuted"] = True
        recorder.annotate(
            backend=result.info["backend"],
            nblocks=part.nblocks,
            staleness_bound=sched_bound,
            update_counts=update_counts.tolist(),
            partition=part.telemetry(),
            dist=dist_info,
        )
        self.last_telemetry = {
            "schema": DIST_SCHEMA,
            "plan": plan.telemetry(),
            "driver": recorder.to_dict(),
            "shards": [payloads[s] for s in sorted(payloads)],
            "recoveries": recoveries,
            "dist": dist_info,
        }
        return result

    # ------------------------------------------------------------------ #

    def _dist_summary(
        self,
        plan,
        payloads: Dict[int, Dict[str, Any]],
        recoveries: List[Dict[str, Any]],
        lead: int,
    ) -> Dict[str, Any]:
        """Aggregate the per-shard samples into ``result.info["dist"]``."""
        hist = np.zeros(self.max_staleness, dtype=np.int64)
        stale_max = 0
        shard_rows = []
        for sid in sorted(payloads):
            p = payloads[sid]
            stale = np.asarray(p.get("staleness", []), dtype=np.int64)
            if len(stale):
                stale_max = max(stale_max, int(stale.max()))
                counts = np.bincount(stale, minlength=len(hist))
                if len(counts) > len(hist):
                    hist = np.pad(hist, (0, len(counts) - len(hist)))
                hist[: len(counts)] += counts
            run = p.get("run", {})
            seconds = float(np.sum(run.get("sweeps", {}).get("seconds", [])))
            sweeps = int(p.get("sweeps", 0))
            halo = p.get("halo_seconds", [])
            shard_rows.append(
                {
                    "shard": sid,
                    "sweeps": sweeps,
                    "sweep_rate": sweeps / seconds if seconds > 0 else None,
                    "halo_seconds_mean": float(np.mean(halo)) if len(halo) else 0.0,
                    "block_range": list(p.get("block_range", [])),
                    "row_range": list(p.get("row_range", [])),
                    "rebuilds": int(p.get("rebuilds", 0)),
                    "error": p.get("error"),
                }
            )
        return {
            "nshards": self.shards,
            "placement": self.placement,
            "max_staleness": self.max_staleness,
            "lead": lead,
            "staleness_max_observed": stale_max,
            "staleness_histogram": hist.tolist(),
            "shard_map": plan.telemetry(),
            "shards": shard_rows,
            "recovery": self.recovery,
            "recoveries": recoveries,
        }
