"""The shard plan: which worker process owns which blocks (and rows).

A :class:`ShardPlan` is the process-level analogue of the block-level
:class:`repro.partition.Partition`: it groups a partition's blocks into
contiguous per-shard ranges through the shared placement helper
(:func:`repro.partition.contiguous_placement`), either by block count
(``placement="blocks"`` — bitwise the simulated multi-GPU split) or by
stored nonzeros (``placement="work"`` — the equal-work split, needs the
matrix).  Because blocks are contiguous row ranges, each shard's rows are
contiguous too, which is what lets every worker hold a *square* local
matrix plus a halo part in global numbering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..partition import Partition, contiguous_placement, group_ranges, placement_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparse.csr import CSRMatrix

__all__ = ["ShardPlan", "make_shard_plan"]

#: Placement policies (weights fed to ``contiguous_placement``).
PLACEMENTS = ("blocks", "work")


@dataclass(eq=False)
class ShardPlan:
    """Blocks and rows of each worker process.

    Attributes
    ----------
    partition:
        The block decomposition being sharded.
    nshards:
        Number of worker processes.
    assignment:
        Shard id per block (contiguous, non-decreasing).
    placement:
        Policy that produced the assignment (``"blocks"`` or ``"work"``).
    """

    partition: Partition
    nshards: int
    assignment: np.ndarray
    placement: str = "blocks"
    _block_ranges: Optional[List[Tuple[int, int]]] = field(default=None, repr=False)

    def block_range(self, shard: int) -> Tuple[int, int]:
        """Half-open block range ``[blo, bhi)`` owned by *shard*."""
        if self._block_ranges is None:
            self._block_ranges = group_ranges(self.assignment)
        return self._block_ranges[shard]

    def row_range(self, shard: int) -> Tuple[int, int]:
        """Half-open row range ``[lo, hi)`` owned by *shard*."""
        blo, bhi = self.block_range(shard)
        b = self.partition.boundaries
        return int(b[blo]), int(b[bhi])

    def telemetry(self) -> Dict[str, Any]:
        """JSON-friendly shard→block map (shared shape with the GPU layer)."""
        out = placement_telemetry(self.assignment)
        out["placement"] = self.placement
        out["shard_rows"] = [list(self.row_range(s)) for s in range(self.nshards)]
        return out


def make_shard_plan(
    partition: Partition,
    nshards: int,
    *,
    placement: str = "blocks",
    A: Optional["CSRMatrix"] = None,
) -> ShardPlan:
    """Group *partition*'s blocks into *nshards* contiguous shard ranges.

    ``placement="blocks"`` balances block counts (no matrix needed);
    ``placement="work"`` balances stored nonzeros per shard and needs *A*
    **in partition order** (pass ``partition.permute_matrix(A)`` when the
    partition permutes).  Every shard owns at least one block, so
    ``nshards`` must not exceed the block count.
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"placement must be one of {PLACEMENTS}, got {placement!r}")
    nshards = int(nshards)
    if nshards < 1:
        raise ValueError("nshards must be >= 1")
    if nshards > partition.nblocks:
        raise ValueError(
            f"nshards must be <= nblocks: got {nshards} shards for "
            f"{partition.nblocks} blocks"
        )
    weights = None
    if placement == "work":
        if A is None:
            raise ValueError("placement='work' needs the matrix (in partition order)")
        b = partition.boundaries
        weights = (A.indptr[b[1:]] - A.indptr[b[:-1]]).astype(np.float64)
    assignment = contiguous_placement(partition.nblocks, nshards, weights=weights)
    return ShardPlan(
        partition=partition,
        nshards=nshards,
        assignment=assignment,
        placement=placement,
    )
