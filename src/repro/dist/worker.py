"""The shard worker: inner sweeps on a local subsystem, halo over shm.

Each worker owns a contiguous row range ``[lo, hi)`` of the (partition
ordered) system and runs the *inner* stage of the two-stage
multisplitting there:

* the local square matrix ``A[lo:hi, lo:hi]`` (columns shifted into local
  numbering) goes through the completely ordinary stack — local
  :class:`repro.partition.Partition`, :class:`repro.sparse.BlockRowView`,
  compiled :class:`repro.perf.SweepPlan`, backend-dispatched
  :class:`repro.core.AsyncEngine` — so a shard sweep *is* an engine
  sweep, fused kernels and all;
* the halo part ``E = A[lo:hi, :] − A[lo:hi, lo:hi]`` (columns outside
  the shard, global numbering) is folded into the right-hand side once
  per outer sweep from a snapshot of the shared iterate:
  ``s = b[lo:hi] − E @ x_shared`` — Eq. (4)'s "global part" at the
  process level.  With one shard the halo is empty and ``s`` is bitwise
  ``b``, which is what makes the ``shards=1`` path exactly the
  in-process solver.

The worker advances while its epoch is behind the driver's published
target **and** within ``max_staleness`` outer sweeps of the slowest live
shard (the bounded-staleness condition; the observed skew is recorded
per sweep).  It re-reads its block range from shared memory at each
sweep start, so the driver can reassign a dead neighbour's blocks to it
mid-solve; on a range change the local subsystem is simply rebuilt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..core.engine import AsyncEngine
from ..core.schedules import AsyncConfig
from ..partition import Partition, extract_block_system
from ..runtime.recorder import RunRecorder
from ..sparse import BlockRowView, CSRMatrix
from .shm import SharedState

__all__ = ["WorkerSpec", "worker_main"]


@dataclass
class WorkerSpec:
    """Everything one worker process needs (picklable for spawn contexts).

    *A* and *b* are the full system **in partition order**; the worker
    slices its own rows (cheap CSR views) so a reassigned block range can
    be rebuilt without further driver help.
    """

    shm_name: str
    shard_id: int
    A: CSRMatrix
    b: np.ndarray
    boundaries: np.ndarray
    config: AsyncConfig
    max_staleness: int
    result_queue: Any
    poll_seconds: float = 2e-4


class _LocalShard:
    """The rebuildable local subsystem of one worker."""

    def __init__(self, spec: WorkerSpec, state: SharedState):
        self.spec = spec
        self.state = state
        self.blo = -1
        self.bhi = -1
        self.rebuilds = 0
        self._build(*state.get_range(spec.shard_id))

    def _build(self, blo: int, bhi: int) -> None:
        spec = self.spec
        bounds = spec.boundaries
        lo, hi = int(bounds[blo]), int(bounds[bhi])
        # The shared halo machinery (repro.partition.halo): square local
        # matrix in shard-local numbering, halo part keeping the global
        # column space so it multiplies the full shared iterate directly —
        # the same decomposition RAS extended blocks use.
        A_local, halo = extract_block_system(spec.A, lo, hi)
        part = Partition(
            boundaries=bounds[blo : bhi + 1] - lo,
            strategy="explicit",
            spec=f"shard[{blo}:{bhi}]",
        )
        view = BlockRowView(A_local, partition=part)
        self.lo, self.hi = lo, hi
        self.blo, self.bhi = blo, bhi
        self.halo = halo
        self.b_shard = spec.b[lo:hi]
        self.engine = AsyncEngine(view, self.b_shard.copy(), spec.config)
        self.x_local = np.array(self.state.x[lo:hi])
        self._halo_buf = np.empty(hi - lo)
        self._snapshot = np.empty(self.state.n)

    def maybe_rebuild(self) -> bool:
        """Adopt a driver-side range change (block reassignment)."""
        blo, bhi = self.state.get_range(self.spec.shard_id)
        if (blo, bhi) == (self.blo, self.bhi):
            return False
        self._build(blo, bhi)
        self.rebuilds += 1
        return True

    def sweep(self) -> float:
        """One outer sweep: halo fold, inner engine sweep, publish.

        Returns the seconds spent in the halo exchange (snapshot + SpMV +
        rhs fold) for the latency telemetry.
        """
        t0 = time.perf_counter()
        # Snapshot of the outer iterate: the only read of other shards'
        # components this sweep (two-stage outer asynchronism).
        np.copyto(self._snapshot, self.state.x)
        self.halo.matvec(self._snapshot, out=self._halo_buf)
        # In place: the engine's executors hold views into engine.b, so
        # the fold is visible to fused and reference paths alike.  With an
        # empty halo the product is +0.0 everywhere and the subtraction
        # reproduces b bitwise (IEEE: v − (+0.0) == v for every v, signed
        # zeros included).
        np.subtract(self.b_shard, self._halo_buf, out=self.engine.b)
        halo_seconds = time.perf_counter() - t0
        self.engine.sweep(self.x_local)
        # Publish: other shards read this only through their next
        # sweep-start snapshot.
        self.state.x[self.lo : self.hi] = self.x_local
        return halo_seconds


def worker_main(spec: WorkerSpec) -> None:
    """Process entry point of shard *spec.shard_id*.

    Runs until the driver raises the stop flag, then ships its telemetry
    (a :class:`repro.runtime.RunRecorder` run plus sweep/halo/staleness
    samples) through ``spec.result_queue``.  Any exception is reported as
    an error payload before the process dies, so the driver can tell a
    crash from a kill.
    """
    state = SharedState.attach(spec.shm_name)
    sid = spec.shard_id
    recorder = RunRecorder()
    payload: Dict[str, Any] = {"shard": sid}
    shard: Optional[_LocalShard] = None
    halo_seconds = []
    staleness = []
    try:
        shard = _LocalShard(spec, state)
        recorder.open_run(
            method=f"shard-{sid}",
            shard=sid,
            nshards=state.nshards,
            rows=[shard.lo, shard.hi],
        )
        state.hb[sid] = time.time()
        while not state.stop:
            epoch = int(state.epochs[sid])
            state.hb[sid] = time.time()
            if epoch >= state.target:
                time.sleep(spec.poll_seconds)
                continue
            skew = epoch - state.min_live_epoch()
            if skew >= spec.max_staleness:
                # Bounded staleness: wait for the slowest live shard.
                time.sleep(spec.poll_seconds)
                continue
            if shard.maybe_rebuild():
                recorder.record_event(
                    epoch, "range-rebuild", rows=[shard.lo, shard.hi]
                )
            t0 = time.perf_counter()
            halo_s = shard.sweep()
            seconds = time.perf_counter() - t0
            recorder.record_sweep(epoch + 1, seconds)
            halo_seconds.append(halo_s)
            staleness.append(max(skew, 0))
            state.epochs[sid] = epoch + 1
            state.hb[sid] = time.time()
        counts = np.bincount(staleness, minlength=1) if staleness else np.zeros(1, np.int64)
        recorder.annotate(
            backend=shard.engine.backend,
            staleness_bound=shard.engine.scheduler.staleness_bound(),
            update_counts=shard.engine.update_counts.tolist(),
            block_range=[shard.blo, shard.bhi],
            rebuilds=shard.rebuilds,
            halo_seconds_mean=float(np.mean(halo_seconds)) if halo_seconds else 0.0,
            staleness_histogram=counts.tolist(),
        )
        recorder.close_run(sweeps=int(state.epochs[sid]))
        payload.update(
            run=recorder.to_dict()["runs"][0],
            sweeps=int(state.epochs[sid]),
            block_range=[shard.blo, shard.bhi],
            row_range=[shard.lo, shard.hi],
            update_counts=shard.engine.update_counts.tolist(),
            scheduler_staleness_bound=shard.engine.scheduler.staleness_bound(),
            backend=shard.engine.backend,
            halo_seconds=halo_seconds,
            staleness=staleness,
            rebuilds=shard.rebuilds,
        )
        spec.result_queue.put(payload)
    except Exception as exc:  # pragma: no cover - crash reporting path
        payload["error"] = f"{type(exc).__name__}: {exc}"
        try:
            spec.result_queue.put(payload)
        except Exception:
            pass
        raise
    finally:
        state.close()
