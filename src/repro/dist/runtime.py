"""The driver side of a sharded solve: processes, progress, recovery.

:class:`DistRuntime` owns everything that lives *around* the worker
processes of one distributed solve:

* the :class:`repro.dist.shm.SharedState` segment (created here, unlinked
  here — workers only attach);
* the worker processes themselves (fork where available, spawn
  otherwise) and the result queue their telemetry payloads come back on;
* the **outer progress protocol**: :meth:`advance` publishes the sweep
  target ``it + 1 + lead`` (``lead = max_staleness − 1`` sweeps of
  run-ahead; zero for one shard, which makes that case strict lock-step)
  and waits until every live shard has completed sweep ``it + 1``;
* **failure handling** while waiting: a live shard that is behind and
  whose process has died — or whose heartbeat went silent for
  ``heartbeat_timeout`` seconds — is recovered mid-solve, either by
  re-spawning a fresh process into the same slot (``recovery="respawn"``;
  the shared iterate and epoch counter survive, so no progress is lost
  beyond the interrupted sweep) or by reassigning its block range to the
  adjacent live shard (``recovery="reassign"``; the neighbour notices the
  widened range at its next sweep start and rebuilds — the same
  reassignment idea as :mod:`repro.core.recovery`, one level up).

Shutdown is deadlock-aware: the stop flag is raised first, the result
queue is drained *before* joining (a ``multiprocessing.Queue`` feeder
thread blocks the child's exit while the pipe buffer is full), and
stragglers are terminated, then killed.  The segment is closed and
unlinked unconditionally.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_mod
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.schedules import AsyncConfig
from ..runtime.recorder import RunRecorder
from ..sparse import CSRMatrix
from .plan import ShardPlan
from .shm import SharedState
from .worker import WorkerSpec, worker_main

__all__ = ["DIST_SCHEMA", "DistRuntime", "RECOVERY_POLICIES"]

#: Version tag of the distributed telemetry export.
DIST_SCHEMA = "repro.dist/v1"

#: Supported reactions to a dead or silent shard.
RECOVERY_POLICIES = ("respawn", "reassign")


def _preferred_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _shard_config(config: AsyncConfig, sid: int) -> AsyncConfig:
    """Per-shard schedule seed: shard 0 keeps the base config bitwise."""
    if sid == 0:
        return config
    try:
        seed = int(config.seed) + sid
    except (TypeError, ValueError):
        seed = sid
    return dataclasses.replace(config, seed=seed)


class DistRuntime:
    """Spawns, paces, monitors and reaps the shard workers of one solve.

    Use as a context manager (or call :meth:`start` / :meth:`shutdown`);
    the segment and every child process are cleaned up on exit even when
    the solve raised.

    Parameters
    ----------
    A, b:
        The system **in partition order** (workers slice their own rows).
    plan:
        The :class:`repro.dist.ShardPlan` mapping blocks to shards.
    config:
        Base :class:`repro.core.AsyncConfig`; shard *s* runs with seed
        ``config.seed + s`` (shard 0 keeps the base config bitwise).
    x0:
        Initial iterate in partition order (defaults to zeros).
    max_staleness:
        Outer-sweep bound: no shard may run more than this many sweeps
        ahead of the slowest live shard (measured in the workers,
        enforced on both sides — the driver publishes targets with
        ``max_staleness − 1`` sweeps of run-ahead).
    recovery:
        ``"respawn"`` or ``"reassign"`` (see module docstring).
    heartbeat_timeout:
        Seconds of heartbeat silence after which a live-but-stuck shard
        counts as failed.
    advance_timeout:
        Hard ceiling on one :meth:`advance` call — a RuntimeError after
        this long means recovery itself failed.
    fault_injector:
        Optional hook ``fault_injector(it, runtime)`` called at the top
        of every :meth:`advance` — the test seam for killing workers
        mid-solve (the §4.5 experiment at the process level).
    """

    def __init__(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        plan: ShardPlan,
        config: AsyncConfig,
        *,
        x0: Optional[np.ndarray] = None,
        max_staleness: int = 2,
        recovery: str = "respawn",
        heartbeat_timeout: float = 5.0,
        advance_timeout: float = 120.0,
        max_respawns: int = 3,
        recorder: Optional[RunRecorder] = None,
        fault_injector=None,
    ):
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
            )
        if max_staleness < 1:
            raise ValueError("max_staleness must be >= 1")
        self.A = A
        self.b = np.asarray(b, dtype=np.float64)
        self.plan = plan
        self.config = config
        self.x0 = x0
        self.max_staleness = int(max_staleness)
        self.recovery = recovery
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.advance_timeout = float(advance_timeout)
        self.max_respawns = int(max_respawns)
        self.recorder = recorder
        self.fault_injector = fault_injector
        self.nshards = plan.nshards
        #: One shard of run-ahead per unit of staleness budget; a single
        #: shard (or a bound of 1) is driven in strict lock-step.
        self.lead = 0 if self.nshards == 1 else self.max_staleness - 1
        self.state: Optional[SharedState] = None
        self.procs: List[Optional[Any]] = [None] * self.nshards
        self.specs: List[Optional[WorkerSpec]] = [None] * self.nshards
        self.payloads: List[Dict[str, Any]] = []
        self.recoveries: List[Dict[str, Any]] = []
        self.respawns = np.zeros(self.nshards, dtype=np.int64)
        self._ctx = _preferred_context()
        self._queue = None
        self._started = False
        self._workers_down = False
        self._down = False

    # --- lifecycle --------------------------------------------------------

    def start(self) -> "DistRuntime":
        """Create the segment, publish ranges, spawn every worker."""
        n = int(self.plan.partition.n)
        self.state = SharedState.create(n, self.nshards)
        if self.x0 is not None:
            self.state.x[:] = self.x0
        for s in range(self.nshards):
            self.state.set_range(s, *self.plan.block_range(s))
        self._queue = self._ctx.Queue()
        bounds = self.plan.partition.boundaries
        for s in range(self.nshards):
            self.specs[s] = WorkerSpec(
                shm_name=self.state.name,
                shard_id=s,
                A=self.A,
                b=self.b,
                boundaries=bounds,
                config=_shard_config(self.config, s),
                max_staleness=self.max_staleness,
                result_queue=self._queue,
            )
            self._spawn(s)
        self._started = True
        return self

    def _spawn(self, sid: int) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.specs[sid],),
            name=f"repro-dist-shard-{sid}",
            daemon=True,
        )
        proc.start()
        self.procs[sid] = proc

    def __enter__(self) -> "DistRuntime":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # --- outer progress ---------------------------------------------------

    def advance(self, it: int) -> None:
        """Publish target ``it + 1 + lead``; block until sweep ``it + 1``.

        "Until" means: every *live* shard's epoch counter has reached
        ``it + 1``.  While waiting, dead or silent shards that are behind
        are recovered per the configured policy.
        """
        state = self.state
        if self.fault_injector is not None:
            self.fault_injector(it, self)
        needed = it + 1
        state.publish_target(needed + self.lead)
        deadline = time.monotonic() + self.advance_timeout
        while True:
            live = state.live_shards()
            if len(live) == 0:
                raise RuntimeError("no live shards remain")
            if bool(np.all(state.epochs[live] >= needed)):
                return
            now = time.time()
            for sid in live:
                sid = int(sid)
                if state.epochs[sid] >= needed:
                    continue
                proc = self.procs[sid]
                dead = proc is not None and not proc.is_alive()
                hb = float(state.hb[sid])
                silent = hb > 0.0 and (now - hb) > self.heartbeat_timeout
                if dead or silent:
                    self._recover(sid, it, "died" if dead else "heartbeat-silent")
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"advance({it}) timed out after {self.advance_timeout:.0f}s "
                    f"(epochs={state.epochs.tolist()}, "
                    f"alive={state.alive.tolist()})"
                )
            time.sleep(1e-3)

    # --- recovery ---------------------------------------------------------

    def _recover(self, sid: int, it: int, cause: str) -> None:
        """React to shard *sid* failing during sweep ``it + 1``."""
        proc = self.procs[sid]
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(timeout=5.0)
        event: Dict[str, Any] = {
            "sweep": int(it),
            "shard": int(sid),
            "cause": cause,
            "action": self.recovery,
        }
        if self.recovery == "respawn":
            if self.respawns[sid] >= self.max_respawns:
                raise RuntimeError(
                    f"shard {sid} exceeded {self.max_respawns} respawns"
                )
            self.respawns[sid] += 1
            self._spawn(sid)
            event["respawn"] = int(self.respawns[sid])
        else:  # reassign
            absorber = self._reassign(sid)
            event["absorbed_by"] = int(absorber)
        self.recoveries.append(event)
        if self.recorder is not None:
            data = {k: v for k, v in event.items() if k != "sweep"}
            try:
                self.recorder.record_event(int(it), "shard-recovery", **data)
            except RuntimeError:  # pragma: no cover - no open run yet
                pass

    def _reassign(self, sid: int) -> int:
        """Fold *sid*'s block range into the adjacent live shard."""
        state = self.state
        state.alive[sid] = 0
        self.procs[sid] = None
        dlo, dhi = state.get_range(sid)
        for t in map(int, state.live_shards()):
            tlo, thi = state.get_range(t)
            if thi == dlo:
                state.set_range(t, tlo, dhi)
                return t
            if tlo == dhi:
                state.set_range(t, dlo, thi)
                return t
        raise RuntimeError(
            f"no live shard adjacent to shard {sid}'s blocks [{dlo}, {dhi})"
        )

    def kill_shard(self, sid: int) -> None:
        """Hard-kill shard *sid*'s process (test fault injection)."""
        proc = self.procs[sid]
        if proc is not None and proc.is_alive():
            proc.kill()

    # --- teardown ---------------------------------------------------------

    def _drain(self, timeout: float = 15.0) -> None:
        """Collect worker payloads; never join an undrained queue."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            workers_up = any(p is not None and p.is_alive() for p in self.procs)
            try:
                self.payloads.append(self._queue.get(timeout=0.1))
            except queue_mod.Empty:
                if not workers_up:
                    break
        while True:
            try:
                self.payloads.append(self._queue.get_nowait())
            except queue_mod.Empty:
                break

    def stop_workers(self) -> None:
        """Stop flag, drain payloads, join (terminate, then kill) workers.

        Leaves the segment mapped so the caller can still read the settled
        iterate; :meth:`shutdown` releases it.
        """
        if self._workers_down or not self._started:
            return
        self._workers_down = True
        self.state.request_stop()
        self._drain()
        for proc in self.procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate refused
                proc.kill()
                proc.join(timeout=5.0)
        self._queue.close()
        self._queue.join_thread()

    def shutdown(self) -> None:
        """Stop everything and release the segment (idempotent)."""
        if self._down:
            return
        self._down = True
        if self.state is None:
            return
        try:
            self.stop_workers()
        finally:
            self.state.close()
            self.state.unlink()

    # --- telemetry --------------------------------------------------------

    def shard_payloads(self) -> Dict[int, Dict[str, Any]]:
        """Latest non-error payload per shard id (errors kept as fallback)."""
        out: Dict[int, Dict[str, Any]] = {}
        for p in self.payloads:
            sid = int(p.get("shard", -1))
            if sid < 0:
                continue
            if "error" not in p or sid not in out:
                out[sid] = p
        return out
