"""The shared-memory state one distributed solve lives in.

One ``multiprocessing.shared_memory`` segment holds everything the driver
and the workers exchange:

========  =========  ===================================================
field     dtype      meaning
========  =========  ===================================================
header    int64[8]   ``[n, nshards, stop, target, ...reserved]``
x         float64[n] the outer iterate, in partition order
epochs    int64[S]   completed outer sweeps per shard
hb        float64[S] per-shard heartbeat (``time.time()`` wall clock)
alive     int64[S]   1 while the shard participates, 0 once reassigned
range_lo  int64[S]   current block range per shard (half-open) —
range_hi  int64[S]   re-read by workers each sweep, so the driver can
                     reassign a dead shard's blocks mid-solve
========  =========  ===================================================

The driver creates (and finally unlinks) the segment; workers attach.
Python 3.11's ``resource_tracker`` registers attached segments in the
*child* too and would unlink them at child exit (bpo-39959), destroying
the parent's mapping — so :meth:`SharedState.attach` unregisters the
segment from the attaching process's tracker; only the creator cleans up.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

__all__ = ["SharedState"]

_HEADER_SLOTS = 8
_IDX_N, _IDX_NSHARDS, _IDX_STOP, _IDX_TARGET = 0, 1, 2, 3


class SharedState:
    """Typed numpy views over one solve's shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, n: int, nshards: int, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = int(n)
        self.nshards = int(nshards)
        buf = shm.buf
        off = 0

        def carve(dtype, count):
            nonlocal off
            arr = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
            off += arr.nbytes
            return arr

        self.header = carve(np.int64, _HEADER_SLOTS)
        self.x = carve(np.float64, self.n)
        self.epochs = carve(np.int64, self.nshards)
        self.hb = carve(np.float64, self.nshards)
        self.alive = carve(np.int64, self.nshards)
        self.range_lo = carve(np.int64, self.nshards)
        self.range_hi = carve(np.int64, self.nshards)

    # --- lifecycle --------------------------------------------------------

    @staticmethod
    def _nbytes(n: int, nshards: int) -> int:
        return 8 * (_HEADER_SLOTS + n + 5 * nshards)

    @classmethod
    def create(cls, n: int, nshards: int) -> "SharedState":
        """Allocate a fresh segment (driver side) and zero every field."""
        name = f"repro-dist-{os.getpid()}-{os.urandom(4).hex()}"
        shm = shared_memory.SharedMemory(
            create=True, size=cls._nbytes(n, nshards), name=name
        )
        state = cls(shm, n, nshards, owner=True)
        state.header[:] = 0
        state.header[_IDX_N] = n
        state.header[_IDX_NSHARDS] = nshards
        state.x[:] = 0.0
        state.epochs[:] = 0
        state.hb[:] = 0.0
        state.alive[:] = 1
        state.range_lo[:] = 0
        state.range_hi[:] = 0
        return state

    @classmethod
    def attach(cls, name: str) -> "SharedState":
        """Map an existing segment (worker side) without adopting cleanup.

        Registration with the attaching process's ``resource_tracker`` is
        suppressed for the duration of the attach: before 3.13 there is no
        ``track=False``, and a tracked attach means either the first worker
        to exit unlinks the segment under everyone else (spawn,
        bpo-39959) or the worker's unregister corrupts the creator's own
        tracker entry (fork, shared tracker process).  Only the creator
        tracks — and unlinks — the segment.
        """
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        header = np.frombuffer(shm.buf, dtype=np.int64, count=_HEADER_SLOTS)
        return cls(shm, int(header[_IDX_N]), int(header[_IDX_NSHARDS]), owner=False)

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the numpy views die with it)."""
        # Release the buffer views before closing the mapping; an exported
        # pointer keeps SharedMemory.close() from unmapping on CPython.
        for attr in ("header", "x", "epochs", "hb", "alive", "range_lo", "range_hi"):
            if hasattr(self, attr):
                delattr(self, attr)
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    # --- typed accessors --------------------------------------------------

    @property
    def stop(self) -> bool:
        return bool(self.header[_IDX_STOP])

    def request_stop(self) -> None:
        self.header[_IDX_STOP] = 1

    @property
    def target(self) -> int:
        return int(self.header[_IDX_TARGET])

    def publish_target(self, target: int) -> None:
        self.header[_IDX_TARGET] = int(target)

    def live_shards(self) -> np.ndarray:
        """Indices of shards still participating."""
        return np.flatnonzero(self.alive != 0)

    def min_live_epoch(self) -> int:
        live = self.live_shards()
        return int(self.epochs[live].min()) if len(live) else 0

    def set_range(self, shard: int, blo: int, bhi: int) -> None:
        self.range_lo[shard] = int(blo)
        self.range_hi[shard] = int(bhi)

    def get_range(self, shard: int) -> tuple:
        return int(self.range_lo[shard]), int(self.range_hi[shard])
