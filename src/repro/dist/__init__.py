"""Multiprocess sharded block-asynchronous solving (two-stage multisplitting).

The paper's method tolerates stale off-block components by design — the
exact property that makes shared-nothing sharding viable.  This package
runs a solve across N worker *processes* in the outer-async/inner-sync
two-stage multisplitting shape (Brown et al., PAPERS.md):

* a :class:`ShardPlan` maps a :class:`repro.partition.Partition`'s blocks
  to shards through the shared placement helper
  (:func:`repro.partition.contiguous_placement` — the same splitter the
  simulated multi-GPU layer uses);
* each worker process owns a contiguous row range, compiles its local
  :class:`repro.perf.SweepPlan` and runs inner sweeps through the
  ordinary fused/reference backend dispatch of
  :class:`repro.core.AsyncEngine`;
* the outer iterate lives in one ``multiprocessing.shared_memory``
  segment, with per-shard epoch counters: workers exchange halo
  (cross-shard) components asynchronously, with the epoch skew between
  shards *measured* and capped by a configurable bound;
* :class:`DistAsyncSolver` drives the whole thing through the unified
  :class:`repro.runtime.RunLoop` and rolls the per-shard
  :class:`repro.runtime.RunRecorder` runs into one ``repro.dist/v1``
  telemetry document.

With ``shards=1`` the pipeline degenerates to a strict lock-step with
the driver and is bitwise-identical to
:class:`repro.core.BlockAsyncSolver` — same iterates, same residual
history, same telemetry residuals — which the test suite asserts.
A killed or stalled shard is detected via its heartbeat/epoch stall and
either re-spawned or its block range reassigned to a neighbour
mid-solve (``recovery="respawn"`` / ``"reassign"``).
"""

from .plan import ShardPlan, make_shard_plan
from .runtime import DIST_SCHEMA, DistRuntime
from .solver import DistAsyncSolver

__all__ = [
    "DIST_SCHEMA",
    "DistAsyncSolver",
    "DistRuntime",
    "ShardPlan",
    "make_shard_plan",
]
