"""Run-ensemble driver for the §4.1 non-determinism experiment.

Runs the same solver configuration many times, varying only the seed — the
software analogue of re-launching the same CUDA binary and letting the
hardware scheduler pick a different interleaving each time — and aggregates
the residual histories into :class:`repro.stats.EnsembleStats`.

Two execution paths produce bitwise-identical statistics:

* **batched** (default for config-driven ensembles) — the R replica
  iterates are stacked as an ``(R, n)`` multi-vector and advanced together
  by :class:`repro.core.BatchedAsyncEngine`: the block decomposition is
  built once instead of R times, and every sweep runs a handful of
  multi-vector kernels instead of R scalar solves;
* **sequential** (fallback) — one :class:`repro.core.BlockAsyncSolver`
  solve per seed.  Used automatically whenever a custom *factory* is given
  (the factory may configure faults, custom stopping rules, or an entirely
  different solver — none of which the batched engine models).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.block_async import BlockAsyncSolver
from ..core.engine import BatchedAsyncEngine
from ..core.schedules import AsyncConfig
from ..partition import make_partition
from ..runtime.recorder import RunRecorder
from ..solvers.base import SolveResult, StoppingCriterion
from ..sparse import BlockRowView, CSRMatrix
from .runstats import EnsembleStats

__all__ = ["run_ensemble"]

#: A factory mapping a seed to a configured solver.
SolverFactory = Callable[[int], BlockAsyncSolver]


def _pad_history(h: np.ndarray, iterations: int) -> np.ndarray:
    """Align one run's history to the fixed ensemble length.

    Runs may legitimately stop early — an exact-zero residual satisfies
    even ``tol=0``, and divergence aborts the loop — in which case the
    final value is held; a history *longer* than ``iterations + 1`` means
    the solver ignored the requested iteration budget and aggregating it
    would silently misalign every checkpoint, so it is an error.
    """
    if len(h) > iterations + 1:
        raise ValueError(
            f"history has {len(h) - 1} iterations, more than the requested "
            f"{iterations}; the solver ignored the ensemble's maxiter "
            "(factories must respect the stopping rule run_ensemble installs)"
        )
    if len(h) < iterations + 1:
        h = np.concatenate([h, np.full(iterations + 1 - len(h), h[-1])])
    return h


def _batched_histories(
    A: CSRMatrix,
    b: np.ndarray,
    nruns: int,
    iterations: int,
    config: AsyncConfig,
    seed0: int,
    relative: bool,
    recorder: Optional[RunRecorder] = None,
) -> List[np.ndarray]:
    """All R residual histories from one multi-vector solve.

    Reproduces, bitwise, the histories of R sequential
    :class:`BlockAsyncSolver` solves with seeds ``seed0 .. seed0+R-1`` and
    stopping ``tol=0, maxiter=iterations``: same sweeps (the engine's
    exactness contract), same residual evaluations (multi-vector SpMV is
    bitwise identical per row; norms are taken per replica row), same
    early-exit rules (exact zero → converged, non-finite/huge → diverged).
    The loop itself is :meth:`repro.runtime.RunLoop.run_batched`, driven
    through :meth:`repro.core.BatchedAsyncEngine.run`.

    ``config.partition`` selects the decomposition; permuting strategies
    advance the permuted system (histories in partition order, scaled by
    the permuted right-hand side's norm), matching the sequential path.
    """
    part = make_partition(A, config.partition, block_size=config.block_size)
    view = BlockRowView(A, partition=part)
    bp = view.permute_vector(b)
    engine = BatchedAsyncEngine(view, bp, config, nruns, seed0=seed0)
    outcome = engine.run(
        stopping=StoppingCriterion(tol=0.0, maxiter=iterations), recorder=recorder
    )
    b_norm = float(np.linalg.norm(bp))
    out = []
    for h in outcome.histories:
        if relative and b_norm > 0:
            h = h / b_norm
        out.append(_pad_history(h, iterations))
    return out


def run_ensemble(
    A: CSRMatrix,
    b: np.ndarray,
    nruns: int,
    iterations: int,
    *,
    factory: Optional[SolverFactory] = None,
    config: Optional[AsyncConfig] = None,
    checkpoints: Sequence[int] = (),
    relative: bool = True,
    seed0: int = 0,
    batched: Optional[bool] = None,
    recorder: Optional[RunRecorder] = None,
) -> EnsembleStats:
    """Run *nruns* fixed-length solves and aggregate their histories.

    **Fixed-length-history contract**: every run contributes a history of
    exactly ``iterations + 1`` residuals (the initial residual plus one per
    global iteration).  Config-driven runs are executed with ``tol=0`` so
    they never stop early; factory-built solvers keep their own tolerance
    and divergence limit but have their ``maxiter`` capped at *iterations*,
    and any run that stops early (exact-zero residual, factory tolerance
    met, divergence) is padded by holding its final value.  A history
    *longer* than the contract raises :class:`ValueError`.

    Parameters
    ----------
    A, b:
        The system.
    nruns:
        Ensemble size (the paper uses 1000; the benchmarks default lower
        and scale up via ``REPRO_RUNS``).
    iterations:
        Global iterations per run.
    factory:
        Seed → solver mapping; defaults to :class:`BlockAsyncSolver` with
        *config* (which then must be given) re-seeded per run.  The
        factory's stopping rule is preserved except for ``maxiter``.
    checkpoints:
        Iteration indices to aggregate at (default: all).
    relative:
        Aggregate relative residuals (``||r||/||b||``, as the paper plots)
        instead of absolute ones.
    seed0:
        First seed; runs use ``seed0, seed0+1, ...``.
    batched:
        Execution path.  ``None`` (default) picks the batched multi-vector
        engine for config-driven ensembles and the sequential per-seed
        loop whenever *factory* is given — custom factories may install
        faults or non-default solvers the batched engine does not model.
        ``True`` forces the batched path (an error with *factory*);
        ``False`` forces the sequential path.  Both paths are bitwise
        identical for config-driven ensembles.
    recorder:
        Optional :class:`repro.runtime.RunRecorder` telemetry sink.  The
        batched path records one run covering all replicas; the sequential
        path attaches the recorder to each solver that has none (one run
        per seed).
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if factory is None and config is None:
        raise ValueError("pass either factory or config")
    if batched is None:
        batched = factory is None
    if batched:
        if factory is not None:
            raise ValueError(
                "batched=True requires a config-driven ensemble; custom "
                "factories (faults, custom solvers) run sequentially"
            )
        histories = _batched_histories(
            A, b, nruns, iterations, config, seed0, relative, recorder
        )
        return EnsembleStats.from_histories(histories, checkpoints)

    if factory is None:
        base = config
        stopping = StoppingCriterion(tol=0.0, maxiter=iterations)

        def factory(seed: int) -> BlockAsyncSolver:
            return BlockAsyncSolver(
                dataclasses.replace(base, seed=seed), stopping=stopping
            )

    histories = []
    for r in range(nruns):
        solver = factory(seed0 + r)
        # Cap the iteration budget but keep the factory's tolerance and
        # divergence limit — clobbering the whole rule silently discarded
        # deliberately configured stopping behaviour.
        if solver.stopping.maxiter != iterations:
            solver.stopping = dataclasses.replace(solver.stopping, maxiter=iterations)
        if recorder is not None and getattr(solver, "recorder", None) is None:
            solver.recorder = recorder
        result: SolveResult = solver.solve(A, b)
        h = result.relative_residuals() if relative else result.residuals
        histories.append(_pad_history(h, iterations))
    return EnsembleStats.from_histories(histories, checkpoints)
