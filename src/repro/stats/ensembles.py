"""Run-ensemble driver for the §4.1 non-determinism experiment.

Runs the same solver configuration many times, varying only the seed — the
software analogue of re-launching the same CUDA binary and letting the
hardware scheduler pick a different interleaving each time — and aggregates
the residual histories into :class:`repro.stats.EnsembleStats`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.block_async import BlockAsyncSolver
from ..core.schedules import AsyncConfig
from ..solvers.base import SolveResult, StoppingCriterion
from ..sparse import CSRMatrix
from .runstats import EnsembleStats

__all__ = ["run_ensemble"]

#: A factory mapping a seed to a configured solver.
SolverFactory = Callable[[int], BlockAsyncSolver]


def run_ensemble(
    A: CSRMatrix,
    b: np.ndarray,
    nruns: int,
    iterations: int,
    *,
    factory: Optional[SolverFactory] = None,
    config: Optional[AsyncConfig] = None,
    checkpoints: Sequence[int] = (),
    relative: bool = True,
    seed0: int = 0,
) -> EnsembleStats:
    """Run *nruns* fixed-length solves and aggregate their histories.

    Parameters
    ----------
    A, b:
        The system.
    nruns:
        Ensemble size (the paper uses 1000; the benchmarks default lower
        and scale up via ``REPRO_RUNS``).
    iterations:
        Global iterations per run (tolerance is disabled so every history
        has the same length).
    factory:
        Seed → solver mapping; defaults to :class:`BlockAsyncSolver` with
        *config* (which then must be given) re-seeded per run.
    checkpoints:
        Iteration indices to aggregate at (default: all).
    relative:
        Aggregate relative residuals (``||r||/||b||``, as the paper plots)
        instead of absolute ones.
    seed0:
        First seed; runs use ``seed0, seed0+1, ...``.
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if factory is None:
        if config is None:
            raise ValueError("pass either factory or config")

        import dataclasses

        base = config

        def factory(seed: int) -> BlockAsyncSolver:
            return BlockAsyncSolver(dataclasses.replace(base, seed=seed))

    stopping = StoppingCriterion(tol=0.0, maxiter=iterations)
    histories = []
    for r in range(nruns):
        solver = factory(seed0 + r)
        solver.stopping = stopping
        result: SolveResult = solver.solve(A, b)
        h = result.relative_residuals() if relative else result.residuals
        if len(h) < iterations + 1:
            # The run hit an exact-zero residual early (tol=0 satisfied);
            # pad with the final value so histories stay aligned.
            h = np.concatenate([h, np.full(iterations + 1 - len(h), h[-1])])
        histories.append(h)
    return EnsembleStats.from_histories(histories, checkpoints)
