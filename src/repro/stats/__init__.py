"""Ensemble statistics for the non-determinism study (paper §4.1).

Asynchronous runs are not deterministic: each hardware schedule produces a
different approximation sequence.  The paper quantifies this over 1000
solver runs (its Tables 2/3 and Figure 5); this subpackage provides the
run-ensemble driver and the statistics it reports — mean/min/max residuals,
absolute and relative variation, variance, standard deviation and standard
error, all per global-iteration checkpoint.
"""

from .runstats import EnsembleStats
from .ensembles import run_ensemble

__all__ = ["EnsembleStats", "run_ensemble"]
