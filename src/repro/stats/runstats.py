"""Per-checkpoint statistics over an ensemble of residual histories.

Matches the columns of the paper's Tables 2 and 3 exactly:

    averg. res. | max. res. | min. res. | abs. var. | rel. var.
    variance | standard deviation | standard error

computed at each global-iteration checkpoint across all runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["EnsembleStats"]


@dataclass
class EnsembleStats:
    """Statistics of *nruns* residual histories at common checkpoints.

    Attributes
    ----------
    checkpoints:
        Global-iteration indices the statistics refer to.
    mean / max / min:
        Residual statistics across runs, per checkpoint.
    nruns:
        Ensemble size.
    """

    checkpoints: np.ndarray
    mean: np.ndarray
    max: np.ndarray
    min: np.ndarray
    variance: np.ndarray
    nruns: int

    @classmethod
    def from_histories(
        cls,
        histories: Sequence[np.ndarray],
        checkpoints: Sequence[int] = (),
    ) -> "EnsembleStats":
        """Aggregate equal-length residual histories.

        ``histories[r][k]`` is run *r*'s residual after *k* global
        iterations.  *checkpoints* defaults to every iteration.  Histories
        must have equal length — run the ensemble with a fixed iteration
        budget (tolerance 0), as the paper's experiment does.
        """
        if not histories:
            raise ValueError("need at least one history")
        lengths = {len(h) for h in histories}
        if len(lengths) != 1:
            raise ValueError(f"histories have differing lengths: {sorted(lengths)}")
        data = np.asarray(histories, dtype=np.float64)  # (nruns, niters+1)
        niters = data.shape[1] - 1
        cps = np.arange(niters + 1) if len(checkpoints) == 0 else np.asarray(checkpoints, dtype=np.int64)
        if len(cps) and (cps.min() < 0 or cps.max() > niters):
            raise ValueError("checkpoint out of range")
        at = data[:, cps]
        # ddof=1 sample statistics, matching the paper's tables (which list
        # variance, standard deviation and standard error separately).
        variance = at.var(axis=0, ddof=1) if data.shape[0] > 1 else np.zeros(len(cps))
        return cls(
            checkpoints=cps,
            mean=at.mean(axis=0),
            max=at.max(axis=0),
            min=at.min(axis=0),
            variance=variance,
            nruns=data.shape[0],
        )

    # ------------------------------------------------------------------ #

    @property
    def abs_variation(self) -> np.ndarray:
        """Difference between largest and smallest residual (Tables 2/3)."""
        return self.max - self.min

    @property
    def rel_variation(self) -> np.ndarray:
        """(largest − smallest) / average residual (Figure 5e/5f)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(self.mean > 0, self.abs_variation / self.mean, 0.0)
        return out

    @property
    def std(self) -> np.ndarray:
        """Sample standard deviation across runs."""
        return np.sqrt(self.variance)

    @property
    def stderr(self) -> np.ndarray:
        """Standard error of the ensemble mean."""
        return self.std / np.sqrt(self.nruns)

    def variation_growth(self, *, floor: float = 1e-14) -> float:
        """Linear-fit slope of relative variation vs iteration.

        The paper's Figure 5f observation is that relative variation grows
        (roughly linearly) with the iteration count when the recurring
        schedule pattern keeps amplifying its bias; this quantifies that
        with a least-squares slope over the pre-floor checkpoints
        (per-iteration change of the relative variation).
        """
        keep = self.mean > floor
        if keep.sum() < 2:
            return 0.0
        x = self.checkpoints[keep].astype(float)
        y = self.rel_variation[keep]
        return float(np.polyfit(x, y, 1)[0])

    def rows(self) -> List[List[float]]:
        """Table rows in the paper's column order (for report rendering)."""
        return [
            [
                int(c),
                float(m),
                float(mx),
                float(mn),
                float(av),
                float(rv),
                float(v),
                float(s),
                float(se),
            ]
            for c, m, mx, mn, av, rv, v, s, se in zip(
                self.checkpoints,
                self.mean,
                self.max,
                self.min,
                self.abs_variation,
                self.rel_variation,
                self.variance,
                self.std,
                self.stderr,
            )
        ]
