"""Small shared helpers used across the :mod:`repro` package.

Everything here is deliberately dependency-light: only :mod:`numpy` is used.
The helpers enforce the package-wide conventions:

* all floating data is ``float64`` C-contiguous,
* all index data is ``int64``,
* randomness is always funnelled through :func:`as_rng` so every stochastic
  component is reproducible from an explicit seed.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "as_rng",
    "as_float_array",
    "as_index_array",
    "check_square",
    "check_vector",
    "RNGLike",
]

#: Anything acceptable as a seed / generator argument.
RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` gives a fresh nondeterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` gives a reproducible one; an existing
    generator is passed through unchanged (so callers can share state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_float_array(x: Iterable, name: str = "array", *, copy: bool = False) -> np.ndarray:
    """Coerce *x* to a contiguous 1-D or 2-D ``float64`` array."""
    arr = np.array(x, dtype=np.float64, copy=copy, order="C") if copy else np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim not in (1, 2):
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    return arr


def as_index_array(x: Iterable, name: str = "index array") -> np.ndarray:
    """Coerce *x* to a contiguous 1-D ``int64`` array."""
    arr = np.ascontiguousarray(x, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got ndim={arr.ndim}")
    return arr


def check_square(shape: Sequence[int], what: str = "matrix") -> int:
    """Validate a square shape tuple and return its dimension."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{what} must be square, got shape {tuple(shape)}")
    return int(shape[0])


def check_vector(x: np.ndarray, n: int, name: str = "vector") -> np.ndarray:
    """Validate that *x* is a length-*n* 1-D float vector; return it as float64."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
    return arr


def cumulative_segments(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum turning per-segment *counts* into CSR-style offsets."""
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out
