"""Experiment registry: paper artifact id → runner.

``run_experiment("F9")`` regenerates Figure 9; ids are the paper's table
and figure numbers (``T`` = table, ``F`` = figure, ``X`` = extension).
Aliases map grouped artifacts (T2/T3/F5 share one ensemble study; F10/T6
share one fault study) to their shared runner.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .report import ExperimentResult

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "supports_batched",
    "supports_telemetry",
]

Runner = Callable[[bool], ExperimentResult]


@dataclass(frozen=True)
class Experiment:
    """Registry entry for one paper artifact."""

    id: str
    title: str
    runner: Runner


def _build() -> Dict[str, Experiment]:
    from . import (
        exp_ablations,
        exp_dist,
        exp_extensions,
        exp_fault,
        exp_fig1,
        exp_fig6,
        exp_fig7,
        exp_fig8,
        exp_fig9,
        exp_fig11,
        exp_krylov,
        exp_ras,
        exp_stencil,
        exp_table1,
        exp_table4,
        exp_threaded,
        exp_table5,
        exp_variation,
    )

    entries = [
        Experiment("T1", "Table 1: test-matrix characteristics", exp_table1.run),
        Experiment("F1", "Figure 1: sparsity structure", exp_fig1.run),
        Experiment("T2", "Tables 2/3 + Figure 5: non-determinism study", exp_variation.run),
        Experiment("F6", "Figure 6: GS / Jacobi / async-(1) convergence", exp_fig6.run),
        Experiment("F7", "Figure 7: async-(5) vs Gauss-Seidel", exp_fig7.run),
        Experiment("T4", "Table 4: local-iteration overhead", exp_table4.run),
        Experiment("T5", "Table 5: average iteration timings", exp_table5.run),
        Experiment("F8", "Figure 8: average time per iteration", exp_fig8.run),
        Experiment("F9", "Figure 9: residual vs runtime", exp_fig9.run),
        Experiment("F10", "Figure 10 + Table 6: fault tolerance", exp_fault.run),
        Experiment("F11", "Figure 11: multi-GPU strategies", exp_fig11.run),
        Experiment("X1", "Extension: multigrid smoothing", exp_extensions.run_x1),
        Experiment("X2", "Extension: async-preconditioned CG", exp_extensions.run_x2),
        Experiment("X3", "Extension: RCM reordering", exp_extensions.run_x3),
        Experiment("X4", "Extension: silent-error detection", exp_extensions.run_x4),
        Experiment("X5", "Extension: seeded model vs real threads", exp_threaded.run),
        Experiment("X6", "Extension: multiprocess sharding scaling", exp_dist.run),
        Experiment("X7", "Extension: matrix-free stencil backend", exp_stencil.run),
        Experiment("X8", "Extension: asynchronous restricted additive Schwarz", exp_ras.run),
        Experiment("X9", "Extension: krylov preconditioning layer", exp_krylov.run),
        Experiment("A1", "Ablations: staleness / block size / order / sync-vs-async", exp_ablations.run),
    ]
    reg = {e.id: e for e in entries}
    # Grouped-artifact aliases.
    reg["T3"] = reg["T2"]
    reg["F5"] = reg["T2"]
    reg["T6"] = reg["F10"]
    for alias in ("A2", "A3", "A4", "A5"):
        reg[alias] = reg["A1"]
    return reg


EXPERIMENTS: Dict[str, Experiment] = _build()


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by paper artifact id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; options: {sorted(set(EXPERIMENTS))}")
    return EXPERIMENTS[key]


def supports_batched(experiment: Experiment) -> bool:
    """Whether the experiment's runner takes a ``batched`` keyword."""
    return "batched" in inspect.signature(experiment.runner).parameters


def supports_telemetry(experiment: Experiment) -> bool:
    """Whether the experiment's runner takes a ``telemetry_path`` keyword."""
    return "telemetry_path" in inspect.signature(experiment.runner).parameters


def run_experiment(
    experiment_id: str,
    *,
    quick: bool = True,
    batched: Optional[bool] = None,
    telemetry_path: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment and return its result.

    *batched* selects the ensemble execution path (``--batched`` /
    ``--no-batched`` on the CLI) for the experiments that run replica
    ensembles or async convergence histories; ``None`` keeps each
    experiment's default.  *telemetry_path* asks the experiment to write
    its :class:`repro.runtime.RunRecorder` JSON there.  Passing an
    explicit value to an experiment without the corresponding capability
    is an error, not a silent no-op.
    """
    exp = get_experiment(experiment_id)
    kwargs = {}
    if batched is not None:
        if not supports_batched(exp):
            raise ValueError(
                f"experiment {exp.id} has no batched/sequential execution choice"
            )
        kwargs["batched"] = batched
    if telemetry_path is not None:
        if not supports_telemetry(exp):
            raise ValueError(f"experiment {exp.id} does not emit run telemetry")
        kwargs["telemetry_path"] = telemetry_path
    return exp.runner(quick, **kwargs)
