"""A1–A4 — ablations of the design choices behind async-(k).

The paper fixes its parameters "through empirically based tuning" (§3.2);
these ablations quantify each choice on fv1 (the representative
diagonally-dominant system):

* **A1 — staleness**: convergence versus the stale-read probability, from
  fully fresh (γ = 1: block Gauss-Seidel in schedule order) to fully stale
  (γ = 0: block Jacobi).  Locates the GPU's operating point between the
  classical methods.
* **A2 — block size**: iterations and off-block mass versus subdomain size
  (§4.1's closing recommendation: larger blocks capture more coupling).
* **A3 — schedule order**: synchronous / sequential / random / gpu at
  fixed k, isolating what the *order* itself contributes.
* **A4 — synchronous vs asynchronous two-stage**: async-(k) against the
  classical block-Jacobi / two-stage methods with identical blocks and
  inner sweeps (the paper's reference [5]) — what does chaotifying the
  outer loop buy or cost?
* **A5 — partition balancing**: equal-rows vs equal-work (nnz) block
  boundaries on Trefethen_2000, whose logarithmically varying row costs
  are the §4.1 skew source; work balancing levels thread-block finish
  times at no convergence cost.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core import BlockAsyncSolver
from ..matrices import default_rhs, get_matrix
from ..solvers import BlockJacobiSolver, StoppingCriterion
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact
from .runner import iterations_to_tolerance, paper_async_config

__all__ = ["run"]

_TOL = 1e-10
_MAXITER = 600


def _iters(solver, A, b):
    # Stop just past the reporting tolerance so runs end early.
    solver.stopping = StoppingCriterion(tol=_TOL / 10.0, maxiter=_MAXITER)
    r = solver.solve(A, b)
    it = iterations_to_tolerance(r, _TOL)
    return it if it is not None else f">{_MAXITER}"


def run(quick: bool = True) -> ExperimentResult:
    """Run the ablations (A1-A4 on fv1, A5 on Trefethen_2000)."""
    A = get_matrix("fv1")
    b = default_rhs(A)
    tables = []

    # A1 — staleness sweep at fixed order/blocks.
    rows = []
    for stale in (1.0, 0.95, 0.8, 0.5, 0.2, 0.0):
        cfg = dataclasses.replace(paper_async_config(5, seed=1), stale_read_prob=stale)
        rows.append([stale, _iters(BlockAsyncSolver(cfg), A, b)])
    tables.append(
        TableArtifact(
            title=f"A1: staleness vs convergence (fv1, async-(5), block 448, iters to {_TOL:g})",
            headers=["stale-read probability", "iterations"],
            rows=rows,
        )
    )

    # A2 — block-size sweep.
    rows = []
    for bs in (64, 128, 256, 448, 896):
        view = BlockRowView(A, block_size=bs)
        cfg = paper_async_config(5, block_size=bs, seed=1)
        rows.append([bs, view.off_block_fraction(), _iters(BlockAsyncSolver(cfg), A, b)])
    tables.append(
        TableArtifact(
            title="A2: block size vs off-block mass and convergence (fv1, async-(5))",
            headers=["block size", "off-block mass", "iterations"],
            rows=rows,
        )
    )

    # A3 — schedule order at fixed everything else.
    rows = []
    for order in ("synchronous", "sequential", "random", "gpu"):
        cfg = dataclasses.replace(paper_async_config(5, seed=1), order=order)
        rows.append([order, _iters(BlockAsyncSolver(cfg), A, b)])
    tables.append(
        TableArtifact(
            title="A3: schedule order vs convergence (fv1, async-(5), block 448)",
            headers=["order", "iterations"],
            rows=rows,
        )
    )

    # A4 — async-(k) vs the synchronous two-stage family.
    rows = []
    for label, solver in (
        ("async-(5), gpu schedule", BlockAsyncSolver(paper_async_config(5, seed=1))),
        (
            "two-stage block-Jacobi (q=5)",
            BlockJacobiSolver(block_size=448, inner="jacobi", inner_sweeps=5),
        ),
        ("block-Jacobi (exact solves)", BlockJacobiSolver(block_size=448, inner="exact")),
    ):
        rows.append([label, _iters(solver, A, b)])
    tables.append(
        TableArtifact(
            title="A4: asynchronous vs synchronous two-stage methods (fv1, block 448)",
            headers=["method", "iterations"],
            rows=rows,
        )
    )

    # A5 — row-balanced vs work-balanced partitions on Trefethen_2000,
    # selected through the partition-strategy registry.
    from ..partition import make_partition

    T = get_matrix("Trefethen_2000")
    bt = default_rhs(T)
    rows = []
    for label, spec in (
        ("equal rows (125/block)", "uniform:125"),
        ("equal work (16 blocks)", "work_balanced:16"),
    ):
        view = BlockRowView(T, partition=make_partition(T, spec))
        work = [blk.local_off.nnz + blk.external.nnz + blk.nrows for blk in view.blocks]
        from ..core.engine import AsyncEngine

        engine = AsyncEngine(view, bt, paper_async_config(5, block_size=128, seed=1))
        result = engine.run(stopping=StoppingCriterion(tol=_TOL, maxiter=199))
        it = result.iterations if result.converged else ">200"
        rows.append([label, max(work) / min(work), it])
    tables.append(
        TableArtifact(
            title="A5: partition balancing on Trefethen_2000 (async-(5))",
            headers=["partition", "work imbalance (max/min)", "iters to 1e-10"],
            rows=rows,
        )
    )

    notes = [
        "A1: fresher reads monotonically improve per-iteration convergence "
        "(block GS limit); the GPU operating point sits near the stale end.",
        "A2: larger blocks capture more coupling mass and converge faster — "
        "the paper's §4.1 recommendation, quantified.",
        "A4: the synchronous two-stage method with the same q is the "
        "zero-asynchronism reference; exact block solves bound what local "
        "work can ever achieve.",
        "A5: work balancing cuts the per-block cost spread (the §4.1 skew "
        "source) without changing convergence.",
    ]
    return ExperimentResult("A1-A5", "Design-choice ablations", tables, {}, notes)
