"""F9 — Figure 9: relative residual versus (modelled) solver runtime.

The paper's performance headline: per-iteration convergence (Figs. 6/7)
combined with per-iteration cost (Table 5) gives residual-vs-wall-clock
curves.  Shapes to reproduce per matrix (§4.4):

* fv1/fv3 — async-(5) ≈ 2× faster than Jacobi (in time), both orders of
  magnitude faster than CPU Gauss-Seidel; CG fastest (≈ 1/3 ahead on fv1,
  far ahead on ill-conditioned fv3);
* Chem97ZtZ — Jacobi ≈ async-(5) ≈ CG, all well ahead of Gauss-Seidel;
* Trefethen_2000 — async-(5) beats CG and Jacobi at every accuracy and
  beats Gauss-Seidel beyond small iteration counts (kernel-call overhead).

Each method's history comes from an actual solver run; iteration indices
are mapped to seconds by the Table 5-calibrated model plus the setup model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import BlockAsyncSolver
from ..gpu.timing import IterationCostModel, SetupCostModel
from ..matrices import default_rhs, get_matrix
from ..solvers import ConjugateGradientSolver, GaussSeidelSolver, JacobiSolver, StoppingCriterion
from .report import ExperimentResult, TableArtifact
from .runner import paper_async_config

__all__ = ["run"]

_MATRICES = ("Chem97ZtZ", "fv1", "fv3", "Trefethen_2000")
_ACCURACY = 1e-10  #: accuracy level for the time-to-accuracy summary

#: Modelled one-off GPU setup for Figure 9 (smaller than Fig. 8's: the
#: paper's Fig. 9 runs amortise context creation across solvers; what
#: remains is allocation + transfer, visible only for Trefethen_2000).
_FIG9_SETUP_BASE_S = 0.02


def _method_time(model, setup, method, name, iters, k=5):
    per = model.per_iteration(method, name, local_iterations=k)
    t = per * np.arange(iters + 1, dtype=float)
    if method != "gauss-seidel":
        from ..matrices import PAPER_TABLE1

        info = PAPER_TABLE1[name]
        t += setup.setup_time(info.n, info.nnz)
    return t


def run(quick: bool = True) -> ExperimentResult:
    """Generate the four Figure 9 panels and a time-to-accuracy summary."""
    model = IterationCostModel()
    setup = SetupCostModel(base_s=_FIG9_SETUP_BASE_S)
    tables = []
    series = {}
    summary = []
    maxiter = {"Chem97ZtZ": 400, "fv1": 600, "fv3": 2500 if quick else 25000, "Trefethen_2000": 200}
    cg_maxiter = {"Chem97ZtZ": 400, "fv1": 2500, "fv3": 4000, "Trefethen_2000": 400}
    for name in _MATRICES:
        A = get_matrix(name)
        b = default_rhs(A)
        runs = {
            "Gauss-Seidel": (GaussSeidelSolver(), "gauss-seidel", maxiter[name]),
            "Jacobi": (JacobiSolver(), "jacobi", maxiter[name]),
            "async-(5)": (BlockAsyncSolver(paper_async_config(5, seed=1)), "async", maxiter[name]),
            "CG": (ConjugateGradientSolver(), "cg", cg_maxiter[name]),
        }
        panel: Dict[str, np.ndarray] = {}
        row = [name]
        for label, (solver, method, iters) in runs.items():
            solver.stopping = StoppingCriterion(tol=1e-15, maxiter=iters)
            result = solver.solve(A, b)
            rel = result.relative_residuals()
            t = _method_time(model, setup, method, name, len(rel) - 1)
            panel[f"{label}:t"] = t
            panel[f"{label}:res"] = rel
            hit = np.flatnonzero(rel <= _ACCURACY)
            row.append(float(t[hit[0]]) if len(hit) else None)
        series[f"fig9_{name}"] = panel
        # Render each panel as time-to-accuracy milestones.
        milestones = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12]
        rows = []
        for m in milestones:
            r = [m]
            for label in runs:
                rel = panel[f"{label}:res"]
                t = panel[f"{label}:t"]
                hit = np.flatnonzero(rel <= m)
                r.append(float(t[hit[0]]) if len(hit) else None)
            rows.append(r)
        tables.append(
            TableArtifact(
                title=f"Figure 9 ({name}): modelled seconds to reach relative residual",
                headers=["accuracy"] + list(runs),
                rows=rows,
            )
        )
        summary.append(row)
    tables.insert(
        0,
        TableArtifact(
            title=f"Figure 9 summary: modelled seconds to relative residual {_ACCURACY:g} ('-' = not reached)",
            headers=["matrix", "Gauss-Seidel", "Jacobi", "async-(5)", "CG"],
            rows=summary,
        ),
    )
    notes = [
        "Times are modelled (Table 5 calibration + setup model) applied to "
        "this implementation's actual residual histories; '-' marks targets "
        "not reached within the iteration budget.",
    ]
    return ExperimentResult("F9", "Residual vs runtime", tables, series, notes)
