"""Shared experiment plumbing.

Centralises the configuration choices the paper's experiments share — the
Fermi-occupancy-derived concurrency, the paper's block sizes, iteration
budgets per matrix — so every ``exp_*`` module reads the same way.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..core.schedules import AsyncConfig
from ..gpu.device import FERMI_C2070, occupancy
from ..solvers.base import SolveResult

__all__ = [
    "is_full_mode",
    "ensemble_runs",
    "paper_async_config",
    "iterations_to_tolerance",
    "FIG6_ITERS",
    "PAPER_BLOCK_SIZE",
    "VARIATION_BLOCK_SIZE",
]

#: §3.2: production thread-block size used for the convergence/performance
#: experiments (Figs. 6-9).
PAPER_BLOCK_SIZE = 448

#: §4.1: the moderate block size used for the non-determinism study.
VARIATION_BLOCK_SIZE = 128

#: Iteration budgets of the Fig. 6/7 convergence plots (x-axis extents).
FIG6_ITERS: Dict[str, int] = {
    "Chem97ZtZ": 200,
    "fv1": 200,
    "fv2": 200,
    "fv3": 25000,
    "s1rmt3m1": 200,
    "Trefethen_2000": 200,
}


def is_full_mode() -> bool:
    """Whether paper-scale parameters were requested (``REPRO_FULL=1``)."""
    return os.environ.get("REPRO_FULL", "") == "1"


def ensemble_runs(quick: bool) -> int:
    """Ensemble size for the §4.1 study.

    The paper uses 1000 runs; quick mode defaults to 50 (enough for stable
    min/max envelopes), overridable via ``REPRO_RUNS``.
    """
    env = os.environ.get("REPRO_RUNS")
    if env:
        return max(2, int(env))
    return 50 if quick else 1000


def paper_async_config(
    local_iterations: int,
    *,
    block_size: int = PAPER_BLOCK_SIZE,
    seed: int = 0,
    omega: float = 1.0,
    backend: str = "auto",
    partition: str = "uniform",
    schwarz: str = "none",
    residual_every: int = 1,
) -> AsyncConfig:
    """The experiment-standard async-(k) configuration.

    Concurrency comes from the Fermi C2070 occupancy at the given thread
    block size, as on the paper's hardware.  *backend* selects the sweep
    execution strategy (:data:`repro.core.schedules.BACKENDS`) — a timing
    knob only, never a change in iterates.  *partition* selects the
    row-block decomposition strategy (``strategy[:param][+oK]``, see
    :mod:`repro.partition.strategies`; the default ``"uniform"`` is the
    paper's CUDA-grid cut).  *schwarz* selects the restricted-Schwarz
    mode run on ``+oK`` overlapped partitions
    (:data:`repro.core.schedules.SCHWARZ_MODES`).  *residual_every* sets the full-residual
    recording cadence (paper figures use 1; see
    :class:`repro.runtime.RunLoop`).
    """
    return AsyncConfig(
        local_iterations=local_iterations,
        block_size=block_size,
        order="gpu",
        concurrency=occupancy(FERMI_C2070, block_size),
        seed=seed,
        omega=omega,
        backend=backend,
        partition=partition,
        schwarz=schwarz,
        residual_every=residual_every,
    )


def pad_history(h: np.ndarray, length: int) -> np.ndarray:
    """Pad a residual history to *length* points by repeating the last value.

    Fixed-iteration runs can still stop early when the residual hits exact
    zero; padding keeps ensemble/plot arrays aligned.
    """
    if len(h) >= length:
        return h[:length]
    return np.concatenate([h, np.full(length - len(h), h[-1])])


def iterations_to_tolerance(result: SolveResult, tol: float) -> Optional[int]:
    """First global iteration at which the relative residual is <= *tol*."""
    rel = result.relative_residuals()
    hits = np.flatnonzero(rel <= tol)
    return int(hits[0]) if len(hits) else None
