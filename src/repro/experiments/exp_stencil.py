"""X7 — extension: matrix-free stencil backend vs fused vs reference.

Per-sweep wall time of the three sweep executors across block counts on a
3-D constant-coefficient Laplacian (the workload family of
Rodriguez/Philip's block-relaxation stencil study), plus the structure
detector's verdict across the matrix suite.  Every timing row is gated by
a bitwise-equality assertion between the three executors' iterates — the
backends are execution strategies, never approximations — so the table
measures exactly one thing: what the matrix-free kernels buy over CSR on
the same arithmetic.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import AsyncEngine
from ..core.schedules import AsyncConfig
from ..matrices import default_rhs, get_matrix, stencil_laplacian_3d
from ..perf import compile_sweep_plan
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact

__all__ = ["run"]

#: Snapshot-read regime: every executor is allowed, all bitwise-equal.
_REGIME = dict(order="gpu", stale_read_prob=1.0, seed=0, local_iterations=2)


def _per_sweep(A, b, backend: str, nblocks: int, sweeps: int) -> tuple:
    cfg = AsyncConfig(backend=backend, **_REGIME)
    view = BlockRowView(A, block_size=max(1, A.shape[0] // nblocks))
    eng = AsyncEngine(view, b, cfg)
    x = np.zeros(A.shape[0])
    eng.sweep(x)  # warm: plans compiled, buffers mapped
    t0 = time.perf_counter()
    for _ in range(sweeps):
        eng.sweep(x)
    return (time.perf_counter() - t0) / sweeps, x, eng.backend


def run(quick: bool = True) -> ExperimentResult:
    """Time stencil vs fused vs reference sweeps across block counts."""
    grid = 24 if quick else 64
    sweeps = 6 if quick else 20
    block_counts = [16, 64, 256] if quick else [16, 64, 256, 1024]
    A = stencil_laplacian_3d(grid)
    b = default_rhs(A)

    rows = []
    for nb in block_counts:
        t_ref, x_ref, _ = _per_sweep(A, b, "reference", nb, sweeps)
        t_fus, x_fus, _ = _per_sweep(A, b, "fused", nb, sweeps)
        t_ste, x_ste, resolved = _per_sweep(A, b, "auto", nb, sweeps)
        assert resolved == "stencil", f"auto resolved {resolved!r} at {nb} blocks"
        assert np.array_equal(x_ste, x_ref) and np.array_equal(x_ste, x_fus)
        rows.append([nb, t_ref, t_fus, t_ste, t_ref / t_ste, t_fus / t_ste])
    timing = TableArtifact(
        title=(
            f"Per-sweep seconds, {grid}^3 7-point Laplacian "
            f"(async-({_REGIME['local_iterations']}), bitwise-equal iterates)"
        ),
        headers=["blocks", "reference", "fused", "stencil", "ref/stencil", "fused/stencil"],
        rows=rows,
    )

    suite = ["fv1", "Trefethen_2000", "lap3d7pt_32", "lap3d7pt_aniso_32"]
    if not quick:
        suite = ["fv1", "fv2", "fv3", "Chem97ZtZ", "Trefethen_2000",
                 "lap3d7pt_32", "lap3d19pt_32", "lap3d27pt_24", "lap3d7pt_aniso_32"]
    det_rows = []
    for name in suite:
        M = get_matrix(name)
        view = BlockRowView(M, block_size=max(1, M.shape[0] // 64))
        desc, reason = compile_sweep_plan(view).stencil
        det_rows.append(
            [
                name,
                "yes" if desc is not None else "no",
                len(desc.offsets) if desc else "-",
                desc.n_classes if desc else "-",
                "x".join(map(str, desc.grid_shape)) if desc and desc.grid_shape else "-",
                "" if desc else reason,
            ]
        )
    detection = TableArtifact(
        title="Structure detection across the matrix suite (64-block uniform views)",
        headers=["matrix", "stencil", "offsets", "classes", "grid", "fallback reason"],
        rows=det_rows,
    )

    speedups = {f"fused_over_stencil_{nb}": r[5] for nb, r in zip(block_counts, rows)}
    notes = [
        "backend='auto' resolves stencil > fused > reference: the matrix-free "
        "kernels engage exactly where the fused sweep is exact AND structure "
        "detection succeeds; general CSR matrices fall back with the reason "
        "recorded in partition telemetry.",
        "The stencil advantage grows with block count: CSR pays per-block "
        "gather bookkeeping while the slice kernels only re-split weight "
        "planes at block boundaries.",
    ]
    return ExperimentResult(
        "X7", "Extension: matrix-free stencil backend", [timing, detection], speedups, notes
    )
