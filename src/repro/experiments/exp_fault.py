"""F10/T6 — fault tolerance of block-asynchronous iteration (§4.5).

The scenario: 25 % of the cores break down at global iteration t₀ ≈ 10.
Implementations either detect and reassign the affected components after a
recovery time t_r ∈ {10, 20, 30} sweeps, or never do.

Shapes to reproduce:

* with recovery, convergence resumes and reaches the no-failure solution,
  delayed by a problem-specific amount (Table 6: ~8-32 % extra time);
* without recovery, the residual stagnates at a significant level and
  further iterations of the surviving components do not help.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import BlockAsyncSolver, FaultScenario
from ..gpu.timing import IterationCostModel
from ..matrices import default_rhs, get_matrix
from ..solvers import StoppingCriterion
from .report import ExperimentResult, TableArtifact, series_table
from .runner import iterations_to_tolerance, pad_history, paper_async_config

__all__ = ["run"]

_CASES = {"fv1": 100, "Trefethen_2000": 50}
_RECOVERIES = (10, 20, 30, None)
_T0 = 10
_FRACTION = 0.25

#: Paper Table 6: extra time (%) to reach the solution approximation.
PAPER_TABLE6 = {
    "fv1": {10: 8.16, 20: 19.50, 30: 31.66},
    "Trefethen_2000": {10: 8.16, 20: 11.45, 30: 16.61},
}


def run(quick: bool = True) -> ExperimentResult:
    """Run the §4.5 scenarios on fv1 and Trefethen_2000."""
    model = IterationCostModel()
    tables = []
    series = {}
    t6_rows = []
    for name, iters in _CASES.items():
        A = get_matrix(name)
        b = default_rhs(A)
        stopping = StoppingCriterion(tol=0.0, maxiter=iters)
        panel: Dict[str, np.ndarray] = {}

        baseline = BlockAsyncSolver(paper_async_config(5, seed=1), stopping=stopping).solve(A, b)
        base_rel = pad_history(baseline.relative_residuals(), iters + 1)
        panel["no failure"] = base_rel
        target = max(base_rel[-1] * 10.0, 1e-13)
        it_base = iterations_to_tolerance(baseline, target)

        t6_row = [name]
        for rec in _RECOVERIES:
            fault = FaultScenario(fraction=_FRACTION, t0=_T0, recovery=rec, seed=7)
            solver = BlockAsyncSolver(paper_async_config(5, seed=1), fault=fault, stopping=stopping)
            # With recovery the run needs extra room to reach the target.
            solver.stopping = StoppingCriterion(tol=0.0, maxiter=iters + (rec or 0) + 30)
            result = solver.solve(A, b)
            rel = result.relative_residuals()
            panel[fault.label] = pad_history(rel, iters + 1)
            if rec is not None and it_base is not None:
                it_fault = iterations_to_tolerance(result, target)
                if it_fault is not None:
                    per = model.per_iteration("async", name, local_iterations=5)
                    extra_pct = 100.0 * (it_fault - it_base) / it_base
                    t6_row.append(extra_pct)
                else:
                    t6_row.append(None)
            elif rec is None:
                stagnation = float(rel[-1])
        t6_row.append(stagnation)
        t6_rows.append(t6_row)

        x = np.arange(iters + 1, dtype=float)
        series[f"fig10_{name}"] = dict(panel, x=x)
        tables.append(
            series_table(
                f"Figure 10 ({name}): relative residual under 25% core failure at t0={_T0}",
                x,
                panel,
            )
        )

    paper_rows = [
        [name] + [PAPER_TABLE6[name][r] for r in (10, 20, 30)] for name in _CASES
    ]
    tables.insert(
        0,
        TableArtifact(
            title="Table 6: extra computation (%) to reach the solution (measured | paper below)",
            headers=["matrix", "recover-(10)", "recover-(20)", "recover-(30)", "no-recovery stagnation"],
            rows=t6_rows,
        ),
    )
    tables.insert(
        1,
        TableArtifact(
            title="Table 6 (paper)",
            headers=["matrix", "recover-(10)", "recover-(20)", "recover-(30)"],
            rows=paper_rows,
        ),
    )
    notes = [
        "Expected: recovery restores convergence with delay growing in t_r; "
        "no recovery leaves the residual stagnated far from the solution.",
    ]
    return ExperimentResult("F10/T6", "Fault tolerance", tables, series, notes)
