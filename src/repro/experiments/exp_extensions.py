"""X1/X2/X3/X4 — the paper's outlook sections, built and measured.

* **X1** — block-asynchronous smoothing in geometric multigrid: V-cycle
  contraction factors for Jacobi / Gauss-Seidel / async-(k) smoothers.
* **X2** — async-(k) sweeps as a CG preconditioner: iteration counts and
  modelled time versus plain CG.
* **X3** — RCM reordering for Chem97ZtZ-like systems (the paper's §4.3
  suggestion): bandwidth, off-block mass and async-(5) iteration counts
  before/after reordering.
* **X4** — silent-error detection from convergence anomalies (§4.5:
  "a convergence delay ... indicates that a silent error has occurred"):
  inject silent corruptions of varying strength at varying times and
  measure the detector's detection latency and false-alarm rate on
  healthy chaotic runs.
"""

from __future__ import annotations

from ..core import BlockAsyncSolver
from ..extensions import MultigridPoisson, SmootherSpec
from ..gpu.timing import IterationCostModel
from ..krylov import AsyncSweepPreconditioner
from ..matrices import default_rhs, get_matrix
from ..matrices.rcm import bandwidth, permute_symmetric, reverse_cuthill_mckee
from ..solvers import ConjugateGradientSolver, StoppingCriterion
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact
from .runner import iterations_to_tolerance, paper_async_config

__all__ = ["run_x1", "run_x2", "run_x3", "run_x4"]


def run_x1(quick: bool = True) -> ExperimentResult:
    """Multigrid smoother ablation."""
    levels = 6 if quick else 8
    cycles = 8
    rows = []
    for kind in ("jacobi", "gauss-seidel", "async"):
        for sweeps in (1, 2):
            spec = SmootherSpec(kind=kind, sweeps=sweeps)
            mg = MultigridPoisson(levels=levels, smoother=spec)
            rows.append([kind, sweeps, mg.n, mg.contraction_factor(cycles=cycles)])
    table = TableArtifact(
        title=f"X1: V-cycle contraction factor by smoother (2-D Poisson, {(1 << levels) - 1}^2 fine grid)",
        headers=["smoother", "sweeps", "fine n", "contraction factor"],
        rows=rows,
    )
    notes = [
        "Expected: async-(k) smoothing lands between damped Jacobi and "
        "Gauss-Seidel while keeping the asynchronous execution model — the "
        "paper's multigrid outlook is viable.",
    ]
    return ExperimentResult("X1", "Async smoothing in multigrid", [table], {}, notes)


def run_x2(quick: bool = True) -> ExperimentResult:
    """Async-preconditioned CG."""
    model = IterationCostModel()
    names = ["fv1"] if quick else ["fv1", "fv3", "Trefethen_2000"]
    rows = []
    for name in names:
        A = get_matrix(name)
        b = default_rhs(A)
        stop = StoppingCriterion(tol=1e-12, maxiter=6000)
        cg = ConjugateGradientSolver(stopping=stop).solve(A, b)
        M = AsyncSweepPreconditioner(A, sweeps=2)
        pcg = ConjugateGradientSolver(preconditioner=M, stopping=stop).solve(A, b)
        # Modelled time: PCG pays ~2 async sweeps + 1 CG iteration per step.
        t_cg = cg.iterations * model.per_iteration("cg", name)
        t_pcg = pcg.iterations * (
            model.per_iteration("cg", name) + 4 * model.per_iteration("async", name, local_iterations=2)
        )
        rows.append([name, cg.iterations, pcg.iterations, cg.iterations / max(pcg.iterations, 1), t_cg, t_pcg])
    table = TableArtifact(
        title="X2: CG vs async-(2)-preconditioned CG (tol 1e-12)",
        headers=["matrix", "CG iters", "PCG iters", "iters ratio", "CG time (model, s)", "PCG time (model, s)"],
        rows=rows,
    )
    notes = [
        "The preconditioner is a symmetrized (forward+reverse) pair of 2 "
        "deterministic async sweeps; iteration counts drop by more than an "
        "order of magnitude on the fv systems.",
    ]
    return ExperimentResult("X2", "Async-preconditioned CG", [table], {}, notes)


def run_x3(quick: bool = True) -> ExperimentResult:
    """Reordering effects on a Chem97ZtZ-like system (RCM vs clustering)."""
    from ..matrices.clustering import cluster_reorder

    A = get_matrix("Chem97ZtZ")
    b = default_rhs(A)
    perm = reverse_cuthill_mckee(A)
    Ar = permute_symmetric(A, perm)
    br = b[perm]
    pc = cluster_reorder(A, 128)
    Ac = permute_symmetric(A, pc)
    bc = b[pc]
    stop = StoppingCriterion(tol=1e-12, maxiter=400)
    rows = []
    for label, M, rhs in (
        ("original", A, b),
        ("RCM-reordered", Ar, br),
        ("cluster-reordered", Ac, bc),
    ):
        view = BlockRowView(M, block_size=128)
        res = BlockAsyncSolver(paper_async_config(5, block_size=128, seed=1), stopping=stop).solve(M, rhs)
        it = iterations_to_tolerance(res, 1e-10)
        rows.append(
            [
                label,
                bandwidth(M),
                view.off_block_fraction(),
                it if it is not None else f">{stop.maxiter}",
            ]
        )
    table = TableArtifact(
        title="X3: reorderings of Chem97ZtZ-like (async-(5), block 128)",
        headers=["ordering", "bandwidth", "off-block mass @128", "iters to 1e-10"],
        rows=rows,
    )
    notes = [
        "The paper (§4.3) suggests reordering could let Chem97ZtZ benefit "
        "from local iterations.  Bandwidth-oriented RCM barely moves the "
        "off-block mass; coupling-oriented BFS clustering (which targets "
        "the method's actual objective) pulls ~20% of the mass into the "
        "blocks and buys a ~10% iteration reduction.  The hub structure "
        "bounds what any ordering can do — reordering helps, modestly, "
        "for this class.",
        "On structures where locality merely got scrambled the same "
        "clustering recovers it almost entirely (shuffled 2-D grid: "
        "off-block mass 0.94 -> 0.13; tests/matrices/test_clustering.py).",
    ]
    return ExperimentResult("X3", "RCM reordering for Chem97ZtZ", [table], {}, notes)


def run_x4(quick: bool = True) -> ExperimentResult:
    """Silent-error detection study (§4.5 outlook)."""
    from ..core import BlockAsyncSolver, FaultScenario, SilentErrorDetector
    from ..solvers import StoppingCriterion

    A = get_matrix("fv1")
    b = default_rhs(A)
    iters = 90
    stop = StoppingCriterion(tol=0.0, maxiter=iters)

    # False-alarm check: healthy chaotic runs across seeds.
    nclean = 5 if quick else 25
    false_alarms = 0
    for seed in range(nclean):
        r = BlockAsyncSolver(paper_async_config(5, seed=seed), stopping=stop).solve(A, b)
        det = SilentErrorDetector(window=8, warmup=16)
        false_alarms += bool(det.scan(r.relative_residuals()))

    rows = []
    for corruption in (1.001, 1.01, 1.1):
        for t0 in (20, 40):
            fault = FaultScenario(
                fraction=0.25, t0=t0, recovery=None, kind="silent",
                corruption=corruption, seed=3,
            )
            r = BlockAsyncSolver(
                paper_async_config(5, seed=1), fault=fault, stopping=stop
            ).solve(A, b)
            det = SilentErrorDetector(window=8, warmup=16)
            alerts = det.scan(r.relative_residuals())
            first = alerts[0] if alerts else None
            rows.append(
                [
                    corruption,
                    t0,
                    first.iteration if first else None,
                    (first.iteration - t0) if first else None,
                    first.reason if first else "missed",
                ]
            )
    table = TableArtifact(
        title="X4: silent-error detection (fv1, async-(5), 25% cores silently corrupted)",
        headers=["corruption", "t0", "first alert", "latency (iters)", "reason"],
        rows=rows,
    )

    # Localization: clustered faults (one broken core's span) pinpointed
    # from per-block residual shares.
    from ..core import FaultLocalizer
    from ..core.engine import AsyncEngine
    from ..sparse import BlockRowView

    cfg = paper_async_config(5, seed=1)
    view = BlockRowView(A, block_size=cfg.block_size)
    loc_rows = []
    for seed in (9, 17, 23):
        fault = FaultScenario(
            fraction=0.1, t0=15, recovery=None, kind="silent", clustered=True, seed=seed
        )
        engine = AsyncEngine(view, b, cfg, fault=fault)
        localizer = FaultLocalizer(view, b)
        import numpy as np

        x = np.zeros(A.shape[0])
        for sweep in range(40):
            x = engine.sweep(x)
            if sweep == 12:
                localizer.snapshot(x)
        actual = sorted(
            {view.block_of_row(i) for i in np.flatnonzero(fault.failed_components(A.shape[0]))}
        )
        suspects = localizer.suspects(x, top=len(actual))
        hits = len(set(suspects) & set(actual))
        loc_rows.append([seed, str(actual), str(sorted(suspects)), hits / len(actual)])
    loc_table = TableArtifact(
        title="X4b: fault localization (clustered silent fault, per-block residual shares)",
        headers=["seed", "broken blocks", "suspects", "precision"],
        rows=loc_rows,
    )
    notes = [
        f"false alarms on {nclean} healthy chaotic runs: {false_alarms} "
        "(the §4.1 run-to-run wobble stays inside the detector's tolerance).",
        "Detection is purely observational (residual history only) — the "
        "information an Exascale runtime would have; localization then "
        "identifies the blocks to reassign from per-block residual shares.",
    ]
    return ExperimentResult("X4", "Silent-error detection", [table, loc_table], {}, notes)
