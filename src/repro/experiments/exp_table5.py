"""T5 — Table 5: average per-iteration timings.

The modelled per-global-iteration times for Gauss-Seidel (CPU), Jacobi
(GPU) and async-(5) (GPU) on every suite matrix — the model is calibrated
*to* the paper's Table 5, so the model column reproduces it by construction
and the interesting content is (a) the async-(5)-vs-Jacobi and GS-vs-GPU
ratios the later figures rely on, and (b) this implementation's *measured*
per-iteration times, whose ratios should show the same ordering.
"""

from __future__ import annotations

import time

from ..core import BlockAsyncSolver
from ..gpu.timing import IterationCostModel, PAPER_TABLE5
from ..matrices import default_rhs, get_matrix
from ..solvers import GaussSeidelSolver, JacobiSolver, StoppingCriterion
from .report import ExperimentResult, TableArtifact
from .runner import paper_async_config

__all__ = ["run"]


def _measure(solver, A, b, iters: int) -> float:
    solver.stopping = StoppingCriterion(tol=0.0, maxiter=iters)
    t0 = time.perf_counter()
    solver.solve(A, b)
    return (time.perf_counter() - t0) / iters


def run(quick: bool = True) -> ExperimentResult:
    """Tabulate modelled (= paper) and measured per-iteration times."""
    model = IterationCostModel()
    rows = []
    for name, paper in PAPER_TABLE5.items():
        rows.append(
            [
                name,
                model.per_iteration("gauss-seidel", name),
                model.per_iteration("jacobi", name),
                model.per_iteration("async", name, local_iterations=5),
                paper.gs_cpu / paper.async5_gpu,
                paper.jacobi_gpu / paper.async5_gpu,
            ]
        )
    model_table = TableArtifact(
        title="Table 5 (modelled = paper calibration): seconds per global iteration",
        headers=["matrix", "G.-S. (CPU)", "Jacobi (GPU)", "async-(5) (GPU)", "GS/async", "Jacobi/async"],
        rows=rows,
    )

    iters = 10 if quick else 50
    meas_rows = []
    names = ["Chem97ZtZ", "fv1", "Trefethen_2000"] if quick else list(PAPER_TABLE5)
    for name in names:
        A = get_matrix(name)
        b = default_rhs(A)
        t_gs = _measure(GaussSeidelSolver(), A, b, iters)
        t_j = _measure(JacobiSolver(), A, b, iters)
        t_a = _measure(BlockAsyncSolver(paper_async_config(5)), A, b, iters)
        meas_rows.append([name, t_gs, t_j, t_a, t_gs / t_a, t_j / t_a])
    meas_table = TableArtifact(
        title="This implementation: measured seconds per global iteration (Python, incl. residual recording)",
        headers=["matrix", "gauss-seidel", "jacobi", "async-(5)", "GS/async", "Jacobi/async"],
        rows=meas_rows,
    )
    notes = [
        "Paper ratios to reproduce: Gauss-Seidel 5-10x slower than async-(5); "
        "Jacobi 1.1-1.6x slower than async-(5) despite async doing 5 local sweeps.",
        "The measured Python ratios differ (no GPU, level-scheduled GS is "
        "vectorized here), but async-(5) cost per global iteration stays "
        "within a small factor of Jacobi's — the shape behind Figs. 8/9.",
    ]
    return ExperimentResult("T5", "Average iteration timings", [model_table, meas_table], {}, notes)
