"""Artifact rendering: ASCII tables and residual-series checkpoints.

Everything an experiment produces is carried by :class:`ExperimentResult`,
which renders to plain text the way the paper's tables read — one table per
artifact, scientific notation for residual-scale quantities, and series
(figure data) sampled at named checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

import numpy as np

__all__ = ["format_value", "ascii_table", "TableArtifact", "ExperimentResult", "series_table"]

Cell = Union[str, float, int, None]


def format_value(v: Cell) -> str:
    """Render one table cell: ints plainly, floats adaptively."""
    if v is None:
        return "-"
    if isinstance(v, str):
        return v
    if isinstance(v, (bool, np.bool_)):
        return str(bool(v))
    if isinstance(v, (int, np.integer)):
        return str(int(v))
    x = float(v)
    if not np.isfinite(x):
        return "inf" if x > 0 else ("-inf" if x < 0 else "nan")
    if x == 0.0:
        return "0"
    ax = abs(x)
    if 1e-3 <= ax < 1e5:
        # Fixed-point with enough digits to distinguish timings/ratios.
        return f"{x:.4g}"
    return f"{x:.4e}"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = "") -> str:
    """Aligned monospace table with a separator under the header."""
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for j, c in enumerate(row):
            widths[j] = max(widths[j], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class TableArtifact:
    """One rendered table of an experiment."""

    title: str
    headers: List[str]
    rows: List[List[Cell]]

    def render(self) -> str:
        return ascii_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes
    ----------
    experiment_id:
        Paper artifact id (``"T1"``, ``"F9"``, ``"X2"``, ...).
    title:
        Human-readable description.
    tables:
        Rendered-table artifacts, in report order.
    series:
        Figure data: ``series[figure][label] = 1-D array`` (plus an ``"x"``
        entry when the abscissa is not the iteration index).
    notes:
        Free-form observations recorded with the run (paper-vs-measured
        commentary, parameters used).
    """

    experiment_id: str
    title: str
    tables: List[TableArtifact] = field(default_factory=list)
    series: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for t in self.tables:
            parts.append(t.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable form (tables, series and notes)."""

        def clean(v):
            if isinstance(v, (np.floating, np.integer)):
                return v.item()
            return v

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [
                {
                    "title": t.title,
                    "headers": list(t.headers),
                    "rows": [[clean(c) for c in row] for row in t.rows],
                }
                for t in self.tables
            ],
            "series": {
                name: {label: np.asarray(y).tolist() for label, y in ys.items()}
                for name, ys in self.series.items()
            },
            "notes": list(self.notes),
        }

    def to_json(self, **kwargs) -> str:
        """Render as a JSON document (kwargs forwarded to json.dumps)."""
        import json

        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)


def series_table(
    title: str,
    x: np.ndarray,
    ys: Dict[str, np.ndarray],
    *,
    x_label: str = "iteration",
    max_points: int = 16,
) -> TableArtifact:
    """Tabulate figure series at evenly sampled checkpoints."""
    x = np.asarray(x)
    n = len(x)
    if n == 0:
        raise ValueError("empty series")
    for label, y in ys.items():
        if len(y) != n:
            raise ValueError(f"series {label!r} length {len(y)} != x length {n}")
    idx = np.unique(np.linspace(0, n - 1, min(max_points, n)).round().astype(int))
    headers = [x_label] + list(ys)
    rows = [[x[i]] + [ys[l][i] for l in ys] for i in idx]
    return TableArtifact(title=title, headers=headers, rows=rows)
