"""Experiment harness: one module per paper table/figure.

Every artifact of the paper's evaluation section has a module here whose
``run(quick=...)`` regenerates it — the same rows and series the paper
reports, printed as ASCII tables (series included as sampled checkpoints).
The registry maps paper artifact ids (``"T1"`` … ``"F11"``, plus ``"X1"`` …
``"X3"`` for the §5-outlook extensions) to their runners; the
``benchmarks/`` tree drives these under pytest-benchmark, and
``EXPERIMENTS.md`` records paper-vs-measured for each id.

Quick vs full: ``run(quick=True)`` (the default everywhere) sizes ensembles
and iteration budgets for seconds-scale runs; ``quick=False`` matches the
paper's scales (1000-run ensembles, 25k-iteration fv3 histories).  The
benchmarks honour the ``REPRO_FULL=1`` environment variable.
"""

from .report import ExperimentResult, TableArtifact, ascii_table
from .registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "TableArtifact",
    "ascii_table",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
