"""T2/T3/F5 — the §4.1 non-determinism study.

Runs the async-(5) ensemble at the paper's block size 128 on fv1 and
Trefethen_2000, reproducing

* **Table 2 / Table 3** — average, max, min residual, absolute and
  relative variation, variance, standard deviation and standard error at
  the paper's checkpoints;
* **Figure 5** — the same data as series (average convergence, absolute
  variation, relative variation);
* an **off-block-mass ablation** (the paper's explanatory mechanism):
  variation versus block size, showing variation shrink as local blocks
  capture more coupling.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..matrices import default_rhs, get_matrix
from ..sparse import BlockRowView
from ..stats import run_ensemble
from .report import ExperimentResult, TableArtifact
from .runner import VARIATION_BLOCK_SIZE, ensemble_runs, paper_async_config

__all__ = ["run"]

#: (matrix, iterations, checkpoint stride) as in the paper's tables.
_CASES = {
    "T2": ("fv1", 150, 10),
    "T3": ("Trefethen_2000", 50, 5),
}


def _stats_table(tag: str, name: str, stats) -> TableArtifact:
    headers = [
        "# global iters",
        "averg. res.",
        "max. res.",
        "min. res.",
        "abs. var.",
        "rel. var.",
        "variance",
        "std dev",
        "std err",
    ]
    return TableArtifact(
        title=f"Table {tag[1]}: variation statistics over {stats.nruns} runs, {name}",
        headers=headers,
        rows=stats.rows(),
    )


def run(quick: bool = True, *, batched: Optional[bool] = None) -> ExperimentResult:
    """Run both ensembles and the block-size ablation.

    *batched* selects :func:`repro.stats.run_ensemble`'s execution path
    (``None`` = its default, the batched multi-vector engine); both paths
    produce bitwise-identical statistics.
    """
    nruns = ensemble_runs(quick)
    tables = []
    series: Dict[str, Dict[str, np.ndarray]] = {}
    notes = [f"ensemble size: {nruns} runs (paper: 1000; set REPRO_RUNS to change)"]
    if batched is not None:
        notes.append(
            f"ensemble path: {'batched multi-vector engine' if batched else 'sequential per-seed loop'}"
        )

    for tag, (name, iters, stride) in _CASES.items():
        A = get_matrix(name)
        b = default_rhs(A)
        cfg = paper_async_config(5, block_size=VARIATION_BLOCK_SIZE)
        checkpoints = list(range(stride, iters + 1, stride))
        stats = run_ensemble(
            A, b, nruns, iters, config=cfg, checkpoints=checkpoints, batched=batched
        )
        tables.append(_stats_table(tag, name, stats))
        notes.append(
            f"{name}: relative-variation growth slope "
            f"{stats.variation_growth():+.2e} per iteration (Fig. 5e/5f trend)."
        )
        series[f"fig5_{name}"] = {
            "x": stats.checkpoints.astype(float),
            "average": stats.mean,
            "abs_variation": stats.abs_variation,
            "rel_variation": stats.rel_variation,
        }

    # Ablation: variation versus block size (off-block mass is the paper's
    # §4.1 explanation for where variation comes from).
    abl_rows = []
    abl_runs = max(10, nruns // 3)
    A = get_matrix("fv1")
    b = default_rhs(A)
    for bs in (64, 128, 448):
        view = BlockRowView(A, block_size=bs)
        cfg = paper_async_config(5, block_size=bs)
        st = run_ensemble(A, b, abl_runs, 60, config=cfg, checkpoints=[40], batched=batched)
        abl_rows.append([bs, view.off_block_fraction(), float(st.rel_variation[0])])
    tables.append(
        TableArtifact(
            title="Ablation: run-to-run variation vs block size (fv1, rel. var. at iter 40)",
            headers=["block size", "off-block mass fraction", "rel. variation"],
            rows=abl_rows,
        )
    )
    notes.append(
        "Qualitative reproduction: absolute variations decay exponentially in "
        "lockstep with the residual; relative variation shrinks as the blocks "
        "capture more coupling mass (ablation), the paper's stated mechanism. "
        "Absolute magnitudes differ from the paper (its hardware scheduler is "
        "far less noisy than our per-entry race model for homogeneous systems); "
        "see EXPERIMENTS.md."
    )
    return ExperimentResult("T2/T3/F5", "Non-determinism of block-asynchronous iteration", tables, series, notes)
