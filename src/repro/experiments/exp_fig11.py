"""F11 — Figure 11: multi-GPU time-to-convergence (Trefethen_20000).

The three §3.4 communication strategies × 1–4 GPUs.  Shapes to reproduce
(§4.6):

* **AMC** — almost exactly halves from one to two GPUs (parallel PCIe
  lanes); three GPUs are ~20 % slower than two (QPI crossing); four beat
  two but far below 2×.
* **DC/DK** — slightly faster than AMC on a single GPU (iterate stays in
  device memory), barely improve with a second, and degrade beyond two
  (CUDA 4.0 GPU-direct is same-socket only; the model's host-staged
  fallback shows why the paper stops there).

Iteration counts come from an actual :class:`MultiDeviceEngine` run per
GPU count (verifying §3.4's premise that the extra asynchronism layer does
not materially change convergence); per-iteration times come from the
event-simulated strategy models.
"""

from __future__ import annotations

import numpy as np

from ..gpu.multigpu import MultiDeviceEngine, MultiGPUModel, STRATEGIES
from ..matrices import default_rhs, get_matrix
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact
from .runner import paper_async_config

__all__ = ["run"]

_MATRIX = "Trefethen_20000"
_TOL = 1e-12


def run(quick: bool = True) -> ExperimentResult:
    """Generate the Figure 11 bars."""
    A = get_matrix(_MATRIX)
    b = default_rhs(A)
    b_norm = np.linalg.norm(b)
    cfg = paper_async_config(5, seed=1)
    view = BlockRowView(A, block_size=cfg.block_size)

    # Iterations to tolerance per GPU count (convergence simulation).
    iters_needed = {}
    for g in (1, 2, 3, 4):
        engine = MultiDeviceEngine(view, b, cfg, g)
        x = np.zeros(A.shape[0])
        it = 0
        while it < 200:
            x = engine.sweep(x)
            it += 1
            if np.linalg.norm(A.residual(x, b)) <= _TOL * b_norm:
                break
        iters_needed[g] = it

    model = MultiGPUModel()
    rows = []
    series = {"fig11": {"x": np.array([1.0, 2.0, 3.0, 4.0])}}
    for strat in STRATEGIES:
        times = [model.time_to_convergence(strat, _MATRIX, g, iters_needed[g]) for g in (1, 2, 3, 4)]
        rows.append([strat] + times)
        series["fig11"][strat] = np.array(times)
    table = TableArtifact(
        title=f"Figure 11: time-to-convergence (s) on {_MATRIX}, rel. residual {_TOL:g}",
        headers=["strategy", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"],
        rows=rows,
    )
    conv_table = TableArtifact(
        title="Convergence-side check: global iterations needed per GPU count (MultiDeviceEngine)",
        headers=["GPUs", "iterations"],
        rows=[[g, iters_needed[g]] for g in (1, 2, 3, 4)],
    )
    notes = [
        "Per-iteration times from the discrete-event interconnect model "
        "(PCIe per GPU, shared QPI, master-link contention for DC/DK); "
        "iteration counts from the per-device-snapshot convergence engine.",
    ]
    return ExperimentResult("F11", "Multi-GPU strategies", [table, conv_table], series, notes)
