"""F8 — Figure 8: average time per iteration versus total iteration count.

The GPU methods pay a one-off setup (context, allocation, initial
transfers), so their *average* per-iteration time decays like
``T_setup / N + t_iter`` toward the asymptotic kernel time, while the CPU
Gauss-Seidel average is flat.  Reproduced from the calibrated timing model
for fv3, the paper's example.
"""

from __future__ import annotations

import numpy as np

from ..gpu.timing import IterationCostModel, SetupCostModel
from ..matrices import PAPER_TABLE1
from .report import ExperimentResult, series_table

__all__ = ["run"]


def run(quick: bool = True) -> ExperimentResult:
    """Generate the Figure 8 series for fv3."""
    model = IterationCostModel()
    setup = SetupCostModel()
    info = PAPER_TABLE1["fv3"]
    counts = np.arange(5, 201, 5)
    gs = np.full(len(counts), model.per_iteration("gauss-seidel", "fv3"))
    jac = np.array(
        [
            model.average_iteration_time("jacobi", "fv3", int(n), setup=setup)
            for n in counts
        ]
    )
    asy = np.array(
        [
            model.average_iteration_time("async", "fv3", int(n), local_iterations=1, setup=setup)
            for n in counts
        ]
    )
    series = {
        "fig8_fv3": {
            "x": counts.astype(float),
            "Gauss-Seidel (CPU)": gs,
            "Jacobi (GPU)": jac,
            "async-(1) (GPU)": asy,
        }
    }
    table = series_table(
        "Figure 8 (fv3): average seconds per iteration vs total iterations",
        counts.astype(float),
        {k: v for k, v in series["fig8_fv3"].items() if k != "x"},
        x_label="total iterations",
    )
    notes = [
        f"setup overhead {setup.setup_time(info.n, info.nnz):.3f}s (Table 4 intercept "
        "+ PCIe transfer); GPU curves decay ~1/N toward the kernel time while "
        "the CPU curve is flat — the paper's Figure 8 shape.",
    ]
    return ExperimentResult("F8", "Average iteration time vs total iterations", [table], series, notes)
