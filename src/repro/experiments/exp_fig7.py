"""F7 — Figure 7: convergence of async-(5) versus Gauss-Seidel.

The paper's headline per-iteration result (§4.3): with five local Jacobi
sweeps per block, the block-asynchronous method

* converges about **twice as fast as Gauss-Seidel** on fv1/fv2/fv3 (local
  blocks capture most coupling mass),
* shows **little gain** on Chem97ZtZ and Trefethen_2000 (local blocks are
  essentially diagonal / off-block mass dominates),
* still diverges on s1rmt3m1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import BlockAsyncSolver
from ..matrices import get_matrix
from ..solvers import GaussSeidelSolver
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact, series_table
from .runner import FIG6_ITERS, iterations_to_tolerance, paper_async_config
from .exp_fig6 import SUMMARY_TOL, convergence_histories

__all__ = ["run"]


def run(quick: bool = True, *, batched: Optional[bool] = None) -> ExperimentResult:
    """Generate all six panels of Figure 7."""
    tables = []
    series = {}
    summary_rows = []
    for name, full_iters in FIG6_ITERS.items():
        maxiter = min(full_iters, 2000) if quick else full_iters
        results = convergence_histories(
            name,
            {
                "Gauss-Seidel": GaussSeidelSolver(),
                "async-(5)": BlockAsyncSolver(paper_async_config(5, seed=1)),
            },
            maxiter,
            batched=batched,
        )
        npts = min(len(r.residuals) for r in results.values())
        ys = {label: r.relative_residuals()[:npts] for label, r in results.items()}
        x = np.arange(npts, dtype=float)
        series[f"fig7_{name}"] = dict(ys, x=x)
        tables.append(series_table(f"Figure 7 ({name}): relative residual vs iteration", x, ys))

        gs = results["Gauss-Seidel"]
        a5 = results["async-(5)"]
        row = [name]
        speedup = None
        for r in (gs, a5):
            if r.info.get("diverged") or r.relative_residuals()[-1] > 1.0:
                row.append("diverges")
            else:
                it = iterations_to_tolerance(r, SUMMARY_TOL)
                row.append(it if it is not None else f">{maxiter}")
        it_gs = iterations_to_tolerance(gs, SUMMARY_TOL)
        it_a5 = iterations_to_tolerance(a5, SUMMARY_TOL)
        if it_gs and it_a5:
            speedup = it_gs / it_a5
        off = BlockRowView(get_matrix(name), block_size=448).off_block_fraction()
        row.extend([speedup, off])
        summary_rows.append(row)
    tables.insert(
        0,
        TableArtifact(
            title=f"Figure 7 summary: iterations to relative residual {SUMMARY_TOL:g}",
            headers=["matrix", "Gauss-Seidel", "async-(5)", "GS/async-(5) iters ratio", "off-block mass @448"],
            rows=summary_rows,
        ),
    )
    notes = [
        "Expected: iteration ratio ~2 for fv1/fv2/fv3 (small off-block mass), "
        "~1 or below for Chem97ZtZ/Trefethen (local iterations add little), "
        "divergence for s1rmt3m1.",
    ]
    if batched:
        notes.append("async curves computed via the batched engine (bitwise the sequential path).")
    return ExperimentResult("F7", "Convergence of async-(5) vs Gauss-Seidel", tables, series, notes)
