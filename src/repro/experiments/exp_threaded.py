"""X5 — model validation: simulated schedules vs genuine thread chaos.

The reproduction's central substitution replaces CUDA's nondeterministic
execution with a seeded schedule model.  This experiment validates that
substitution *within the repository itself*: the same async-(k) block
update is run through

* the **seeded engine** (reproducible, occupancy-derived staleness), and
* the **threaded engine** (real OS threads racing on shared memory — no
  seeds, no model),

and their per-iteration convergence is compared.  The finding: the
threaded engine *always converges to the same solution* — no convergence
conclusion depends on the schedule model's specifics — at a 3-4x per-pass
rate penalty that is exactly asynchronous theory's price for CPython's
coarser effective staleness (threads exchange values at GIL granularity,
not per memory access as GPU warps do).
"""

from __future__ import annotations

import numpy as np

from ..core import BlockAsyncSolver
from ..core.threaded import ThreadedAsyncSolver
from ..matrices import default_rhs, get_matrix
from ..solvers import StoppingCriterion
from .report import ExperimentResult, TableArtifact
from .runner import iterations_to_tolerance, paper_async_config

__all__ = ["run"]

_TOL = 1e-9


def run(quick: bool = True) -> ExperimentResult:
    """Compare the seeded and threaded engines on two suite systems."""
    cases = [("Trefethen_2000", 64), ("fv1", 448)]
    repeats = 3 if quick else 10
    rows = []
    for name, bs in cases:
        A = get_matrix(name)
        b = default_rhs(A)
        sim = BlockAsyncSolver(
            paper_async_config(5, block_size=bs, seed=1),
            stopping=StoppingCriterion(tol=_TOL / 10, maxiter=2000),
        ).solve(A, b)
        sim_iters = iterations_to_tolerance(sim, _TOL)

        threaded_iters = []
        for _ in range(repeats):
            r = ThreadedAsyncSolver(
                local_iterations=5,
                block_size=bs,
                workers=4,
                stopping=StoppingCriterion(tol=_TOL / 10, maxiter=4000),
            ).solve(A, b)
            # The threaded engine's "iteration" is a worker pass; compare
            # mean passes (every block is updated once per pass, the same
            # work as one simulated global iteration).
            threaded_iters.append(float(np.mean(r.info["worker_passes"])))
        rows.append(
            [
                name,
                sim_iters,
                float(np.median(threaded_iters)),
                float(np.min(threaded_iters)),
                float(np.max(threaded_iters)),
            ]
        )
    table = TableArtifact(
        title=f"X5: global iterations to rel. residual {_TOL:g} — seeded model vs real threads (async-(5))",
        headers=["matrix", "seeded engine", "threaded median", "threaded min", "threaded max"],
        rows=rows,
    )
    notes = [
        "The threaded engine is genuinely nondeterministic (no seeds). It "
        "converges to the same solution on every run — no convergence "
        "conclusion depends on the schedule model's specifics.",
        "Its per-pass rate carries a 3-4x penalty vs the seeded model: "
        "CPython threads exchange values at GIL granularity (coarser "
        "staleness), the rate-vs-staleness price asynchronous theory "
        "predicts; GPU warps interleave per memory access and sit near "
        "the seeded engine.",
    ]
    return ExperimentResult("X5", "Seeded model vs real threads", [table], {}, notes)
