"""T4 — Table 4: overhead of additional local iterations (fv3).

Two complementary reproductions:

* **Model** — the calibrated timing model regenerates the paper's total
  computation times for async-(1..9) × {100..500} global iterations and
  reports the per-extra-local-iteration overhead it implies (< 5 % per
  sweep, < 35 % at k = 9 — the paper's "local iterations almost come for
  free").
* **Measured** — the Python engine's *own* wall-clock per-sweep cost as a
  function of k, demonstrating the same shape on this implementation
  (local SpMVs touch only block-local data).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.engine import AsyncEngine
from ..gpu.timing import LOCAL_ITER_FRACTION, PAPER_TABLE4_FV3, async_total_time_fv3
from ..matrices import default_rhs, get_matrix
from ..sparse import BlockRowView
from .report import ExperimentResult, TableArtifact
from .runner import paper_async_config

__all__ = ["run"]


def run(quick: bool = True) -> ExperimentResult:
    """Regenerate Table 4 (model) and measure this engine's overhead."""
    iter_counts = (100, 200, 300, 400, 500)
    rows = []
    for k in range(1, 10):
        row = [f"async-({k})"]
        for n in iter_counts:
            row.append(async_total_time_fv3(k, n))
        rows.append(row)
    model_table = TableArtifact(
        title="Table 4 (modelled): total seconds for async-(k) on fv3",
        headers=["method"] + [str(n) for n in iter_counts],
        rows=rows,
    )

    paper_rows = [
        [f"async-({k})"] + [PAPER_TABLE4_FV3[k][n] for n in iter_counts] for k in range(1, 10)
    ]
    paper_table = TableArtifact(
        title="Table 4 (paper, for comparison)",
        headers=["method"] + [str(n) for n in iter_counts],
        rows=paper_rows,
    )

    # Measured: this engine's sweep cost versus k.
    A = get_matrix("fv3")
    b = default_rhs(A)
    view = BlockRowView(A, block_size=448)
    sweeps = 20 if quick else 100
    measured_rows = []
    base_time = None
    backend = None
    ks = (1, 2, 3, 5, 7, 9)
    for k in ks:
        cfg = paper_async_config(k, seed=0)
        engine = AsyncEngine(view, b, cfg)
        backend = engine.backend
        x = np.zeros(A.shape[0])
        engine.sweep(x)  # warm-up (allocations, cache)
        t0 = time.perf_counter()
        for _ in range(sweeps):
            x = engine.sweep(x)
        dt = (time.perf_counter() - t0) / sweeps
        if base_time is None:
            base_time = dt
        measured_rows.append([f"async-({k})", dt, dt / base_time - 1.0])
    measured_table = TableArtifact(
        title="This implementation: measured seconds per global sweep (fv3, Python engine)",
        headers=["method", "sec/sweep", "overhead vs async-(1)"],
        rows=measured_rows,
    )
    notes = [
        f"calibrated per-extra-local-iteration cost fraction: {LOCAL_ITER_FRACTION:.4f} "
        "(paper: 'less than 5%'); async-(9) modelled overhead "
        f"{8 * LOCAL_ITER_FRACTION:.1%} (paper: 'less than 35%').",
        f"measured sweeps ran on the '{backend}' execution backend (repro.perf); "
        "benchmarks/bench_sweep_backends.py compares backends head to head.",
    ]
    return ExperimentResult(
        "T4", "Local-iteration overhead", [model_table, paper_table, measured_table], {}, notes
    )
