"""T1 — Table 1: characteristics of the test matrices.

Regenerates the paper's Table 1 (n, nnz, cond(A), cond(D⁻¹A), ρ(M)) from
the reconstruction generators, side by side with the published values, and
adds the ρ(|B|) column the asynchronous convergence theory (§2.2) actually
depends on.
"""

from __future__ import annotations

from ..matrices import PAPER_TABLE1, SUITE_NAMES, characterize, get_matrix
from .report import ExperimentResult, TableArtifact

__all__ = ["run"]


def run(quick: bool = True) -> ExperimentResult:
    """Characterize every suite matrix and tabulate paper vs measured."""
    lanczos_steps = 150 if quick else 400
    rows = []
    for name in SUITE_NAMES:
        info = PAPER_TABLE1[name]
        A = get_matrix(name)
        props = characterize(A, name, lanczos_steps=lanczos_steps, block_sizes=(128,))
        rows.append(
            [
                name,
                props.n,
                props.nnz,
                info.cond_a,
                props.cond_a,
                info.cond_scaled,
                props.cond_scaled,
                info.rho,
                props.rho_jacobi,
                props.rho_abs,
            ]
        )
    table = TableArtifact(
        title="Table 1: test-matrix characteristics (paper | measured on reconstructions)",
        headers=[
            "matrix",
            "n",
            "nnz",
            "cond(A) paper",
            "cond(A) meas",
            "cond(D^-1A) paper",
            "cond(D^-1A) meas",
            "rho(B) paper",
            "rho(B) meas",
            "rho(|B|) meas",
        ],
        rows=rows,
    )
    notes = [
        "Trefethen matrices are exact reconstructions (published definition); "
        "their nnz and rho match the paper to print precision.",
        "fv* are 9-point stencils (the paper's nnz counts identify the grids "
        "exactly); the reaction shift places rho(B) analytically, the smooth "
        "coefficient field matches cond(A)'s order of magnitude.",
        "Chem97ZtZ's published cond(D^-1A)=7.2e3 is inconsistent with its "
        "rho(M)=0.7889 for an SPD matrix (the spectrum of D^-1A would lie in "
        "[0.21, 1.79], bounding the condition number by ~8.5); the surrogate "
        "matches rho exactly and reports the consistent conditioning.",
    ]
    return ExperimentResult("T1", "Test-matrix characteristics", [table], {}, notes)
