"""X6 — strong/weak scaling of the multiprocess sharded solver.

The paper's multi-GPU section (§3.4) splits the blocks of one
asynchronous solve across devices; :mod:`repro.dist` performs the same
split across worker *processes* with a bounded-staleness outer stage
(two-stage multisplitting).  This experiment measures what that buys and
what it costs on real processes:

* **strong scaling** — one fixed system, increasing shard counts: wall
  time to tolerance, outer sweeps, per-shard sweep rates, and the
  *measured* staleness (always below the configured bound);
* **weak scaling** — system size grows with the shard count, so each
  worker keeps a constant-size local problem; ideal weak scaling keeps
  wall time flat.

On a single-CPU host the workers time-slice one core, so wall times do
not improve with shard count — the sweep counts and staleness columns
are the machine-independent part of the result (the speedup gate lives
in ``benchmarks/bench_shard.py`` and only arms on multi-core hosts).
"""

from __future__ import annotations

import os
import time

from ..dist import DistAsyncSolver
from ..matrices import default_rhs, get_matrix, trefethen
from ..solvers import StoppingCriterion
from .report import ExperimentResult, TableArtifact

__all__ = ["run"]

_TOL = 1e-9
_MAX_STALENESS = 2


def _solve_row(A, b, shards: int, *, block_size: int, maxiter: int):
    solver = DistAsyncSolver(
        shards=shards,
        max_staleness=_MAX_STALENESS,
        local_iterations=2,
        block_size=block_size,
        stopping=StoppingCriterion(tol=_TOL, maxiter=maxiter),
    )
    t0 = time.perf_counter()
    result = solver.solve(A, b)
    seconds = time.perf_counter() - t0
    dist = result.info["dist"]
    rates = [r["sweep_rate"] for r in dist["shards"] if r["sweep_rate"]]
    return {
        "shards": shards,
        "seconds": seconds,
        "sweeps": int(result.info["sweeps"]),
        "converged": bool(result.converged),
        "stale_max": int(dist["staleness_max_observed"]),
        "rate_min": min(rates) if rates else 0.0,
        "rate_max": max(rates) if rates else 0.0,
    }


def run(quick: bool = True) -> ExperimentResult:
    """Strong and weak scaling of ``DistAsyncSolver`` over shard counts."""
    name = "Trefethen_2000" if quick else "Trefethen_20000"
    block_size = 64 if quick else 256
    maxiter = 500
    shard_counts = (1, 2, 4)

    A = get_matrix(name)
    b = default_rhs(A)
    strong_rows = []
    for s in shard_counts:
        row = _solve_row(A, b, s, block_size=block_size, maxiter=maxiter)
        strong_rows.append(
            [
                row["shards"],
                f"{row['seconds']:.3f}",
                row["sweeps"],
                row["converged"],
                f"{row['stale_max']}/{_MAX_STALENESS - 1}",
                f"{row['rate_min']:.0f}-{row['rate_max']:.0f}",
            ]
        )
    strong = TableArtifact(
        title=f"X6a: strong scaling on {name} (async-(2), staleness bound {_MAX_STALENESS})",
        headers=["shards", "seconds", "outer sweeps", "converged", "max staleness (obs/cap)", "sweeps/s per shard"],
        rows=strong_rows,
    )

    base_n = 500 if quick else 5000
    weak_rows = []
    for s in shard_counts:
        An = trefethen(base_n * s)
        bn = default_rhs(An)
        row = _solve_row(An, bn, s, block_size=block_size, maxiter=maxiter)
        weak_rows.append(
            [
                row["shards"],
                An.shape[0],
                f"{row['seconds']:.3f}",
                row["sweeps"],
                row["converged"],
                f"{row['stale_max']}/{_MAX_STALENESS - 1}",
            ]
        )
    weak = TableArtifact(
        title=f"X6b: weak scaling — {base_n} Trefethen rows per shard",
        headers=["shards", "n", "seconds", "outer sweeps", "converged", "max staleness (obs/cap)"],
        rows=weak_rows,
    )

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    notes = [
        "The outer stage runs shards up to (max_staleness - 1) sweeps "
        "apart; the observed-staleness column verifies the bound held "
        "during the measurement, not just in configuration.",
        "Outer sweep counts barely move with the shard count: bounded "
        "staleness costs almost no convergence, the process-level analogue "
        "of the paper's finding that block-asynchronous updates tolerate "
        "stale neighbours.",
        f"This host exposes {cpus} usable CPU core(s); wall-clock scaling "
        "is only meaningful when the workers hold distinct cores.",
    ]
    return ExperimentResult(
        "X6", "Multiprocess sharding: strong/weak scaling", [strong, weak], {}, notes
    )
