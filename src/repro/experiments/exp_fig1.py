"""F1 — Figure 1: sparsity plots of the test matrices.

Regenerates the structure plots as ASCII density grids plus the structural
metrics the rest of the paper leans on: bandwidth and the off-block mass
fraction at the experiment block sizes (the quantity §4.1/§4.3 use to
predict variation and local-iteration gains).
"""

from __future__ import annotations

from ..matrices import SUITE_NAMES, get_matrix
from ..matrices.analysis import render_sparsity
from ..matrices.rcm import bandwidth
from ..sparse import BlockRowView, ELLMatrix
from .report import ExperimentResult, TableArtifact

__all__ = ["run"]

#: One representative per distinct Figure-1 pattern.
_PATTERNS = ("Chem97ZtZ", "fv1", "s1rmt3m1", "Trefethen_2000")


def run(quick: bool = True) -> ExperimentResult:
    """Render sparsity grids and tabulate structural metrics."""
    resolution = 32
    rows = []
    notes = []
    for name in SUITE_NAMES:
        A = get_matrix(name)
        bw = bandwidth(A)
        offs = {}
        for bs in (128, 448):
            if bs < A.shape[0]:
                offs[bs] = BlockRowView(A, block_size=bs).off_block_fraction()
        rows.append(
            [
                name,
                A.shape[0],
                A.nnz,
                bw,
                offs.get(128),
                offs.get(448),
                ELLMatrix.from_csr(A).padding_efficiency(),
            ]
        )
    for name in _PATTERNS:
        art = render_sparsity(get_matrix(name), resolution)
        notes.append(f"sparsity({name}):\n" + art)
    table = TableArtifact(
        title="Figure 1 metrics: structure of the test matrices",
        headers=["matrix", "n", "nnz", "bandwidth", "off-block frac @128", "off-block frac @448", "ELL efficiency"],
        rows=rows,
    )
    return ExperimentResult("F1", "Sparsity structure", [table], {}, notes)
