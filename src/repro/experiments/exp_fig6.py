"""F6 — Figure 6: convergence of Gauss-Seidel, Jacobi and async-(1).

Per test matrix: residual-vs-iteration histories of the paper's three
methods.  The shapes to reproduce (§4.2):

* Gauss-Seidel converges in roughly half the iterations of Jacobi;
* async-(1) tracks Jacobi's per-iteration convergence;
* s1rmt3m1 (ρ(B) ≈ 2.65 > 1) diverges for all three.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core import BlockAsyncSolver
from ..matrices import default_rhs, get_matrix
from ..runtime import RunRecorder
from ..solvers import GaussSeidelSolver, JacobiSolver, StoppingCriterion
from ..solvers.base import SolveResult
from .report import ExperimentResult, TableArtifact, series_table
from .runner import FIG6_ITERS, iterations_to_tolerance, paper_async_config

__all__ = ["run", "convergence_histories"]

#: Accuracy checkpoint used for the iteration-count summary rows.
SUMMARY_TOL = 1e-9


def _batched_async_solve(A, b, solver: BlockAsyncSolver, stopping: StoppingCriterion) -> SolveResult:
    """``solver.solve(A, b)`` executed through the batched engine (R = 1).

    Drives one replica of :class:`repro.core.BatchedAsyncEngine` with the
    solver's own seed and stopping rule — bitwise the sequential solve (the
    engine's exactness contract), so ``--batched`` changes the execution
    path of the figure's async curves without changing the figures.  The
    iteration itself is :class:`repro.runtime.RunLoop` with the ``(1, n)``
    multi-vector as the iterate.

    The solver's partition spec is honoured: permuting strategies advance
    the permuted system (histories in partition order, like the
    sequential path) and report the solution in original row order.
    """
    from ..core.engine import BatchedAsyncEngine
    from ..partition import make_partition
    from ..runtime import RunLoop
    from ..sparse import BlockRowView

    cfg = solver.config
    part = make_partition(A, solver.partition, block_size=cfg.block_size)
    view = BlockRowView(A, partition=part)
    Ap, bp = view.matrix, view.permute_vector(b)
    engine = BatchedAsyncEngine(view, bp, cfg, 1, seed0=int(cfg.seed))
    X = np.zeros((1, A.shape[0]))
    b_norm = float(np.linalg.norm(bp))
    loop = RunLoop(
        stopping,
        residual_every=solver.residual_every,
        recorder=solver.recorder,
    )

    def step(X, it):
        engine.sweep(X)

    outcome = loop.run(
        X,
        step,
        lambda X: float(np.linalg.norm(Ap.residual(X[0], bp))),
        b_norm=b_norm,
        method=f"batched-{cfg.method_name}",
    )
    if solver.recorder is not None:
        solver.recorder.annotate(
            backend=engine.backend, partition=view.partition_telemetry()
        )
    result = SolveResult(
        x=view.unpermute_vector(X[0].copy()),
        residuals=outcome.residuals,
        converged=outcome.converged,
        method=cfg.method_name,
        b_norm=b_norm,
        info={"diverged": outcome.diverged, "batched": True},
    )
    if solver.residual_every != 1:
        result.residual_iters = outcome.residual_iters
        result.info["sweeps"] = outcome.sweeps
    return result


def convergence_histories(
    name: str,
    methods: Dict[str, object],
    maxiter: int,
    *,
    batched: Optional[bool] = None,
):
    """Residual histories of the given solvers on one suite system.

    ``batched=True`` routes the async solvers through the batched engine
    (:func:`_batched_async_solve`); the synchronous baselines always solve
    sequentially.
    """
    A = get_matrix(name)
    b = default_rhs(A)
    out = {}
    for label, solver in methods.items():
        stopping = StoppingCriterion(tol=0.0, maxiter=maxiter, divergence_limit=1e40)
        solver.stopping = stopping
        if batched and isinstance(solver, BlockAsyncSolver) and solver.fault is None:
            out[label] = _batched_async_solve(A, b, solver, stopping)
        else:
            out[label] = solver.solve(A, b)
    return out


def run(
    quick: bool = True,
    *,
    batched: Optional[bool] = None,
    telemetry_path: Optional[str] = None,
) -> ExperimentResult:
    """Generate all six panels of Figure 6.

    ``telemetry_path`` writes a :class:`repro.runtime.RunRecorder` JSON
    document with one run per async solve (per matrix): per-sweep timings,
    the recorded residual history, and engine annotations.
    """
    recorder = RunRecorder() if telemetry_path is not None else None
    tables = []
    series = {}
    summary_rows = []
    for name, full_iters in FIG6_ITERS.items():
        maxiter = min(full_iters, 2000) if quick else full_iters
        results = convergence_histories(
            name,
            {
                "Gauss-Seidel": GaussSeidelSolver(),
                "Jacobi": JacobiSolver(),
                "async-(1)": BlockAsyncSolver(
                    paper_async_config(1, seed=1), recorder=recorder
                ),
            },
            maxiter,
            batched=batched,
        )
        if recorder is not None:
            # The async solve just closed its run; tag it with the matrix.
            recorder.annotate(experiment="F6", matrix=name)
        ys = {}
        npts = min(len(r.residuals) for r in results.values())
        for label, r in results.items():
            ys[label] = r.relative_residuals()[:npts]
        x = np.arange(npts, dtype=float)
        series[f"fig6_{name}"] = dict(ys, x=x)
        tables.append(series_table(f"Figure 6 ({name}): relative residual vs iteration", x, ys))
        row = [name]
        for label in ("Gauss-Seidel", "Jacobi", "async-(1)"):
            r = results[label]
            if r.info.get("diverged") or r.relative_residuals()[-1] > 1.0:
                row.append("diverges")
            else:
                it = iterations_to_tolerance(r, SUMMARY_TOL)
                row.append(it if it is not None else f">{maxiter}")
        summary_rows.append(row)
    tables.insert(
        0,
        TableArtifact(
            title=f"Figure 6 summary: iterations to relative residual {SUMMARY_TOL:g}",
            headers=["matrix", "Gauss-Seidel", "Jacobi", "async-(1)"],
            rows=summary_rows,
        ),
    )
    notes = [
        "Expected shape: Gauss-Seidel ~2x faster per iteration than Jacobi; "
        "async-(1) tracks Jacobi; s1rmt3m1 diverges for all methods.",
    ]
    if batched:
        notes.append("async curves computed via the batched engine (bitwise the sequential path).")
    if quick:
        notes.append("quick mode caps fv3 at 2000 iterations (paper plots 25000); set quick=False / REPRO_FULL=1.")
    if recorder is not None:
        recorder.dump(telemetry_path)
        notes.append(f"async-run telemetry written to {telemetry_path}.")
    return ExperimentResult("F6", "Convergence of GS / Jacobi / async-(1)", tables, series, notes)
