"""X9 — the krylov outer-solver layer: time-to-tolerance vs plain CG.

The §5 outlook closed end-to-end: async-(k) sweeps packaged as
:class:`repro.krylov.AsyncSweepPreconditioner` inside deterministic outer
solvers, *measured* (wall-clock, not modelled — contrast X2) against
unpreconditioned CG across the suite.

Two regimes, one table:

* **Dominant systems** (fv/Trefethen/Chem97ZtZ families) — PCG with the
  symmetrized sequential-sweep operator cuts iterations by an order of
  magnitude and time-to-tolerance severalfold where the system is hard
  enough to amortise the sweep cost (fv3 especially).
* **s1rmt3m1** — the matrix where bare async-(k) *diverges*
  (ρ(|B|) ≫ 1): the snapshot preconditioner (``order="synchronous"``,
  ``local_iterations=1``, τ-scaled ω) is provably SPD, so PCG converges;
  second-order Richardson with the same operator and auto heavy-ball
  parameters converges too.  Async relaxation earns its keep here only
  as an inner component — the experiment's headline.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..core import AsyncConfig, BlockAsyncSolver
from ..krylov import AsyncSweepPreconditioner, make_outer_solver
from ..matrices import default_rhs, get_matrix
from ..solvers import ConjugateGradientSolver, StoppingCriterion
from ..solvers.scaling import estimate_tau
from .report import ExperimentResult, TableArtifact

__all__ = ["run"]


def _snapshot_preconditioner(A, *, sweeps: int, block_size: int) -> AsyncSweepPreconditioner:
    """The SPD snapshot operator: τ-damped Jacobi sweeps (fused backend)."""
    ts = estimate_tau(A)
    lo, hi = 0.9 * ts.lambda_min, 1.05 * ts.lambda_max
    cfg = AsyncConfig(
        local_iterations=1, block_size=block_size, order="synchronous", omega=2.0 / (lo + hi)
    )
    return AsyncSweepPreconditioner(A, sweeps=sweeps, config=cfg, symmetrize=False)


def run(quick: bool = True) -> ExperimentResult:
    """Wall-clock time-to-tolerance across the suite, s1rmt3m1 included."""
    names = ["fv3", "Trefethen_2000", "Chem97ZtZ"] if quick else [
        "fv1", "fv2", "fv3", "Chem97ZtZ", "Trefethen_2000", "Trefethen_20000",
    ]
    tol, maxiter = (1e-10, 20000)
    rows = []
    for name in names:
        A = get_matrix(name)
        b = default_rhs(A)
        stop = StoppingCriterion(tol=tol, maxiter=maxiter)
        t0 = time.perf_counter()
        cg = ConjugateGradientSolver(stopping=stop).solve(A, b)
        t_cg = time.perf_counter() - t0
        t0 = time.perf_counter()
        pcg = make_outer_solver("pcg", A, precond="async:2",
                                config=AsyncConfig(local_iterations=2, block_size=256),
                                stopping=stop).solve(A, b)
        t_pcg = time.perf_counter() - t0
        rows.append([
            name, "pcg[async:2]", cg.iterations, pcg.iterations,
            round(t_cg, 3), round(t_pcg, 3),
            round(t_cg / t_pcg, 2) if t_pcg > 0 else float("inf"),
            "yes" if pcg.converged else "NO",
        ])

    # s1rmt3m1: bare async diverges; PCG and richardson2 converge.
    A = get_matrix("s1rmt3m1")
    b = default_rhs(A)
    s_tol = 1e-6 if quick else 1e-8
    bare = BlockAsyncSolver(
        AsyncConfig(local_iterations=2, block_size=256),
        stopping=StoppingCriterion(tol=s_tol, maxiter=60),
    ).solve(A, b)
    bare_rel = float(bare.relative_residuals()[-1])
    rows.append([
        "s1rmt3m1", "async-(2) [bare]", "-", bare.iterations, "-", "-", "-",
        f"NO (rel {bare_rel:.1e})",
    ])
    stop = StoppingCriterion(tol=s_tol, maxiter=6000)
    t0 = time.perf_counter()
    cg = ConjugateGradientSolver(stopping=dataclasses.replace(stop, maxiter=20000)).solve(A, b)
    t_cg = time.perf_counter() - t0
    P = _snapshot_preconditioner(A, sweeps=2, block_size=256)
    t0 = time.perf_counter()
    pcg = ConjugateGradientSolver(preconditioner=P, stopping=stop).solve(A, b)
    t_pcg = time.perf_counter() - t0
    rows.append([
        "s1rmt3m1", "pcg[snapshot:2]", cg.iterations, pcg.iterations,
        round(t_cg, 3), round(t_pcg, 3),
        round(t_cg / t_pcg, 2) if t_pcg > 0 else float("inf"),
        "yes" if pcg.converged else "NO",
    ])
    t0 = time.perf_counter()
    rich = make_outer_solver(
        "richardson2", A, config=AsyncConfig(block_size=256),
        stopping=StoppingCriterion(tol=s_tol, maxiter=30000),
    ).solve(A, b)
    t_rich = time.perf_counter() - t0
    rows.append([
        "s1rmt3m1", "richardson2[auto]", cg.iterations, rich.iterations,
        round(t_cg, 3), round(t_rich, 3),
        round(t_cg / t_rich, 2) if t_rich > 0 else float("inf"),
        "yes" if rich.converged else "NO",
    ])

    table = TableArtifact(
        title=f"X9: measured time-to-tolerance vs plain CG (tol {tol:g}; s1rmt3m1 at {s_tol:g})",
        headers=[
            "matrix", "method", "CG iters", "iters",
            "CG time (s)", "time (s)", "speedup", "converged",
        ],
        rows=rows,
    )
    notes = [
        "Wall-clock, measured in-process (contrast X2's modelled GPU times).",
        "s1rmt3m1 is the headline: bare async-(2) diverges within 60 sweeps, "
        "while the snapshot-preconditioned CG and the auto-tuned second-order "
        "Richardson both converge — async relaxation as an inner component.",
    ]
    return ExperimentResult("X9", "Krylov preconditioning layer", [table], {}, notes)
