"""X8 — extension: asynchronous restricted additive Schwarz vs async-(k).

Sweeps-to-tolerance of async-RAS on ``+oK`` overlapped partitions against
the plain disjoint-block async-(k) solver, across overlap depths, plus
the partition-level cost of the overlap (duplicated rows/nnz and the
fraction of off-block coupling the halos capture).  The ``o=0`` row runs
the completely unchanged async-(k) engine — the same code path as every
other experiment — so the table's baseline is the historical solver
bitwise, not a re-implementation.
"""

from __future__ import annotations

import numpy as np

from ..core.block_async import BlockAsyncSolver
from ..matrices import default_rhs, get_matrix
from ..partition import make_partition
from ..solvers.base import StoppingCriterion
from .report import ExperimentResult, TableArtifact
from .runner import iterations_to_tolerance, paper_async_config

__all__ = ["run"]

#: §4.1-style moderate block size: enough blocks for the overlap halos to
#: matter on the suite's 2-D grids.
_BLOCK_SIZE = 128

_TOL = 1e-10


def _sweeps_to_tol(A, b, k: int, overlap: int, schwarz: str, maxiter: int):
    spec = f"uniform:{_BLOCK_SIZE}" + (f"+o{overlap}" if overlap else "")
    cfg = paper_async_config(
        k,
        block_size=_BLOCK_SIZE,
        partition=spec,
        schwarz=schwarz if overlap else "none",
    )
    solver = BlockAsyncSolver(cfg, stopping=StoppingCriterion(tol=_TOL, maxiter=maxiter))
    result = solver.solve(A, b)
    it = iterations_to_tolerance(result, _TOL)
    return it, result.method


def run(quick: bool = True) -> ExperimentResult:
    """Sweeps-to-tolerance, async-RAS vs async-(k), across overlap depths."""
    matrices = ["fv1", "fv2"] if quick else ["fv1", "fv2", "fv3", "Trefethen_2000"]
    overlaps = [0, 8, 32, 128] if quick else [0, 1, 8, 32, 128, 256]
    k = 5
    maxiter = 400 if quick else 30000

    conv_rows = []
    metrics = {}
    for name in matrices:
        A = get_matrix(name)
        b = default_rhs(A)
        base = None
        for overlap in overlaps:
            sweeps, method = _sweeps_to_tol(A, b, k, overlap, "ras", maxiter)
            if overlap == 0:
                base = sweeps
            shown = sweeps if sweeps is not None else f">{maxiter}"
            ratio = (
                f"{base / sweeps:.2f}" if (base is not None and sweeps) else "-"
            )
            conv_rows.append([name, method, overlap, shown, ratio])
            if sweeps is not None:
                metrics[f"{name}_o{overlap}_sweeps"] = sweeps
    convergence = TableArtifact(
        title=(
            f"Sweeps to relative residual {_TOL:g} "
            f"(k={k}, uniform:{_BLOCK_SIZE} blocks, +oK overlap, schwarz=ras)"
        ),
        headers=["matrix", "method", "overlap", "sweeps", "speedup vs o=0"],
        rows=conv_rows,
    )

    cost_rows = []
    for name in matrices:
        A = get_matrix(name)
        for overlap in overlaps[1:]:
            part = make_partition(A, f"uniform:{_BLOCK_SIZE}+o{overlap}")
            s = part.ensure_stats(A)
            cost_rows.append(
                [
                    name,
                    overlap,
                    s.overlap_rows,
                    f"{s.overlap_rows / A.shape[0]:.3f}",
                    s.duplicated_nnz,
                    f"{s.halo_captured_fraction:.3f}",
                ]
            )
    cost = TableArtifact(
        title="Overlap cost and halo coverage (partition stats)",
        headers=[
            "matrix",
            "overlap",
            "overlap rows",
            "rows dup. ratio",
            "duplicated nnz",
            "halo-captured coupling",
        ],
        rows=cost_rows,
    )

    notes = [
        "o=0 rows run the unchanged async-(k) engine (schwarz dispatch only "
        "engages on overlapped partitions), so the baseline is the historical "
        "solver bitwise.",
        "Overlap pays through the halo-captured coupling column: once the "
        "extended blocks see most of the off-block mass, each block solves "
        "nearly the full local physics and sweeps drop sharply; past that "
        "point extra rows only duplicate work.",
        "RAS gains need k >= 2: with one inner sweep the extended block never "
        "propagates halo information into the owned rows before the "
        "restriction discards the halo iterate.",
    ]
    return ExperimentResult(
        "X8",
        "Extension: asynchronous restricted additive Schwarz",
        [convergence, cost],
        metrics,
        notes,
    )
