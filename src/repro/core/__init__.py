"""The paper's contribution: block-asynchronous relaxation.

* :mod:`repro.core.schedules` — the update function ``u(·)`` and shift
  function ``s(·,·)`` machinery of §2.2: execution orders plus per-sweep
  freshness plans, with configurable ordering, concurrency, staleness and
  write-visibility.
* :mod:`repro.core.engine` — the asynchronous execution engine: the software
  analogue of the CUDA kernel of §3.3, executing block updates in schedule
  order against a shared iterate with per-entry read races.
* :mod:`repro.core.block_async` — :class:`BlockAsyncSolver`, the
  ``async-(k)`` method (Algorithm 1 / Eq. (4)).
* :mod:`repro.core.fault` — the §4.5 hardware-failure scenarios (hard
  freeze and silent corruption).
* :mod:`repro.core.detection` — convergence-anomaly detection of silent
  errors (the §4.5 outlook, operationalised).
* :mod:`repro.core.localize` — fault localization: which blocks'
  components need reassignment (the "where" to detection's "when").
* :mod:`repro.core.threaded` — the *genuinely* asynchronous variant on
  real CPU threads (no seeds, no model — actual races).
* :mod:`repro.core.convergence` — convergence theory: Strikwerda's
  ρ(|B|) < 1 condition, well-posedness checks, rate predictions.
"""

from .schedules import AsyncConfig, WaveScheduler, UPDATE_ORDERS, replica_rngs
from .engine import AsyncEngine, BatchedAsyncEngine
from .block_async import BlockAsyncSolver
from .fault import FAULT_KINDS, FaultScenario
from .detection import Alert, SilentErrorDetector
from .threaded import ThreadedAsyncSolver
from .localize import BlockResidualProfile, FaultLocalizer
from .recovery import SelfHealingSolver
from .convergence import (
    is_diagonally_dominant,
    async_convergence_guaranteed,
    jacobi_convergence_guaranteed,
    predicted_iterations,
    check_well_posedness,
)

__all__ = [
    "AsyncConfig",
    "WaveScheduler",
    "UPDATE_ORDERS",
    "replica_rngs",
    "AsyncEngine",
    "BatchedAsyncEngine",
    "BlockAsyncSolver",
    "FaultScenario",
    "FAULT_KINDS",
    "Alert",
    "SilentErrorDetector",
    "ThreadedAsyncSolver",
    "BlockResidualProfile",
    "FaultLocalizer",
    "SelfHealingSolver",
    "is_diagonally_dominant",
    "async_convergence_guaranteed",
    "jacobi_convergence_guaranteed",
    "predicted_iterations",
    "check_well_posedness",
]
