"""Truly asynchronous execution on CPU threads.

The seeded engine in :mod:`repro.core.engine` *models* asynchronism so
experiments are reproducible.  This module is the other end of the
spectrum: **genuinely chaotic** iteration, with one OS thread per simulated
"multiprocessor", all hammering one shared NumPy iterate with no locks and
no barriers.  NumPy kernels release the GIL, so reads and writes from
different workers really do interleave nondeterministically — the honest
CPU analogue of the paper's CUDA kernels, useful to validate that nothing
about the *simulated* schedule model is load-bearing for convergence.

Semantics per worker: loop over its assigned blocks; per block, gather the
off-block contribution from the live shared iterate (racy by design),
run *k* local Jacobi sweeps, write back.  Workers stop when a monitor
observes the (racily computed) residual under tolerance, or after a sweep
budget.  The §2.2 well-posedness conditions hold by construction: every
block belongs to exactly one worker that updates it every pass (condition
1), and staleness is bounded by one worker pass (condition 2) as long as
every worker keeps making progress.

This engine is **not reproducible** run to run — that is the point.  Tests
assert outcome properties (convergence, well-posedness, accuracy), never
exact histories.

Two honest CPython caveats, both *measured* rather than hidden: (a) the
GIL means workers interleave at the switch-interval granularity, so at toy
problem sizes many passes execute against frozen neighbours and the
per-pass rate degrades (the bounded-staleness rate penalty of asynchronous
theory, amplified); (b) effective parallel speed-up is limited to the
NumPy-kernel fraction that releases the GIL.  At the paper's problem
sizes (n ≈ 10⁴) behaviour matches the seeded engine closely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .._util import check_square, check_vector
from ..runtime import RunLoop, StopRun
from ..runtime.recorder import RunRecorder
from ..solvers.base import SolveResult, StoppingCriterion
from ..sparse import BlockRowView, CSRMatrix

__all__ = ["ThreadedAsyncSolver"]


@dataclass
class _SharedState:
    """State shared across workers (deliberately lock-free where racy)."""

    x: np.ndarray
    stop: threading.Event = field(default_factory=threading.Event)
    #: Completed passes per worker (written by the owner only).
    passes: Optional[np.ndarray] = None


class ThreadedAsyncSolver:
    """async-(k) on real threads — genuinely nondeterministic.

    Parameters
    ----------
    local_iterations:
        *k* in async-(k).
    block_size:
        Rows per block.
    workers:
        Thread count (the "multiprocessors"); blocks are dealt round-robin.
    omega:
        Local relaxation weight (τ for ρ(B) > 1 systems).
    stopping:
        Tolerance / budget.  ``maxiter`` bounds each worker's number of
        passes over its blocks (the analogue of global iterations).
    poll_interval:
        Seconds between the monitor's residual checks.
    switch_interval:
        CPython thread-switch interval (seconds) installed for the
        duration of the solve.  The default 5 ms interval would let each
        worker burn ~dozens of passes against *frozen* neighbours per GIL
        slot — coarse block-coordinate descent rather than asynchronous
        iteration; 0.1 ms restores fine-grained interleaving.  The previous
        value is restored afterwards.
    recorder:
        Optional :class:`repro.runtime.RunRecorder` telemetry sink for the
        monitor's residual samples.

    Examples
    --------
    >>> from repro import get_matrix, default_rhs
    >>> from repro.core.threaded import ThreadedAsyncSolver
    >>> A = get_matrix("Trefethen_2000"); b = default_rhs(A)
    >>> result = ThreadedAsyncSolver(local_iterations=5, workers=4).solve(A, b)
    >>> result.converged
    True
    """

    name = "threaded-async"

    def __init__(
        self,
        local_iterations: int = 1,
        block_size: int = 448,
        *,
        workers: int = 4,
        omega: float = 1.0,
        stopping: Optional[StoppingCriterion] = None,
        poll_interval: float = 1e-3,
        switch_interval: float = 1e-4,
        recorder: Optional[RunRecorder] = None,
    ):
        if local_iterations < 1:
            raise ValueError("local_iterations must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if omega <= 0:
            raise ValueError("omega must be positive")
        self.local_iterations = local_iterations
        self.block_size = block_size
        self.workers = workers
        self.omega = omega
        self.stopping = stopping if stopping is not None else StoppingCriterion(maxiter=500)
        self.poll_interval = poll_interval
        if switch_interval <= 0:
            raise ValueError("switch_interval must be positive")
        self.switch_interval = switch_interval
        self.recorder = recorder
        self.name = f"threaded-async-({local_iterations})"

    # ------------------------------------------------------------------ #

    def _worker(self, wid: int, blocks, b: np.ndarray, state: _SharedState) -> None:
        x = state.x  # the shared iterate — all reads/writes are racy
        k = self.local_iterations
        omega = self.omega
        for _ in range(self.stopping.maxiter):
            if state.stop.is_set():
                break
            for blk in blocks:
                rows = blk.rows
                # Racy gather: other workers may write mid-read. That is
                # the chaotic shift function, for real.
                s = b[rows] - blk.external.matvec(x)
                for _ in range(k):
                    old = x[rows]
                    new = (s - blk.local_off.matvec(x)) / blk.diag
                    if omega != 1.0:
                        new = (1.0 - omega) * old + omega * new
                    x[rows] = new
            state.passes[wid] += 1
        # A finished worker lets the others keep refining until the
        # monitor stops the run; it simply exits (its components stay).

    def solve(self, A: CSRMatrix, b: np.ndarray, x0: Optional[np.ndarray] = None) -> SolveResult:
        """Run the threaded iteration until tolerance or pass budget."""
        n = check_square(A.shape, "threaded-async matrix")
        b = check_vector(b, n, "b")
        view = BlockRowView(A, block_size=self.block_size)
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()

        assignment: List[List] = [[] for _ in range(self.workers)]
        for blk in view.blocks:
            assignment[blk.index % self.workers].append(blk)
        # Workers with no blocks would idle forever at tiny sizes; the
        # pass counters are sized to the *filtered* assignment so
        # worker_passes always has exactly info["workers"] entries (no
        # trailing zeros for threads that were never spawned).
        assignment = [a for a in assignment if a]
        state = _SharedState(x=x)
        state.passes = np.zeros(len(assignment), dtype=np.int64)

        b_norm = float(np.linalg.norm(b))
        threshold = self.stopping.threshold(b_norm)
        residual0 = float(np.linalg.norm(A.residual(x, b)))
        residuals = [residual0]
        converged = residual0 <= threshold

        threads = [
            threading.Thread(target=self._worker, args=(w, blocks, b, state), daemon=True)
            for w, blocks in enumerate(assignment)
        ]
        if not converged:
            import dataclasses
            import sys

            previous_switch = sys.getswitchinterval()
            sys.setswitchinterval(self.switch_interval)
            for t in threads:
                t.start()

            def step(x, it):
                # The monitor performs no numerical work: workers own the
                # iterate; each "step" waits one polling interval (ending
                # the run once every worker exhausted its pass budget) and
                # the loop then samples the racy residual.
                if all(not t.is_alive() for t in threads):
                    raise StopRun("workers-exhausted")
                time.sleep(self.poll_interval)

            # The monitor's pass budget lives with the workers, not here:
            # it keeps sampling until tolerance, divergence, or worker
            # exhaustion ends the run.
            monitor = RunLoop(
                dataclasses.replace(self.stopping, maxiter=sys.maxsize),
                recorder=self.recorder,
            )
            try:
                outcome = monitor.run(
                    x,
                    step,
                    lambda x: float(np.linalg.norm(A.residual(x, b))),
                    b_norm=b_norm,
                    method=self.name,
                    r0=residual0,
                )
            finally:
                state.stop.set()
                for t in threads:
                    t.join()
                sys.setswitchinterval(previous_switch)
            residuals = list(outcome.residuals)
            # Final, race-free residual.
            residuals.append(float(np.linalg.norm(A.residual(x, b))))
            converged = residuals[-1] <= threshold
            if self.recorder is not None:
                self.recorder.record_residual(outcome.sweeps, residuals[-1])
                self.recorder.annotate(
                    workers=len(assignment),
                    worker_passes=state.passes.tolist(),
                    final_residual=residuals[-1],
                )

        return SolveResult(
            x=x,
            residuals=np.array(residuals),
            converged=converged,
            method=self.name,
            b_norm=b_norm,
            info={
                "diverged": bool(self.stopping.diverged(residuals[-1])),
                "workers": len(assignment),
                "worker_passes": state.passes.copy(),
                "nblocks": view.nblocks,
            },
        )
