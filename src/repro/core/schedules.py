"""Update orders, staleness and write visibility — the chaotic part.

Chazan–Miranker asynchronous iteration (paper §2.2) is characterised by an
update function ``u(k)`` (which component is updated at step *k*) and a shift
function ``s(k, j)`` (how stale the value of component *j* is at step *k*).
On a GPU neither is chosen by the programmer: the hardware thread-block
scheduler determines both.  This module models that scheduler as an
execution **order** over the blocks plus a **freshness plan**: per sweep,
each block gets a fraction γ of off-block components whose current-sweep
writes it observes (0 = pure snapshot/Jacobi semantics, 1 = fully live /
Gauss-Seidel-in-order semantics).

Knobs, and what they reproduce:

``order``
    * ``"synchronous"`` — every block reads the sweep-start snapshot
      (γ = 0).  With one local iteration this makes async-(1) *identical*
      to global Jacobi (a test fixture, and the zero-asynchronism
      reference).
    * ``"sequential"`` / ``"reversed"`` — fixed block order; with
      ``concurrency`` below the block count, the pipeline tail reads live:
      block Gauss-Seidel flavour.
    * ``"random"`` — fresh random permutation every sweep: i.i.d. chaos.
    * ``"gpu"`` — the observed GPU behaviour (§4.1): the scheduler draws
      its orders from a small recurring pool of patterns with light
      per-sweep jitter, and resident blocks see a small race-rate γ of
      fresh components (staggered warp completion).

``concurrency``
    Number of simultaneously resident blocks — on hardware, SM count ×
    blocks per SM (:func:`repro.gpu.device.occupancy`).  Positions beyond
    it form the pipeline tail and read live values (γ = 1); large values
    push behaviour toward Jacobi, small toward Gauss-Seidel.

``stale_read_prob``
    Explicit override of the staleness: γ for resident blocks is
    ``1 − stale_read_prob``.  The default ``None`` derives it from the
    device model (see :meth:`WaveScheduler.effective_stale_prob`).

``deferred_write_prob``
    Probability a block's write becomes visible only at the end of the
    sweep (models write-buffer latency).  Together with the snapshot reads
    this bounds the shift function by two global sweeps, satisfying
    condition (2) of §2.2; :func:`repro.core.convergence.check_well_posedness`
    verifies condition (1) from the engine's update counts.

All run-to-run nondeterminism is realised **per entry** inside the engine
(each off-block coupling independently races with probability γ), so the
*magnitude* of the §4.1 variation is decided by the matrix: many small
off-block couplings self-average, few heavy ones do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._util import RNGLike, as_rng
from ..partition import Partition, parse_partition_spec

__all__ = [
    "AsyncConfig",
    "WaveScheduler",
    "UPDATE_ORDERS",
    "BACKENDS",
    "SCHWARZ_MODES",
    "replica_rngs",
]


def replica_rngs(seed0: int, nreplicas: int) -> List[np.random.Generator]:
    """Independent per-replica generators for an ensemble of schedules.

    Replica *r* gets ``as_rng(seed0 + r)`` — bitwise the stream a
    sequential ensemble hands its engine when it runs
    ``dataclasses.replace(config, seed=seed0 + r)`` — so a batched engine
    drawing replica *r*'s schedule from ``replica_rngs(seed0, R)[r]``
    reproduces the sequential run for seed ``seed0 + r`` exactly.
    """
    if nreplicas < 1:
        raise ValueError("nreplicas must be >= 1")
    return [as_rng(seed0 + r) for r in range(nreplicas)]

#: Recognised update-order policies.
UPDATE_ORDERS = ("synchronous", "sequential", "reversed", "random", "gpu")

#: Recognised sweep-execution backends (see :mod:`repro.perf`):
#: ``"auto"`` prefers the matrix-free stencil path where structure
#: detection succeeds, fuses whole sweeps whenever that is exact for the
#: configured regime, and falls back to the per-block reference loop
#: otherwise; ``"stencil"``/``"fused"`` demand their path (an error where
#: it is not exact, or — stencil — where detection fails);
#: ``"reference"`` forces the per-block loop everywhere.
BACKENDS = ("auto", "stencil", "fused", "reference")

#: Recognised Schwarz modes: ``"none"`` is the paper's disjoint
#: block-asynchronous method; ``"ras"`` sweeps each block's *extended*
#: (overlapped) system and folds back only owned rows (restricted additive
#: Schwarz); ``"wras"`` folds every extended row with partition-of-unity
#: weights (weighted RAS).  The overlapped modes engage only when the
#: partition spec carries an ``+oK`` suffix with K > 0 — at overlap 0 they
#: are bitwise the disjoint method and run the classic pipeline.
SCHWARZ_MODES = ("none", "ras", "wras")


@dataclass(frozen=True)
class AsyncConfig:
    """Configuration of a block-asynchronous run.

    Attributes
    ----------
    local_iterations:
        *k* in async-(k): Jacobi sweeps per block update with frozen
        off-block values (Algorithm 1's inner loop).
    block_size:
        Rows per block ("subdomain"); the paper uses 128–512 (§3.2 uses a
        thread-block size of 448, §4.1 studies 128).
    order:
        Update-order policy, one of :data:`UPDATE_ORDERS`.
    concurrency:
        Blocks per wave; ``None`` means all blocks in one wave.
    stale_read_prob / deferred_write_prob:
        Staleness knobs, see the module docstring.
    omega:
        Relaxation weight of the local updates (1 = plain Jacobi updates;
        the τ of :func:`repro.solvers.estimate_tau` for ρ(B) > 1 systems).
    pattern_pool / jitter_swaps:
        "gpu" order parameters: number of recurring patterns the scheduler
        cycles through, and random transpositions applied per sweep.
    backend:
        Sweep-execution backend, one of :data:`BACKENDS`.  An execution
        strategy, not a semantic knob: every backend produces bitwise the
        same iterates wherever it is allowed to run (:mod:`repro.perf`).
    partition:
        ``strategy[:param][+oK]`` spec naming the row-block decomposition
        strategy (see :mod:`repro.partition.strategies`): ``"uniform"``
        (the default — bitwise-identical to the historical
        ``block_size`` cuts), ``"work_balanced"``, ``"rcm"``,
        ``"clustered"``.  A missing param falls back to
        :attr:`block_size`; an ``+oK`` suffix sets the halo depth the
        Schwarz modes sweep past each block's owned rows.
    schwarz:
        Schwarz mode, one of :data:`SCHWARZ_MODES`.  ``"ras"``/``"wras"``
        sweep extended (overlapped) block systems and restrict the
        fold-back; with a zero-overlap partition they are bitwise
        ``"none"`` and the engines run the classic pipeline unchanged.
    seed:
        Master seed of the run — two runs with the same seed are bitwise
        identical; different seeds model different nondeterministic
        hardware schedules (§4.1's 1000-run study varies exactly this).
    residual_every:
        Full-residual recording cadence *m* of the run loop
        (:class:`repro.runtime.RunLoop`): ``||b − A x||`` is evaluated and
        the stopping rule applied every *m* global sweeps.  The default 1
        — used by every paper figure — records each sweep; larger values
        skip the dominant non-sweep cost on large systems.  The sweeps
        themselves never depend on the evaluations, so the iterates
        visited are identical for every *m*.
    """

    local_iterations: int = 1
    block_size: int = 128
    order: str = "gpu"
    concurrency: Optional[int] = None
    stale_read_prob: Optional[float] = None
    deferred_write_prob: float = 0.0
    omega: float = 1.0
    pattern_pool: int = 4
    jitter_swaps: int = 2
    backend: str = "auto"
    partition: str = "uniform"
    schwarz: str = "none"
    seed: RNGLike = 0
    residual_every: int = 1

    def __post_init__(self) -> None:
        if self.local_iterations < 1:
            raise ValueError("local_iterations must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.order not in UPDATE_ORDERS:
            raise ValueError(f"order must be one of {UPDATE_ORDERS}, got {self.order!r}")
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.stale_read_prob is not None and not (0.0 <= self.stale_read_prob <= 1.0):
            raise ValueError("stale_read_prob must be in [0, 1]")
        if not (0.0 <= self.deferred_write_prob <= 1.0):
            raise ValueError("deferred_write_prob must be in [0, 1]")
        if self.omega <= 0:
            raise ValueError("omega must be positive")
        if self.pattern_pool < 1:
            raise ValueError("pattern_pool must be >= 1")
        if self.jitter_swaps < 0:
            raise ValueError("jitter_swaps must be >= 0")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        parse_partition_spec(self.partition)  # raises ValueError on bad specs
        if self.schwarz not in SCHWARZ_MODES:
            raise ValueError(f"schwarz must be one of {SCHWARZ_MODES}, got {self.schwarz!r}")
        if self.residual_every < 1:
            raise ValueError("residual_every must be >= 1")

    @property
    def schwarz_overlap(self) -> int:
        """The halo depth the Schwarz mode will sweep with (0 when inactive).

        Nonzero exactly when :attr:`schwarz` is an overlapped mode *and*
        the partition spec carries a positive ``+oK`` suffix — the single
        predicate every dispatch site uses, so "RAS requested but overlap
        0" degenerates to the classic engines everywhere at once.
        """
        if self.schwarz == "none":
            return 0
        return parse_partition_spec(self.partition)[2]

    @property
    def method_name(self) -> str:
        """Paper-style tag, e.g. ``async-(5)`` or ``async-RAS(5,o2)``."""
        overlap = self.schwarz_overlap
        if overlap > 0:
            tag = "RAS" if self.schwarz == "ras" else "wRAS"
            return f"async-{tag}({self.local_iterations},o{overlap})"
        return f"async-({self.local_iterations})"


class WaveScheduler:
    """Produces, per sweep, the wave decomposition of the block set.

    Parameters
    ----------
    partition:
        The :class:`repro.partition.Partition` being scheduled — the block
        count (and hence the wave shapes and staleness bound) comes from
        it.  A bare block count (``int``) is accepted for partition-free
        callers.
    config:
        The :class:`AsyncConfig` whose ordering knobs apply.
    rng:
        Generator supplying all schedule randomness (owned by the engine so
        schedule and staleness draws share one reproducible stream).
    """

    def __init__(self, partition, config: AsyncConfig, rng: np.random.Generator):
        if isinstance(partition, Partition):
            self.partition: Optional[Partition] = partition
            nblocks = partition.nblocks
        else:
            self.partition = None
            nblocks = int(partition)
        if nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        self.nblocks = nblocks
        self.config = config
        conc = config.concurrency
        self.concurrency = nblocks if conc is None else min(conc, nblocks)
        if config.order == "synchronous":
            self.concurrency = nblocks
        self._gamma: Optional[np.ndarray] = None
        self._patterns: Optional[List[np.ndarray]] = None
        if config.order == "gpu":
            # The recurring pattern pool: the hardware scheduler's order is
            # nondeterministic *across runs* but repeats *within* a run.
            self._patterns = [rng.permutation(nblocks) for _ in range(config.pattern_pool)]


    def order_for_sweep(self, sweep: int, rng: np.random.Generator) -> np.ndarray:
        """Block execution order for the given sweep."""
        cfg = self.config
        if cfg.order in ("synchronous", "sequential"):
            return np.arange(self.nblocks, dtype=np.int64)
        if cfg.order == "reversed":
            return np.arange(self.nblocks - 1, -1, -1, dtype=np.int64)
        if cfg.order == "random":
            return rng.permutation(self.nblocks)
        # "gpu": recurring pattern + light jitter.
        assert self._patterns is not None
        base = self._patterns[sweep % len(self._patterns)].copy()
        for _ in range(cfg.jitter_swaps):
            i, j = rng.integers(0, self.nblocks, size=2)
            base[i], base[j] = base[j], base[i]
        return base

    def waves(self, sweep: int, rng: np.random.Generator) -> List[np.ndarray]:
        """Wave decomposition (list of block-id arrays) for the given sweep."""
        order = self.order_for_sweep(sweep, rng)
        c = self.concurrency
        return [order[i : i + c] for i in range(0, len(order), c)]

    def plan_for_sweep(self, sweep: int, rng: np.random.Generator):
        """(execution order, per-position freshness fractions γ) for one sweep.

        ``gamma[pos]`` is the fraction of off-block *components* whose
        writes from this sweep land before the block at position *pos*
        performs its read: 0 = the pure sweep-start snapshot (Jacobi
        semantics), 1 = fully live memory (Gauss-Seidel semantics in
        schedule order).  Two regimes compose it:

        * **pipeline tail** — positions beyond the occupancy window start
          only after earlier blocks finished, so they read live: γ = 1;
        * **in-flight races** — resident blocks still see a small fraction
          *f* of fresh components (staggered warp completion), with *f*
          derived from the configured/derived staleness.

        The race *rate* γ is a deterministic device property — identical
        for every block and every run; all randomness lives in the
        per-entry realisations inside the engine.  Systems with many small
        off-block couplings therefore self-average (fv1's variation is
        tiny) while systems with a few heavy couplings do not (Trefethen's
        is large) — the §4.1 contrast is decided by the matrix, not by a
        knob.
        """
        return self.order_for_sweep(sweep, rng), self.gamma_profile()

    def gamma_profile(self) -> np.ndarray:
        """Per-position freshness fractions γ — deterministic and sweep-free.

        γ is a device property (occupancy + staleness), not a draw: it
        depends only on the configuration, so it is computed once and
        cached, and the backend dispatch of :mod:`repro.perf` can classify
        the execution regime at engine construction.  Callers must not
        mutate the returned array.
        """
        if self._gamma is None:
            if self.config.order == "synchronous":
                self._gamma = np.zeros(self.nblocks)
            else:
                gamma = np.full(self.nblocks, 1.0 - self.effective_stale_prob())
                if self.concurrency < self.nblocks:
                    gamma[self.concurrency :] = 1.0  # the pipeline tail reads live
                self._gamma = gamma
        return self._gamma

    #: Residual-freshness cap for the "gpu" order: even among concurrent
    #: blocks, staggered completion means a few percent of reads see fresh
    #: data — the seed of the paper's run-to-run variation.
    GPU_STALENESS_CAP = 0.95

    def effective_stale_prob(self) -> float:
        """The stale-read probability actually used by the engine.

        Explicit configuration wins; otherwise it is derived from the
        occupancy as described in the module docstring.
        """
        cfg = self.config
        if cfg.order == "synchronous":
            return 1.0
        if cfg.stale_read_prob is not None:
            return cfg.stale_read_prob
        if cfg.order in ("gpu", "random"):
            # Resident blocks are concurrent, but staggered completion
            # leaves a small mean fresh fraction.
            return self.GPU_STALENESS_CAP
        return 1.0

    def staleness_bound(self) -> int:
        """Upper bound on the shift function, in global sweeps.

        Reads are at worst one sweep old (the sweep-start snapshot) and
        writes at worst deferred to the sweep end, so the Chazan–Miranker
        shift is bounded by 2 sweeps — condition (2) of §2.2 holds for
        every configuration this scheduler can produce.
        """
        return 2
