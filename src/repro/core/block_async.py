"""``async-(k)``: the block-asynchronous relaxation solver.

:class:`BlockAsyncSolver` wires the pieces together — block decomposition,
wave scheduler, asynchronous engine, optional fault scenario — behind the
package-wide :class:`repro.solvers.IterativeSolver` interface, so its
residual histories are directly comparable with the synchronous baselines'.

Iteration counting follows the paper's convention (§4.3): one *global
iteration* updates every component once at the outer level, regardless of
how many local Jacobi sweeps (*k*) run inside each block — the local sweeps
"almost come for free" on the hardware, and the timing model
(:mod:`repro.gpu.timing`) prices them accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .._util import check_square, check_vector
from ..partition import Partition, make_partition
from ..runtime.recorder import RunRecorder
from ..sparse import BlockRowView, CSRMatrix
from ..solvers.base import IterativeSolver, SolveResult, StoppingCriterion
from .engine import AsyncEngine
from .fault import FaultScenario
from .schedules import AsyncConfig

__all__ = ["BlockAsyncSolver"]


@dataclass
class _AsyncState:
    view: BlockRowView
    engine: AsyncEngine


class BlockAsyncSolver(IterativeSolver):
    """Block-asynchronous relaxation (paper Algorithm 1 / Eq. (4)).

    Parameters
    ----------
    config:
        Full asynchronism configuration; alternatively pass the common
        shortcuts below and a default config is built.
    local_iterations, block_size, seed, omega:
        Shortcuts overriding the corresponding :class:`AsyncConfig` fields
        (ignored if *config* is given).
    fault:
        Optional :class:`FaultScenario` (§4.5 experiments).  With a
        permuting partition, frozen rows are interpreted in partition
        order (the order the blocks actually sweep).
    partition:
        Row-block decomposition: a ``strategy[:param][+oK]`` spec string
        (see :mod:`repro.partition.strategies`) or a ready-made
        :class:`repro.partition.Partition`.  Overrides
        ``config.partition``; the default ``"uniform"`` reproduces the
        historical ``block_size`` cuts bitwise.  An ``+oK`` overlap
        suffix combined with ``config.schwarz="ras"``/``"wras"`` runs
        asynchronous restricted-Schwarz sweeps on the extended blocks.  Strategies carrying a
        row permutation (``rcm``, ``clustered``) iterate on the permuted
        system — residual histories are reported in that (partition)
        order, matching a direct solve of the permuted system bitwise —
        while the returned solution is mapped back to original row order.
    stopping:
        Shared stopping rule.
    residual_every:
        Full-residual recording cadence (see
        :class:`repro.runtime.RunLoop`); defaults to
        ``config.residual_every``.
    recorder:
        Optional :class:`repro.runtime.RunRecorder` telemetry sink — also
        attached to the engine so fault/heal events are captured.

    Examples
    --------
    >>> from repro import BlockAsyncSolver, get_matrix, default_rhs
    >>> A = get_matrix("fv1"); b = default_rhs(A)
    >>> result = BlockAsyncSolver(local_iterations=5, seed=42).solve(A, b)
    >>> result.method
    'async-(5)'
    """

    name = "async-(1)"

    def __init__(
        self,
        config: Optional[AsyncConfig] = None,
        *,
        local_iterations: int = 1,
        block_size: int = 128,
        seed=0,
        omega: float = 1.0,
        fault: Optional[FaultScenario] = None,
        partition: Optional[Union[str, Partition]] = None,
        stopping: Optional[StoppingCriterion] = None,
        residual_every: Optional[int] = None,
        recorder: Optional[RunRecorder] = None,
    ):
        if config is None:
            config = AsyncConfig(
                local_iterations=local_iterations,
                block_size=block_size,
                seed=seed,
                omega=omega,
            )
        super().__init__(
            stopping,
            residual_every=(
                config.residual_every if residual_every is None else residual_every
            ),
            recorder=recorder,
        )
        self.config = config
        self.fault = fault
        self.partition = partition if partition is not None else config.partition
        self.name = config.method_name

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` on the configured partition.

        Builds the :class:`repro.partition.Partition` and block view up
        front, then routes through the shared partition-aware driver: the
        default ``uniform`` path is bitwise the historical flow, while
        permuting strategies iterate in partition order and report the
        solution back in original row order (see the class docstring).
        """
        n = check_square(A.shape, f"{self.name} matrix")
        check_vector(b, n, "b")
        part = make_partition(A, self.partition, block_size=self.config.block_size)
        view = BlockRowView(A, partition=part)
        return self._solve_partitioned(view, A, b, x0)

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _AsyncState:
        view = self._pending_view
        if view is None or view.matrix is not A:
            part = make_partition(A, self.partition, block_size=self.config.block_size)
            if part.perm is not None:
                raise ValueError(
                    "permuting partitions must go through solve(); "
                    "_setup received the unpermuted matrix"
                )
            view = BlockRowView(A, partition=part)
        engine = AsyncEngine(view, b, self.config, fault=self.fault)
        engine.recorder = self.recorder
        return _AsyncState(view=view, engine=engine)

    def _iterate(self, state: _AsyncState, x: np.ndarray) -> np.ndarray:
        return state.engine.sweep(x)

    def _finalize(self, state: _AsyncState, result: SolveResult) -> None:
        result.info.update(
            {
                "nblocks": state.view.nblocks,
                "block_size": self.config.block_size,
                "local_iterations": self.config.local_iterations,
                "update_counts": state.engine.update_counts.copy(),
                "staleness_bound": state.engine.scheduler.staleness_bound(),
                "off_block_fraction": state.view.off_block_fraction(),
                "order": self.config.order,
                "partition": state.view.partition_telemetry(),
            }
        )
        if self.fault is not None:
            result.info["fault"] = self.fault.label
        if self.recorder is not None:
            self.recorder.annotate(
                backend=state.engine.backend,
                nblocks=state.view.nblocks,
                staleness_bound=state.engine.scheduler.staleness_bound(),
                update_counts=state.engine.update_counts.tolist(),
                partition=state.view.partition_telemetry(),
            )
