"""Fault localization from per-block residuals.

§4.5's recovery story assumes "the operating system detects the hardware
failure and may reconfigure the algorithm during runtime by assigning the
respective components to other cores".  Detection-in-time is handled by
:class:`repro.core.detection.SilentErrorDetector`; this module answers the
*where*: which blocks' components should be reassigned?

The signal is the block-local residual.  For a healthy convergent run all
block residuals shrink together; a block whose components are frozen or
silently corrupted keeps a stubbornly high residual — and so do its
neighbours, but at one coupling-factor less.  Ranking blocks by their
share of the global residual (optionally normalised by a healthy-phase
baseline) localizes the failure to block granularity, which is exactly
the granularity at which the runtime can reassign work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._util import check_vector
from ..sparse import BlockRowView

__all__ = ["BlockResidualProfile", "FaultLocalizer"]


@dataclass
class BlockResidualProfile:
    """Per-block residual norms of one iterate."""

    norms: np.ndarray      #: l2 residual norm per block
    boundaries: np.ndarray

    @property
    def total(self) -> float:
        """Global residual norm implied by the blocks."""
        return float(np.sqrt(np.sum(self.norms**2)))

    def shares(self) -> np.ndarray:
        """Each block's fraction of the squared global residual."""
        t2 = float(np.sum(self.norms**2))
        if t2 == 0.0:
            return np.zeros_like(self.norms)
        return self.norms**2 / t2

    def ranked(self) -> np.ndarray:
        """Block indices, most suspicious (largest residual) first."""
        return np.argsort(self.norms)[::-1]


class FaultLocalizer:
    """Ranks blocks by anomalous residual contribution.

    Parameters
    ----------
    view:
        The block decomposition the solver runs on.
    b:
        Right-hand side.

    Usage: take a :meth:`snapshot` during the healthy phase (e.g. when the
    detector's warm-up ends), then after an alert call :meth:`suspects`
    with the current iterate — blocks whose residual share grew the most
    against the baseline come first.  Without a baseline, raw residual
    shares are used (adequate once the healthy parts have converged away).
    """

    def __init__(self, view: BlockRowView, b: np.ndarray):
        self.view = view
        self.b = check_vector(b, view.n, "b")
        self._baseline: Optional[np.ndarray] = None

    def profile(self, x: np.ndarray) -> BlockResidualProfile:
        """Per-block residual norms of *x*."""
        x = check_vector(x, self.view.n, "x")
        r = self.view.matrix.residual(x, self.b)
        norms = np.array(
            [float(np.linalg.norm(r[blk.rows])) for blk in self.view.blocks]
        )
        return BlockResidualProfile(norms=norms, boundaries=self.view.boundaries.copy())

    def snapshot(self, x: np.ndarray) -> None:
        """Record the healthy-phase residual *shares* as the baseline."""
        self._baseline = self.profile(x).shares()

    def suspects(self, x: np.ndarray, *, top: int = 3) -> List[int]:
        """The *top* most anomalous block indices for iterate *x*.

        With a baseline: ranked by share growth (share − baseline share);
        without: ranked by share.
        """
        if top < 1:
            raise ValueError("top must be >= 1")
        shares = self.profile(x).shares()
        score = shares - self._baseline if self._baseline is not None else shares
        order = np.argsort(score)[::-1]
        return [int(i) for i in order[:top]]

    def suspect_components(self, x: np.ndarray, *, top: int = 3) -> np.ndarray:
        """Row indices covered by the suspect blocks (reassignment set)."""
        return self.view.rows_of(self.suspects(x, top=top))
