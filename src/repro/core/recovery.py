"""Self-healing block-asynchronous solving: detect → localize → reassign.

§4.5's experiments *prescribe* the recovery time t_r; an actual Exascale
runtime has to discover both the failure and its location.  This module
closes that loop with the pieces built elsewhere in the package:

1. the :class:`~repro.core.detection.SilentErrorDetector` watches the
   residual trace for convergence anomalies (the *when*),
2. the :class:`~repro.core.localize.FaultLocalizer` ranks blocks by
   anomalous residual share (the *where*),
3. the engine **heals** the suspect blocks — the software stand-in for
   "assigning the respective components to other (e.g., additional)
   cores" — and iteration continues.

The result: a solve that converges through silent failures *without any
prior knowledge of the fault*, checkpoint-free — the paper's Exascale
argument, executable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._util import check_square, check_vector
from ..runtime.recorder import RunRecorder
from ..solvers.base import SolveResult, StoppingCriterion
from ..sparse import BlockRowView, CSRMatrix
from .detection import SilentErrorDetector
from .engine import AsyncEngine
from .fault import FaultScenario
from .localize import FaultLocalizer
from .schedules import AsyncConfig

__all__ = ["SelfHealingSolver"]


class SelfHealingSolver:
    """async-(k) with an automatic detect/localize/heal loop.

    Parameters
    ----------
    config:
        Asynchronism configuration (as for
        :class:`~repro.core.block_async.BlockAsyncSolver`).
    fault:
        The failure scenario to survive.  Its own ``recovery`` field is
        ignored — recovery here is *earned* by detection, not scheduled.
    detector:
        Anomaly watchdog (a fresh default is built per solve if omitted).
    suspects_per_alert:
        Blocks healed per alert.  Healing a healthy block is harmless (a
        no-op reassignment), so this errs high by default.
    heal_cooldown:
        Sweeps to wait after a heal before reacting to further alerts
        (gives the iteration time to re-establish its healthy rate).
    stopping:
        Tolerance / budget, counted in global sweeps.
    recorder:
        Optional :class:`repro.runtime.RunRecorder` telemetry sink — the
        engine reports fault activation and healing as events into it.
    """

    name = "self-healing-async"

    def __init__(
        self,
        config: Optional[AsyncConfig] = None,
        *,
        fault: Optional[FaultScenario] = None,
        detector: Optional[SilentErrorDetector] = None,
        suspects_per_alert: int = 3,
        heal_cooldown: int = 5,
        stopping: Optional[StoppingCriterion] = None,
        recorder: Optional[RunRecorder] = None,
    ):
        if suspects_per_alert < 1:
            raise ValueError("suspects_per_alert must be >= 1")
        if heal_cooldown < 0:
            raise ValueError("heal_cooldown must be >= 0")
        self.config = config if config is not None else AsyncConfig(local_iterations=5)
        self.fault = fault
        self.detector = detector
        self.suspects_per_alert = suspects_per_alert
        self.heal_cooldown = heal_cooldown
        self.stopping = stopping if stopping is not None else StoppingCriterion(maxiter=300)
        self.recorder = recorder
        self.name = f"self-healing-{self.config.method_name}"

    def solve(self, A: CSRMatrix, b: np.ndarray, x0: Optional[np.ndarray] = None) -> SolveResult:
        """Solve ``A x = b``, surviving the configured fault unaided."""
        n = check_square(A.shape, "self-healing matrix")
        b = check_vector(b, n, "b")
        view = BlockRowView(A, block_size=self.config.block_size)
        engine = AsyncEngine(view, b, self.config, fault=self.fault)
        localizer = FaultLocalizer(view, b)
        detector = (
            self.detector if self.detector is not None else SilentErrorDetector(window=8, warmup=16)
        )

        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
        b_norm = float(np.linalg.norm(b))
        heals: List[dict] = []
        state = {"cooldown": 0}

        def observer(it: int, x: np.ndarray, res: float) -> None:
            # Called by the run loop at every recorded residual that keeps
            # the run going (plus iteration 0): the detect → localize →
            # heal reaction rides on the loop instead of owning it.
            rel = res / b_norm if b_norm > 0 else res
            alert = detector.update(rel)
            if it == 0:
                return
            if detector.baseline_rate is not None and not heals and state["cooldown"] == 0:
                # Keep the healthy-phase block profile fresh until the
                # first incident.
                localizer.snapshot(x)
            if state["cooldown"] > 0:
                state["cooldown"] -= 1
            elif alert is not None:
                suspects = localizer.suspects(x, top=self.suspects_per_alert)
                rows = view.rows_of(suspects)
                self._heal(engine, rows)
                heals.append(
                    {"sweep": it, "reason": alert.reason, "blocks": [int(s) for s in suspects]}
                )
                state["cooldown"] = self.heal_cooldown

        # Detection needs the residual every sweep, so the recording
        # cadence is pinned to 1 regardless of config.residual_every.
        result = engine.run(
            x,
            stopping=self.stopping,
            residual_every=1,
            recorder=self.recorder,
            observer=observer,
            method=self.name,
        )
        result.info.update(
            {
                "diverged": bool(self.stopping.diverged(result.residuals[-1])),
                "heals": heals,
                "alerts": len(detector.alerts),
            }
        )
        return result

    @staticmethod
    def _heal(engine: AsyncEngine, rows: np.ndarray) -> None:
        """Reassign *rows* to healthy cores: exempt them from the fault.

        The engine keeps a healed set that is subtracted from every future
        frozen mask — the moral equivalent of moving the components to
        working hardware.
        """
        engine.heal_rows(rows)
