"""Convergence theory for (block-)asynchronous relaxation.

Three results from the paper's §2 drive everything:

* **Jacobi** converges iff ρ(B) < 1, B = I − D⁻¹A.
* **Asynchronous iteration** converges, for *every* update and shift
  function satisfying the §2.2 well-posedness conditions, if ρ(|B|) < 1
  (Strikwerda's sufficient condition).
* For SPD systems with ρ(B) > 1 a τ-damping restores convergence
  (:mod:`repro.solvers.scaling`).

This module provides the checks, a rate-based iteration-count predictor
used by the experiment harness, and the runtime well-posedness verification
of the engine's actual schedules.
"""

from __future__ import annotations

import numpy as np

from .._util import check_square
from ..matrices.analysis import iteration_matrix
from ..sparse import CSRMatrix
from ..sparse.linalg import spectral_radius

__all__ = [
    "is_diagonally_dominant",
    "jacobi_convergence_guaranteed",
    "async_convergence_guaranteed",
    "predicted_iterations",
    "check_well_posedness",
]


def is_diagonally_dominant(A: CSRMatrix, *, strict: bool = True) -> bool:
    """Row diagonal dominance: ``|a_ii| >(=) Σ_{j≠i} |a_ij|`` for every row."""
    check_square(A.shape, "is_diagonally_dominant input")
    d, off = A.split_diagonal()
    radii = off.row_abs_sums()
    if strict:
        return bool(np.all(np.abs(d) > radii))
    return bool(np.all(np.abs(d) >= radii))


def jacobi_convergence_guaranteed(A: CSRMatrix, *, seed: int = 0) -> bool:
    """Whether ρ(B) < 1 — synchronous Jacobi converges."""
    return spectral_radius(iteration_matrix(A), seed=seed) < 1.0


def async_convergence_guaranteed(A: CSRMatrix, *, seed: int = 0) -> bool:
    """Whether ρ(|B|) < 1 — Strikwerda's sufficient condition (§2.2).

    When this holds, *every* asynchronous schedule whose update function
    visits each component infinitely often and whose shift function is
    bounded converges; the engine's schedules satisfy both by construction
    (see :meth:`repro.core.schedules.WaveScheduler.staleness_bound`).
    """
    return spectral_radius(iteration_matrix(A, absolute=True), seed=seed) < 1.0


def predicted_iterations(
    rho: float,
    target_reduction: float,
    *,
    local_iterations: int = 1,
    local_coupling: float = 1.0,
) -> int:
    """Rate-based estimate of global iterations to a residual reduction.

    The asymptotic per-iteration contraction of a relaxation method with
    radius *rho* is *rho* itself; ``local_iterations`` k > 1 accelerates the
    *local* part of the error, which the paper's rule of thumb (§4.3) prices
    as an effective radius ``rho ** (1 + (k-1) * local_coupling)`` where
    ``local_coupling ∈ [0, 1]`` is the fraction of coupling mass inside the
    blocks (1 − off-block fraction).  With diagonal local blocks
    (Chem97ZtZ, coupling ≈ 0) extra local iterations predict no gain, as
    observed.

    Returns at least 1; raises for ``rho >= 1`` (no convergence to predict).
    """
    if not (0.0 < rho < 1.0):
        raise ValueError("predicted_iterations requires rho in (0, 1)")
    if not (0.0 < target_reduction < 1.0):
        raise ValueError("target_reduction must be in (0, 1)")
    if local_iterations < 1:
        raise ValueError("local_iterations must be >= 1")
    if not (0.0 <= local_coupling <= 1.0):
        raise ValueError("local_coupling must be in [0, 1]")
    effective = rho ** (1.0 + (local_iterations - 1) * local_coupling)
    return max(1, int(np.ceil(np.log(target_reduction) / np.log(effective))))


def check_well_posedness(
    update_counts: np.ndarray,
    sweeps: int,
    *,
    staleness_bound: int,
    max_staleness: int = 2,
) -> bool:
    """Verify the §2.2 conditions against an engine's actual execution.

    Condition (1) — every component updated "infinitely often" — holds for a
    finite run when every block was updated in step with the sweep count
    (each sweep schedules every block exactly once, failures aside).
    Condition (2) — bounded shift — holds when the schedule's *measured*
    staleness bound does not exceed *max_staleness* sweeps.

    The bound must come from the run being checked — the scheduler's
    :meth:`~repro.core.schedules.WaveScheduler.staleness_bound`, surfaced
    by :class:`~repro.core.block_async.BlockAsyncSolver` as
    ``result.info["staleness_bound"]`` (the batched engine's
    :meth:`~repro.core.engine.BatchedAsyncEngine.staleness_bound` for
    ensembles).  Earlier revisions silently assumed 2 when no bound was
    passed, letting condition (2) "pass" without any measurement; an
    unknown bound is now an error.

    Returns ``True`` when both hold; fault-affected runs where some blocks
    fell behind return ``False`` (asynchronous theory then still applies
    only after recovery).
    """
    counts = np.asarray(update_counts)
    if sweeps < 0:
        raise ValueError("sweeps must be non-negative")
    if staleness_bound is None:
        raise ValueError(
            "staleness_bound is required: pass the schedule's measured bound "
            "(e.g. result.info['staleness_bound'] from BlockAsyncSolver, or "
            "engine.staleness_bound()); condition (2) cannot be checked "
            "against an unknown shift function"
        )
    if staleness_bound < 1:
        raise ValueError("staleness_bound must be >= 1 (reads lag writes)")
    if len(counts) == 0:
        return True
    condition1 = bool(counts.min() >= sweeps)
    condition2 = staleness_bound <= max_staleness
    return condition1 and condition2
