"""Silent-error detection from convergence anomalies (paper §4.5 outlook).

The paper: *"for problems where convergence is expected, a convergence
delay or non-converging sequence of solution approximations indicates that
a silent error has occurred"*.  This module operationalises that sentence:

:class:`SilentErrorDetector` watches a residual history online.  For a
convergent relaxation method the log-residual falls along a (locally)
straight line; the detector fits the recent contraction rate over a
sliding window and raises an alert when

* the residual **rises** (hard anomaly), or
* the fitted rate **degrades** beyond a tolerance relative to the healthy
  baseline rate learned during the warm-up phase (convergence-delay
  anomaly — the silent-corruption signature), or
* the residual **stagnates** above the expected floor.

Detection is entirely observational — no access to the iterate or the
failure mask — exactly the information an Exascale runtime would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["Alert", "SilentErrorDetector"]


@dataclass(frozen=True)
class Alert:
    """One detection event."""

    iteration: int
    reason: str           #: "residual-rise" | "rate-degradation" | "stagnation"
    observed_rate: float  #: fitted contraction over the window (per iteration)
    baseline_rate: float  #: healthy reference rate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"iteration {self.iteration}: {self.reason} "
            f"(rate {self.observed_rate:.4f} vs baseline {self.baseline_rate:.4f})"
        )


class SilentErrorDetector:
    """Online convergence-anomaly detector.

    Parameters
    ----------
    window:
        Sliding-window length (iterations) for the rate fit.
    warmup:
        Iterations used to learn the healthy baseline rate (must be at
        least *window*); no alerts are raised during warm-up.
    rate_tolerance:
        Allowed relative degradation of the contraction exponent before a
        ``rate-degradation`` alert fires — e.g. 0.5 tolerates the rate
        slowing to half the baseline's log-reduction per sweep.
    floor:
        Residuals at or below this are considered converged; stagnation
        there is not anomalous (rounding floor).

    Notes
    -----
    Rates are *log-residual slopes*: baseline −0.2 means the residual
    shrinks by e^0.2 per iteration.  The asynchronous method's run-to-run
    rate wobble (§4.1) is far inside ``rate_tolerance``, so the detector
    stays quiet on healthy chaotic runs — verified by tests.
    """

    def __init__(
        self,
        window: int = 10,
        warmup: int = 20,
        rate_tolerance: float = 0.5,
        floor: float = 1e-14,
    ):
        if window < 3:
            raise ValueError("window must be at least 3")
        if warmup < window:
            raise ValueError("warmup must be >= window")
        if not (0.0 < rate_tolerance < 1.0):
            raise ValueError("rate_tolerance must be in (0, 1)")
        self.window = window
        self.warmup = warmup
        self.rate_tolerance = rate_tolerance
        self.floor = floor
        self._log_history: List[float] = []
        self._baseline: Optional[float] = None
        self.alerts: List[Alert] = []

    # ------------------------------------------------------------------ #

    def _fit_rate(self) -> float:
        """Least-squares slope of the last *window* log-residuals."""
        ys = np.array(self._log_history[-self.window :])
        xs = np.arange(len(ys), dtype=float)
        return float(np.polyfit(xs, ys, 1)[0])

    @property
    def iteration(self) -> int:
        """Number of residuals observed so far."""
        return len(self._log_history)

    @property
    def baseline_rate(self) -> Optional[float]:
        """The healthy contraction exponent learned during warm-up."""
        return self._baseline

    def update(self, residual: float) -> Optional[Alert]:
        """Feed one residual; returns an :class:`Alert` if anomalous."""
        if not np.isfinite(residual):
            residual = 1e300
        self._log_history.append(float(np.log(max(residual, 1e-300))))
        it = self.iteration
        if it < self.window + 1:
            return None

        rate = self._fit_rate()
        if it <= self.warmup:
            # Learn the healthiest (most negative) rate seen in warm-up.
            if self._baseline is None or rate < self._baseline:
                self._baseline = rate
            return None

        assert self._baseline is not None
        if residual <= self.floor:
            return None
        alert = None
        if self._log_history[-1] > self._log_history[-2] + 1e-12 and rate > 0:
            alert = Alert(it, "residual-rise", rate, self._baseline)
        elif self._baseline < 0 and rate > self._baseline * self.rate_tolerance:
            reason = "stagnation" if abs(rate) < 1e-3 else "rate-degradation"
            alert = Alert(it, reason, rate, self._baseline)
        if alert is not None:
            self.alerts.append(alert)
        return alert

    def scan(self, residuals) -> List[Alert]:
        """Feed a whole history; returns all alerts raised."""
        out = []
        for r in residuals:
            a = self.update(float(r))
            if a is not None:
                out.append(a)
        return out

    def first_alert(self) -> Optional[Alert]:
        """The earliest alert, if any."""
        return self.alerts[0] if self.alerts else None
