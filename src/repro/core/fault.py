"""Hardware-failure scenarios (paper §4.5).

The paper's experiment: while block-asynchronous iteration runs on a
many-core system, at global iteration ``t₀`` a fraction of the cores breaks
down — the components they handle are simply no longer updated.  Either the
runtime detects the failure and reassigns the components after a recovery
time ``t_r`` (``recover-(t_r)`` in the figures), or it never does, in which
case the iteration stagnates at a solution approximation with significant
residual error.

:class:`FaultScenario` expresses this as a frozen-row mask as a function of
the sweep index; the :class:`repro.core.engine.AsyncEngine` applies it with
broken-core semantics (frozen components never recompute, their neighbours
keep consuming the stale values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import RNGLike, as_rng

__all__ = ["FaultScenario"]


#: Supported failure semantics.
FAULT_KINDS = ("freeze", "silent")


@dataclass
class FaultScenario:
    """Failure of a random fraction of components.

    Parameters
    ----------
    fraction:
        Fraction of components (rows) affected — the paper simulates 25%.
    t0:
        Global sweep index at which the failure occurs (paper: ≈ 10).
    recovery:
        Number of sweeps after which the components are reassigned to
        healthy cores (``recover-(t_r)``); ``None`` means no recovery.
    kind:
        ``"freeze"`` — detectable hard failure: the components stop
        updating entirely (the paper's main experiment).
        ``"silent"`` — the §4.5 outlook: the broken cores *keep computing
        but compute wrongly*; every update of an affected component is
        scaled by *corruption*.  Nothing crashes — the only symptom is the
        convergence anomaly a :class:`repro.core.detection.SilentErrorDetector`
        watches for.
    corruption:
        Multiplicative error of silent updates (ignored for freeze).
    clustered:
        ``False`` (paper's experiment): the failed components are chosen
        uniformly at random.  ``True``: one contiguous span fails — the
        physical picture of a broken core taking out exactly the
        components it handled, and the scenario
        :class:`repro.core.localize.FaultLocalizer` can pinpoint.
    seed:
        Seed selecting *which* components fail.
    """

    fraction: float = 0.25
    t0: int = 10
    recovery: Optional[int] = None
    kind: str = "freeze"
    corruption: float = 1.01
    clustered: bool = False
    seed: RNGLike = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        if self.t0 < 0:
            raise ValueError("t0 must be non-negative")
        if self.recovery is not None and self.recovery < 0:
            raise ValueError("recovery must be non-negative")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.corruption <= 0:
            raise ValueError("corruption must be positive")
        self._mask_cache: Optional[np.ndarray] = None

    @property
    def label(self) -> str:
        """Figure-style label (``recover-(20)`` / ``no recovery``)."""
        base = f"recover-({self.recovery})" if self.recovery is not None else "no recovery"
        return base if self.kind == "freeze" else f"silent, {base}"

    def failed_components(self, n: int) -> np.ndarray:
        """The (fixed, seed-determined) boolean mask of failed components."""
        if self._mask_cache is None or len(self._mask_cache) != n:
            rng = as_rng(self.seed)
            count = int(round(self.fraction * n))
            mask = np.zeros(n, dtype=bool)
            if self.clustered and count:
                start = int(rng.integers(0, max(1, n - count + 1)))
                mask[start : start + count] = True
            elif count:
                mask[rng.choice(n, size=count, replace=False)] = True
            self._mask_cache = mask
        return self._mask_cache

    def is_active(self, sweep: int) -> bool:
        """Whether the failure is in effect at the given sweep."""
        if sweep < self.t0:
            return False
        if self.recovery is None:
            return True
        return sweep < self.t0 + self.recovery

    def frozen_rows(self, sweep: int, n: int) -> Optional[np.ndarray]:
        """Frozen-row mask at *sweep* (``None`` when no failure is active)."""
        if not self.is_active(sweep):
            return None
        return self.failed_components(n)
