"""The asynchronous execution engine.

This is the software analogue of the paper's CUDA kernel (§3.3): the system
is decomposed into row blocks (:class:`repro.sparse.BlockRowView`), and each
global sweep executes every block once, in a scheduler-determined order,
against the shared iterate ``x``:

1. **Off-block gather** — the block computes
   ``s = b_block − A_external · x_read`` where ``x_read`` is either the
   sweep-start snapshot (that neighbour block is running *concurrently*;
   probability given by the scheduler's effective staleness, derived from
   device occupancy) or live memory (it already finished) — the shift
   function of Eq. (3)/(4), realised stochastically.
2. **Local iterations** — *k* Jacobi sweeps on the block's subdomain with
   the off-block part frozen (Algorithm 1's inner loop); reads and writes
   touch only the block's own rows.
3. **Write visibility** — results are published immediately, or (with the
   configured probability) deferred to the sweep end, modelling write-buffer
   latency.

With the ``"synchronous"`` order (staleness forced to 1) and ``k = 1``, one
sweep is *exactly* one synchronous Jacobi iteration — the engine degrades
gracefully to the textbook method, which the test suite exploits as an
oracle.

Fault injection (§4.5) freezes a set of rows: the affected components are
never recomputed while the failure is active — including inside local
iterations, where their neighbours keep reading the stale values — exactly
the "broken core" semantics of the paper's experiment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._util import as_rng, check_vector
from ..perf.backends import make_executor, resolve_backend
from ..perf.plan import compile_sweep_plan, rhs_preserves_fold
from ..runtime import BatchedRunOutcome, RunLoop, StoppingCriterion
from ..runtime.recorder import RunRecorder
from ..solvers.base import SolveResult
from ..solvers.block_jacobi import local_jacobi_sweeps
from ..sparse import BlockRowView
from ..sparse.csr import scatter_add_fold
from .fault import FaultScenario
from .schedules import AsyncConfig, WaveScheduler, replica_rngs

__all__ = ["AsyncEngine", "BatchedAsyncEngine"]


class AsyncEngine:
    """Executes block-asynchronous sweeps over a shared iterate.

    Parameters
    ----------
    view:
        Precomputed block decomposition of the system matrix.
    b:
        Right-hand side.
    config:
        Asynchronism configuration (ordering, staleness, local iterations).
    fault:
        Optional failure scenario.
    rng:
        Override generator; defaults to a fresh one from ``config.seed``.

    Attributes
    ----------
    update_counts:
        Per-block count of completed block updates — the data behind the
        Chazan–Miranker condition (1) check.
    sweep_index:
        Number of completed global sweeps.
    backend:
        Resolved sweep-execution backend (``"fused"`` or ``"reference"``,
        see :mod:`repro.perf`): ``config.backend="auto"`` fuses the whole
        sweep into stacked whole-system kernels wherever that is bitwise
        the reference loop — snapshot-read regimes (γ ≡ 0) and
        all-deferred writes, with no fault — and runs the per-block loop
        everywhere else.
    plan:
        The compiled :class:`repro.perf.SweepPlan`, shared by every engine
        built on the same :class:`~repro.sparse.BlockRowView`.
    """

    def __init__(
        self,
        view: BlockRowView,
        b: np.ndarray,
        config: AsyncConfig,
        *,
        fault: Optional[FaultScenario] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.view = view
        self.b = check_vector(b, view.n, "b")
        self.config = config
        self.fault = fault
        self.rng = rng if rng is not None else as_rng(config.seed)
        self.scheduler = WaveScheduler(view.partition, config, self.rng)
        self.update_counts = np.zeros(view.nblocks, dtype=np.int64)
        self.sweep_index = 0
        #: Optional telemetry sink (:class:`repro.runtime.RunRecorder`):
        #: fault activation/clearing and healing are reported as events.
        self.recorder: Optional[RunRecorder] = None
        # Fault support: per-block local indices of frozen rows, rebuilt
        # whenever the active frozen mask changes.
        self._frozen_mask: Optional[np.ndarray] = None
        self._frozen_local: List[np.ndarray] = []
        self._frozen_reported = False
        # Healed components: reassigned to healthy cores (self-healing
        # recovery, repro.core.recovery) — exempt from any future fault.
        self._healed = np.zeros(view.n, dtype=bool)
        # Compile (or reuse) the view's sweep plan and dispatch the sweep
        # executor: the extended-block RAS loop when an overlapped Schwarz
        # mode is active, otherwise matrix-free stencil kernels where
        # structure detection succeeds, fused whole-system kernels where
        # exact, and the per-block reference loop everywhere else
        # (repro.perf).  With schwarz="none" or a zero-overlap partition
        # the dispatch below is untouched — bitwise the historical engine.
        self.plan = compile_sweep_plan(view)
        if config.schwarz != "none" and view.partition.overlap > 0:
            if fault is not None:
                raise ValueError(
                    "Schwarz modes do not support fault scenarios; use "
                    "schwarz='none' for fault experiments"
                )
            if config.backend in ("fused", "stencil"):
                raise ValueError(
                    f"backend={config.backend!r} cannot execute async-RAS sweeps; "
                    "use backend='auto' or 'reference' with schwarz modes"
                )
            from ..perf.ras import RASSweepExecutor

            self.backend = "ras"
            self._executor = RASSweepExecutor(self)
        else:
            self.backend = resolve_backend(
                config,
                self.scheduler,
                has_fault=fault is not None,
                rhs_fold_safe=rhs_preserves_fold(self.b),
                plan=self.plan,
            )
            self._executor = make_executor(self.backend, self)

    # ------------------------------------------------------------------ #

    def heal_rows(self, rows: np.ndarray) -> None:
        """Permanently exempt *rows* from the fault (reassignment)."""
        rows = np.asarray(rows, dtype=np.int64)
        self._healed[rows] = True
        if self.recorder is not None:
            self.recorder.record_event(self.sweep_index, "heal", rows=int(len(rows)))

    def _refresh_fault_state(self) -> None:
        mask = self.fault.frozen_rows(self.sweep_index, self.view.n) if self.fault else None
        if mask is not None and self._healed.any():
            mask = mask & ~self._healed
        prev = self._frozen_mask
        if (mask is None) != (prev is None) or (
            mask is not None and prev is not None and not np.array_equal(mask, prev)
        ):
            self._frozen_mask = mask
            if mask is None:
                self._frozen_local = []
            else:
                self._frozen_local = [
                    np.flatnonzero(mask[blk.rows]) for blk in self.view.blocks
                ]
            if self.recorder is not None:
                frozen = 0 if mask is None else int(mask.sum())
                if frozen or self._frozen_reported:
                    self.recorder.record_event(
                        self.sweep_index,
                        "fault-active" if frozen else "fault-cleared",
                        frozen_rows=frozen,
                        fault=self.fault.kind if self.fault else None,
                    )
                self._frozen_reported = frozen > 0

    def sweep(self, x: np.ndarray) -> np.ndarray:
        """One global iteration: every block updated once, in schedule order.

        Each off-block component a block reads is, independently with the
        scheduler's freshness fraction γ, a value written earlier in this
        same sweep ("that neighbour finished before my read") and otherwise
        the sweep-start snapshot ("it ran concurrently with me").  γ = 0
        everywhere makes the sweep a synchronous block-Jacobi step; γ = 1 a
        block Gauss-Seidel sweep in schedule order; the GPU reality is in
        between.

        Execution is delegated to the backend resolved at construction
        (:attr:`backend`): the fused whole-system kernel path where it is
        bitwise-exact for this regime, the per-block reference loop
        everywhere else.  Both live in :mod:`repro.perf.backends`; the
        semantics described above are backend-independent.
        """
        return self._executor.sweep(x)

    # ------------------------------------------------------------------ #

    def run(
        self,
        x0: Optional[np.ndarray] = None,
        *,
        stopping: Optional[StoppingCriterion] = None,
        residual_every: Optional[int] = None,
        recorder: Optional[RunRecorder] = None,
        observer=None,
        method: Optional[str] = None,
    ) -> SolveResult:
        """Drive sweeps through :class:`repro.runtime.RunLoop` to a result.

        This is the engine-level run loop (historically hand-rolled by each
        caller): sweeps until the stopping rule converges or diverges,
        recording the residual history at the configured cadence.
        ``residual_every``/``recorder`` default to ``config.residual_every``
        and the engine's own :attr:`recorder`; *observer* is forwarded to
        the loop (the self-healing solver's detect/heal hook).
        """
        A = self.view.matrix
        st = stopping if stopping is not None else StoppingCriterion()
        m = self.config.residual_every if residual_every is None else residual_every
        if recorder is not None:
            self.recorder = recorder
        x = (
            np.zeros(self.view.n)
            if x0 is None
            else check_vector(x0, self.view.n, "x0").copy()
        )
        b_norm = float(np.linalg.norm(self.b))
        tag = method if method is not None else self.config.method_name
        loop = RunLoop(st, residual_every=m, recorder=self.recorder)
        outcome = loop.run(
            x,
            lambda x, it: self.sweep(x),
            lambda x: float(np.linalg.norm(A.residual(x, self.b))),
            b_norm=b_norm,
            method=tag,
            observer=observer,
        )
        if self.recorder is not None:
            self.recorder.annotate(
                backend=self.backend,
                nblocks=self.view.nblocks,
                staleness_bound=self.scheduler.staleness_bound(),
                update_counts=self.update_counts.tolist(),
                partition=self.view.partition_telemetry(),
            )
        result = SolveResult(
            x=outcome.x,
            residuals=outcome.residuals,
            converged=outcome.converged,
            method=tag,
            b_norm=b_norm,
            info={
                "diverged": outcome.diverged,
                "backend": self.backend,
                "sweeps": outcome.sweeps,
            },
        )
        if m != 1:
            result.residual_iters = outcome.residual_iters
        return result

    def min_updates(self) -> int:
        """Fewest updates any block has received (condition (1) diagnostics)."""
        return int(self.update_counts.min()) if len(self.update_counts) else 0


class BatchedAsyncEngine:
    """Advances R independent async-(k) replicas through each sweep at once.

    The §4.1/§4.3 ensemble experiments run the *same* configuration many
    times, varying only the schedule seed.  This engine stacks the R
    replica iterates as an ``(R, n)`` multi-vector and advances every
    replica through each global sweep with a handful of vectorized kernel
    calls, instead of R scalar solves — the same per-sweep amortisation
    batched asynchronous Richardson/Schwarz solvers use on GPUs.

    **Exactness contract**: replica *r* reproduces, bitwise, the iterates
    the sequential :class:`AsyncEngine` produces for
    ``dataclasses.replace(config, seed=seed0 + r)``.  Each replica owns a
    private generator (:func:`repro.core.schedules.replica_rngs`) and
    consumes it in exactly the sequential order — scheduler construction,
    per-sweep order jitter, per-block freshness masks, deferred-write
    draws — while the numerical kernels run batched:

    * the snapshot ("stale") part of every block's off-block gather is one
      multi-vector SpMV against the restacked external matrix
      (:meth:`repro.sparse.BlockRowView.external_matrix`);
    * per-entry race corrections and local Jacobi sweeps are grouped by
      (schedule position, block): replicas updating the same block at the
      same position advance together.  The position barrier preserves the
      sequential data flow — a block reads live values only of blocks
      earlier in *its replica's* order;
    * in the fused-exact regimes of :mod:`repro.perf` — every block reads
      the pure sweep-start snapshot (γ ≡ 0, e.g. the ``"synchronous"``
      order), or every write is deferred to the sweep end — block updates
      are order-independent and the whole sweep collapses to one global
      multi-vector two-stage update with no position loop at all
      (``config.backend`` gates this exactly as it does the sequential
      engine's fused executor).

    All 2-D kernels are bitwise identical to their stacked 1-D
    counterparts (the CSR length-class packing sums each row the same way
    in every product, and both ``np.add.at`` and the segment-sum scatter
    :func:`repro.sparse.scatter_add_fold` accumulate per accumulator in
    listed order), which the test suite asserts directly.

    Fault scenarios are not supported — :func:`repro.stats.run_ensemble`
    falls back to the sequential path for those.

    Parameters
    ----------
    view:
        Precomputed block decomposition, shared by all replicas (the whole
        point: it is built once, not R times).
    b:
        Right-hand side: a length-n vector shared by all replicas (the
        ensemble case), or an ``(R, n)`` stack giving each replica its own
        right-hand side — the multi-rhs batching the serving layer
        (:mod:`repro.serve`) uses to run R independent requests on one
        matrix as one batched solve.  Replica *r* of a multi-rhs run is
        bitwise the sequential engine solving ``(A, b[r])`` with replica
        *r*'s seed.
    config:
        Asynchronism configuration.  ``config.seed`` is ignored — replica
        *r* runs with seed ``seed0 + r`` (or ``seeds[r]``).
    nreplicas:
        Ensemble size R.
    seed0:
        First replica seed.
    seeds:
        Optional explicit per-replica seeds (length R), overriding the
        ``seed0 + r`` default — used when the replicas are independent
        requests each carrying its own seed.

    Attributes
    ----------
    update_counts:
        ``(R, nblocks)`` per-replica block-update counts.
    sweep_index:
        Number of completed global sweeps.
    backend:
        Resolved sweep-execution backend (:mod:`repro.perf`): ``"fused"``
        means whole sweeps collapse to global multi-vector updates,
        ``"reference"`` means the position-grouped loop runs every sweep.
    plan:
        The compiled :class:`repro.perf.SweepPlan` shared with every
        engine built on the same view.
    """

    def __init__(
        self,
        view: BlockRowView,
        b: np.ndarray,
        config: AsyncConfig,
        nreplicas: int,
        *,
        seed0: int = 0,
        seeds: Optional[List[int]] = None,
    ):
        self.view = view
        self.nreplicas = int(nreplicas)
        b_arr = np.asarray(b, dtype=np.float64)
        self.multi_rhs = b_arr.ndim == 2
        if self.multi_rhs:
            if b_arr.shape != (self.nreplicas, view.n):
                raise ValueError(
                    f"multi-rhs b must have shape ({self.nreplicas}, {view.n}), "
                    f"got {b_arr.shape}"
                )
            self.B: Optional[np.ndarray] = np.ascontiguousarray(b_arr)
            self.b = self.B
        else:
            self.B = None
            self.b = check_vector(b, view.n, "b")
        self.config = config
        self.seed0 = int(seed0)
        if seeds is not None:
            if len(seeds) != self.nreplicas:
                raise ValueError(
                    f"seeds must list one seed per replica "
                    f"({self.nreplicas}), got {len(seeds)}"
                )
            self.rngs = [as_rng(s) for s in seeds]
        else:
            self.rngs = replica_rngs(self.seed0, self.nreplicas)
        # Scheduler construction consumes RNG ("gpu" pattern pools) exactly
        # as the sequential engine's __init__ does.
        self.schedulers = [
            WaveScheduler(view.partition, config, rng) for rng in self.rngs
        ]
        self.update_counts = np.zeros((self.nreplicas, view.nblocks), dtype=np.int64)
        self.sweep_index = 0
        # The compiled sweep plan is shared with every sequential engine
        # built on this view — index structures are compiled once per
        # decomposition, not per engine (repro.perf).
        self.plan = compile_sweep_plan(view)
        # Per-block rhs slices: (block_rows,) shared across replicas, or
        # (R, block_rows) when each replica owns its right-hand side.
        if self.multi_rhs:
            self._b_blocks = [
                np.ascontiguousarray(self.B[:, blk.rows]) for blk in view.blocks
            ]
            self._Bflat = self.B.reshape(-1)
        else:
            self._b_blocks = [self.b[blk.rows] for blk in view.blocks]
            self._Bflat = None
        self._ext_rows = self.plan.ext_rows
        self._local_c = self.plan.local_c
        self._E = view.external_matrix()
        self._ext_buf: Optional[np.ndarray] = None
        # Fused-path precomputes (see _sweep_fused).
        self._bs = np.array([blk.nrows for blk in view.blocks], dtype=np.int64)
        self._arange_rows = [
            np.arange(blk.start, blk.stop, dtype=np.int64) for blk in view.blocks
        ]
        self._ennz = self.plan.ennz
        self._e_indices = [blk.external.indices for blk in view.blocks]
        self._e_data = [blk.external.data for blk in view.blocks]
        self._diag_blocks = [blk.diag for blk in view.blocks]
        self._fold_safe = rhs_preserves_fold(self.b)
        if config.schwarz != "none" and view.partition.overlap > 0:
            # Overlapped Schwarz mode: every replica advances through the
            # shared extended-block workspace (repro.perf.ras), consuming
            # its own generator exactly as a sequential RAS engine would —
            # batched/sequential parity holds by construction because both
            # call the same sweep kernel.  None of the disjoint-path
            # machinery below (padded plans, fused collapse, stencil) is
            # built.
            if config.backend in ("fused", "stencil"):
                raise ValueError(
                    f"backend={config.backend!r} cannot execute async-RAS sweeps; "
                    "use backend='auto' or 'reference' with schwarz modes"
                )
            from ..perf.ras import RASWorkspace

            self.backend = "ras"
            self._ras = RASWorkspace(view, config)
            self._stencil_kernels = None
            return
        self._ras = None
        self._build_padded_plans()
        # Backend resolution mirrors the sequential engine: the whole-sweep
        # collapse (one global multi-vector two-stage update, no position
        # loop) engages exactly where AsyncEngine's fused executor would —
        # snapshot-read and all-deferred regimes — so replica r stays
        # bitwise the sequential run regardless of which engine fused.
        self.backend = resolve_backend(
            config, self.schedulers[0], rhs_fold_safe=self._fold_safe, plan=self.plan
        )
        self._stencil_kernels = (
            self.plan.stencil_kernels() if self.backend == "stencil" else None
        )
        if self.backend != "stencil":
            self.plan.warm_fused()
        if self.backend == "reference":
            self.plan.warm_reference()

    #: Groups smaller than this are folded into one fused per-position
    #: update instead of getting their own kernel calls.  With the "gpu"
    #: order every replica jitters the same base pattern, so each position
    #: has one large group plus a tail of near-singleton outliers — the
    #: tail dominates the call count, not the flops.
    _FUSE_MIN = 16

    #: Column sentinel for pad entries of the padded-ELL local plans;
    #: clipped to the shared zero slot at product time.
    _PAD_SENTINEL = np.int64(1) << 48

    def _build_padded_plans(self) -> None:
        """Uniform-width (padded ELL) layout of every block's local part.

        Each block's in-block off-diagonal rows are laid out as a dense
        ``(block_rows, W)`` panel, W the widest local row over *all*
        blocks.  Pad entries hold the value ``-0.0`` and a sentinel column
        that resolves to a shared ``+0.0`` operand slot, so every pad
        contributes the product ``-0.0 * +0.0 == -0.0`` — and IEEE-754
        addition of ``-0.0`` is the identity for every float (signed
        zeros, infinities and NaNs included).  A padded row therefore sums
        bitwise identically to the unpadded left-to-right sum of
        :meth:`repro.sparse.CSRMatrix._packed_product`, while giving all
        blocks one common rectangular shape that concatenates across
        blocks with no per-length-class bookkeeping.

        The one exception is an *empty* row: the packed kernel writes it
        as ``+0.0`` while an all-pad row would sum to ``-0.0``, so empty
        rows get ``+0.0`` as their first pad.  Rows wider than the packed
        kernel's panel cap would be summed by ``reduceat`` (a different
        order), so such blocks disable the fused path entirely.
        """
        from ..sparse.csr import CSRMatrix

        self._pad_cols: Optional[List[np.ndarray]] = None
        self._pad_data: List[np.ndarray] = []
        self._padW = 0
        widths = []
        for blk in self.view.blocks:
            lengths = np.diff(blk.local_off.indptr)
            w = int(lengths.max()) if len(lengths) else 0
            if w > CSRMatrix._ELL_MAX_WIDTH:
                return
            widths.append(w)
        W = max(1, max(widths, default=1))
        pad_cols = []
        for blk in self.view.blocks:
            lc = blk.local_off_compressed()
            lengths = np.diff(lc.indptr)
            cols = np.full((blk.nrows, W), self._PAD_SENTINEL, dtype=np.int64)
            data = np.full((blk.nrows, W), -0.0)
            r = lc._expanded_rows()
            p = np.arange(lc.nnz, dtype=np.int64) - lc.indptr[r]
            cols[r, p] = lc.indices
            data[r, p] = lc.data
            data[lengths == 0, 0] = 0.0
            # Lane-major (W, rows) storage: the product then runs one
            # contiguous gather-multiply-add per lane instead of strided
            # column reductions over a (rows, W) panel.
            pad_cols.append(np.ascontiguousarray(cols.T))
            self._pad_data.append(np.ascontiguousarray(data.T))
        self._padW = W
        self._pad_cols = pad_cols

    # ------------------------------------------------------------------ #

    def staleness_bound(self) -> int:
        """Shift-function bound of the schedules (condition (2) of §2.2)."""
        return self.schedulers[0].staleness_bound() if self.schedulers else 0

    def _base_external(self, S: np.ndarray, reps: np.ndarray) -> np.ndarray:
        """Snapshot off-block gather ``E @ S[r]`` for every replica in *reps*.

        One cache-resident 1-D SpMV per replica: on a CPU the row-at-a-time
        kernel beats the ``(R, nnz)`` multi-vector gather (whose temporaries
        spill every cache level), and it is bitwise the sequential engine's
        own per-block product by construction.
        """
        out = self._ext_buf
        if out is None or out.shape[0] < len(reps):
            out = self._ext_buf = np.empty((len(reps), self.view.n))
        out = out[: len(reps)]
        if self._stencil_kernels is not None:
            for i, r in enumerate(reps):
                self._stencil_kernels.apply_external(S[r], out[i])
        else:
            for i, r in enumerate(reps):
                self._E.matvec(S[r], out=out[i])
        return out

    def sweep(self, X: np.ndarray, replicas: Optional[np.ndarray] = None) -> np.ndarray:
        """One global iteration for every replica row listed in *replicas*.

        *X* is the ``(R, n)`` multi-vector of iterates, updated in place;
        *replicas* (default: all) selects the rows still being advanced —
        frozen rows are neither read nor written, and their generators are
        not consumed, exactly as a sequential run that stopped early.
        """
        cfg = self.config
        view = self.view
        nb = view.nblocks
        if X.shape != (self.nreplicas, view.n):
            raise ValueError(
                f"X must have shape ({self.nreplicas}, {view.n}), got {X.shape}"
            )
        reps = (
            np.arange(self.nreplicas, dtype=np.int64)
            if replicas is None
            else np.asarray(replicas, dtype=np.int64)
        )
        if len(reps) == 0:
            self.sweep_index += 1
            return X
        if self._ras is not None:
            # Async-RAS: each replica runs the shared extended-block sweep
            # kernel on its own iterate row, generator and scheduler —
            # literally the sequential executor's call, once per replica.
            for r in reps:
                self._ras.sweep(
                    X[r],
                    self.B[r] if self.multi_rhs else self.b,
                    self.rngs[r],
                    self.schedulers[r],
                    self.sweep_index,
                    self.update_counts[r],
                    fold_safe=self._fold_safe,
                )
            self.sweep_index += 1
            return X

        # 1. Per-replica schedule plans.  γ is a deterministic device
        # property — identical for every replica — but the orders differ.
        orders = np.empty((len(reps), nb), dtype=np.int64)
        gamma = np.zeros(nb)
        for i, r in enumerate(reps):
            order, gamma = self.schedulers[r].plan_for_sweep(self.sweep_index, self.rngs[r])
            orders[i] = order

        # 2. Freshness masks and deferred-write draws, consumed in schedule
        # order from each replica's own stream (bitwise the sequential
        # draws).
        mixed = (gamma > 0.0) & (gamma < 1.0)
        draw_defer = cfg.deferred_write_prob > 0.0
        fresh: List[List[Optional[np.ndarray]]] = [[None] * nb for _ in range(len(reps))]
        defer = np.zeros((len(reps), nb), dtype=bool)
        if mixed.any() and not draw_defer:
            # No defer draws interleave, so each replica's per-block
            # freshness draws are consecutive in its stream — and
            # ``Generator.random`` fills doubles from the bit stream
            # sequentially, so one call per replica per sweep is bitwise
            # the per-block calls.  γ is uniform over mixed positions (it
            # differs only on the γ=1 pipeline tail), so one comparison
            # thresholds the whole sweep's draws.
            mpos = np.flatnonzero(mixed)
            gmix = float(gamma[mpos[0]])
            for i, r in enumerate(reps):
                sizes = self._ennz[orders[i][mpos]]
                offs = np.zeros(len(sizes) + 1, dtype=np.int64)
                np.cumsum(sizes, out=offs[1:])
                fm = self.rngs[r].random(int(offs[-1])) < gmix
                fi = fresh[i]
                for t, pos in enumerate(mpos):
                    fi[pos] = fm[offs[t] : offs[t + 1]]
        elif mixed.any() or draw_defer:
            for i, r in enumerate(reps):
                rng = self.rngs[r]
                row = orders[i]
                for pos in range(nb):
                    if mixed[pos]:
                        g = gamma[pos]
                        fresh[i][pos] = rng.random(self._ennz[row[pos]]) < g
                    if draw_defer:
                        defer[i, pos] = rng.random() < cfg.deferred_write_prob

        all_live = bool(np.all(gamma >= 1.0))
        collapse = self.backend in ("fused", "stencil")
        S = X if all_live else X.copy()
        EXT = self._base_external(S, reps) if (collapse or not all_live) else None

        if collapse:
            # Fused whole-sweep collapse, in the exact regimes of
            # repro.perf: with snapshot reads (γ ≡ 0) no block observes
            # another's current-sweep writes; with all-deferred writes
            # every write lands at the sweep end, so live reads — any γ —
            # observe pre-sweep values and race corrections are exact
            # signed zeros.  Either way the whole sweep is one global
            # multi-vector two-stage update with no position loop at all
            # (deferred writes land by sweep end on disjoint rows — the
            # final state is identical).
            s_all = (self.B[reps] if self.multi_rhs else self.b) - EXT
            if self._stencil_kernels is not None:
                # Stacked stencil variant: the weight planes broadcast over
                # the replica axis, so the (R, n) update is the 1-D slice
                # arithmetic per replica row — bitwise the CSR collapse.
                Z = self._stencil_kernels.local_sweeps(
                    s_all, X[reps], cfg.local_iterations, omega=cfg.omega
                )
            else:
                Z = local_jacobi_sweeps(
                    view.local_offdiag_matrix(),
                    view.diagonal_vector(),
                    s_all,
                    X[reps],
                    cfg.local_iterations,
                    omega=cfg.omega,
                )
            X[reps] = Z
            self.update_counts[reps] += 1
            self.sweep_index += 1
            return X

        # 3. Position loop with (position, block) grouping.  Replicas at
        # the same position update disjoint rows and read only their own
        # replica's values, so groups within a position are independent;
        # the barrier between positions preserves each replica's
        # earlier-blocks-are-live data flow.  Large groups (many replicas
        # on the same block — the "gpu" order's shared base pattern) run
        # as rectangular per-block kernels; the tail of small outlier
        # groups is folded into one fused concatenated update per
        # position.
        deferred: List[Tuple[int, slice, np.ndarray]] = []
        Xflat = X.reshape(-1) if X.flags["C_CONTIGUOUS"] else None
        fused_ok = self._pad_cols is not None and Xflat is not None
        for pos in range(nb):
            bids = orders[:, pos]
            g = float(gamma[pos])
            ubids, inv, counts = np.unique(bids, return_inverse=True, return_counts=True)
            fuse = fused_ok and g < 1.0 and bool((counts < self._FUSE_MIN).any())
            if fuse:
                small = np.flatnonzero(counts[inv] < self._FUSE_MIN)
                mem_s = small[np.argsort(bids[small], kind="stable")]
                self._sweep_fused(
                    X, Xflat, S, EXT, pos, mem_s, bids[mem_s], g, reps,
                    fresh, defer, draw_defer, deferred,
                )
                if len(small) == len(bids):
                    continue
            for k, bid in enumerate(ubids):
                if fuse and counts[k] < self._FUSE_MIN:
                    continue
                mem = np.flatnonzero(inv == k)
                rows_g = reps[mem]
                blk = view.blocks[bid]
                if g >= 1.0:
                    ext = blk.external.matvec_rows(X, rows_g)
                else:
                    ext = EXT[mem, blk.start : blk.stop]
                    if g > 0.0:
                        # Per-entry races: each fresh off-block component
                        # is read after its owner's write from this sweep
                        # landed (owners later in the replica's order, or
                        # deferred, contribute an exact zero).
                        e = blk.external
                        F = (
                            np.stack([fresh[i][pos] for i in mem])
                            if len(mem) > 1
                            else fresh[mem[0]][pos][None, :]
                        )
                        mi, ei = np.nonzero(F)
                        if len(mi):
                            cols = e.indices[ei]
                            rg = rows_g[mi]
                            delta = e.data[ei] * (X[rg, cols] - S[rg, cols])
                            if self._fold_safe:
                                # Segment-sum scatter (one bincount) in
                                # place of np.add.at; per accumulator the
                                # fold order is identical (base first,
                                # then deltas in entry order).
                                ext = scatter_add_fold(
                                    ext,
                                    mi * blk.nrows + self._ext_rows[bid][ei],
                                    delta,
                                )
                            else:
                                np.add.at(ext, (mi, self._ext_rows[bid][ei]), delta)
                s = (
                    self._b_blocks[bid][rows_g] if self.multi_rhs else self._b_blocks[bid]
                ) - ext
                z = local_jacobi_sweeps(
                    self._local_c[bid],
                    blk.diag,
                    s,
                    X[rows_g, blk.start : blk.stop],
                    cfg.local_iterations,
                    omega=cfg.omega,
                )
                if draw_defer:
                    dmask = defer[mem, pos]
                    live = ~dmask
                    if live.any():
                        X[rows_g[live], blk.start : blk.stop] = z[live]
                    for j in np.flatnonzero(dmask):
                        deferred.append((int(rows_g[j]), blk.rows, z[j]))
                else:
                    X[rows_g, blk.start : blk.stop] = z

        for r, rows, vals in deferred:
            X[r, rows] = vals
        self.update_counts[reps] += 1
        self.sweep_index += 1
        return X

    def _sweep_fused(
        self,
        X: np.ndarray,
        Xflat: np.ndarray,
        S: np.ndarray,
        EXT: np.ndarray,
        pos: int,
        mem: np.ndarray,
        bids: np.ndarray,
        g: float,
        reps: np.ndarray,
        fresh: List[List[Optional[np.ndarray]]],
        defer: np.ndarray,
        draw_defer: bool,
        deferred: List[Tuple[int, slice, np.ndarray]],
    ) -> None:
        """One concatenated update of all small (replica, block) pairs at *pos*.

        *mem* indexes the pairs (into *reps*/*EXT* rows), sorted by block
        id so same-block pairs sit in contiguous sections.  All pairs'
        block rows are laid out back to back in one work vector and every
        step of the block update — snapshot gather, per-entry race
        corrections, the k local Jacobi sweeps over the padded-ELL local
        plans (:meth:`_build_padded_plans`), the write-back — runs as a
        single kernel call over the concatenation.  Pairs touch disjoint
        replica rows, so this is bitwise the same as updating them one
        group at a time: concatenation never mixes two pairs' terms into
        one accumulator (``np.add.at`` accumulates per listed index, and
        the padded rows reduce strictly left to right per row).
        """
        cfg = self.config
        view = self.view
        n = view.n
        rows_g = reps[mem]
        bs = self._bs[bids]
        m = len(mem)
        total = int(bs.sum())
        row_off = np.zeros(m, dtype=np.int64)
        np.cumsum(bs[:-1], out=row_off[1:])
        col_rows = np.concatenate([self._arange_rows[b] for b in bids])
        flat = np.repeat(rows_g * n, bs) + col_rows

        # Off-block gather: snapshot base rows from EXT, then per-entry
        # race corrections (identical accumulation order to the grouped
        # path: ascending entry within each pair's section).
        ext = EXT.reshape(-1)[np.repeat(mem * n, bs) + col_rows]
        if g > 0.0:
            F = np.concatenate([fresh[i][pos] for i in mem])
            sel = np.flatnonzero(F)
            if len(sel):
                ecols = np.concatenate([self._e_indices[b] for b in bids])[sel]
                edata = np.concatenate([self._e_data[b] for b in bids])[sel]
                epos = (
                    np.concatenate([self._ext_rows[b] for b in bids])
                    + np.repeat(row_off, self._ennz[bids])
                )[sel]
                erep = np.repeat(rows_g, self._ennz[bids])[sel]
                delta = edata * (X[erep, ecols] - S[erep, ecols])
                if self._fold_safe:
                    ext = scatter_add_fold(ext, epos, delta)
                else:
                    np.add.at(ext, epos, delta)
        if self.multi_rhs:
            # Same flat gather as the iterate: each pair's section takes
            # its own replica's rhs rows.
            s = self._Bflat[flat]
        else:
            s = np.concatenate([self._b_blocks[b] for b in bids])
        np.subtract(s, ext, out=s)
        d = np.concatenate([self._diag_blocks[b] for b in bids])

        # k local Jacobi sweeps over the concatenated padded-ELL panels,
        # lane by lane: every row accumulates its entries left to right,
        # and each lane is one contiguous gather-multiply-add.
        W = self._padW
        cols = np.concatenate([self._pad_cols[b] for b in bids], axis=1)
        cols += np.repeat(row_off, bs)
        data = np.concatenate([self._pad_data[b] for b in bids], axis=1)
        zbuf = np.empty(total + 1)
        zbuf[total] = 0.0
        zbuf[:total] = Xflat[flat]
        z = zbuf[:total]
        gbuf = np.empty(total)
        acc = np.empty(total)
        for _ in range(cfg.local_iterations):
            # mode="clip" lands every pad sentinel on the +0.0 slot at
            # index *total* (and skips per-element bounds checks).
            np.take(zbuf, cols[0], out=gbuf, mode="clip")
            np.multiply(data[0], gbuf, out=acc)
            for j in range(1, W):
                np.take(zbuf, cols[j], out=gbuf, mode="clip")
                gbuf *= data[j]
                acc += gbuf
            new = (s - acc) / d
            if cfg.omega != 1.0:
                new = (1.0 - cfg.omega) * z + cfg.omega * new
            zbuf[:total] = new
            z = zbuf[:total]

        if draw_defer and defer[mem, pos].any():
            dmask = defer[mem, pos]
            live = np.repeat(~dmask, bs)
            Xflat[flat[live]] = z[live]
            for j in np.flatnonzero(dmask):
                lo = row_off[j]
                deferred.append(
                    (int(rows_g[j]), view.blocks[bids[j]].rows, z[lo : lo + bs[j]].copy())
                )
        else:
            Xflat[flat] = z

    def run(
        self,
        *,
        stopping: StoppingCriterion,
        residual_every: int = 1,
        recorder: Optional[RunRecorder] = None,
        meta: Optional[dict] = None,
    ) -> BatchedRunOutcome:
        """Drive all R replicas from ``x0 = 0`` through the shared run loop.

        An active-set loop (:meth:`repro.runtime.RunLoop.run_batched`):
        per iteration one batched :meth:`sweep` over the replicas still
        running, then one cache-resident 1-D residual per active replica —
        bitwise the sequential solver's own evaluation.  Replicas whose
        residual passes the threshold (or diverges) freeze, exactly like a
        sequential early exit.  Histories are **absolute** residual norms;
        callers scale.

        With a multi-rhs engine each replica is stopped against its own
        ``||b_r||``-relative threshold, exactly as a sequential
        per-request run would be.  *meta* is forwarded to the telemetry
        run's metadata.
        """
        A = self.view.matrix
        n = self.view.n
        R = self.nreplicas
        X = np.zeros((R, n))
        res_row = np.empty(n)

        def rhs_row(r: int) -> np.ndarray:
            return self.B[r] if self.multi_rhs else self.b

        # x0 = 0 for every replica: the initial residual is shared for a
        # shared rhs and per-replica otherwise.
        if self.multi_rhs:
            zero = np.zeros(n)
            r0 = np.array(
                [float(np.linalg.norm(A.residual(zero, self.B[r]))) for r in range(R)]
            )
            b_norm = np.array([float(np.linalg.norm(self.B[r])) for r in range(R)])
        else:
            r0 = np.full(R, float(np.linalg.norm(A.residual(np.zeros(n), self.b))))
            b_norm = float(np.linalg.norm(self.b))

        def residual_norms(reps: np.ndarray) -> np.ndarray:
            out = np.empty(len(reps))
            for i, r in enumerate(reps):
                A.matvec(X[r], out=res_row)
                np.subtract(rhs_row(r), res_row, out=res_row)
                out[i] = float(np.linalg.norm(res_row))
            return out

        loop = RunLoop(stopping, residual_every=residual_every, recorder=recorder)
        out = loop.run_batched(
            X,
            lambda reps: self.sweep(X, reps),
            residual_norms,
            b_norm=b_norm,
            method=f"batched-{self.config.method_name}",
            r0=r0,
            meta=meta,
        )
        if recorder is not None:
            recorder.annotate(
                backend=self.backend,
                partition=self.view.partition_telemetry(),
            )
        return out

    def min_updates(self) -> int:
        """Fewest updates any (replica, block) pair has received."""
        return int(self.update_counts.min()) if self.update_counts.size else 0
