"""The asynchronous execution engine.

This is the software analogue of the paper's CUDA kernel (§3.3): the system
is decomposed into row blocks (:class:`repro.sparse.BlockRowView`), and each
global sweep executes every block once, in a scheduler-determined order,
against the shared iterate ``x``:

1. **Off-block gather** — the block computes
   ``s = b_block − A_external · x_read`` where ``x_read`` is either the
   sweep-start snapshot (that neighbour block is running *concurrently*;
   probability given by the scheduler's effective staleness, derived from
   device occupancy) or live memory (it already finished) — the shift
   function of Eq. (3)/(4), realised stochastically.
2. **Local iterations** — *k* Jacobi sweeps on the block's subdomain with
   the off-block part frozen (Algorithm 1's inner loop); reads and writes
   touch only the block's own rows.
3. **Write visibility** — results are published immediately, or (with the
   configured probability) deferred to the sweep end, modelling write-buffer
   latency.

With the ``"synchronous"`` order (staleness forced to 1) and ``k = 1``, one
sweep is *exactly* one synchronous Jacobi iteration — the engine degrades
gracefully to the textbook method, which the test suite exploits as an
oracle.

Fault injection (§4.5) freezes a set of rows: the affected components are
never recomputed while the failure is active — including inside local
iterations, where their neighbours keep reading the stale values — exactly
the "broken core" semantics of the paper's experiment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._util import as_rng, check_vector
from ..sparse import BlockRowView
from .fault import FaultScenario
from .schedules import AsyncConfig, WaveScheduler

__all__ = ["AsyncEngine"]


class AsyncEngine:
    """Executes block-asynchronous sweeps over a shared iterate.

    Parameters
    ----------
    view:
        Precomputed block decomposition of the system matrix.
    b:
        Right-hand side.
    config:
        Asynchronism configuration (ordering, staleness, local iterations).
    fault:
        Optional failure scenario.
    rng:
        Override generator; defaults to a fresh one from ``config.seed``.

    Attributes
    ----------
    update_counts:
        Per-block count of completed block updates — the data behind the
        Chazan–Miranker condition (1) check.
    sweep_index:
        Number of completed global sweeps.
    """

    def __init__(
        self,
        view: BlockRowView,
        b: np.ndarray,
        config: AsyncConfig,
        *,
        fault: Optional[FaultScenario] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.view = view
        self.b = check_vector(b, view.n, "b")
        self.config = config
        self.fault = fault
        self.rng = rng if rng is not None else as_rng(config.seed)
        self.scheduler = WaveScheduler(view.nblocks, config, self.rng)
        self.update_counts = np.zeros(view.nblocks, dtype=np.int64)
        self.sweep_index = 0
        # Per-block right-hand-side slices (b never changes) and per-entry
        # row indices of the external parts (for per-entry race mixing).
        self._b_blocks = [self.b[blk.rows] for blk in view.blocks]
        self._ext_rows = [blk.external._expanded_rows() for blk in view.blocks]
        # Fault support: per-block local indices of frozen rows, rebuilt
        # whenever the active frozen mask changes.
        self._frozen_mask: Optional[np.ndarray] = None
        self._frozen_local: List[np.ndarray] = []
        # Healed components: reassigned to healthy cores (self-healing
        # recovery, repro.core.recovery) — exempt from any future fault.
        self._healed = np.zeros(view.n, dtype=bool)

    # ------------------------------------------------------------------ #

    def heal_rows(self, rows: np.ndarray) -> None:
        """Permanently exempt *rows* from the fault (reassignment)."""
        self._healed[np.asarray(rows, dtype=np.int64)] = True

    def _refresh_fault_state(self) -> None:
        mask = self.fault.frozen_rows(self.sweep_index, self.view.n) if self.fault else None
        if mask is not None and self._healed.any():
            mask = mask & ~self._healed
        prev = self._frozen_mask
        if (mask is None) != (prev is None) or (
            mask is not None and prev is not None and not np.array_equal(mask, prev)
        ):
            self._frozen_mask = mask
            if mask is None:
                self._frozen_local = []
            else:
                self._frozen_local = [
                    np.flatnonzero(mask[blk.rows]) for blk in self.view.blocks
                ]

    def sweep(self, x: np.ndarray) -> np.ndarray:
        """One global iteration: every block updated once, in schedule order.

        Each off-block component a block reads is, independently with the
        scheduler's freshness fraction γ, a value written earlier in this
        same sweep ("that neighbour finished before my read") and otherwise
        the sweep-start snapshot ("it ran concurrently with me").  γ = 0
        everywhere makes the sweep a synchronous block-Jacobi step; γ = 1 a
        block Gauss-Seidel sweep in schedule order; the GPU reality is in
        between.
        """
        cfg = self.config
        rng = self.rng
        view = self.view
        self._refresh_fault_state()
        frozen = self._frozen_local if self._frozen_mask is not None else None

        order, gamma = self.scheduler.plan_for_sweep(self.sweep_index, rng)
        snapshot = x if np.all(gamma >= 1.0) else x.copy()
        deferred: List[Tuple[slice, np.ndarray]] = []

        for pos, bid in enumerate(order):
            blk = view.blocks[bid]
            rows = blk.rows
            g = gamma[pos]
            if g <= 0.0:
                ext = blk.external.matvec(snapshot)
            elif g >= 1.0:
                ext = blk.external.matvec(x)
            else:
                # Per-entry races: each off-block component is, with
                # probability γ, read after its owner's write from this
                # sweep landed.  Systems with many small off-block
                # couplings self-average (fv1's variation is tiny); systems
                # with a few heavy ones do not (Trefethen's is not) — the
                # §4.1 contrast emerges from the matrix, not from a knob.
                ext = blk.external.matvec(snapshot)
                e = blk.external
                fresh = rng.random(len(e.data)) < g
                if fresh.any():
                    cols = e.indices[fresh]
                    delta = e.data[fresh] * (x[cols] - snapshot[cols])
                    np.add.at(ext, self._ext_rows[bid][fresh], delta)
            s = self._b_blocks[bid] - ext

            frozen_local = frozen[bid] if frozen is not None else None
            defer = cfg.deferred_write_prob > 0.0 and rng.random() < cfg.deferred_write_prob
            saved = x[rows].copy() if defer else None
            for _ in range(cfg.local_iterations):
                old_local = x[rows]
                new_local = (s - blk.local_off.matvec(x)) / blk.diag
                if cfg.omega != 1.0:
                    new_local = (1.0 - cfg.omega) * old_local + cfg.omega * new_local
                if frozen_local is not None and len(frozen_local):
                    if self.fault is not None and self.fault.kind == "silent":
                        # Silent errors (§4.5 outlook): the core computes,
                        # but wrongly — every update is slightly off.
                        new_local[frozen_local] *= self.fault.corruption
                    else:
                        # Broken cores never compute: their components keep
                        # the stale value through every local sweep.
                        new_local[frozen_local] = old_local[frozen_local]
                x[rows] = new_local
            if defer:
                deferred.append((rows, x[rows].copy()))
                x[rows] = saved
            self.update_counts[bid] += 1

        for rows, vals in deferred:
            x[rows] = vals
        self.sweep_index += 1
        return x

    # ------------------------------------------------------------------ #

    def min_updates(self) -> int:
        """Fewest updates any block has received (condition (1) diagnostics)."""
        return int(self.update_counts.min()) if len(self.update_counts) else 0
