"""repro — Block-Asynchronous Relaxation Methods for (simulated) GPUs.

A complete, self-contained reproduction of

    H. Anzt, S. Tomov, J. Dongarra, V. Heuveline,
    "A Block-Asynchronous Relaxation Method for Graphics Processing Units",
    IPDPS Workshops 2012 / JPDC Special Issue on Heterogeneous Computing.

Quickstart
----------
>>> from repro import get_matrix, default_rhs, BlockAsyncSolver
>>> A = get_matrix("fv1")
>>> b = default_rhs(A)
>>> result = BlockAsyncSolver(local_iterations=5, block_size=448, seed=0).solve(A, b)
>>> result.converged
True

Package map
-----------
* :mod:`repro.sparse`      — CSR/COO containers, block-row decomposition,
  spectral estimation (the storage/kernel substrate).
* :mod:`repro.partition`   — first-class row-block decompositions: the
  :class:`Partition` object and the ``uniform`` / ``work_balanced`` /
  ``rcm`` / ``clustered`` strategy registry.
* :mod:`repro.matrices`    — reconstructions of the paper's seven UFMC
  test systems, characterization, MatrixMarket I/O, RCM reordering.
* :mod:`repro.solvers`     — synchronous baselines: Jacobi, Gauss-Seidel /
  SOR (level-scheduled), CG, τ-scaling.
* :mod:`repro.core`        — the contribution: wave schedules, the
  asynchronous engine, ``async-(k)``, fault scenarios, convergence theory.
* :mod:`repro.krylov`      — async sweeps as fixed linear operators inside
  deterministic outer solvers: two-stage preconditioners
  (``AsyncSweepPreconditioner`` / ``JacobiPreconditioner``), first/
  second-order Richardson with heavy-ball momentum, and the
  ``--method``/``--precond`` factory shared by CLI and serve.
* :mod:`repro.gpu`         — the simulated GPU substrate: devices,
  streams/event simulation, calibrated timing, multi-GPU strategies.
* :mod:`repro.dist`        — multiprocess sharding: two-stage
  multisplitting over shared memory, bounded-staleness halo exchange,
  shard fault recovery (``DistAsyncSolver``).
* :mod:`repro.serve`       — solver-as-a-service: plan caching, admission
  batching of same-system requests, bounded priority queueing, service
  telemetry rollups (the ``repro serve`` CLI front-end).
* :mod:`repro.stats`       — run-ensemble statistics (§4.1).
* :mod:`repro.extensions`  — §5 outlook, built: multigrid smoothing and
  async-preconditioned CG.
* :mod:`repro.experiments` — one module per paper table/figure, each
  regenerating the corresponding artifact.
"""

from .core import AsyncConfig, BlockAsyncSolver, FaultScenario
from .dist import DistAsyncSolver
from .matrices import PAPER_TABLE1, SUITE_NAMES, characterize, default_rhs, get_matrix
from .partition import Partition, make_partition
from .serve import SolveRequest, SolveResponse, SolveService
from .solvers import (
    ConjugateGradientSolver,
    GaussSeidelSolver,
    JacobiSolver,
    SolveResult,
    SORSolver,
    StoppingCriterion,
    estimate_tau,
)
from .sparse import BlockRowView, COOMatrix, CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "AsyncConfig",
    "BlockAsyncSolver",
    "DistAsyncSolver",
    "FaultScenario",
    "PAPER_TABLE1",
    "SUITE_NAMES",
    "characterize",
    "default_rhs",
    "get_matrix",
    "ConjugateGradientSolver",
    "GaussSeidelSolver",
    "JacobiSolver",
    "SORSolver",
    "SolveRequest",
    "SolveResponse",
    "SolveResult",
    "SolveService",
    "StoppingCriterion",
    "estimate_tau",
    "BlockRowView",
    "COOMatrix",
    "CSRMatrix",
    "Partition",
    "make_partition",
    "__version__",
]
