"""Sweep-execution backends: whole-system kernels vs the block loop.

Three executors advance :class:`repro.core.AsyncEngine`'s iterate through
one global sweep:

* :class:`ReferenceSweepExecutor` — the per-block Python loop, semantics
  for every regime (mixed per-entry races, faults, partial deferred
  writes), sped up by the compiled per-block plans of
  :class:`repro.perf.SweepPlan`: warmed ELL gather plans, segment-sum
  scatter instead of ``np.add.at``, compressed block-local inner sweeps
  with one write-back per block.
* :class:`FusedSweepExecutor` — the whole sweep as a handful of
  whole-system numpy kernels: one stacked external SpMV, one vectorized
  right-hand-side assembly, *k* stacked local Jacobi sweeps.  No Python
  loop over blocks at all, which is what removes the interpreter floor
  from fine decompositions (the regime of Figure 8 / Table 5).
* :class:`StencilSweepExecutor` — the matrix-free variant of the fused
  sweep for stencil-regular systems (:mod:`repro.perf.stencil`): every
  matrix product is a handful of offset-shifted slice (or small gather)
  multiply-adds on the flat iterate — no CSR index gather at all.
  Engages only when structure detection on the plan succeeds.

**Exactness contract.** The fused and stencil paths engage only where
their result is bitwise the reference loop's — same iterates *and* same
generator state:

* **snapshot reads** (γ ≡ 0): the ``"synchronous"`` order, or full
  staleness with no pipeline tail.  No block observes another's
  current-sweep writes, so block updates commute and the sweep collapses
  to one global two-stage update;
* **all-deferred writes** (``deferred_write_prob == 1``): every write
  lands at the sweep end, so live reads — any γ — observe pre-sweep
  values; with mixed γ the race corrections of the reference loop are
  exact signed zeros, which its fold accumulation cannot propagate into
  the iterate unless the right-hand side carries ``-0.0`` entries
  (checked at dispatch).

Scheduler randomness is consumed identically on both paths:
``Generator.random`` fills doubles sequentially from the bit stream, so
the fused path's single draw call per sweep advances the generator to
bitwise the state the reference loop's interleaved per-block draws leave
behind.  Faults always take the reference loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from ..solvers.block_jacobi import local_jacobi_sweeps
from ..sparse.csr import scatter_add_fold
from .plan import SweepPlan, rhs_preserves_fold

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import AsyncEngine
    from ..core.schedules import AsyncConfig, WaveScheduler

__all__ = [
    "fused_sweep_exact",
    "resolve_backend",
    "consume_schedule_draws",
    "FusedSweepExecutor",
    "ReferenceSweepExecutor",
    "StencilSweepExecutor",
    "make_executor",
]


def fused_sweep_exact(
    config: "AsyncConfig",
    scheduler: "WaveScheduler",
    *,
    has_fault: bool = False,
    rhs_fold_safe: bool = True,
) -> bool:
    """Whether the fused path is bitwise-exact for this configuration.

    See the module docstring for the regime analysis.  *rhs_fold_safe* is
    :func:`repro.perf.rhs_preserves_fold` of the engine's right-hand side;
    it only matters for mixed-γ all-deferred regimes.
    """
    if has_fault:
        return False
    gamma = scheduler.gamma_profile()
    if np.all(gamma <= 0.0):
        return True
    if config.deferred_write_prob >= 1.0:
        mixed = bool(np.any((gamma > 0.0) & (gamma < 1.0)))
        return rhs_fold_safe or not mixed
    return False


def resolve_backend(
    config: "AsyncConfig",
    scheduler: "WaveScheduler",
    *,
    has_fault: bool = False,
    rhs_fold_safe: bool = True,
    plan: "SweepPlan" = None,
) -> str:
    """Resolve ``config.backend`` to the executor actually used.

    ``"auto"`` prefers **stencil > fused > reference**: in the whole-sweep
    exact regimes it runs the matrix-free stencil executor when structure
    detection on *plan* succeeds (:mod:`repro.perf.stencil`), the fused
    CSR path otherwise, and the per-block reference loop outside those
    regimes.  ``"reference"`` always honours the request; ``"fused"`` /
    ``"stencil"`` raise where they would change the iterates — the
    backends are execution strategies, never approximations, and a silent
    fallback would make ``--backend=fused`` timings lie.  *plan* is the
    compiled :class:`repro.perf.SweepPlan`; without one (legacy callers)
    stencil dispatch is simply never considered.
    """
    requested = config.backend
    if requested == "reference":
        return "reference"
    exact = fused_sweep_exact(
        config, scheduler, has_fault=has_fault, rhs_fold_safe=rhs_fold_safe
    )
    if requested == "fused":
        if not exact:
            raise ValueError(
                "backend='fused' requested, but the fused sweep is not exact for "
                "this regime (it requires snapshot reads [gamma == 0 everywhere] "
                "or all-deferred writes, and no fault scenario); use "
                "backend='auto' to fall back to the reference loop"
            )
        return "fused"
    if requested == "stencil":
        if not exact:
            raise ValueError(
                "backend='stencil' requested, but whole-sweep execution is not "
                "exact for this regime (it requires snapshot reads [gamma == 0 "
                "everywhere] or all-deferred writes, and no fault scenario); "
                "use backend='auto' to fall back"
            )
        if plan is None:
            raise ValueError(
                "backend='stencil' requires a compiled sweep plan for structure "
                "detection"
            )
        desc, reason = plan.stencil
        if desc is None:
            raise ValueError(
                f"backend='stencil' requested, but structure detection failed: "
                f"{reason}; use backend='auto' to fall back to the fused/"
                "reference paths"
            )
        return "stencil"
    # "auto"
    if not exact:
        return "reference"
    if plan is not None and plan.stencil[0] is not None:
        return "stencil"
    return "fused"


def consume_schedule_draws(engine: "AsyncEngine", plan: SweepPlan):
    """Draw the sweep's schedule plan and consume the reference loop's RNG.

    Shared by the whole-sweep executors (fused, stencil): the reference
    loop's per-block freshness/defer draws are consumed in one
    ``Generator.random`` call — same double count, same bit stream, same
    final state (``random`` fills doubles sequentially).  The values are
    irrelevant: in every whole-sweep-exact regime the drawn races/defers
    cannot change the iterate.  Returns the sweep's block order.
    """
    eng = engine
    cfg = eng.config
    rng = eng.rng
    order, gamma = eng.scheduler.plan_for_sweep(eng.sweep_index, rng)
    ndraws = 0
    mixed = (gamma > 0.0) & (gamma < 1.0)
    if mixed.any():
        ndraws += int(plan.ennz[order[mixed]].sum())
    if cfg.deferred_write_prob > 0.0:
        ndraws += len(order)
    if ndraws:
        rng.random(ndraws)
    return order


class FusedSweepExecutor:
    """One global sweep as whole-system kernels (no per-block Python loop)."""

    name = "fused"

    def __init__(self, engine: "AsyncEngine"):
        self.engine = engine
        self.plan: SweepPlan = engine.plan.warm_fused()
        self._ext_buf = np.empty(engine.view.n)

    def sweep(self, x: np.ndarray) -> np.ndarray:
        eng = self.engine
        cfg = eng.config
        plan = self.plan
        consume_schedule_draws(eng, plan)

        # The whole sweep: one stacked external gather, one right-hand-side
        # assembly, k stacked block-diagonal Jacobi sweeps.  Bitwise the
        # per-block products: the restacked matrices hold each row's
        # entries in identical order, and the ELL row-length-class kernels
        # sum a row the same way in every matrix that contains it.
        ext = plan.external.matvec(x, out=self._ext_buf)
        s = eng.b - ext
        z = local_jacobi_sweeps(
            plan.local_off, plan.diag, s, x, cfg.local_iterations, omega=cfg.omega
        )
        x[:] = z
        eng.update_counts += 1
        eng.sweep_index += 1
        return x


class StencilSweepExecutor:
    """One global sweep as matrix-free offset-shifted slice arithmetic.

    The structural twin of :class:`FusedSweepExecutor` — same two-stage
    update, same draw consumption, same exactness regimes — with every
    matrix product replaced by the compiled diagonal planes of
    :class:`repro.perf.stencil.StencilKernels`.  Bitwise the fused path
    (and hence the reference loop): the planes apply in ascending-offset
    order, which is exactly the left-to-right per-row entry order the CSR
    row-panel kernels sum in, and weights come from the actual matrix
    entries, so variable coefficients are reproduced exactly.
    """

    name = "stencil"

    def __init__(self, engine: "AsyncEngine"):
        self.engine = engine
        self.plan: SweepPlan = engine.plan
        self.kernels = self.plan.stencil_kernels()
        self._ext_buf = np.empty(engine.view.n)
        self._s_buf = np.empty(engine.view.n)

    def sweep(self, x: np.ndarray) -> np.ndarray:
        eng = self.engine
        cfg = eng.config
        consume_schedule_draws(eng, self.plan)

        ext = self.kernels.apply_external(x, out=self._ext_buf)
        s = np.subtract(eng.b, ext, out=self._s_buf)
        # out=x folds the final write-back into the last local iteration.
        self.kernels.local_sweeps(s, x, cfg.local_iterations, omega=cfg.omega, out=x)
        eng.update_counts += 1
        eng.sweep_index += 1
        return x


class ReferenceSweepExecutor:
    """The per-block sweep loop, exact in every regime.

    Identical semantics to the historical ``AsyncEngine.sweep`` loop, with
    three plan-powered accelerations that keep the iterates bitwise:

    * block updates iterate on the compressed block-local slice and write
      the shared iterate once per block (nobody reads a block's rows
      until its update completes, so intermediate write-backs were
      unobservable);
    * the per-entry race corrections scatter through the plan's
      precomputed segment ids via one ``np.bincount``
      (:func:`repro.sparse.scatter_add_fold`) instead of ``np.add.at``;
    * all gather plans and index structures are compiled once
      (:meth:`repro.perf.SweepPlan.warm_reference`) instead of per sweep.
    """

    name = "reference"

    def __init__(self, engine: "AsyncEngine"):
        self.engine = engine
        self.plan: SweepPlan = engine.plan.warm_reference()
        self._b_blocks = [engine.b[blk.rows] for blk in engine.view.blocks]
        # The segment-sum scatter flips -0.0 bases to +0.0; where that
        # could reach the iterate (b carrying -0.0 entries) fall back to
        # np.add.at so the reference loop stays bitwise the historical one.
        self._fold_safe = rhs_preserves_fold(engine.b)

    def sweep(self, x: np.ndarray) -> np.ndarray:
        eng = self.engine
        cfg = eng.config
        rng = eng.rng
        view = eng.view
        plan = self.plan
        ext_rows = plan.ext_rows
        scatter_base = plan.scatter_base
        local_c = plan.local_c
        eng._refresh_fault_state()
        frozen = eng._frozen_local if eng._frozen_mask is not None else None

        order, gamma = eng.scheduler.plan_for_sweep(eng.sweep_index, rng)
        snapshot = x if np.all(gamma >= 1.0) else x.copy()
        deferred: List[Tuple[slice, np.ndarray]] = []

        for pos, bid in enumerate(order):
            blk = view.blocks[bid]
            rows = blk.rows
            g = gamma[pos]
            if g <= 0.0:
                ext = blk.external.matvec(snapshot)
            elif g >= 1.0:
                ext = blk.external.matvec(x)
            else:
                # Per-entry races: each off-block component is, with
                # probability γ, read after its owner's write from this
                # sweep landed.  Systems with many small off-block
                # couplings self-average (fv1's variation is tiny); systems
                # with a few heavy ones do not (Trefethen's is not) — the
                # §4.1 contrast emerges from the matrix, not from a knob.
                ext = blk.external.matvec(snapshot)
                e = blk.external
                fresh = rng.random(plan.ennz[bid]) < g
                if fresh.any():
                    cols = e.indices[fresh]
                    delta = e.data[fresh] * (x[cols] - snapshot[cols])
                    if self._fold_safe:
                        ext = scatter_add_fold(
                            ext, ext_rows[bid][fresh], delta, base_ids=scatter_base[bid]
                        )
                    else:
                        np.add.at(ext, ext_rows[bid][fresh], delta)
            s = self._b_blocks[bid] - ext

            frozen_local = frozen[bid] if frozen is not None else None
            defer = cfg.deferred_write_prob > 0.0 and rng.random() < cfg.deferred_write_prob
            # Local iterations on the block-local slice; the shared iterate
            # is written once, after the block finishes (or at sweep end
            # for a deferred write) — no earlier read can observe the
            # difference, so this is bitwise the in-place variant.
            z = x[rows]
            for _ in range(cfg.local_iterations):
                new = (s - local_c[bid].matvec(z)) / blk.diag
                if cfg.omega != 1.0:
                    new = (1.0 - cfg.omega) * z + cfg.omega * new
                if frozen_local is not None and len(frozen_local):
                    if eng.fault is not None and eng.fault.kind == "silent":
                        # Silent errors (§4.5 outlook): the core computes,
                        # but wrongly — every update is slightly off.
                        new[frozen_local] *= eng.fault.corruption
                    else:
                        # Broken cores never compute: their components keep
                        # the stale value through every local sweep.
                        new[frozen_local] = z[frozen_local]
                z = new
            if defer:
                deferred.append((rows, z))
            else:
                x[rows] = z
            eng.update_counts[bid] += 1

        for rows, vals in deferred:
            x[rows] = vals
        eng.sweep_index += 1
        return x


def make_executor(backend: str, engine: "AsyncEngine"):
    """Instantiate the executor for a resolved backend name."""
    if backend == "stencil":
        return StencilSweepExecutor(engine)
    if backend == "fused":
        return FusedSweepExecutor(engine)
    if backend == "reference":
        return ReferenceSweepExecutor(engine)
    raise ValueError(f"unknown resolved backend {backend!r}")
