"""Asynchronous restricted-additive-Schwarz sweeps over extended blocks.

The classic engine (``schwarz="none"``) runs the paper's disjoint
decomposition: each block sweeps its own rows with off-block values
frozen.  The Schwarz modes widen every subdomain by the partition's
``overlap`` halo rows (Nayak/Cojean et al.'s abstract asynchronous
Schwarz setting): a block gathers and iterates its *extended* system —
halo rows advance locally, giving the owned rows near the cuts fresher
boundary values at every inner sweep — and then restricts the fold-back:

``"ras"``
    Only owned rows write (halo copies are read-only) — each row written
    by exactly one block, so the γ freshness semantics, deferred writes
    and schedule orders of :class:`repro.core.WaveScheduler` carry over
    verbatim from the disjoint loop, just over extended gathers.
``"wras"``
    Every extended row contributes with partition-of-unity weights
    (``1 / coverage``), accumulated over the sweep and folded at the
    sweep end.  All reads therefore observe the pre-sweep iterate and no
    freshness or defer draws exist to consume — the mode ignores
    ``stale_read_prob`` / ``deferred_write_prob`` by construction.

:class:`RASWorkspace` is the single sweep kernel; the sequential
:class:`RASSweepExecutor` and :class:`repro.core.BatchedAsyncEngine`'s
per-replica loop both call it, so replica *r* of a batched RAS run is
bitwise the sequential run for seed ``seed0 + r`` *by construction*, not
by parallel re-implementation.  None of this code runs at ``overlap=0``
— the engines dispatch here only for ``schwarz != "none"`` with a
positive ``+oK`` partition suffix, which is what keeps the zero-overlap
configuration bitwise the historical engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from ..sparse.csr import scatter_add_fold
from .plan import compile_sweep_plan, rhs_preserves_fold

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import AsyncEngine
    from ..core.schedules import AsyncConfig, WaveScheduler
    from ..sparse import BlockRowView

__all__ = ["RASWorkspace", "RASSweepExecutor"]


class RASWorkspace:
    """Compiled extended-block sweep kernel shared by both engines.

    Construction warms the plan's RAS structures
    (:meth:`repro.perf.SweepPlan.warm_ras`) so the first timed sweep does
    no compilation.  The workspace is stateless across sweeps: schedule
    state (generator, scheduler, sweep index, update counts) is passed in
    per call, which is what lets R batched replicas share one workspace
    while each consumes its own stream exactly as a sequential engine
    would.
    """

    def __init__(self, view: "BlockRowView", config: "AsyncConfig"):
        if config.schwarz not in ("ras", "wras"):
            raise ValueError(f"RASWorkspace needs schwarz='ras'|'wras', got {config.schwarz!r}")
        if view.partition.overlap < 1:
            raise ValueError("RASWorkspace needs a partition with overlap >= 1 (spec '+oK')")
        self.view = view
        self.config = config
        self.plan = compile_sweep_plan(view).warm_ras()
        self.blocks = view.ras_blocks()
        self.ennz = self.plan.ras_ennz
        self.weighted = config.schwarz == "wras"
        self.weights = (
            view.partition.restriction_weights("wras") if self.weighted else None
        )
        # Scatter segment ids of the extended externals (the np.add.at
        # replacement), plus shared base-id aranges by extended size.
        self._ext_rows: List[np.ndarray] = [
            blk.external._expanded_rows() for blk in self.blocks
        ]
        by_size = {}
        self._scatter_base: List[np.ndarray] = [
            by_size.setdefault(blk.nrows, np.arange(blk.nrows, dtype=np.int64))
            for blk in self.blocks
        ]

    def sweep(
        self,
        x: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator,
        scheduler: "WaveScheduler",
        sweep_index: int,
        update_counts: np.ndarray,
        *,
        fold_safe: bool = True,
    ) -> np.ndarray:
        """One global async-RAS sweep of *x* in place.

        *update_counts* is the caller's per-block counter (a row of the
        batched engine's matrix, or the sequential engine's vector);
        *fold_safe* is :func:`repro.perf.rhs_preserves_fold` of *b*,
        computed once by the caller.
        """
        if self.weighted:
            return self._sweep_wras(x, b, rng, scheduler, sweep_index, update_counts)
        cfg = self.config
        order, gamma = scheduler.plan_for_sweep(sweep_index, rng)
        snapshot = x if np.all(gamma >= 1.0) else x.copy()
        draw_defer = cfg.deferred_write_prob > 0.0
        deferred: List[Tuple[slice, np.ndarray]] = []

        for pos, bid in enumerate(order):
            blk = self.blocks[bid]
            g = gamma[pos]
            if g <= 0.0:
                ext = blk.external.matvec(snapshot)
                read = snapshot
            elif g >= 1.0:
                ext = blk.external.matvec(x)
                read = x
            else:
                # Per-entry races over the *extended* external entries —
                # the same stochastic shift function as the disjoint loop,
                # with the halo's captured couplings no longer among them.
                ext = blk.external.matvec(snapshot)
                e = blk.external
                fresh = rng.random(self.ennz[bid]) < g
                if fresh.any():
                    cols = e.indices[fresh]
                    delta = e.data[fresh] * (x[cols] - snapshot[cols])
                    if fold_safe:
                        ext = scatter_add_fold(
                            ext, self._ext_rows[bid][fresh], delta,
                            base_ids=self._scatter_base[bid],
                        )
                    else:
                        np.add.at(ext, self._ext_rows[bid][fresh], delta)
                read = snapshot
            s = b[blk.elo : blk.ehi] - ext
            z = read[blk.elo : blk.ehi]
            for _ in range(cfg.local_iterations):
                new = (s - blk.local_off.matvec(z)) / blk.diag
                if cfg.omega != 1.0:
                    new = (1.0 - cfg.omega) * z + cfg.omega * new
                z = new
            owned = z[blk.owned]
            if draw_defer and rng.random() < cfg.deferred_write_prob:
                deferred.append((slice(blk.start, blk.stop), owned))
            else:
                x[blk.start : blk.stop] = owned
            update_counts[bid] += 1

        for rows, vals in deferred:
            x[rows] = vals
        return x

    def _sweep_wras(
        self,
        x: np.ndarray,
        b: np.ndarray,
        rng: np.random.Generator,
        scheduler: "WaveScheduler",
        sweep_index: int,
        update_counts: np.ndarray,
    ) -> np.ndarray:
        """Weighted-RAS sweep: partition-of-unity fold at the sweep end.

        Every block reads the pre-sweep iterate (*x* is untouched until
        the final fold), so there is no freshness to race on and no write
        to defer — the order draw is the only randomness consumed.
        """
        cfg = self.config
        order, _ = scheduler.plan_for_sweep(sweep_index, rng)
        acc = np.zeros_like(x)
        for bid in order:
            blk = self.blocks[bid]
            ext = blk.external.matvec(x)
            s = b[blk.elo : blk.ehi] - ext
            z = x[blk.elo : blk.ehi]
            for _ in range(cfg.local_iterations):
                new = (s - blk.local_off.matvec(z)) / blk.diag
                if cfg.omega != 1.0:
                    new = (1.0 - cfg.omega) * z + cfg.omega * new
                z = new
            acc[blk.elo : blk.ehi] += self.weights[bid] * z
            update_counts[bid] += 1
        x[:] = acc
        return x


class RASSweepExecutor:
    """Sequential async-RAS executor, wrapping the shared workspace.

    Plays the role :class:`repro.perf.backends.ReferenceSweepExecutor`
    plays for the disjoint decomposition; the resolved backend name of a
    Schwarz engine is ``"ras"``.
    """

    name = "ras"

    def __init__(self, engine: "AsyncEngine"):
        self.engine = engine
        self.workspace = RASWorkspace(engine.view, engine.config)
        self._fold_safe = rhs_preserves_fold(engine.b)

    def sweep(self, x: np.ndarray) -> np.ndarray:
        eng = self.engine
        self.workspace.sweep(
            x,
            eng.b,
            eng.rng,
            eng.scheduler,
            eng.sweep_index,
            eng.update_counts,
            fold_safe=self._fold_safe,
        )
        eng.sweep_index += 1
        return x
