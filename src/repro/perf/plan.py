"""Sweep-plan compilation: the block decomposition as precomputed kernels.

The asynchronous engine's global sweep used to rebuild, on every visit to
every block, the small index structures its kernels need — expanded row
ids for the scatter of per-entry race corrections, right-hand-side slices,
compressed local matrices — and built each block's ELL gather plan lazily
inside the first timed sweep.  For fine decompositions (thousands of
blocks) that bookkeeping, not arithmetic, dominated the time-per-iteration
the paper's Figure 8 / Table 5 measure.

:class:`SweepPlan` compiles the decomposition once, at first engine
construction, into the structures both execution backends consume:

* **per-block** (the reference loop): cached ELL gather plans for every
  external and compressed-local part, per-entry scatter segment ids (the
  ``np.bincount`` replacement for ``np.add.at``), per-block scatter bases
  and external nonzero counts;
* **whole-system** (the fused path): the restacked external and local
  off-diagonal matrices with warmed gather plans, plus the concatenated
  diagonal — one multi-vector-shaped kernel set for the entire sweep.

The plan is attached to the :class:`repro.sparse.BlockRowView` itself
(``view._perf_plan``), so every engine built on one view — sequential,
batched, preconditioner-internal — shares a single compilation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..sparse import BlockRowView
from ..sparse.csr import CSRMatrix

__all__ = ["SweepPlan", "compile_sweep_plan", "plan_compile_count", "rhs_preserves_fold"]

#: Total SweepPlan compilations since import — a diagnostic counter the
#: serve-layer cache tests use to assert "one compilation per structure".
_COMPILE_COUNT = 0


def plan_compile_count() -> int:
    """Number of :class:`SweepPlan` objects compiled since import.

    :func:`compile_sweep_plan` increments this only when it actually
    builds a plan (cache hits on the view do not count), so the delta
    across a workload measures real compilation work — the quantity the
    structure-keyed cache of :mod:`repro.serve` exists to amortise.
    """
    return _COMPILE_COUNT


def rhs_preserves_fold(b: np.ndarray) -> bool:
    """Whether *b* is free of ``-0.0`` entries.

    The segment-sum scatter (:func:`repro.sparse.scatter_add_fold`) seeds
    each accumulator with ``0.0 + base``, which differs from the in-place
    fold only by flipping a ``-0.0`` base to ``+0.0`` — a difference that
    can reach the iterate through ``s = b - ext`` only where *b* itself
    holds a negative zero.  Every practically occurring right-hand side
    passes; the backend dispatch degrades gracefully when one does not.
    """
    b = np.asarray(b)
    return not bool(np.any((b == 0.0) & np.signbit(b)))


class SweepPlan:
    """Compiled execution structures of one block decomposition.

    Built by :func:`compile_sweep_plan`; construction itself is cheap —
    the heavier per-backend structures are materialised on demand by
    :meth:`warm_reference` / :meth:`warm_fused` so an engine only pays for
    the backend it runs.

    Attributes
    ----------
    view:
        The decomposition this plan compiles.
    partition:
        The :class:`repro.partition.Partition` the view was built on — one
        compilation per partition, shared by every engine on the view.
    ennz:
        Per-block external nonzero counts (freshness-draw sizes).
    ell_plans_built:
        Diagnostic: number of ELL gather plans this plan's warm calls have
        constructed.  Stays constant across sweeps — plans are compiled
        once and reused, which the test suite asserts.
    """

    def __init__(self, view: BlockRowView):
        self.view = view
        self.partition = view.partition
        self.ennz = np.array([blk.external.nnz for blk in view.blocks], dtype=np.int64)
        self._ext_rows: Optional[List[np.ndarray]] = None
        self._scatter_base: Optional[List[np.ndarray]] = None
        self._local_c: Optional[List[CSRMatrix]] = None
        self._warmed_reference = False
        self._warmed_fused = False
        self._warmed_ras = False
        self._ras_ennz: Optional[np.ndarray] = None
        self._stencil = None
        self._stencil_kernels = None

    # ------------------------------------------------------------------ #
    # reference-loop structures
    # ------------------------------------------------------------------ #

    @property
    def ext_rows(self) -> List[np.ndarray]:
        """Per-block scatter segment ids: local row of every external entry."""
        if self._ext_rows is None:
            self._ext_rows = [blk.external._expanded_rows() for blk in self.view.blocks]
        return self._ext_rows

    @property
    def scatter_base(self) -> List[np.ndarray]:
        """Per-block base ids (``arange(block_rows)``), shared across equal sizes."""
        if self._scatter_base is None:
            by_size = {}
            self._scatter_base = [
                by_size.setdefault(blk.nrows, np.arange(blk.nrows, dtype=np.int64))
                for blk in self.view.blocks
            ]
        return self._scatter_base

    @property
    def local_c(self) -> List[CSRMatrix]:
        """Per-block compressed (block-local-column) local off-diagonal parts."""
        if self._local_c is None:
            self._local_c = [blk.local_off_compressed() for blk in self.view.blocks]
        return self._local_c

    def warm_reference(self) -> "SweepPlan":
        """Materialise and warm everything the per-block reference loop uses."""
        if not self._warmed_reference:
            for blk, lc in zip(self.view.blocks, self.local_c):
                blk.external.warm_plan()
                lc.warm_plan()
            self.ext_rows
            self.scatter_base
            self._warmed_reference = True
        return self

    # ------------------------------------------------------------------ #
    # fused whole-system structures
    # ------------------------------------------------------------------ #

    @property
    def external(self) -> CSRMatrix:
        """The restacked whole-system external matrix (Eq. (4)'s global part)."""
        return self.view.external_matrix()

    @property
    def local_off(self) -> CSRMatrix:
        """The restacked block-diagonal local off-diagonal matrix."""
        return self.view.local_offdiag_matrix()

    @property
    def diag(self) -> np.ndarray:
        """The concatenated system diagonal."""
        return self.view.diagonal_vector()

    def warm_fused(self) -> "SweepPlan":
        """Materialise and warm the stacked whole-system kernels."""
        if not self._warmed_fused:
            self.view.warm_stacked_kernels()
            self._warmed_fused = True
        return self

    # ------------------------------------------------------------------ #
    # restricted-Schwarz extended-block structures
    # ------------------------------------------------------------------ #

    @property
    def ras_ennz(self) -> np.ndarray:
        """Per-extended-block external nonzero counts (RAS freshness-draw sizes)."""
        if self._ras_ennz is None:
            self._ras_ennz = np.array(
                [blk.external.nnz for blk in self.view.ras_blocks()], dtype=np.int64
            )
        return self._ras_ennz

    def warm_ras(self) -> "SweepPlan":
        """Materialise and warm the extended-block (RAS) kernel structures.

        Builds the view's :meth:`~repro.sparse.BlockRowView.ras_blocks`
        and their gather plans so an async-RAS engine's first timed sweep
        does no compilation — the same contract :meth:`warm_reference`
        gives the disjoint loop.  Never called at ``overlap=0``; the
        classic structures stay the only ones built then.
        """
        if not self._warmed_ras:
            for blk in self.view.ras_blocks():
                blk.external.warm_plan()
                blk.local_off.warm_plan()
            self.ras_ennz
            self._warmed_ras = True
        return self

    # ------------------------------------------------------------------ #
    # matrix-free stencil structures
    # ------------------------------------------------------------------ #

    @property
    def stencil_attempted(self) -> bool:
        """Whether stencil detection has run on this plan (telemetry gate)."""
        return self._stencil is not None

    @property
    def stencil(self):
        """``(descriptor, reason)`` of stencil detection, run lazily once.

        The descriptor is a :class:`repro.perf.stencil.StencilDescriptor`
        when the view's blocks are stencil-regular, else ``None`` with a
        human-readable failure *reason* — recorded in the partition
        telemetry so every fallback is explainable.
        """
        if self._stencil is None:
            from .stencil import detect_stencil

            self._stencil = detect_stencil(self.view)
        return self._stencil

    def stencil_kernels(self):
        """The compiled :class:`repro.perf.stencil.StencilKernels` (cached).

        Raises :class:`ValueError` when detection failed — callers gate on
        :attr:`stencil` first (the backend dispatcher does).
        """
        if self._stencil_kernels is None:
            desc, reason = self.stencil
            if desc is None:
                raise ValueError(f"view is not stencil-regular: {reason}")
            from .stencil import StencilKernels

            self._stencil_kernels = StencilKernels(self.view, desc.offsets)
        return self._stencil_kernels

    @property
    def ell_plans_built(self) -> int:
        """Total ELL gather plans constructed across this plan's matrices."""
        total = 0
        if self._warmed_fused:
            total += self.external._ell_builds + self.local_off._ell_builds
        if self._local_c is not None:
            total += sum(lc._ell_builds for lc in self._local_c)
            total += sum(blk.external._ell_builds for blk in self.view.blocks)
        return total


def compile_sweep_plan(view: BlockRowView) -> SweepPlan:
    """The (cached) compiled sweep plan of *view*.

    The first call compiles and attaches the plan; later calls — from
    other engines sharing the view, e.g. a preconditioner constructing an
    engine per application — return the same object.
    """
    global _COMPILE_COUNT
    if view._perf_plan is None:
        view._perf_plan = SweepPlan(view)
        _COMPILE_COUNT += 1
    return view._perf_plan
