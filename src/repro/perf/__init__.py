"""Performance layer: sweep-plan compilation and backend dispatch.

The engines in :mod:`repro.core` describe *what* a block-asynchronous
sweep computes; this subpackage decides *how* it executes:

* :class:`SweepPlan` (:mod:`repro.perf.plan`) compiles a block
  decomposition, once, into the precomputed structures every execution
  path consumes — warmed ELL gather plans, scatter segment ids, stacked
  whole-system matrices, and (on demand) the stencil structure detection
  outcome;
* :mod:`repro.perf.stencil` detects stencil-regular systems and compiles
  their matrix-free offset-shifted sweep kernels;
* :mod:`repro.perf.backends` dispatches each engine to the matrix-free
  stencil executor where detection succeeds, to a fused whole-system
  executor wherever that is bitwise-exact for the configured asynchronism
  regime, and to the (plan-accelerated) per-block reference loop
  everywhere else.

This mirrors how production asynchronous-solver stacks are organised
(e.g. the backend-dispatched executors over precompiled per-subdomain
plans of abstract asynchronous Schwarz solvers): the schedule semantics
stay in one place, while execution strategies compete behind a dispatch
seam that is observable only through timing.
"""

# The canonical backend-name tuple lives with AsyncConfig's validation.
# repro.core's engine imports this package's *submodules* directly, so
# `import repro.perf` works standalone in either import order.
from ..core.schedules import BACKENDS
from .backends import (
    FusedSweepExecutor,
    ReferenceSweepExecutor,
    StencilSweepExecutor,
    consume_schedule_draws,
    fused_sweep_exact,
    make_executor,
    resolve_backend,
)
from .plan import SweepPlan, compile_sweep_plan, plan_compile_count, rhs_preserves_fold
from .ras import RASSweepExecutor, RASWorkspace
from .stencil import StencilDescriptor, StencilKernels, detect_stencil

__all__ = [
    "SweepPlan",
    "compile_sweep_plan",
    "plan_compile_count",
    "rhs_preserves_fold",
    "BACKENDS",
    "fused_sweep_exact",
    "resolve_backend",
    "consume_schedule_draws",
    "make_executor",
    "FusedSweepExecutor",
    "RASSweepExecutor",
    "RASWorkspace",
    "ReferenceSweepExecutor",
    "StencilSweepExecutor",
    "StencilDescriptor",
    "StencilKernels",
    "detect_stencil",
]
