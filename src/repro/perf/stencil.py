"""Matrix-free stencil detection and offset-shifted sweep kernels.

The fv*/Laplacian and 3-D grid systems of the suite are **stencil
matrices**: every interior row carries the same small set of column
offsets with the same coefficients, boundary rows are clipped variants,
and the whole operator is described by a handful of ``(offset, coeff)``
pairs — the regime where constant-memory GPU stencil kernels beat every
sparse format, because the "sparse structure" is a compile-time constant
and the gather becomes a shifted contiguous read.

This module is the CPU analogue of that kernel family, split in two:

* :func:`detect_stencil` — a **structure detector** run once per compiled
  :class:`repro.perf.SweepPlan`.  It classifies the rows of a
  :class:`repro.sparse.BlockRowView`'s matrix by their exact
  ``(offsets, coefficients)`` pattern and accepts the matrix as
  *stencil-regular* when the patterns collapse to a few well-populated
  interior classes plus clipped boundary variants (the contract below).
  On success it records a :class:`StencilDescriptor` — offsets,
  interior coefficients, best-effort grid shape — on the plan; on failure
  it records the reason, and dispatch falls back to the fused/reference
  CSR paths.
* :class:`StencilKernels` — the **executor kernels**: per-offset weight
  vectors (the diagonal-storage form of the matrix, split into external
  and block-local parts along the view's partition) applied with
  offset-shifted slice arithmetic.  One sweep performs no CSR gather and
  no per-block Python loop: each diagonal is either one contiguous
  ``acc[lo:hi] += w * x[lo+o:hi+o]`` multiply-add or, for sparse
  diagonals (block-crossing couplings), one short fancy-indexed update.

**Detection contract.**  A view is stencil-regular iff

1. it carries no row permutation (``rcm``/``clustered`` partitions fail
   cleanly and fall back — offsets are meaningless after reordering);
2. the distinct column offsets number at most :data:`MAX_OFFSETS` and
   cover at least :data:`MIN_FILL` of the ``offsets × rows`` plane
   (Chem97ZtZ's scattered structure and s1rmt3m1's wide band exit here);
3. the rows collapse to at most :data:`MAX_CLASSES` distinct
   ``(offsets, coeffs)`` patterns (Trefethen's per-row prime diagonal
   makes every row unique and exits here);
4. the **full-pattern** classes (rows carrying every offset) that hold at
   least ``min_interior_rows`` members — the *interior* classes — cover
   at least :data:`MIN_INTERIOR` of all rows.  Several interior classes
   are allowed: fv*'s two-material coefficient field yields one class per
   material plus a few interface patterns, all constant-coefficient;
5. every remaining row is an exact **clipped variant** of an interior
   class: its offsets are a subset and its coefficients are bit-identical
   to that class at every offset it carries.  A near-miss matrix — one
   perturbed coefficient anywhere — either forms an under-populated
   full-pattern class or a non-matching variant, and detection fails.

**Exactness.**  The kernels read their weights from the matrix entries
themselves, so they compute each row's sum over exactly the row's
entries, in ascending-column order — the same order the packed CSR
kernels (:meth:`repro.sparse.CSRMatrix._packed_product`) accumulate.
The one deviation: rows missing an offset that their diagonal's slice
range covers contribute a ``0.0 * x`` term, which is exact for every
finite operand but may flip the *sign* of an exact-zero accumulator.
Signed zeros never propagate into value differences through the sweep's
``+,-,*,/`` data flow, so iterates agree with the reference loop under
``np.array_equal`` (the package's bitwise gates) and bit-for-bit in
every nonzero component; see :mod:`repro.perf.backends` for the regime
gating, which is exactly the fused path's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..sparse import BlockRowView

__all__ = [
    "MAX_OFFSETS",
    "MIN_FILL",
    "MIN_INTERIOR",
    "MAX_CLASSES",
    "StencilDescriptor",
    "detect_stencil",
    "StencilKernels",
]

#: Most distinct column offsets a stencil may carry (27-point = 27).
MAX_OFFSETS = 32

#: Minimum nnz / (offsets × rows) fill of the diagonal-storage plane.
MIN_FILL = 0.5

#: Minimum fraction of rows that must belong to interior (full-pattern,
#: well-populated) classes.
MIN_INTERIOR = 0.5

#: Most distinct ``(offsets, coeffs)`` row patterns overall (interior
#: classes + boundary variants).
MAX_CLASSES = 64

#: A diagonal whose nonzero rows cover at least this fraction of its
#: trimmed row range runs as one contiguous slice multiply-add; sparser
#: diagonals (block-crossing couplings) use a fancy-indexed update.
_DENSE_SLICE = 0.25


@dataclass(frozen=True)
class StencilDescriptor:
    """The recovered structure of a stencil-regular decomposition.

    Attributes
    ----------
    offsets:
        Sorted distinct column offsets (``col - row``), diagonal included.
    coeffs:
        Coefficients of the **dominant** interior class, aligned with
        :attr:`offsets` — the constant-coefficient core of the operator.
        (Execution does not consume these: the kernels read per-row
        weights from the matrix, so coefficient-field scalings like fv*'s
        two-material diagonal are handled exactly.)
    grid_shape:
        Best-effort inferred grid extents (slowest axis first), verified
        against the offset validity masks; ``None`` when inference is not
        certain.  Metadata only — execution never needs it.
    interior_fraction:
        Fraction of rows in interior classes.
    n_classes:
        Distinct row patterns overall.
    n_interior_classes:
        Full-pattern classes accepted as interior.
    n_variants:
        Clipped boundary-row variants.
    """

    offsets: np.ndarray = field(repr=False)
    coeffs: np.ndarray = field(repr=False)
    grid_shape: Optional[Tuple[int, ...]]
    interior_fraction: float
    n_classes: int
    n_interior_classes: int
    n_variants: int

    def telemetry(self) -> dict:
        """JSON-friendly summary for the run-telemetry annotation."""
        return {
            "offsets": [int(o) for o in self.offsets],
            "grid_shape": list(self.grid_shape) if self.grid_shape else None,
            "interior_fraction": float(self.interior_fraction),
            "classes": int(self.n_classes),
            "interior_classes": int(self.n_interior_classes),
            "variants": int(self.n_variants),
        }


# --------------------------------------------------------------------- #
# detection
# --------------------------------------------------------------------- #


def _generated_offsets(strides: Sequence[int]) -> Set[int]:
    """Positive offsets reachable as ±stride combinations (one per axis)."""
    gen = {0}
    for s in strides:
        gen = {g + c * s for g in gen for c in (-1, 0, 1)}
    return {g for g in gen if g > 0}


def _infer_grid_shape(
    offsets: np.ndarray, present: np.ndarray, n: int
) -> Optional[Tuple[int, ...]]:
    """Best-effort grid extents from the offset set, mask-verified.

    Axis strides are searched so every positive offset is a ±1
    combination of them (the cross/box neighbourhoods of 5/7/9/19/27
    point stencils); extents follow from consecutive stride ratios.  The
    result is checked against the actual per-offset presence masks —
    offset ``+stride`` must vanish exactly on the axis's last coordinate
    — and ``None`` is returned whenever anything is uncertain.
    """
    pos = [int(o) for o in offsets if o > 0]
    neg = sorted(int(-o) for o in offsets if o < 0)
    if not pos or pos != neg or pos[0] != 1:
        return None
    pos_set = set(pos)

    def search(strides: List[int]) -> Optional[List[int]]:
        if pos_set <= _generated_offsets(strides):
            dims = []
            for i, s in enumerate(strides):
                nxt = strides[i + 1] if i + 1 < len(strides) else n
                if nxt % s:
                    return None
                dims.append(nxt // s)
            return dims if all(d >= 2 for d in dims) else None
        if len(strides) >= 3:
            return None
        for cand in sorted(pos_set - _generated_offsets(strides)):
            found = search(strides + [cand])
            if found is not None:
                return found
        return None

    dims = search([1])
    if dims is None:
        return None
    # Verify: entry (i, i + stride) must exist exactly where the axis
    # coordinate is not the last one.
    idx = np.arange(n)
    for stride, extent in zip([1] + list(np.cumprod(dims))[:-1], dims):
        k = int(np.searchsorted(offsets, stride))
        if k >= len(offsets) or offsets[k] != stride:
            return None
        expected = (idx // stride) % extent < extent - 1
        if not np.array_equal(present[:, k], expected):
            return None
    return tuple(reversed(dims))


def detect_stencil(
    view: BlockRowView,
    *,
    max_offsets: int = MAX_OFFSETS,
    min_fill: float = MIN_FILL,
    min_interior: float = MIN_INTERIOR,
    max_classes: int = MAX_CLASSES,
) -> Tuple[Optional[StencilDescriptor], str]:
    """Test *view* for stencil regularity.

    Returns ``(descriptor, "")`` on success or ``(None, reason)`` on
    failure; the reason string is recorded in the partition telemetry so
    a fallback is always explainable.  Cost is one vectorized pass over
    the nonzeros plus a per-row lexicographic grouping — paid once per
    compiled plan, and only when stencil dispatch is actually considered.
    """
    if view.partition.perm is not None:
        return None, "partition carries a row permutation (offsets undefined)"
    A = view.matrix
    n = A.shape[0]
    if n < 4 or A.nnz == 0:
        return None, "matrix too small for stencil dispatch"
    if not np.all(np.isfinite(A.data)):
        return None, "matrix entries are not finite"

    rows = A._expanded_rows()
    offs = A.indices - rows
    offsets = np.unique(offs)
    W = len(offsets)
    if W > max_offsets:
        return None, f"{W} distinct offsets exceed the cap of {max_offsets}"
    if 0 not in offsets:
        return None, "no diagonal offset"
    fill = A.nnz / (W * n)
    if fill < min_fill:
        return None, f"offset-plane fill {fill:.3f} below {min_fill}"

    # Row patterns: an (n, W) plane holding each row's coefficient at
    # every offset (NaN = absent — one shared bit pattern, so byte-wise
    # row comparison is exact pattern comparison, signed zeros included).
    plane = np.full((n, W), np.nan)
    plane[rows, np.searchsorted(offsets, offs)] = A.data
    raw = np.ascontiguousarray(plane).view(np.dtype((np.void, 8 * W))).ravel()
    _, first, counts = np.unique(raw, return_index=True, return_counts=True)
    k = len(first)
    if k > max_classes:
        return None, f"{k} distinct row patterns exceed the cap of {max_classes}"

    pat = plane[first]  # (k, W) class patterns
    present = ~np.isnan(pat)
    full = present.all(axis=1)
    # An interior class must be populated: a single perturbed coefficient
    # forms its own 1-row full-pattern class and must not count.
    min_rows = max(2, min(8, n // 8))
    interior_cls = full & (counts >= min_rows)
    if not interior_cls.any():
        return None, f"no full-pattern class with >= {min_rows} rows"
    interior_fraction = float(counts[interior_cls].sum() / n)
    if interior_fraction < min_interior:
        return (
            None,
            f"interior fraction {interior_fraction:.3f} below {min_interior}",
        )

    # Every other class must clip an interior class exactly: offsets a
    # subset, coefficients bit-identical where present.
    anchor_bits = pat[interior_cls].view(np.uint64)
    for c in np.flatnonzero(~interior_cls):
        mask = present[c]
        row_bits = np.ascontiguousarray(pat[c, mask]).view(np.uint64)
        if not any(np.array_equal(row_bits, anchor[mask]) for anchor in anchor_bits):
            return None, "row pattern is not a clipped variant of any interior class"

    dominant = int(np.flatnonzero(interior_cls)[np.argmax(counts[interior_cls])])
    present_rows = ~np.isnan(plane)
    desc = StencilDescriptor(
        offsets=offsets,
        coeffs=pat[dominant].copy(),
        grid_shape=_infer_grid_shape(offsets, present_rows, n),
        interior_fraction=interior_fraction,
        n_classes=int(k),
        n_interior_classes=int(interior_cls.sum()),
        n_variants=int(k - interior_cls.sum()),
    )
    return desc, ""


# --------------------------------------------------------------------- #
# execution kernels
# --------------------------------------------------------------------- #


class _Diagonal:
    """One off-diagonal weight plane: slice-applied or gather-applied."""

    __slots__ = ("offset", "lo", "hi", "w", "idx", "wi")

    def __init__(self, offset: int, rows: np.ndarray, vals: np.ndarray, n: int):
        self.offset = offset
        lo, hi = int(rows[0]), int(rows[-1]) + 1
        if len(rows) >= _DENSE_SLICE * (hi - lo):
            # Dense within its trimmed range: one contiguous multiply-add.
            # Holes carry weight 0.0 (exact for finite operands; zero-sign
            # caveat in the module docstring).
            w = np.zeros(hi - lo)
            w[rows - lo] = vals
            self.lo, self.hi, self.w = lo, hi, w
            self.idx = self.wi = None
        else:
            self.lo = self.hi = 0
            self.w = None
            self.idx, self.wi = rows, vals

    def apply(self, x: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> None:
        """``out[..., r] += w_r * x[..., r + offset]`` over this diagonal.

        *scratch* is a reusable buffer shaped like *out* — the product
        lands there instead of a freshly mapped temporary, which is what
        keeps the hot sweep free of per-call page faults.
        """
        o = self.offset
        if self.w is not None:
            lo, hi = self.lo, self.hi
            t = scratch[..., lo:hi]
            np.multiply(self.w, x[..., lo + o : hi + o], out=t)
            sl = out[..., lo:hi]
            np.add(sl, t, out=sl)
        else:
            out[..., self.idx] += self.wi * x[..., self.idx + o]

    def write(self, x: np.ndarray, out: np.ndarray) -> None:
        """``out = this diagonal's product`` — the first-plane fast path.

        Bitwise the zero-initialised accumulate for every product value
        except an exact ``-0.0``, where the fold ``0.0 + (-0.0)`` would
        have flipped the sign — a zero-sign difference of the kind the
        module contract already carries (it cannot reach a nonzero
        component).
        """
        o = self.offset
        if self.w is not None:
            out[..., : self.lo] = 0.0
            out[..., self.hi :] = 0.0
            np.multiply(
                self.w, x[..., self.lo + o : self.hi + o], out=out[..., self.lo : self.hi]
            )
        else:
            out[...] = 0.0
            out[..., self.idx] += self.wi * x[..., self.idx + o]


class StencilKernels:
    """Offset-shifted sweep kernels of one stencil-regular decomposition.

    Weights are gathered from the view's matrix once, per offset, and
    split into **external** (column outside the row's block) and
    **local** (inside the block, off-diagonal) planes along the
    partition, mirroring the E/L split every executor consumes.  Both
    application methods accept ``(n,)`` vectors and ``(R, n)``
    multi-vectors (the batched engines' stacked variant) — diagonals
    broadcast over leading axes, so the 2-D path is the 1-D arithmetic
    per replica row.

    Diagonals accumulate in ascending-offset order — ascending column
    order, the same per-row order as the packed CSR kernels.
    """

    def __init__(self, view: BlockRowView, offsets: np.ndarray):
        A = view.matrix
        n = A.shape[0]
        self.n = n
        self.diag = view.diagonal_vector()
        rows = A._expanded_rows()
        offs = A.indices - rows
        block_of = np.searchsorted(view.boundaries, np.arange(n), side="right") - 1
        self._external: List[_Diagonal] = []
        self._local: List[_Diagonal] = []
        for o in offsets:
            o = int(o)
            if o == 0:
                continue
            sel = offs == o
            r = rows[sel]
            v = A.data[sel]
            same_block = block_of[r] == block_of[r + o]
            for mask, planes in ((~same_block, self._external), (same_block, self._local)):
                if mask.any():
                    planes.append(_Diagonal(o, r[mask], v[mask], n))
        # Reusable work buffers, keyed by operand shape: freshly mapped
        # 2 MB temporaries cost page faults on every sweep, which at fine
        # decompositions rivals the arithmetic itself.
        self._bufs: dict = {}

    def _scratch(self, key: str, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._bufs.get((key, shape))
        if buf is None:
            buf = self._bufs[key, shape] = np.empty(shape)
        return buf

    @property
    def n_diagonals(self) -> Tuple[int, int]:
        """(external, local) weight-plane counts (diagnostics)."""
        return len(self._external), len(self._local)

    def _accumulate(
        self, planes: List[_Diagonal], x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out = sum of planes applied to x``, first plane writing."""
        if not planes:
            out[...] = 0.0
            return out
        planes[0].write(x, out)
        if len(planes) > 1:
            scratch = self._scratch("plane", out.shape)
            for d in planes[1:]:
                d.apply(x, out, scratch)
        return out

    def apply_external(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = E @ x`` — the whole-system external gather, matrix-free."""
        return self._accumulate(self._external, x, out)

    def local_sweeps(
        self,
        s: np.ndarray,
        z: np.ndarray,
        sweeps: int,
        *,
        omega: float = 1.0,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """*sweeps* Jacobi iterations against the local weight planes.

        Expression-identical to
        :func:`repro.solvers.block_jacobi.local_jacobi_sweeps` with the
        local off-diagonal product replaced by the shifted-slice
        accumulation; *z* is not modified (unless it aliases *out*) and
        the final iterate is returned.  When *out* is given the final
        iterate lands there — *out* may alias *z* (the engine's in-place
        update) but must not alias *s*; intermediate iterates live in
        internal reused buffers.
        """
        acc = self._scratch("acc", s.shape)
        for it in range(sweeps):
            self._accumulate(self._local, z, acc)
            last = it == sweeps - 1
            if omega == 1.0:
                # new = (s - acc) / diag reads neither z nor new: the
                # final iteration may write straight into out, aliases
                # included.
                new = (
                    out
                    if last and out is not None
                    else self._scratch("z0" if it & 1 == 0 else "z1", s.shape)
                )
                np.subtract(s, acc, out=new)
                np.divide(new, self.diag, out=new)
            else:
                t = self._scratch("t", s.shape)
                np.subtract(s, acc, out=t)
                np.divide(t, self.diag, out=t)
                np.multiply(t, omega, out=t)  # omega * new
                if last and out is not None and out is z:
                    np.multiply(z, 1.0 - omega, out=z)
                    np.add(z, t, out=z)
                    new = z
                else:
                    new = (
                        out
                        if last and out is not None
                        else self._scratch("z0" if it & 1 == 0 else "z1", s.shape)
                    )
                    np.multiply(z, 1.0 - omega, out=new)
                    np.add(new, t, out=new)
            z = new
        return z
