"""Structured run telemetry: what every solve actually did, sweep by sweep.

Every convergence claim in the paper is a statement about *residual history
versus sweeps or wall-clock*; :class:`RunRecorder` is the layer that captures
that history — per-sweep wall-clock, residual norms at the recorded cadence,
engine annotations (backend choice, block ``update_counts``, realized
staleness bound) and discrete events (fault activation, healing) — as
structured records with JSON export.

One recorder can span many runs (an experiment solving six matrices opens
six runs on the same recorder); each run is a :class:`RunRecord`.  The
recorder is fed by :class:`repro.runtime.RunLoop` and by the engines; it is
deliberately dumb — append-only lists, no aggregation — so its per-sweep
overhead is a clock read and a few appends (measured by
``benchmarks/bench_runtime_overhead.py``).

The export schema is versioned (:data:`RunRecorder.SCHEMA`)::

    {"schema": "repro.runtime/v1",
     "runs": [{"meta": {...}, "sweeps": {...}, "residuals": {...},
               "events": [...], "annotations": {...}, "summary": {...}}]}
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RunRecord", "RunRecorder"]


def _jsonable(value: Any) -> Any:
    """Conversion of numpy containers/scalars to strict (RFC 8259) JSON types.

    Non-finite floats become ``null``: ``json.dumps`` would otherwise emit
    the literal ``Infinity``/``NaN`` tokens, which are a Python extension
    that strict parsers (``jq``, browsers, other languages) reject — and a
    diverged run records exactly such residuals.  Containers that lost a
    value this way carry a ``finite: false`` marker where the schema has a
    place for one (see :meth:`RunRecord.to_dict`).
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, np.generic):
        return _jsonable(value.item())
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class RunRecord:
    """Telemetry of one run (one solve, or one batched ensemble drive).

    Attributes
    ----------
    meta:
        Run context written at open time (method tag, ``b_norm``, stopping
        threshold, ``maxiter``, ``residual_every``, ...).
    sweep_index / sweep_seconds / sweep_active:
        Per-sweep sample lists: global sweep number, wall-clock seconds of
        the sweep (step plus any residual evaluation), and — for batched
        runs — the number of replicas still being advanced.
    residual_iters / residual_norms:
        The recorded residual trace, at the run's ``residual_every``
        cadence (index 0 is the initial residual).
    events:
        Discrete occurrences (``{"sweep": ..., "kind": ..., ...}``): fault
        activation/clearing, block healing, early stops.
    annotations:
        One-off facts attached after the run (backend choice, block
        ``update_counts``, realized staleness bound, matrix name, ...).
    summary:
        Outcome written at close time (converged, sweep count, ...).
    """

    def __init__(self, meta: Dict[str, Any]):
        self.meta: Dict[str, Any] = dict(meta)
        self.sweep_index: List[int] = []
        self.sweep_seconds: List[float] = []
        self.sweep_active: List[Optional[int]] = []
        self.residual_iters: List[int] = []
        self.residual_norms: List[float] = []
        self.events: List[Dict[str, Any]] = []
        self.annotations: Dict[str, Any] = {}
        self.summary: Dict[str, Any] = {}
        self.opened_at = time.perf_counter()
        self.elapsed: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable (strict RFC 8259) form of this record.

        Non-finite residual norms — any diverged run records them — are
        encoded as ``null`` and flagged by a ``"finite": false`` marker in
        the ``residuals`` block (``true`` when every sample is finite), so
        the export never contains the non-standard ``Infinity``/``NaN``
        tokens.  The same sanitisation applies to meta, events,
        annotations and summary payloads via :func:`_jsonable`.
        """
        finite = all(math.isfinite(v) for v in self.residual_norms)
        out: Dict[str, Any] = {
            "meta": _jsonable(self.meta),
            "sweeps": {
                "index": list(self.sweep_index),
                "seconds": list(self.sweep_seconds),
            },
            "residuals": {
                "iters": list(self.residual_iters),
                "norms": [v if math.isfinite(v) else None for v in self.residual_norms],
                "finite": finite,
            },
            "events": _jsonable(self.events),
            "annotations": _jsonable(self.annotations),
            "summary": _jsonable(self.summary),
        }
        if any(a is not None for a in self.sweep_active):
            out["sweeps"]["active"] = list(self.sweep_active)
        if self.elapsed is not None:
            out["elapsed_seconds"] = self.elapsed
        return out


class RunRecorder:
    """Collects :class:`RunRecord` telemetry across one or more runs.

    Drive it through :class:`repro.runtime.RunLoop` (pass ``recorder=``) or
    attach it to a solver/engine (``solver.recorder``, ``engine.recorder``);
    the loop opens a run per solve, records per-sweep timing and residuals,
    and closes the run with its outcome.  Engines report discrete events
    (fault activation, healing) into whichever run is current.  Export with
    :meth:`to_json` or :meth:`dump`.
    """

    #: Version tag of the export format.
    SCHEMA = "repro.runtime/v1"

    def __init__(self) -> None:
        self.runs: List[RunRecord] = []
        self._current: Optional[RunRecord] = None

    # --- run lifecycle ----------------------------------------------------

    def open_run(self, **meta: Any) -> RunRecord:
        """Start a new run; subsequent records land on it."""
        record = RunRecord(meta)
        self.runs.append(record)
        self._current = record
        return record

    @property
    def current(self) -> RunRecord:
        """The run being recorded.

        Raises :class:`RuntimeError` when no run has ever been opened:
        recording against a recorder with no open run used to fabricate an
        empty ``method="adhoc"`` run silently, which made service-level
        rollups count phantom runs.  Callers must :meth:`open_run` first.
        """
        if self._current is None:
            raise RuntimeError(
                "no open run on this RunRecorder - call open_run() before recording"
            )
        return self._current

    def close_run(self, **summary: Any) -> None:
        """Finish the current run, stamping its outcome and wall-clock.

        A close without any opened run is a no-op (nothing to close) —
        it must never fabricate an empty phantom run.
        """
        record = self._current
        if record is None:
            return
        record.summary.update(summary)
        record.elapsed = time.perf_counter() - record.opened_at

    # --- per-sweep feed ---------------------------------------------------

    def record_sweep(
        self,
        sweep: int,
        seconds: float,
        residual: Optional[float] = None,
        *,
        active: Optional[int] = None,
    ) -> None:
        """One global sweep: wall-clock, plus the residual if evaluated."""
        record = self.current
        record.sweep_index.append(int(sweep))
        record.sweep_seconds.append(float(seconds))
        record.sweep_active.append(None if active is None else int(active))
        if residual is not None:
            record.residual_iters.append(int(sweep))
            record.residual_norms.append(float(residual))

    def record_residual(self, sweep: int, residual: float) -> None:
        """A residual sample outside the sweep feed (e.g. the initial one)."""
        record = self.current
        record.residual_iters.append(int(sweep))
        record.residual_norms.append(float(residual))

    def amend_residual(self, residual: float) -> None:
        """Replace the most recent residual sample (recurrence → true)."""
        record = self.current
        if record.residual_norms:
            record.residual_norms[-1] = float(residual)

    def record_event(self, sweep: int, kind: str, **data: Any) -> None:
        """A discrete occurrence (fault active/cleared, heal, stop, ...)."""
        event: Dict[str, Any] = {"sweep": int(sweep), "kind": str(kind)}
        event.update(data)
        self.current.events.append(event)

    def annotate(self, **facts: Any) -> None:
        """Attach one-off facts (backend, update counts, ...) to the run."""
        self.current.annotations.update(facts)

    # --- export -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of everything recorded."""
        return {"schema": self.SCHEMA, "runs": [r.to_dict() for r in self.runs]}

    def to_json(self, *, indent: int = 2) -> str:
        """The telemetry as a strict (RFC 8259) JSON document.

        ``allow_nan=False`` guarantees the output never contains the
        non-standard ``Infinity``/``NaN`` tokens: every non-finite float
        has already been encoded as ``null`` (with a ``finite: false``
        marker on the residual trace) by :meth:`RunRecord.to_dict`, so a
        diverged run's telemetry still parses everywhere.
        """
        return json.dumps(
            self.to_dict(), indent=indent, default=_jsonable, allow_nan=False
        )

    def dump(self, path) -> None:
        """Write :meth:`to_json` to *path*."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
