"""The one run loop every solver and engine drives through.

Historically the package computed residual-vs-sweep histories in four
independently written loops (the :class:`~repro.solvers.base.IterativeSolver`
template, the custom Krylov loops, the engines' ensemble drivers, the
threaded monitor), each with its own stopping checks, divergence guards and
history bookkeeping.  :class:`RunLoop` owns all of that in one place:

* **stopping** — :class:`StoppingCriterion` (tolerance, budget, relative
  scaling, divergence limit) is defined here and applied identically
  everywhere;
* **history** — the recorded trace is the l2 residual norm at iteration 0
  and then every ``residual_every`` sweeps (always including the final
  sweep), with the recorded iteration numbers reported alongside.
  ``residual_every=1`` reproduces the historical per-sweep histories
  **bitwise**; larger cadences skip the dominant non-sweep cost (a full
  ``||b − A x||`` per sweep) on large systems;
* **telemetry** — an optional :class:`~repro.runtime.RunRecorder` receives
  per-sweep wall-clock, the residual trace and stop events with near-zero
  overhead when absent.

Three driving styles cover the package:

* :meth:`RunLoop.run` — single iterate (plain solvers, engines, the
  threaded monitor).  The step may raise :class:`StopRun` to end the run
  from inside (CG breakdown, workers exhausted).
* :meth:`RunLoop.run_batched` — an active-set loop over R replica iterates
  (the batched ensemble engine): early-stopped replicas freeze, the rest
  advance.
* :meth:`RunLoop.ledger` — a :class:`RunLedger` for loops whose shape the
  driver cannot own (GMRES records a recurrence residual estimate per inner
  step, then amends it with the true residual at each restart); the ledger
  still centralises thresholding, divergence checks and recording.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from .recorder import RunRecorder

__all__ = [
    "StoppingCriterion",
    "StopRun",
    "RunOutcome",
    "BatchedRunOutcome",
    "RunLedger",
    "RunLoop",
]


@dataclass(frozen=True)
class StoppingCriterion:
    """Residual-based stopping rule.

    ``relative=True`` (default) compares ``||r|| / ||b||`` against *tol*
    (with ``||b|| = 0`` falling back to the absolute residual); otherwise
    ``||r||`` itself is compared.  ``divergence_limit`` aborts runs whose
    residual exploded (used for the ρ(B) > 1 experiments, where divergence
    is the expected observation, not an error).
    """

    tol: float = 1e-14
    maxiter: int = 1000
    relative: bool = True
    divergence_limit: float = 1e100

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.maxiter < 0:
            raise ValueError("maxiter must be non-negative")

    def threshold(self, b_norm: float) -> float:
        """Absolute residual threshold for a given right-hand-side norm."""
        if self.relative and b_norm > 0:
            return self.tol * b_norm
        return self.tol

    def diverged(self, res_norm: float) -> bool:
        """Whether *res_norm* signals blow-up."""
        return not np.isfinite(res_norm) or res_norm > self.divergence_limit


class StopRun(Exception):
    """Raised by a step callback to end the run from inside.

    The loop stops *before* counting the interrupted sweep: no residual is
    recorded for it, and the outcome carries :attr:`reason` as its
    ``stop_reason`` (e.g. ``"breakdown"`` for CG's loss of positive
    definiteness, ``"workers-exhausted"`` for the threaded monitor).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class RunOutcome:
    """What one :meth:`RunLoop.run` produced.

    ``residuals[j]`` is the l2 residual norm after ``residual_iters[j]``
    sweeps (``residual_iters == [0, 1, 2, ...]`` at the default cadence);
    ``sweeps`` counts the steps actually taken, which can exceed
    ``residual_iters[-1]`` only when a :class:`StopRun` cut a cadence
    window short.
    """

    x: Any
    residuals: np.ndarray
    residual_iters: np.ndarray
    sweeps: int
    converged: bool
    diverged: bool
    stop_reason: Optional[str] = None


@dataclass
class BatchedRunOutcome:
    """What one :meth:`RunLoop.run_batched` produced.

    ``histories[r]`` is replica *r*'s recorded residual trace (frozen
    replicas stop contributing once converged or diverged);
    ``residual_iters`` gives the sweep numbers of the recorded cadence,
    shared by all replicas still active at each point.
    """

    X: np.ndarray
    histories: List[np.ndarray]
    residual_iters: np.ndarray
    converged: np.ndarray
    diverged: np.ndarray
    sweeps: int


class RunLedger:
    """Stopping/recording services for loops the driver cannot own.

    GMRES(m) is the motivating customer: it records a *recurrence* residual
    estimate per inner step (no extra matvec), then replaces the last
    estimate with the true residual at each restart boundary — a shape
    :meth:`RunLoop.run` cannot express.  The ledger gives such loops the
    same thresholding, divergence logic and telemetry as everyone else
    while they keep their own control flow.
    """

    def __init__(
        self,
        stopping: StoppingCriterion,
        b_norm: float,
        *,
        recorder: Optional[RunRecorder] = None,
        method: str = "run",
    ):
        self.stopping = stopping
        self.b_norm = float(b_norm)
        self.threshold = stopping.threshold(b_norm)
        self.recorder = recorder
        self.residuals: List[float] = []
        self.converged = False
        self.diverged = False
        if recorder is not None:
            recorder.open_run(
                method=method,
                b_norm=self.b_norm,
                threshold=self.threshold,
                maxiter=stopping.maxiter,
                residual_every=1,
                tol=stopping.tol,
                relative=stopping.relative,
            )

    def start(self, res0: float) -> bool:
        """Record the initial residual; returns whether it already passes."""
        res0 = float(res0)
        self.residuals.append(res0)
        if self.recorder is not None:
            self.recorder.record_residual(0, res0)
        self.converged = res0 <= self.threshold
        return self.converged

    def record(self, iteration: int, res: float) -> None:
        """Append one residual sample (an estimate is fine; amend later)."""
        res = float(res)
        self.residuals.append(res)
        if self.recorder is not None:
            self.recorder.record_residual(iteration, res)

    def amend_last(self, res: float) -> None:
        """Replace the most recent sample (recurrence estimate → true)."""
        res = float(res)
        self.residuals[-1] = res
        if self.recorder is not None:
            self.recorder.amend_residual(res)

    def check(self, res: float) -> bool:
        """Apply the stopping rule to *res*; returns whether to stop."""
        res = float(res)
        if res <= self.threshold:
            self.converged = True
        elif self.stopping.diverged(res):
            self.diverged = True
        return self.converged or self.diverged

    def history(self) -> np.ndarray:
        """The recorded residual trace as an array."""
        return np.array(self.residuals)

    def finish(self, **summary: Any) -> None:
        """Close the recorder run (no-op without a recorder)."""
        if self.recorder is not None:
            self.recorder.close_run(
                converged=self.converged, diverged=self.diverged, **summary
            )


class RunLoop:
    """The instrumented driver behind every solve in the package.

    Parameters
    ----------
    stopping:
        The stopping rule (tolerance, budget, divergence limit).
    residual_every:
        Full-residual cadence *m*: ``||b − A x||`` is evaluated (and the
        stopping rule applied) every *m* sweeps, plus always on the final
        sweep of the budget.  ``m=1`` — the default, used by every paper
        figure — is bitwise-identical to evaluating each sweep; larger *m*
        trades stopping granularity for skipping the dominant non-sweep
        cost.  Steps never depend on evaluations, so the iterates visited
        are identical for every *m*.
    recorder:
        Optional telemetry sink; when ``None`` the loop takes no clock
        readings at all.
    """

    def __init__(
        self,
        stopping: StoppingCriterion,
        *,
        residual_every: int = 1,
        recorder: Optional[RunRecorder] = None,
    ):
        if residual_every < 1:
            raise ValueError("residual_every must be >= 1")
        self.stopping = stopping
        self.residual_every = int(residual_every)
        self.recorder = recorder

    # ------------------------------------------------------------------ #

    def run(
        self,
        x: Any,
        step: Callable[[Any, int], Any],
        residual_norm: Callable[[Any], float],
        *,
        b_norm: float,
        method: str = "run",
        r0: Optional[float] = None,
        observer: Optional[Callable[[int, Any, float], None]] = None,
    ) -> RunOutcome:
        """Drive ``step`` until convergence, divergence or the budget.

        Parameters
        ----------
        x:
            Initial iterate.  The loop is agnostic to its type: a vector, a
            multi-vector, anything ``step``/``residual_norm`` understand.
        step:
            ``step(x, it)`` performs global sweep ``it + 1`` and returns
            the new iterate (returning ``None`` means "updated in place").
            May raise :class:`StopRun` to end the run; the interrupted
            sweep is not counted.
        residual_norm:
            ``residual_norm(x)`` → the l2 residual norm (the recorded
            quantity).
        b_norm:
            Right-hand-side norm for relative thresholds.
        method:
            Tag for telemetry.
        r0:
            Precomputed initial residual norm (skips one evaluation; must
            equal ``residual_norm(x)``).
        observer:
            ``observer(it, x, res)`` called at every *recorded* residual
            that does not stop the run, plus unconditionally at iteration 0
            — the hook the self-healing solver's detect/localize/heal logic
            rides on.
        """
        st = self.stopping
        m = self.residual_every
        rec = self.recorder
        threshold = st.threshold(b_norm)
        if rec is not None:
            rec.open_run(
                method=method,
                b_norm=float(b_norm),
                threshold=threshold,
                maxiter=st.maxiter,
                residual_every=m,
                tol=st.tol,
                relative=st.relative,
            )
        res0 = float(residual_norm(x)) if r0 is None else float(r0)
        residuals: List[float] = [res0]
        riters: List[int] = [0]
        if rec is not None:
            rec.record_residual(0, res0)
        converged = res0 <= threshold
        diverged = False
        stop_reason: Optional[str] = None
        if observer is not None:
            observer(0, x, res0)

        it = 0
        while not converged and it < st.maxiter:
            t0 = time.perf_counter() if rec is not None else 0.0
            try:
                nx = step(x, it)
            except StopRun as stop:
                stop_reason = stop.reason
                if rec is not None:
                    rec.record_event(it, "stop", reason=stop.reason)
                break
            if nx is not None:
                x = nx
            it += 1
            res: Optional[float] = None
            if it % m == 0 or it >= st.maxiter:
                res = float(residual_norm(x))
            if rec is not None:
                rec.record_sweep(it, time.perf_counter() - t0, res)
            if res is None:
                continue
            residuals.append(res)
            riters.append(it)
            if res <= threshold:
                converged = True
            elif st.diverged(res):
                diverged = True
                break
            elif observer is not None:
                observer(it, x, res)

        if rec is not None:
            rec.close_run(
                converged=converged,
                diverged=diverged,
                sweeps=it,
                final_residual=residuals[-1],
                stop_reason=stop_reason,
            )
        return RunOutcome(
            x=x,
            residuals=np.array(residuals),
            residual_iters=np.array(riters, dtype=np.int64),
            sweeps=it,
            converged=converged,
            diverged=diverged,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------ #

    def run_batched(
        self,
        X: np.ndarray,
        sweep: Callable[[np.ndarray], Any],
        residual_norms: Callable[[np.ndarray], np.ndarray],
        *,
        b_norm,
        method: str = "batched",
        r0: Optional[np.ndarray] = None,
        meta: Optional[dict] = None,
    ) -> BatchedRunOutcome:
        """Active-set driver over R replica iterates (batched ensembles).

        ``sweep(reps)`` advances the replica rows listed in *reps* (an
        ``int64`` array) in place; ``residual_norms(reps)`` returns their
        residual norms in the same order.  A replica whose residual passes
        the threshold (or diverges) freezes — it leaves the active set and
        its history stops growing, exactly like a sequential early exit.

        ``b_norm`` may be a scalar (one shared right-hand side — the
        ensemble case) or a length-R array of per-replica norms (each
        replica solves its own right-hand side — the multi-rhs batching
        the serving layer uses); with an array, each replica is stopped
        against its own threshold, exactly as a sequential per-request
        run would be.  *meta* is merged into the telemetry run's metadata.
        """
        st = self.stopping
        m = self.residual_every
        rec = self.recorder
        b_arr = np.asarray(b_norm, dtype=float)
        per_replica = b_arr.ndim > 0
        if per_replica:
            if st.relative:
                threshold = np.where(b_arr > 0, st.tol * b_arr, st.tol)
            else:
                threshold = np.full(b_arr.shape, st.tol)
        else:
            threshold = st.threshold(float(b_arr))
        R = int(X.shape[0])
        if rec is not None:
            rec.open_run(
                method=method,
                b_norm=b_arr.tolist() if per_replica else float(b_arr),
                threshold=threshold.tolist() if per_replica else threshold,
                maxiter=st.maxiter,
                residual_every=m,
                tol=st.tol,
                relative=st.relative,
                replicas=R,
                **(meta or {}),
            )
        if r0 is None:
            r0 = residual_norms(np.arange(R, dtype=np.int64))
        r0 = np.asarray(r0, dtype=float)
        histories: List[List[float]] = [[float(r0[r])] for r in range(R)]
        riters: List[int] = [0]
        converged = r0 <= threshold
        diverged = np.zeros(R, dtype=bool)
        active = [r for r in range(R) if not converged[r]]
        if rec is not None and R:
            rec.record_residual(0, float(np.max(r0)))

        it = 0
        while active and it < st.maxiter:
            reps = np.asarray(active, dtype=np.int64)
            t0 = time.perf_counter() if rec is not None else 0.0
            sweep(reps)
            it += 1
            res: Optional[np.ndarray] = None
            if it % m == 0 or it >= st.maxiter:
                res = residual_norms(reps)
                riters.append(it)
                still: List[int] = []
                for i, r in enumerate(active):
                    v = float(res[i])
                    histories[r].append(v)
                    if v <= (threshold[r] if per_replica else threshold):
                        converged[r] = True
                    elif st.diverged(v):
                        diverged[r] = True
                    else:
                        still.append(r)
                active = still
            if rec is not None:
                rec.record_sweep(
                    it,
                    time.perf_counter() - t0,
                    None if res is None or not len(res) else float(np.max(res)),
                    active=len(reps),
                )

        if rec is not None:
            rec.close_run(
                converged=int(converged.sum()),
                diverged=int(diverged.sum()),
                sweeps=it,
            )
        return BatchedRunOutcome(
            X=X,
            histories=[np.asarray(h) for h in histories],
            residual_iters=np.asarray(riters, dtype=np.int64),
            converged=converged,
            diverged=diverged,
            sweeps=it,
        )

    # ------------------------------------------------------------------ #

    def ledger(self, b_norm: float, *, method: str = "run") -> RunLedger:
        """A :class:`RunLedger` sharing this loop's stopping and recorder.

        ``residual_every`` does not apply to ledger-driven loops: their
        recurrence estimates come for free, so there is no evaluation cost
        to amortise.
        """
        return RunLedger(
            self.stopping, b_norm, recorder=self.recorder, method=method
        )
