"""The instrumented runtime every solver and engine executes through.

* :mod:`repro.runtime.loop` — :class:`RunLoop`, the one driver owning
  stopping (:class:`StoppingCriterion`), divergence detection, residual
  recording at a configurable ``residual_every`` cadence, plus the
  :class:`RunLedger` escape hatch for loops with their own shape (GMRES)
  and :class:`StopRun` for in-step termination (CG breakdown).
* :mod:`repro.runtime.recorder` — :class:`RunRecorder`, the structured
  telemetry layer: per-sweep wall-clock, residual norms, engine
  annotations (backend, update counts, staleness) and fault/recovery
  events, with versioned JSON export.
"""

from .loop import (
    BatchedRunOutcome,
    RunLedger,
    RunLoop,
    RunOutcome,
    StopRun,
    StoppingCriterion,
)
from .recorder import RunRecord, RunRecorder

__all__ = [
    "BatchedRunOutcome",
    "RunLedger",
    "RunLoop",
    "RunOutcome",
    "RunRecord",
    "RunRecorder",
    "StopRun",
    "StoppingCriterion",
]
