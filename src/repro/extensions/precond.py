"""async-(k) sweeps as a preconditioner (paper §5 outlook).

A fixed number of block-asynchronous sweeps from a zero initial guess is a
*linear* operator ``z = P r`` (every update is linear in the inputs), so it
can serve as a preconditioner.  Two caveats, handled explicitly:

* **Fixed schedule** — a preconditioner must be the *same* operator at
  every CG iteration, so the sweeps here run with a deterministic
  ``sequential`` schedule re-created identically per application (no
  cross-application nondeterminism).
* **Symmetry** — sequential block sweeps make P mildly nonsymmetric, which
  standard CG theory does not cover.  In practice (and in the X2
  benchmark) PCG with this operator converges robustly on the suite's SPD
  systems and cuts iteration counts several-fold; the ``symmetrize`` option
  applies a forward-then-reverse sweep pair (an SSOR-like symmetrisation)
  for a theoretically cleaner operator.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.engine import AsyncEngine
from ..core.schedules import AsyncConfig
from ..sparse import BlockRowView, CSRMatrix

__all__ = ["AsyncPreconditioner"]


class AsyncPreconditioner:
    """``M⁻¹ ≈`` a few async-(k) sweeps on ``A z = r``.

    Parameters
    ----------
    A:
        The SPD system matrix.
    sweeps:
        Global sweeps per application (1–3 are typical).
    config:
        Asynchronism parameters; the ``order`` is forced to
        ``"sequential"`` and the seed fixed so every application is the
        same linear operator.
    symmetrize:
        Apply a forward sweep set followed by a reversed one (default; the
        one-sided operator's asymmetry breaks CG on strongly graded
        systems, while the forward/reverse pair behaves like a block-SSOR
        operator and is robust).

    Examples
    --------
    >>> from repro import ConjugateGradientSolver, get_matrix, default_rhs
    >>> A = get_matrix("fv1"); b = default_rhs(A)
    >>> M = AsyncPreconditioner(A, sweeps=2)
    >>> pcg = ConjugateGradientSolver(preconditioner=M)
    """

    def __init__(
        self,
        A: CSRMatrix,
        sweeps: int = 2,
        config: Optional[AsyncConfig] = None,
        *,
        symmetrize: bool = True,
    ):
        if sweeps < 1:
            raise ValueError("sweeps must be >= 1")
        base = config if config is not None else AsyncConfig(local_iterations=2, block_size=256)
        self.config = dataclasses.replace(
            base, order="sequential", stale_read_prob=0.0, deferred_write_prob=0.0, seed=0
        )
        self.reverse_config = dataclasses.replace(self.config, order="reversed")
        self.sweeps = sweeps
        self.symmetrize = symmetrize
        self.A = A
        self.view = BlockRowView(A, block_size=self.config.block_size)

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: approximate ``A z = r`` from zero."""
        z = np.zeros_like(r)
        engine = AsyncEngine(self.view, r, self.config)
        for _ in range(self.sweeps):
            z = engine.sweep(z)
        if self.symmetrize:
            engine = AsyncEngine(self.view, r, self.reverse_config)
            for _ in range(self.sweeps):
                z = engine.sweep(z)
        return z
