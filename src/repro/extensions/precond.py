"""Deprecated home of the async-sweep preconditioner.

The prototype that lived here was promoted to the first-class
:mod:`repro.krylov` subsystem — see
:class:`repro.krylov.AsyncSweepPreconditioner` (compile-once engines, the
snapshot/spectrum-bounds regime, smoother mode) and the outer-solver
factory :func:`repro.krylov.make_outer_solver`.

:class:`AsyncPreconditioner` remains importable as a thin shim that warns
and delegates; it reproduces the historical behaviour bit-for-bit
(including the unconditional forcing of the forward order to
``"sequential"``, where the new class keeps an already-deterministic
requested order).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional

from ..core.schedules import AsyncConfig
from ..krylov import AsyncSweepPreconditioner
from ..sparse import CSRMatrix

__all__ = ["AsyncPreconditioner"]


class AsyncPreconditioner(AsyncSweepPreconditioner):
    """Deprecated alias of :class:`repro.krylov.AsyncSweepPreconditioner`.

    Examples
    --------
    >>> import warnings
    >>> from repro import get_matrix
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     M = AsyncPreconditioner(get_matrix("fv1"), sweeps=2)
    >>> M.config.order
    'sequential'
    """

    def __init__(
        self,
        A: CSRMatrix,
        sweeps: int = 2,
        config: Optional[AsyncConfig] = None,
        *,
        symmetrize: bool = True,
    ):
        warnings.warn(
            "repro.extensions.precond.AsyncPreconditioner has moved to "
            "repro.krylov.AsyncSweepPreconditioner",
            DeprecationWarning,
            stacklevel=2,
        )
        if config is not None:
            # Historical contract: the forward order was always forced to
            # "sequential" regardless of the requested one.
            config = dataclasses.replace(config, order="sequential")
        super().__init__(A, sweeps, config, symmetrize=symmetrize)
