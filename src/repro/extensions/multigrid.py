"""Geometric multigrid with pluggable (a)synchronous smoothers.

The paper's §5: "Another research field is related to the widespread use of
component-wise relaxation methods as preconditioner or smoother in
multigrid."  This module builds that experiment: a textbook geometric
V-cycle for the 2-D Dirichlet Poisson problem on ``(2^l − 1)²`` grids —
5-point rediscretized operators per level, full-weighting restriction,
bilinear prolongation, dense solve on the coarsest level — where the
smoother is any of

* damped Jacobi (the classical parallel smoother),
* Gauss-Seidel (the classical serial smoother),
* **async-(k)** — the paper's method, with its scheduler nondeterminism.

The X1 extension benchmark compares V-cycle contraction factors across
smoothers; the headline observation is that block-asynchronous smoothing
matches damped-Jacobi smoothing quality while inheriting the asynchronous
execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._util import RNGLike
from ..core.schedules import AsyncConfig
from ..krylov import AsyncSweepPreconditioner
from ..matrices.grids import stencil_laplacian_2d
from ..sparse import CSRMatrix

__all__ = ["SmootherSpec", "MultigridPoisson"]

_SMOOTHERS = ("jacobi", "gauss-seidel", "async")


@dataclass(frozen=True)
class SmootherSpec:
    """Which smoother the V-cycle uses, and how.

    Attributes
    ----------
    kind:
        ``"jacobi"`` (damped, weight *omega*), ``"gauss-seidel"`` or
        ``"async"`` (async-(*local_iterations*), damped by *omega*).
    sweeps:
        Pre- and post-smoothing sweep count.
    omega:
        Damping (2/3 is optimal for Jacobi on the 5-point Laplacian).
    local_iterations / block_size / seed:
        async-(k) parameters (ignored for the synchronous smoothers).
    """

    kind: str = "jacobi"
    sweeps: int = 2
    omega: float = 2.0 / 3.0
    local_iterations: int = 2
    block_size: int = 128
    seed: RNGLike = 0

    def __post_init__(self) -> None:
        if self.kind not in _SMOOTHERS:
            raise ValueError(f"kind must be one of {_SMOOTHERS}, got {self.kind!r}")
        if self.sweeps < 0:
            raise ValueError("sweeps must be non-negative")
        if not (0 < self.omega <= 1.5):
            raise ValueError("omega out of the sensible range (0, 1.5]")


class _Level:
    """Operators and smoother state of one grid level."""

    def __init__(self, nx: int, spec: SmootherSpec):
        self.nx = nx
        self.n = nx * nx
        self.A = stencil_laplacian_2d(nx, stencil="5pt")
        self.spec = spec
        d = self.A.diagonal()
        self.inv_diag = 1.0 / d
        self._gs_sweep = None
        self._upper = None
        self._async_smoother: Optional[AsyncSweepPreconditioner] = None
        if spec.kind == "gauss-seidel":
            from ..solvers.triangular import TriangularSweep

            lower = self.A.lower_triangle(strict=True)
            self._gs_sweep = TriangularSweep(lower.add(CSRMatrix.diagonal_matrix(d)))
            self._upper = self.A.upper_triangle(strict=True)
        elif spec.kind == "async":
            # Smoothers and preconditioners share one code path: the
            # unfrozen (freeze=False) AsyncSweepPreconditioner keeps the
            # nondeterministic schedule verbatim and smooths from the
            # current iterate through the shared compiled-plan view.
            cfg = AsyncConfig(
                local_iterations=spec.local_iterations,
                block_size=min(spec.block_size, self.n),
                omega=spec.omega,
                seed=spec.seed,
            )
            self._async_smoother = AsyncSweepPreconditioner(
                self.A, sweeps=spec.sweeps, config=cfg, symmetrize=False, freeze=False
            )

    def smooth(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        spec = self.spec
        if spec.kind == "jacobi":
            for _ in range(spec.sweeps):
                r = self.A.residual(x, b)
                x += spec.omega * self.inv_diag * r
            return x
        if spec.kind == "gauss-seidel":
            for _ in range(spec.sweeps):
                rhs = b - self._upper.matvec(x)
                x = self._gs_sweep.solve(rhs, out=x)
            return x
        # async-(k): smooth() runs a fresh engine per call so the V-cycle's
        # smoother is a fixed-length operator (same sweep count each visit);
        # the schedule stays nondeterministic across seeds as on hardware.
        return self._async_smoother.smooth(x, b)


class MultigridPoisson:
    """V-cycle solver for the 2-D Dirichlet Poisson problem.

    Parameters
    ----------
    levels:
        Finest grid is ``(2**levels − 1)²`` unknowns; coarsening halves the
        grid down to 3×3, which is solved densely.
    smoother:
        Smoother specification for every level.

    Examples
    --------
    >>> mg = MultigridPoisson(levels=5)
    >>> import numpy as np
    >>> b = np.ones(mg.n)
    >>> x, history = mg.solve(b, tol=1e-10)
    >>> bool(history[-1] / history[0] < 1e-10)
    True
    """

    def __init__(self, levels: int = 5, smoother: SmootherSpec = SmootherSpec()):
        if levels < 2:
            raise ValueError("levels must be >= 2")
        self.levels: List[_Level] = []
        for l in range(levels, 1, -1):
            self.levels.append(_Level((1 << l) - 1, smoother))
        coarse = self.levels[-1]
        self._coarse_dense = coarse.A.to_dense()

    @property
    def n(self) -> int:
        """Unknowns on the finest grid."""
        return self.levels[0].n

    # --- grid transfer operators --------------------------------------- #

    @staticmethod
    def restrict(fine: np.ndarray, nx_fine: int) -> np.ndarray:
        """Full-weighting restriction from ``nx_fine²`` to ``((nx_fine−1)/2)²``."""
        nxc = (nx_fine - 1) // 2
        f = fine.reshape(nx_fine, nx_fine)
        # Coarse point (I, J) sits at fine (2I+1, 2J+1); the 9-point
        # full-weighting stencil [1 2 1; 2 4 2; 1 2 1] / 16 applies.
        c = f[1::2, 1::2]
        center = c[: nxc, : nxc]
        edges = f[0:-2:2, 1::2] + f[2::2, 1::2] + f[1::2, 0:-2:2] + f[1::2, 2::2]
        corners = f[0:-2:2, 0:-2:2] + f[0:-2:2, 2::2] + f[2::2, 0:-2:2] + f[2::2, 2::2]
        coarse = (4.0 * center + 2.0 * edges[:nxc, :nxc] + corners[:nxc, :nxc]) / 16.0
        return coarse.ravel()

    @staticmethod
    def prolong(coarse: np.ndarray, nx_coarse: int) -> np.ndarray:
        """Bilinear interpolation from ``nx_coarse²`` to ``(2·nx_coarse+1)²``."""
        nxf = 2 * nx_coarse + 1
        c = coarse.reshape(nx_coarse, nx_coarse)
        # Pad with the Dirichlet-zero boundary ring so every interpolation
        # stencil reads valid neighbours: P[i+1, j+1] = c[i, j].
        P = np.pad(c, 1)
        f = np.empty((nxf, nxf))
        f[1::2, 1::2] = c
        f[0::2, 1::2] = 0.5 * (P[:-1, 1:-1] + P[1:, 1:-1])
        f[1::2, 0::2] = 0.5 * (P[1:-1, :-1] + P[1:-1, 1:])
        f[0::2, 0::2] = 0.25 * (P[:-1, :-1] + P[:-1, 1:] + P[1:, :-1] + P[1:, 1:])
        return f.ravel()

    # --- cycles ---------------------------------------------------------- #

    def _vcycle(self, level: int, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        lv = self.levels[level]
        if level == len(self.levels) - 1:
            return np.linalg.solve(self._coarse_dense, b)
        x = lv.smooth(x, b)
        r = lv.A.residual(x, b)
        # The levels share one dimensionless 5-point stencil (the 1/h²
        # factor is dropped), so the rediscretized coarse equation needs
        # the (2h/h)² = 4 scaling on the restricted residual.
        rc = 4.0 * self.restrict(r, lv.nx)
        ec = self._vcycle(level + 1, np.zeros_like(rc), rc)
        x += self.prolong(ec, self.levels[level + 1].nx)
        return lv.smooth(x, b)

    def solve(self, b: np.ndarray, *, tol: float = 1e-10, maxcycles: int = 50):
        """Run V-cycles until the relative residual drops below *tol*.

        Returns ``(x, history)`` where ``history[k]`` is the residual norm
        after *k* cycles.
        """
        A = self.levels[0].A
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},)")
        x = np.zeros(self.n)
        b_norm = np.linalg.norm(b)
        history = [float(np.linalg.norm(A.residual(x, b)))]
        for _ in range(maxcycles):
            x = self._vcycle(0, x, b)
            history.append(float(np.linalg.norm(A.residual(x, b))))
            if history[-1] <= tol * max(b_norm, 1e-300):
                break
        return x, np.array(history)

    def contraction_factor(self, cycles: int = 8, seed: int = 0) -> float:
        """Geometric-mean per-cycle residual reduction on a random problem."""
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(self.n)
        _, history = self.solve(b, tol=0.0, maxcycles=cycles)
        h = history[history > 0]
        if len(h) < 2:
            return 0.0
        return float((h[-1] / h[0]) ** (1.0 / (len(h) - 1)))
