"""Built-out versions of the paper's §5 outlook.

The paper closes with two research directions: using component-wise
relaxation as a *smoother in multigrid*, and as a *preconditioner*.  Both
are implemented here:

* :mod:`repro.extensions.multigrid` — a geometric multigrid V-cycle for the
  2-D Poisson problem with pluggable smoothers (Jacobi / Gauss-Seidel /
  async-(k)), benchmarked in the X1 extension experiment.
* :mod:`repro.extensions.precond` — async-(k) sweeps as a (frozen-schedule)
  preconditioner for CG, benchmarked in X2.
"""

from .multigrid import MultigridPoisson, SmootherSpec
from .precond import AsyncPreconditioner

__all__ = ["MultigridPoisson", "SmootherSpec", "AsyncPreconditioner"]
