"""Content fingerprints of sparse systems — the cache keys of the service.

The serving layer amortises compilation (block decomposition, compiled
:class:`repro.perf.SweepPlan` structures) across independent requests that
happen to solve the *same* system.  "Same" is decided by content, not
object identity: two callers reading the same MatrixMarket file get two
:class:`repro.sparse.CSRMatrix` objects, and both must hit the cache.

Two digests, both stable across processes:

* :func:`structure_fingerprint` — shape + ``indptr`` + ``indices``: the
  sparsity pattern alone.  Everything a :class:`repro.partition.Partition`
  and the index side of a sweep plan depend on.
* :func:`matrix_fingerprint` — the structure digest extended with the
  stored values.  Two matrices with equal fingerprints are
  interchangeable in a solve, which is what lets the cache hand the same
  compiled view to every request carrying that digest.

One blake2b pass over the raw CSR arrays costs O(nnz) — microseconds to
low milliseconds at the paper's sizes, paid once per cache lookup (i.e.
per admitted batch, not per request).
"""

from __future__ import annotations

import hashlib

from ..sparse.csr import CSRMatrix

__all__ = ["matrix_fingerprint", "structure_fingerprint"]


def _digest(A: CSRMatrix, *, with_values: bool) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{A.shape[0]}x{A.shape[1]}|".encode())
    h.update(A.indptr.tobytes())
    h.update(b"|")
    h.update(A.indices.tobytes())
    if with_values:
        h.update(b"|values|")
        h.update(A.data.tobytes())
    return h.hexdigest()


def structure_fingerprint(A: CSRMatrix) -> str:
    """Digest of the sparsity structure (shape, ``indptr``, ``indices``)."""
    return _digest(A, with_values=False)


def matrix_fingerprint(A: CSRMatrix) -> str:
    """Digest of the full matrix content (structure plus stored values)."""
    return _digest(A, with_values=True)
