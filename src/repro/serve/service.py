"""The in-process solve service: cache, admission batching, telemetry.

:class:`SolveService` is the "many concurrent callers" front-end the
batched engine and the plan compiler were built for.  It accepts
independent solve requests and amortises everything that can be shared:

* **compilation** — a structure-keyed :class:`repro.serve.PlanCache`
  hands every request on a known matrix the already-compiled
  :class:`~repro.perf.SweepPlan` / :class:`~repro.partition.Partition`;
* **execution** — admission batching stacks queued same-system requests'
  right-hand sides into one ``(R, n)``
  :class:`repro.core.BatchedAsyncEngine` multi-vector solve, so R
  requests cost one batched sweep stream instead of R scalar ones.  Each
  request keeps its own seed, its own ``||b||``-relative stopping
  threshold, and gets bitwise the iterates a lone sequential solve would
  have produced (the batched engine's exactness contract);
* **observability** — every request lands as a run on the service's
  :class:`repro.runtime.RunRecorder`, and the service rolls the stream up
  into latency percentiles, queue depth, batch occupancy and cache hit
  rate, exported as one strict-JSON document
  (:meth:`SolveService.telemetry_json`, schema ``repro.serve/v1``) that
  parses even when runs diverged (non-finite residuals are sanitised).

The service is deliberately synchronous and explicitly pumped — submit
jobs, then :meth:`~SolveService.pump` one admission round or
:meth:`~SolveService.drain` the queue — which keeps admission order,
batching decisions and telemetry deterministic and testable.  The CLI
``repro serve`` front-end drives it from a JSON-lines job stream.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .._util import check_vector
from ..core.engine import AsyncEngine, BatchedAsyncEngine
from ..core.schedules import AsyncConfig
from ..runtime import RunRecorder, StoppingCriterion
from ..solvers.base import SolveResult
from ..sparse.csr import CSRMatrix
from .cache import PlanCache
from .fingerprint import matrix_fingerprint
from .jobs import JobQueue, SolveRequest, SolveResponse, _Job, batch_key_of

__all__ = ["SolveService"]


def _percentile(samples: List[float], q: float) -> Optional[float]:
    """The q-th percentile (nearest-rank) of *samples*, ``None`` if empty."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(np.ceil(q / 100.0 * len(ordered))) - 1))
    return float(ordered[rank])


class _ServiceStats:
    """Rolling service-level counters and samples."""

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.converged = 0
        self.diverged = 0
        self.batches = 0
        self.batch_sizes: List[int] = []
        self.latencies: List[float] = []
        self.queue_waits: List[float] = []
        self.depth_samples: List[int] = []

    def sample_depth(self, depth: int) -> None:
        self.depth_samples.append(int(depth))

    def to_dict(self, *, depth_now: int, max_batch: int, cache: Dict[str, Any]) -> Dict[str, Any]:
        lat = self.latencies
        sizes = self.batch_sizes
        return {
            "requests": {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timed_out": self.timed_out,
                "converged": self.converged,
                "diverged": self.diverged,
            },
            "latency_seconds": {
                "count": len(lat),
                "mean": float(np.mean(lat)) if lat else None,
                "max": float(np.max(lat)) if lat else None,
                "p50": _percentile(lat, 50),
                "p90": _percentile(lat, 90),
                "p99": _percentile(lat, 99),
            },
            "queue": {
                "depth": depth_now,
                "max_depth": max(self.depth_samples, default=0),
                "mean_wait_seconds": (
                    float(np.mean(self.queue_waits)) if self.queue_waits else None
                ),
            },
            "batches": {
                "count": self.batches,
                "mean_size": float(np.mean(sizes)) if sizes else None,
                "max_size": max(sizes, default=0),
                "occupancy": float(np.mean(sizes)) / max_batch if sizes else None,
            },
            "cache": cache,
        }


class SolveService:
    """Persistent in-process solver-as-a-service.

    Parameters
    ----------
    config:
        Default :class:`repro.core.AsyncConfig` for requests that carry
        none.  Its ``partition``/``block_size`` also key the plan cache.
    stopping:
        Default per-request :class:`repro.runtime.StoppingCriterion`
        budget.
    max_queue:
        Bound of the job queue; overflow evicts the lowest-priority
        queued job in favour of a higher-priority arrival and rejects the
        arrival otherwise.
    max_batch:
        Most requests one admission round stacks into a single
        multi-vector solve.
    cache_capacity:
        Live entries of the structure-keyed plan cache (LRU beyond it).
    recorder:
        Telemetry sink; a fresh :class:`repro.runtime.RunRecorder` is
        created when omitted.
    clock:
        Monotonic time source (injectable for deterministic tests).

    Examples
    --------
    >>> from repro import get_matrix, default_rhs
    >>> from repro.serve import SolveService
    >>> A = get_matrix("fv1"); b = default_rhs(A)
    >>> service = SolveService()
    >>> response = service.solve(A, b)
    >>> response.status, response.result.converged
    ('completed', True)
    """

    #: Version tag of the service telemetry export format.
    SCHEMA = "repro.serve/v1"

    def __init__(
        self,
        *,
        config: Optional[AsyncConfig] = None,
        stopping: Optional[StoppingCriterion] = None,
        max_queue: int = 256,
        max_batch: int = 32,
        cache_capacity: int = 16,
        recorder: Optional[RunRecorder] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.config = config if config is not None else AsyncConfig(local_iterations=5)
        self.stopping = stopping if stopping is not None else StoppingCriterion()
        self.max_batch = int(max_batch)
        self.cache = PlanCache(capacity=cache_capacity)
        self.recorder = recorder if recorder is not None else RunRecorder()
        self._clock = clock
        self._queue = JobQueue(max_queue=max_queue)
        self._stats = _ServiceStats()
        self._pending: List[SolveResponse] = []

    # --- submission -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for admission."""
        return len(self._queue)

    def submit(self, request: SolveRequest) -> Optional[SolveResponse]:
        """Enqueue *request*; returns its rejection response, if rejected.

        ``None`` means the request was queued (its response arrives from a
        later :meth:`pump` / :meth:`drain`).  When submitting displaces a
        lower-priority queued job, that job's rejection response is
        delivered by the next pump.
        """
        n = request.A.shape[0]
        request.b = check_vector(request.b, n, "b")
        config = request.config if request.config is not None else self.config
        stopping = request.stopping if request.stopping is not None else self.stopping
        now = self._clock()
        job = _Job(
            request=request,
            seq=0,
            submitted_at=now,
            config=config,
            stopping=stopping,
            batch_key=batch_key_of(
                matrix_fingerprint(request.A),
                config,
                stopping,
                request.method,
                request.precond,
            ),
        )
        self._stats.submitted += 1
        rejected = self._queue.push(job)
        self._stats.sample_depth(len(self._queue))
        if rejected is None:
            return None
        response = self._reject_response(rejected, now)
        if rejected is job:
            return response
        self._pending.append(response)
        return None

    def _reject_response(self, job: _Job, now: float) -> SolveResponse:
        self._stats.rejected += 1
        wait = now - job.submitted_at
        return SolveResponse(
            request_id=job.request.request_id,
            status="rejected",
            detail="queue full",
            priority=job.request.priority,
            queue_seconds=wait,
            latency_seconds=wait,
        )

    def _timeout_response(self, job: _Job, now: float) -> SolveResponse:
        self._stats.timed_out += 1
        wait = now - job.submitted_at
        return SolveResponse(
            request_id=job.request.request_id,
            status="timeout",
            detail=f"queued {wait:.3f}s, timeout {job.request.timeout}s",
            priority=job.request.priority,
            queue_seconds=wait,
            latency_seconds=wait,
        )

    # --- execution --------------------------------------------------------

    def pump(self) -> List[SolveResponse]:
        """One admission round: expire, admit one batch, solve, respond."""
        now = self._clock()
        responses = list(self._pending)
        self._pending.clear()
        responses.extend(self._timeout_response(j, now) for j in self._queue.expire(now))
        batch = self._queue.admit(self.max_batch)
        self._stats.sample_depth(len(self._queue))
        if batch:
            responses.extend(self._run_batch(batch))
        return responses

    def drain(self) -> List[SolveResponse]:
        """Pump until the queue is empty; all responses, submission order."""
        responses: List[SolveResponse] = []
        while len(self._queue) or self._pending:
            got = self.pump()
            if not got:
                break
            responses.extend(got)
        return responses

    def solve(self, A: CSRMatrix, b: np.ndarray, **request_kwargs: Any) -> SolveResponse:
        """Submit one request and run it to completion (convenience)."""
        request = SolveRequest(A=A, b=b, **request_kwargs)
        rejection = self.submit(request)
        if rejection is not None:
            return rejection
        for response in self.drain():
            if response.request_id == request.request_id:
                return response
        raise RuntimeError(f"request {request.request_id} produced no response")

    def _run_batch(self, batch: List[_Job]) -> List[SolveResponse]:
        config = batch[0].config
        stopping = batch[0].stopping
        fp = batch[0].batch_key[0]
        entry, hit = self.cache.lookup(
            batch[0].request.A,
            config.partition,
            config.block_size,
            backend=config.backend,
            fingerprint=fp,
        )
        admitted_at = self._clock()
        if batch[0].request.method != "async":
            results = self._run_krylov(entry, batch)
        elif len(batch) == 1:
            results = [self._run_single(entry, batch[0])]
        else:
            results = self._run_batched(entry, batch)
        completed_at = self._clock()
        solve_seconds = completed_at - admitted_at

        self._stats.batches += 1
        self._stats.batch_sizes.append(len(batch))
        responses = []
        for job, result in zip(batch, results):
            queue_seconds = admitted_at - job.submitted_at
            latency = completed_at - job.submitted_at
            self._stats.completed += 1
            self._stats.converged += int(result.converged)
            self._stats.diverged += int(bool(result.info.get("diverged")))
            self._stats.latencies.append(latency)
            self._stats.queue_waits.append(queue_seconds)
            responses.append(
                SolveResponse(
                    request_id=job.request.request_id,
                    status="completed",
                    result=result,
                    priority=job.request.priority,
                    queue_seconds=queue_seconds,
                    solve_seconds=solve_seconds,
                    latency_seconds=latency,
                    batch_size=len(batch),
                    cache_hit=hit,
                )
            )
        return responses

    def _run_krylov(self, entry, batch: List[_Job]) -> List[SolveResult]:
        """Krylov-method jobs: per-request outer solves, shared inner plan.

        The outer recurrences (CG/GMRES/Richardson) don't stack into a
        multi-vector sweep stream, so each request solves on its own —
        but the batch shares one solver whose preconditioner's inner
        sweeps compiled once against the cached ``PlanCache`` view, and
        every solve lands on the service recorder.
        """
        from ..krylov import make_outer_solver

        job0 = batch[0]
        solver = make_outer_solver(
            job0.request.method,
            entry.view.matrix,
            precond=job0.request.precond,
            config=job0.config,
            stopping=job0.stopping,
            view=entry.view,
            residual_every=job0.config.residual_every,
            recorder=self.recorder,
        )
        results = []
        for job in batch:
            result = solver.solve(entry.view.matrix, job.request.b)
            notes = {
                "request_id": job.request.request_id,
                "batch_size": len(batch),
                "batched": False,
                "method": job.request.method,
            }
            if job.request.precond is not None:
                notes["precond"] = job.request.precond
            self.recorder.annotate(**notes)
            results.append(result)
        return results

    def _run_single(self, entry, job: _Job) -> SolveResult:
        """One lone request: the sequential engine on the cached view."""
        config = dataclasses.replace(job.config, seed=job.request.seed)
        engine = AsyncEngine(entry.view, job.request.b, config)
        result = engine.run(stopping=job.stopping, recorder=self.recorder)
        self.recorder.annotate(
            request_id=job.request.request_id, batch_size=1, batched=False
        )
        return result

    def _run_batched(self, entry, batch: List[_Job]) -> List[SolveResult]:
        """R same-system requests as one (R, n) multi-vector solve.

        Each request keeps its own seed and its own ``||b_r||``-relative
        threshold; replica *r*'s iterates are bitwise what a sequential
        solve of request *r* alone would have produced.  The shared
        batched run lands on the service recorder (sweep timings, active
        counts), followed by one derived per-request run carrying that
        request's residual trace and outcome.
        """
        config = batch[0].config
        stopping = batch[0].stopping
        R = len(batch)
        B = np.stack([job.request.b for job in batch])
        engine = BatchedAsyncEngine(
            entry.view,
            B,
            config,
            R,
            seeds=[job.request.seed for job in batch],
        )
        ids = [job.request.request_id for job in batch]
        out = engine.run(
            stopping=stopping,
            residual_every=config.residual_every,
            recorder=self.recorder,
            meta={"request_ids": ids},
        )
        results = []
        for r, job in enumerate(batch):
            history = out.histories[r]
            iters = out.residual_iters[: len(history)]
            b_norm = float(np.linalg.norm(B[r]))
            diverged = bool(out.diverged[r])
            result = SolveResult(
                x=out.X[r].copy(),
                residuals=history,
                converged=bool(out.converged[r]),
                method=config.method_name,
                b_norm=b_norm,
                info={
                    "diverged": diverged,
                    "backend": engine.backend,
                    "sweeps": int(iters[-1]),
                    "batched": True,
                    "batch_size": R,
                },
            )
            if config.residual_every != 1:
                result.residual_iters = iters
            results.append(result)
            # Derived per-request telemetry run: the trace a sequential
            # run of this request would have recorded.
            rec = self.recorder
            rec.open_run(
                method=config.method_name,
                request_id=job.request.request_id,
                b_norm=b_norm,
                threshold=stopping.threshold(b_norm),
                maxiter=stopping.maxiter,
                residual_every=config.residual_every,
                tol=stopping.tol,
                relative=stopping.relative,
                batched=True,
                batch_size=R,
            )
            for it, v in zip(iters, history):
                rec.record_residual(int(it), float(v))
            rec.annotate(backend=engine.backend, seed=job.request.seed)
            rec.close_run(
                converged=bool(out.converged[r]),
                diverged=diverged,
                sweeps=int(iters[-1]),
                final_residual=float(history[-1]),
            )
        return results

    # --- telemetry --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service-level rollup: requests, latency percentiles, queue,
        batch occupancy, cache hit rate."""
        return self._stats.to_dict(
            depth_now=len(self._queue),
            max_batch=self.max_batch,
            cache=self.cache.stats(),
        )

    def telemetry(self) -> Dict[str, Any]:
        """The full export: service rollup plus every recorded run."""
        return {
            "schema": self.SCHEMA,
            "service": self.stats(),
            "telemetry": self.recorder.to_dict(),
        }

    def telemetry_json(self, *, indent: int = 2) -> str:
        """Strict (RFC 8259) JSON export — parses even for diverged runs."""
        return json.dumps(self.telemetry(), indent=indent, allow_nan=False)

    def dump_telemetry(self, path) -> None:
        """Write :meth:`telemetry_json` to *path*."""
        with open(path, "w") as fh:
            fh.write(self.telemetry_json())
            fh.write("\n")
