"""JSON-lines job streams — the ``repro serve`` CLI's wire format.

One job per line, e.g.::

    {"matrix": "fv1", "rhs": "random", "seed": 3, "priority": 1}
    {"matrix": "path/to/system.mtx", "rhs": [1.0, 0.0, 2.5], "tol": 1e-8}

Recognised keys (all optional except ``matrix``):

``matrix``
    Suite name (``fv1``, ``trefethen_2000``, ...) or MatrixMarket path.
    Matrices are loaded once per stream and shared across jobs, so repeat
    systems batch and hit the plan cache.
``rhs``
    ``"ones"`` / ``"random"`` / ``"unit"`` (the
    :func:`repro.matrices.default_rhs` kinds, ``"random"`` seeded by the
    job's ``seed``) or an explicit list of values.
``id`` / ``priority`` / ``timeout`` / ``seed``
    Per-request fields of :class:`repro.serve.SolveRequest`.
``method`` / ``precond``
    Outer-solver selection: ``method`` is ``"async"`` (default) or a
    :data:`repro.krylov.OUTER_METHODS` name (``"cg"``, ``"pcg"``,
    ``"gmres"``, ``"richardson"``, ``"richardson2"``); ``precond`` is a
    preconditioner spec (``"none"``/``"jacobi"``/``"async"``/``"async:K"``)
    whose inner sweeps reuse the cached compiled plan.  Jobs sharing a
    method/preconditioner pair group into one admission batch.
``tol`` / ``maxiter``
    Stopping overrides (:class:`repro.runtime.StoppingCriterion`).
``local_iterations`` / ``block_size`` / ``omega`` / ``order`` /
``backend`` / ``partition`` / ``schwarz`` / ``residual_every``
    Asynchronism overrides (:class:`repro.core.AsyncConfig`); jobs with
    identical effective configurations on the same matrix batch together.
    ``partition`` accepts ``+oK`` overlap suffixes and ``schwarz``
    selects the restricted-Schwarz mode (``"none"``/``"ras"``/``"wras"``).

Blank lines and ``#`` comments are skipped; unknown keys are an error
(typos should not silently fall back to defaults).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from ..sparse.csr import CSRMatrix
from .jobs import SolveRequest, SolveResponse
from .service import SolveService

__all__ = ["JobStreamError", "parse_job", "run_job_stream"]

_REQUEST_KEYS = {"id", "priority", "timeout", "seed", "method", "precond"}
_CONFIG_KEYS = {
    "local_iterations",
    "block_size",
    "omega",
    "order",
    "backend",
    "partition",
    "schwarz",
    "residual_every",
}
_STOPPING_KEYS = {"tol", "maxiter"}
_ALL_KEYS = {"matrix", "rhs"} | _REQUEST_KEYS | _CONFIG_KEYS | _STOPPING_KEYS


class JobStreamError(ValueError):
    """A malformed job line (bad JSON, unknown key, missing matrix)."""


def _default_load_matrix(spec: str) -> CSRMatrix:
    from ..matrices import get_matrix, read_matrix_market

    try:
        return get_matrix(spec)
    except KeyError:
        return read_matrix_market(spec)


def _job_rhs(A: CSRMatrix, rhs: Any, seed: int) -> np.ndarray:
    if isinstance(rhs, (list, tuple)):
        return np.asarray(rhs, dtype=np.float64)
    from ..matrices import default_rhs

    return default_rhs(A, kind=str(rhs), seed=seed)


def parse_job(
    obj: Dict[str, Any],
    service: SolveService,
    *,
    matrices: Optional[Dict[str, CSRMatrix]] = None,
    load_matrix: Callable[[str], CSRMatrix] = _default_load_matrix,
) -> SolveRequest:
    """One decoded job object → a :class:`repro.serve.SolveRequest`.

    *service* supplies the base config/stopping that per-job overrides are
    applied to; *matrices* (one dict per stream) memoises loads so repeat
    systems share one object.
    """
    if not isinstance(obj, dict):
        raise JobStreamError(f"job must be a JSON object, got {type(obj).__name__}")
    unknown = set(obj) - _ALL_KEYS
    if unknown:
        raise JobStreamError(f"unknown job keys: {sorted(unknown)}")
    spec = obj.get("matrix")
    if not spec:
        raise JobStreamError('job needs a "matrix" (suite name or .mtx path)')
    if matrices is None:
        matrices = {}
    if spec not in matrices:
        matrices[spec] = load_matrix(str(spec))
    A = matrices[spec]
    seed = int(obj.get("seed", 0))
    b = _job_rhs(A, obj.get("rhs", "ones"), seed)
    cfg_over = {k: obj[k] for k in _CONFIG_KEYS if k in obj}
    stop_over = {k: obj[k] for k in _STOPPING_KEYS if k in obj}
    try:
        config = (
            dataclasses.replace(service.config, **cfg_over) if cfg_over else None
        )
        stopping = (
            dataclasses.replace(service.stopping, **stop_over) if stop_over else None
        )
        return SolveRequest(
            A=A,
            b=b,
            request_id=obj.get("id"),
            priority=int(obj.get("priority", 0)),
            timeout=obj.get("timeout"),
            seed=seed,
            config=config,
            stopping=stopping,
            method=str(obj.get("method", "async")),
            precond=obj.get("precond"),
        )
    except (TypeError, ValueError) as exc:
        raise JobStreamError(str(exc)) from None


def run_job_stream(
    lines: Iterable[str],
    service: SolveService,
    *,
    emit: Optional[Callable[[SolveResponse], None]] = None,
    load_matrix: Callable[[str], CSRMatrix] = _default_load_matrix,
) -> List[SolveResponse]:
    """Drive *service* from a JSON-lines job stream; all responses.

    Every job is submitted first — so same-system jobs sit in the queue
    together and the admission batcher can stack them — then the queue is
    drained.  *emit* (when given) is called with each response as it is
    produced: immediate rejections during submission, everything else
    during the drain.
    """
    matrices: Dict[str, CSRMatrix] = {}
    responses: List[SolveResponse] = []

    def deliver(response: SolveResponse) -> None:
        responses.append(response)
        if emit is not None:
            emit(response)

    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobStreamError(f"line {lineno}: invalid JSON: {exc}") from None
        try:
            request = parse_job(obj, service, matrices=matrices, load_matrix=load_matrix)
        except JobStreamError as exc:
            raise JobStreamError(f"line {lineno}: {exc}") from None
        rejection = service.submit(request)
        if rejection is not None:
            deliver(rejection)
    for response in service.drain():
        deliver(response)
    return responses
