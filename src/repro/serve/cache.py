"""Structure-keyed cache of compiled solve artifacts.

Compilation — cutting a :class:`repro.partition.Partition`, building the
:class:`repro.sparse.BlockRowView`, compiling the shared
:class:`repro.perf.SweepPlan` — is the per-matrix fixed cost every solve
pays before its first sweep.  A service receiving many requests for the
same system should pay it **once**: :class:`PlanCache` maps a matrix
content fingerprint plus decomposition spec to the compiled artifacts, so
repeat matrices skip compilation entirely and every engine built on a
cached entry shares one plan (the sharing the plan compiler was designed
for, now across independent callers instead of within one).

Eviction is LRU with a bounded capacity: a service solving a rotating set
of systems keeps the hot ones compiled and lets cold decompositions go.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..partition import Partition, make_partition, parse_partition_spec
from ..perf.plan import SweepPlan, compile_sweep_plan
from ..sparse import BlockRowView
from ..sparse.csr import CSRMatrix
from .fingerprint import matrix_fingerprint

__all__ = ["CacheEntry", "PlanCache"]


@dataclass
class CacheEntry:
    """Compiled artifacts of one (matrix, decomposition) pair."""

    #: Cache key: (matrix fingerprint, partition spec, block size,
    #: requested backend, parsed overlap).
    key: Tuple[str, str, int, str, int]
    #: The matrix the artifacts were compiled for (content-identical to
    #: every matrix that hits this entry).
    matrix: CSRMatrix
    #: The cut partition.
    partition: Partition
    #: The block view every engine on this entry shares.
    view: BlockRowView
    #: The compiled sweep plan (attached to the view; one compilation).
    plan: SweepPlan
    #: Times this entry served a lookup after compilation.
    hits: int = field(default=0)


class PlanCache:
    """LRU cache from matrix fingerprints to compiled solve artifacts.

    Parameters
    ----------
    capacity:
        Maximum number of live entries; the least recently used entry is
        evicted when a compile would exceed it.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, str, int, str, int], CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self,
        A: CSRMatrix,
        partition_spec: str = "uniform",
        block_size: int = 128,
        *,
        backend: str = "auto",
        fingerprint: Optional[str] = None,
    ) -> Tuple[CacheEntry, bool]:
        """The compiled entry for ``(A, spec, block_size, backend)`` and hit status.

        A hit returns the existing artifacts (the fingerprint guarantees
        *A* is content-identical to the cached matrix); a miss cuts the
        partition, builds the view and compiles the sweep plan, evicting
        the least recently used entry if the cache is full.  Permuting
        partition strategies (``rcm``, ``clustered``) are rejected: the
        service solves in original row order.  Pass *fingerprint* when the
        caller already computed :func:`matrix_fingerprint(A)
        <repro.serve.matrix_fingerprint>` (the service batch keys carry
        it) to skip re-hashing the arrays.

        *backend* is the request's **requested** backend and is part of
        the key: an entry whose plan was warmed (and possibly
        stencil-compiled) under ``backend="auto"`` dispatch is never
        served to a request that forced ``backend="reference"`` — the two
        requests must not share warm/telemetry state, and a forced
        backend's errors must surface on its own entry.

        The spec's parsed ``+oK`` overlap is an explicit key component:
        two requests differing only in overlap compile different extended
        block systems and must never share a plan, even if a future spec
        normalisation were to canonicalise the strings.
        """
        fp = fingerprint if fingerprint is not None else matrix_fingerprint(A)
        overlap = parse_partition_spec(str(partition_spec))[2]
        key = (fp, str(partition_spec), int(block_size), str(backend), overlap)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry, True
        self.misses += 1
        partition = make_partition(A, partition_spec, block_size=block_size)
        if partition.perm is not None:
            raise ValueError(
                f"partition spec {partition_spec!r} carries a row permutation; "
                "the serve cache only supports non-permuting strategies "
                "(uniform, work_balanced)"
            )
        view = BlockRowView(A, partition=partition)
        plan = compile_sweep_plan(view)
        entry = CacheEntry(key=key, matrix=A, partition=partition, view=view, plan=plan)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry, False

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly counters (hit rate over all lookups so far)."""
        lookups = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
