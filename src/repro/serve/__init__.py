"""Solver-as-a-service: persistent in-process serving of solve requests.

The rest of the package answers "solve this system once"; this subsystem
answers "keep solving systems as requests arrive" — the setting of a
simulation service or a many-tenant experiment driver, where most of the
per-solve cost (partitioning, sweep-plan compilation, engine setup) is
identical across requests and most requests repeat a small set of
matrices.

* :mod:`repro.serve.fingerprint` — content digests of sparse systems
  (:func:`matrix_fingerprint`, :func:`structure_fingerprint`): the keys
  that decide "same system" across independent callers.
* :mod:`repro.serve.cache` — :class:`PlanCache`, the structure-keyed LRU
  from fingerprints to compiled :class:`~repro.partition.Partition` /
  :class:`~repro.sparse.BlockRowView` / :class:`~repro.perf.SweepPlan`
  artifacts: compilation is paid once per system, not once per request.
* :mod:`repro.serve.jobs` — :class:`SolveRequest` / :class:`SolveResponse`
  and the bounded priority :class:`JobQueue` (timeouts, overflow
  eviction, batch keys).
* :mod:`repro.serve.service` — :class:`SolveService`: admission batching
  stacks same-system requests into one ``(R, n)``
  :class:`~repro.core.engine.BatchedAsyncEngine` multi-vector solve
  (bitwise what each request would get alone), with per-request
  :class:`~repro.runtime.RunRecorder` telemetry rolled up into
  service-level stats and exported as strict RFC 8259 JSON.
* :mod:`repro.serve.stream` — the JSON-lines job-stream front-end behind
  the ``repro serve`` CLI command.

>>> from repro import get_matrix, default_rhs
>>> from repro.serve import SolveService, SolveRequest
>>> A = get_matrix("fv1")
>>> service = SolveService()
>>> for seed in range(4):
...     _ = service.submit(SolveRequest(A=A, b=default_rhs(A), seed=seed))
>>> responses = service.drain()   # one batched 4-replica solve
>>> all(r.result.converged for r in responses)
True
"""

from .cache import CacheEntry, PlanCache
from .fingerprint import matrix_fingerprint, structure_fingerprint
from .jobs import JobQueue, SolveRequest, SolveResponse
from .service import SolveService
from .stream import JobStreamError, parse_job, run_job_stream

__all__ = [
    "CacheEntry",
    "JobQueue",
    "JobStreamError",
    "PlanCache",
    "SolveRequest",
    "SolveResponse",
    "SolveService",
    "matrix_fingerprint",
    "parse_job",
    "run_job_stream",
    "structure_fingerprint",
]
