"""Restarted GMRES.

The paper's introduction motivates asynchronous methods by pointing at the
synchronization appetite of Krylov solvers: "when solving linear systems of
equations with iterative methods like the Conjugate Gradient or GMRES, the
parallelism is usually limited to the matrix-vector and the vector-vector
operations (with synchronization required between them)".  GMRES(m) is
implemented here to make that comparison concrete for nonsymmetric systems
(and as the general-matrix companion to :class:`ConjugateGradientSolver`):
every inner step is an Arnoldi orthogonalisation — a global reduction per
basis vector, the exact synchronisation pattern the paper contrasts with.

Standard formulation: Arnoldi with modified Gram-Schmidt, Givens rotations
maintaining the QR of the Hessenberg matrix, restart every *m* steps.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._util import check_square, check_vector
from ..sparse import CSRMatrix
from .base import IterativeSolver, SolveResult, StoppingCriterion

__all__ = ["GMRESSolver"]

Preconditioner = Callable[[np.ndarray], np.ndarray]


class GMRESSolver(IterativeSolver):
    """GMRES(m) with optional right preconditioning.

    Parameters
    ----------
    restart:
        Krylov basis size *m* before restarting.
    preconditioner:
        Optional callable applying ``M⁻¹`` (right preconditioning: solves
        ``A M⁻¹ u = b`` with ``x = M⁻¹ u``, so the reported residuals stay
        true residuals of the original system).
    stopping:
        ``maxiter`` counts *inner* iterations (matrix-vector products), so
        budgets are comparable with the relaxation solvers'.

    Notes
    -----
    GMRES records a *recurrence* residual estimate per inner step (the
    Givens-rotated ``|g[k+1]|`` — no extra matvec), amending it with the
    true residual at each restart boundary, so its loop drives a
    :class:`repro.runtime.RunLedger` rather than the standard
    :class:`repro.runtime.RunLoop`; the ``residual_every`` cadence does not
    apply (the estimates already come for free).
    """

    name = "gmres"

    def __init__(
        self,
        restart: int = 30,
        preconditioner: Optional[Preconditioner] = None,
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        if restart < 1:
            raise ValueError("restart must be >= 1")
        self.restart = restart
        self.preconditioner = preconditioner
        self.name = f"gmres({restart})" if preconditioner is None else f"pgmres({restart})"

    # The template hooks are unused; GMRES owns its loop.
    def _setup(self, A: CSRMatrix, b: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    def _iterate(self, state, x):  # pragma: no cover
        raise NotImplementedError

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        n = check_square(A.shape, "gmres matrix")
        b = check_vector(b, n, "b")
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
        M = self.preconditioner

        b_norm = float(np.linalg.norm(b))
        m = self.restart

        ledger = self._run_loop().ledger(b_norm, method=self.name)
        threshold = ledger.threshold
        ledger.start(float(np.linalg.norm(A.residual(x, b))))
        inner_done = 0

        while not ledger.converged and inner_done < self.stopping.maxiter:
            r = A.residual(x, b)
            beta = float(np.linalg.norm(r))
            if beta == 0.0:
                ledger.converged = True
                break
            V = np.zeros((m + 1, n))
            H = np.zeros((m + 1, m))
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            g[0] = beta
            V[0] = r / beta

            k_used = 0
            for k in range(m):
                if inner_done >= self.stopping.maxiter:
                    break
                z = M(V[k]) if M is not None else V[k]
                w = A.matvec(z)
                inner_done += 1
                # Modified Gram-Schmidt.
                for i in range(k + 1):
                    H[i, k] = float(V[i] @ w)
                    w -= H[i, k] * V[i]
                H[k + 1, k] = float(np.linalg.norm(w))
                if H[k + 1, k] > 1e-14:
                    V[k + 1] = w / H[k + 1, k]
                # Apply previous Givens rotations to the new column.
                for i in range(k):
                    t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                    H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                    H[i, k] = t
                # New rotation annihilating H[k+1, k].
                denom = np.hypot(H[k, k], H[k + 1, k])
                if denom == 0.0:
                    cs[k], sn[k] = 1.0, 0.0
                else:
                    cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
                H[k, k] = denom
                H[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]
                k_used = k + 1
                ledger.record(inner_done, abs(float(g[k + 1])))
                if abs(g[k + 1]) <= threshold:
                    break

            if k_used:
                # Solve the small triangular system and update x.
                y = np.zeros(k_used)
                for i in range(k_used - 1, -1, -1):
                    y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 :]) / H[i, i]
                update = V[:k_used].T @ y
                x += M(update) if M is not None else update
            true_res = float(np.linalg.norm(A.residual(x, b)))
            ledger.amend_last(true_res)  # replace the recurrence estimate
            if ledger.check(true_res) and ledger.diverged:
                break
            if k_used == 0:
                break  # no progress possible (budget exhausted mid-cycle)

        ledger.finish(inner_iterations=inner_done)
        residuals = ledger.history()
        return SolveResult(
            x=x,
            residuals=residuals,
            converged=ledger.converged,
            method=self.name,
            b_norm=b_norm,
            info={"diverged": bool(self.stopping.diverged(residuals[-1])), "restart": m},
        )
