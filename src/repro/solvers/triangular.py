"""Level-scheduled sparse lower-triangular solves.

Gauss-Seidel's forward sweep is a solve with ``L + D``.  The substitution
recurrence is sequential row by row, but rows whose lower-triangular
dependencies live in *earlier levels* can be processed together — the
classic level-scheduling (wavefront) technique from parallel sparse solvers.
:class:`LevelSchedule` computes the level sets once, :class:`TriangularSweep`
additionally precomputes the per-level gather structure, so each repeated
solve runs one vectorized gather/reduce per level instead of one Python
operation per row (for a 9-point stencil on a 99×99 grid: 295 levels instead
of 9,801 rows).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._util import check_square, check_vector
from ..sparse import CSRMatrix

__all__ = ["LevelSchedule", "TriangularSweep", "solve_lower_triangular"]


def _concat_ranges(lo: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorized ``concatenate([arange(l, l+c) for l, c in zip(lo, counts)])``."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    keep = counts > 0
    lo = lo[keep]
    counts = counts[keep]
    steps = np.ones(total, dtype=np.int64)
    steps[0] = lo[0]
    ends = np.cumsum(counts)[:-1]
    # At each range boundary, jump from the previous range's last value + 1
    # to the next range's start.
    steps[ends] = lo[1:] - (lo[:-1] + counts[:-1] - 1)
    return np.cumsum(steps)


class LevelSchedule:
    """Wavefront schedule for a lower-triangular sparse solve.

    Parameters
    ----------
    L:
        Square CSR matrix; only its strictly-lower-triangular entries define
        the dependency DAG (anything on or above the diagonal is ignored, so
        a full system matrix can be passed directly).

    Attributes
    ----------
    levels:
        ``levels[i]`` is the wavefront index of row *i* (longest dependency
        chain ending at *i*).
    nlevels:
        Number of wavefronts — the critical-path length, a parallelism
        metric in its own right.
    level_rows:
        Rows grouped by level (list of index arrays).
    """

    def __init__(self, L: CSRMatrix):
        n = check_square(L.shape, "LevelSchedule matrix")
        strict = L.lower_triangle(strict=True)
        levels = np.zeros(n, dtype=np.int64)
        # Fixed-point iteration: levels[i] = 1 + max(levels of lower deps).
        # Each pass is one vectorized segment-max over the dependency lists;
        # it converges after `nlevels` passes (the critical path).
        indptr, indices = strict.indptr, strict.indices
        starts = indptr[:-1]
        nonempty = indptr[1:] > starts
        for _ in range(n + 1):
            new = np.zeros(n, dtype=np.int64)
            if len(indices):
                dep = levels[indices]
                new[nonempty] = np.maximum.reduceat(dep, starts[nonempty]) + 1
            if np.array_equal(new, levels):
                break
            levels = new
        else:  # pragma: no cover - cycles are impossible in a triangle
            raise RuntimeError("level computation failed to converge")
        self.levels = levels
        self.nlevels = int(levels.max()) + 1 if n else 0
        order = np.argsort(levels, kind="stable")
        counts = np.bincount(levels, minlength=self.nlevels)
        bounds = np.zeros(self.nlevels + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        self.level_rows: List[np.ndarray] = [
            order[bounds[k] : bounds[k + 1]] for k in range(self.nlevels)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LevelSchedule n={len(self.levels)} nlevels={self.nlevels}>"


class TriangularSweep:
    """Reusable solver for ``(D + strict_lower(L)) x = rhs``.

    Precomputes, per wavefront level: the row set, the flattened nonzero
    positions of those rows' strictly-lower entries, and the segment
    offsets for the row-wise reduction — so :meth:`solve` performs no
    structural work at all.
    """

    def __init__(self, L: CSRMatrix, schedule: Optional[LevelSchedule] = None):
        n = check_square(L.shape, "TriangularSweep matrix")
        self.n = n
        d = L.diagonal()
        if np.any(d == 0.0):
            raise ValueError("triangular solve requires a zero-free diagonal")
        self.diag = d
        self.schedule = schedule if schedule is not None else LevelSchedule(L)
        strict = L.lower_triangle(strict=True)
        indptr = strict.indptr
        self._plan: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for rows in self.schedule.level_rows:
            lo = indptr[rows]
            counts = indptr[rows + 1] - lo
            flat = _concat_ranges(lo, counts)
            seg_starts = np.zeros(len(rows), dtype=np.int64)
            np.cumsum(counts[:-1], out=seg_starts[1:])
            self._plan.append(
                (rows, strict.indices[flat], strict.data[flat], seg_starts, counts > 0)
            )

    def solve(self, rhs: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Forward substitution; *out* (if given) receives the solution."""
        rhs = check_vector(rhs, self.n, "rhs")
        x = out if out is not None else np.empty(self.n)
        for rows, cols, vals, seg_starts, has_deps in self._plan:
            if len(cols):
                prod = vals * x[cols]
                sums = np.zeros(len(rows))
                sums[has_deps] = np.add.reduceat(prod, seg_starts[has_deps])
                x[rows] = (rhs[rows] - sums) / self.diag[rows]
            else:
                x[rows] = rhs[rows] / self.diag[rows]
        return x


def solve_lower_triangular(
    L: CSRMatrix,
    rhs: np.ndarray,
    *,
    schedule: Optional[LevelSchedule] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`TriangularSweep`."""
    return TriangularSweep(L, schedule).solve(rhs, out=out)
