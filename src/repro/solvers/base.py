"""Common solver interface, result record and stopping logic.

All iterative methods in the package — the synchronous baselines here and
the block-asynchronous solvers in :mod:`repro.core` — share one contract:

    ``result = solver.solve(A, b, x0=None)``

returning a :class:`SolveResult` that records the *l2 residual norm at every
global iteration* (the quantity all of the paper's convergence figures
plot), plus convergence status and method-specific info.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .._util import check_square, check_vector
from ..sparse import CSRMatrix

__all__ = ["StoppingCriterion", "SolveResult", "IterativeSolver"]


@dataclass(frozen=True)
class StoppingCriterion:
    """Residual-based stopping rule.

    ``relative=True`` (default) compares ``||r|| / ||b||`` against *tol*
    (with ``||b|| = 0`` falling back to the absolute residual); otherwise
    ``||r||`` itself is compared.  ``divergence_limit`` aborts runs whose
    residual exploded (used for the ρ(B) > 1 experiments, where divergence
    is the expected observation, not an error).
    """

    tol: float = 1e-14
    maxiter: int = 1000
    relative: bool = True
    divergence_limit: float = 1e100

    def __post_init__(self) -> None:
        if self.tol < 0:
            raise ValueError("tol must be non-negative")
        if self.maxiter < 0:
            raise ValueError("maxiter must be non-negative")

    def threshold(self, b_norm: float) -> float:
        """Absolute residual threshold for a given right-hand-side norm."""
        if self.relative and b_norm > 0:
            return self.tol * b_norm
        return self.tol

    def diverged(self, res_norm: float) -> bool:
        """Whether *res_norm* signals blow-up."""
        return not np.isfinite(res_norm) or res_norm > self.divergence_limit


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        Final iterate.
    residuals:
        l2 residual norms, ``residuals[k]`` after *k* global iterations
        (``residuals[0]`` is the initial residual).
    converged:
        Whether the stopping tolerance was reached.
    method:
        Human-readable method tag (e.g. ``"async-(5)"``).
    b_norm:
        l2 norm of the right-hand side (for relative-residual plots).
    info:
        Method-specific extras (schedules, timing-model output, ...).
    """

    x: np.ndarray
    residuals: np.ndarray
    converged: bool
    method: str
    b_norm: float
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of global iterations performed."""
        return len(self.residuals) - 1

    @property
    def final_residual(self) -> float:
        """Last recorded l2 residual norm."""
        return float(self.residuals[-1])

    def relative_residuals(self) -> np.ndarray:
        """Residual history scaled by ``||b||`` (or unscaled if b = 0)."""
        if self.b_norm > 0:
            return self.residuals / self.b_norm
        return self.residuals.copy()

    def asymptotic_rate(self, *, skip: int = 10, floor: float = 1e-15) -> Optional[float]:
        """Geometric-mean per-iteration residual contraction.

        Fitted over the history after the first *skip* iterations, ignoring
        everything at or below *floor* (the rounding plateau).  ``None``
        when fewer than two usable points remain.  Comparable directly to
        the spectral radius ρ of the iteration matrix.
        """
        rel = self.residuals
        usable = np.flatnonzero(rel > floor)
        usable = usable[usable >= skip]
        if len(usable) < 2:
            return None
        first, last = usable[0], usable[-1]
        if rel[first] <= 0 or last == first:
            return None
        return float((rel[last] / rel[first]) ** (1.0 / (last - first)))

    def to_dict(self, *, include_solution: bool = False) -> Dict[str, Any]:
        """JSON-serialisable summary (history always, iterate on request)."""
        out: Dict[str, Any] = {
            "method": self.method,
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "final_residual": float(self.final_residual),
            "b_norm": float(self.b_norm),
            "residuals": [float(r) for r in self.residuals],
            "info": {
                k: (v.tolist() if isinstance(v, np.ndarray) else v)
                for k, v in self.info.items()
            },
        }
        if include_solution:
            out["x"] = self.x.tolist()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SolveResult {self.method}: iters={self.iterations} "
            f"residual={self.final_residual:.3e} converged={self.converged}>"
        )


class IterativeSolver(abc.ABC):
    """Base class for all iterative solvers.

    Subclasses implement :meth:`_setup` (per-matrix precomputation) and
    :meth:`_iterate` (one global iteration, in place); the base class owns
    the loop, the residual recording and the stopping logic so all methods
    report histories in exactly the same way.
    """

    #: Method tag used in results and reports; subclasses override.
    name = "iterative"

    def __init__(self, stopping: Optional[StoppingCriterion] = None):
        self.stopping = stopping if stopping is not None else StoppingCriterion()

    # --- subclass protocol ------------------------------------------------

    @abc.abstractmethod
    def _setup(self, A: CSRMatrix, b: np.ndarray) -> Any:
        """Precompute per-system state (splittings, schedules, ...)."""

    @abc.abstractmethod
    def _iterate(self, state: Any, x: np.ndarray) -> np.ndarray:
        """Perform one global iteration, returning the new iterate."""

    # --- driver -----------------------------------------------------------

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Run the method on ``A x = b`` until convergence or maxiter."""
        n = check_square(A.shape, f"{self.name} matrix")
        b = check_vector(b, n, "b")
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
        state = self._setup(A, b)

        b_norm = float(np.linalg.norm(b))
        threshold = self.stopping.threshold(b_norm)
        residuals: List[float] = [float(np.linalg.norm(A.residual(x, b)))]
        converged = residuals[0] <= threshold
        diverged = False

        it = 0
        while not converged and it < self.stopping.maxiter:
            x = self._iterate(state, x)
            it += 1
            res = float(np.linalg.norm(A.residual(x, b)))
            residuals.append(res)
            if res <= threshold:
                converged = True
            elif self.stopping.diverged(res):
                diverged = True
                break

        result = SolveResult(
            x=x,
            residuals=np.array(residuals),
            converged=converged,
            method=self.name,
            b_norm=b_norm,
            info={"diverged": diverged},
        )
        self._finalize(state, result)
        return result

    def _finalize(self, state: Any, result: SolveResult) -> None:
        """Hook for subclasses to attach extra info to the result."""
