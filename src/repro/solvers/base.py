"""Common solver interface, result record and stopping logic.

All iterative methods in the package — the synchronous baselines here and
the block-asynchronous solvers in :mod:`repro.core` — share one contract:

    ``result = solver.solve(A, b, x0=None)``

returning a :class:`SolveResult` that records the *l2 residual norm at every
global iteration* (the quantity all of the paper's convergence figures
plot), plus convergence status and method-specific info.

The loop itself lives in :mod:`repro.runtime`: every solver delegates its
driving to :class:`repro.runtime.RunLoop`, which owns the stopping rule
(:class:`StoppingCriterion`, defined there and re-exported here), the
divergence guard, the ``residual_every`` recording cadence and the optional
:class:`repro.runtime.RunRecorder` telemetry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .._util import check_square, check_vector
from ..runtime import RunLoop, RunOutcome, StoppingCriterion
from ..runtime.recorder import RunRecorder
from ..sparse import CSRMatrix

__all__ = ["StoppingCriterion", "SolveResult", "IterativeSolver"]


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        Final iterate.
    residuals:
        l2 residual norms.  At the default recording cadence
        (``residual_every=1``), ``residuals[k]`` is the residual after *k*
        global iterations (``residuals[0]`` is the initial residual); at a
        sparser cadence, :attr:`residual_iters` gives each sample's
        iteration number.
    converged:
        Whether the stopping tolerance was reached.
    method:
        Human-readable method tag (e.g. ``"async-(5)"``).
    b_norm:
        l2 norm of the right-hand side (for relative-residual plots).
    info:
        Method-specific extras (schedules, timing-model output, ...).
    residual_iters:
        Iteration number of each recorded residual, set only when the
        recording cadence is sparser than every iteration
        (``residual_every > 1``); ``None`` means the dense default
        ``[0, 1, ..., len(residuals) - 1]``.
    """

    x: np.ndarray
    residuals: np.ndarray
    converged: bool
    method: str
    b_norm: float
    info: Dict[str, Any] = field(default_factory=dict)
    residual_iters: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        """Number of global iterations covered by the recorded history."""
        if self.residual_iters is not None:
            return int(self.residual_iters[-1])
        return len(self.residuals) - 1

    @property
    def final_residual(self) -> float:
        """Last recorded l2 residual norm."""
        return float(self.residuals[-1])

    def relative_residuals(self) -> np.ndarray:
        """Residual history scaled by ``||b||`` (or unscaled if b = 0)."""
        if self.b_norm > 0:
            return self.residuals / self.b_norm
        return self.residuals.copy()

    def asymptotic_rate(self, *, skip: int = 10, floor: float = 1e-15) -> Optional[float]:
        """Geometric-mean per-iteration residual contraction.

        Fitted over the history after the first *skip* iterations, ignoring
        everything at or below *floor* (the rounding plateau).  ``None``
        when fewer than two usable points remain.  Comparable directly to
        the spectral radius ρ of the iteration matrix.  Sparse recording
        cadences are handled: the fit uses each sample's true iteration
        number.
        """
        rel = self.residuals
        iters = (
            self.residual_iters
            if self.residual_iters is not None
            else np.arange(len(rel))
        )
        usable = np.flatnonzero(rel > floor)
        usable = usable[iters[usable] >= skip]
        if len(usable) < 2:
            return None
        first, last = usable[0], usable[-1]
        span = int(iters[last] - iters[first])
        if rel[first] <= 0 or span == 0:
            return None
        return float((rel[last] / rel[first]) ** (1.0 / span))

    def to_dict(self, *, include_solution: bool = False) -> Dict[str, Any]:
        """JSON-serialisable summary (history always, iterate on request)."""
        out: Dict[str, Any] = {
            "method": self.method,
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "final_residual": float(self.final_residual),
            "b_norm": float(self.b_norm),
            "residuals": [float(r) for r in self.residuals],
            "info": {
                k: (v.tolist() if isinstance(v, np.ndarray) else v)
                for k, v in self.info.items()
            },
        }
        if self.residual_iters is not None:
            out["residual_iters"] = [int(i) for i in self.residual_iters]
        if include_solution:
            out["x"] = self.x.tolist()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SolveResult {self.method}: iters={self.iterations} "
            f"residual={self.final_residual:.3e} converged={self.converged}>"
        )


class IterativeSolver(abc.ABC):
    """Base class for all iterative solvers.

    Subclasses implement :meth:`_setup` (per-matrix precomputation) and
    :meth:`_iterate` (one global iteration, in place); the base class hands
    the driving to :class:`repro.runtime.RunLoop` so all methods stop,
    guard against divergence and report histories in exactly the same way.

    Parameters
    ----------
    stopping:
        Shared stopping rule.
    residual_every:
        Full-residual recording cadence *m* (see
        :class:`repro.runtime.RunLoop`); 1 — the default used by every
        paper figure — records each iteration.
    recorder:
        Optional :class:`repro.runtime.RunRecorder` telemetry sink.
    """

    #: Method tag used in results and reports; subclasses override.
    name = "iterative"

    #: A prebuilt block view handed from a partition-aware ``solve``
    #: override to ``_setup`` (see :meth:`_solve_partitioned`).
    _pending_view = None

    def __init__(
        self,
        stopping: Optional[StoppingCriterion] = None,
        *,
        residual_every: int = 1,
        recorder: Optional[RunRecorder] = None,
    ):
        self.stopping = stopping if stopping is not None else StoppingCriterion()
        if residual_every < 1:
            raise ValueError("residual_every must be >= 1")
        self.residual_every = int(residual_every)
        self.recorder = recorder

    # --- subclass protocol ------------------------------------------------

    @abc.abstractmethod
    def _setup(self, A: CSRMatrix, b: np.ndarray) -> Any:
        """Precompute per-system state (splittings, schedules, ...)."""

    @abc.abstractmethod
    def _iterate(self, state: Any, x: np.ndarray) -> np.ndarray:
        """Perform one global iteration, returning the new iterate."""

    # --- driver -----------------------------------------------------------

    def _run_loop(self) -> RunLoop:
        """The configured :class:`repro.runtime.RunLoop` for one solve."""
        return RunLoop(
            self.stopping,
            residual_every=self.residual_every,
            recorder=self.recorder,
        )

    def _result_from(self, outcome: RunOutcome, b_norm: float) -> SolveResult:
        """Shape a :class:`SolveResult` from a loop outcome."""
        result = SolveResult(
            x=outcome.x,
            residuals=outcome.residuals,
            converged=outcome.converged,
            method=self.name,
            b_norm=b_norm,
            info={"diverged": outcome.diverged},
        )
        if self.residual_every != 1:
            result.residual_iters = outcome.residual_iters
            result.info["sweeps"] = outcome.sweeps
        return result

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Run the method on ``A x = b`` until convergence or maxiter."""
        n = check_square(A.shape, f"{self.name} matrix")
        b = check_vector(b, n, "b")
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()
        state = self._setup(A, b)

        b_norm = float(np.linalg.norm(b))
        outcome = self._run_loop().run(
            x,
            lambda x, it: self._iterate(state, x),
            lambda x: float(np.linalg.norm(A.residual(x, b))),
            b_norm=b_norm,
            method=self.name,
        )
        result = self._result_from(outcome, b_norm)
        self._finalize(state, result)
        return result

    def _solve_partitioned(
        self,
        view,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Run the standard solve on *view*'s (possibly permuted) system.

        Partition-aware solvers build a :class:`repro.sparse.BlockRowView`
        up front and route their ``solve`` through here.  When the view
        carries no row permutation this is exactly :meth:`solve` — same
        arrays, same flow, bitwise-identical histories.  With a
        permutation, the iteration runs in **partition order** (the
        residual history and stopping rule are evaluated on the permuted
        system, which is the system the blocks actually sweep) and the
        final iterate is mapped back to original row order before being
        returned.
        """
        self._pending_view = view
        try:
            if view.perm is None:
                return IterativeSolver.solve(self, A, b, x0)
            n = view.n
            x0p = None if x0 is None else view.permute_vector(check_vector(x0, n, "x0"))
            result = IterativeSolver.solve(self, view.matrix, view.permute_vector(b), x0p)
            result.x = view.unpermute_vector(result.x)
            result.info["permuted"] = True
            return result
        finally:
            self._pending_view = None

    def _finalize(self, state: Any, result: SolveResult) -> None:
        """Hook for subclasses to attach extra info to the result."""
