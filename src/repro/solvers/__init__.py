"""Synchronous baseline solvers.

The paper compares the block-asynchronous method against three synchronous
references, all re-implemented here on top of :mod:`repro.sparse`:

* :class:`JacobiSolver` — component-wise Jacobi (Eq. (2)), the GPU baseline;
* :class:`GaussSeidelSolver` / :class:`SORSolver` — the CPU reference, with
  a level-scheduled sparse triangular sweep (the standard parallel
  formulation of Gauss-Seidel);
* :class:`ConjugateGradientSolver` — the "highly tuned CG" of §4.4.

Beyond the paper's three, the family is completed for ablations and
preconditioning baselines: :class:`SSORSolver` (symmetric sweeps),
:class:`BlockJacobiSolver` (the *synchronous* two-stage method async-(k)
chaotifies — the paper's reference [5]), and :class:`ChebyshevSolver`
(spectrum-aware acceleration, the √κ companion to the §4.2 τ-scaling).
"""

from .base import IterativeSolver, SolveResult, StoppingCriterion
from .jacobi import JacobiSolver
from .gauss_seidel import GaussSeidelSolver, SORSolver
from .ssor import SSORSolver
from .block_jacobi import BlockJacobiSolver, local_jacobi_sweeps
from .chebyshev import ChebyshevSolver
from .triangular import LevelSchedule, TriangularSweep, solve_lower_triangular
from .cg import ConjugateGradientSolver
from .gmres import GMRESSolver
from .scaling import estimate_tau, tau_scaling

__all__ = [
    "IterativeSolver",
    "SolveResult",
    "StoppingCriterion",
    "JacobiSolver",
    "GaussSeidelSolver",
    "SORSolver",
    "SSORSolver",
    "BlockJacobiSolver",
    "local_jacobi_sweeps",
    "ChebyshevSolver",
    "LevelSchedule",
    "TriangularSweep",
    "solve_lower_triangular",
    "ConjugateGradientSolver",
    "GMRESSolver",
    "estimate_tau",
    "tau_scaling",
]
