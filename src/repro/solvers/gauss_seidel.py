"""Gauss-Seidel and SOR via level-scheduled triangular sweeps.

The forward Gauss-Seidel update

    (D + L) x^{k+1} = b − U x^k

is the paper's CPU reference method (§3.2: a 4-core CPU implementation
parallelising the matrix-vector parts).  Here the sweep itself is
parallelised the standard way — wavefront level scheduling
(:mod:`repro.solvers.triangular`) — which preserves the *exact* sequential
update order and hence the exact Gauss-Seidel convergence behaviour.

:class:`SORSolver` generalises to successive over-relaxation,

    (D/ω + L) x^{k+1} = [(1/ω − 1) D − U] x^k + b,

with ``ω = 1`` recovering Gauss-Seidel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse import CSRMatrix
from .base import IterativeSolver, StoppingCriterion
from .triangular import TriangularSweep

__all__ = ["GaussSeidelSolver", "SORSolver"]


@dataclass
class _SORState:
    sweep: TriangularSweep
    upper: CSRMatrix          # strictly upper part
    diag_term: np.ndarray     # (1/omega - 1) * diag, zero for GS
    b: np.ndarray
    rhs_scratch: np.ndarray


class SORSolver(IterativeSolver):
    """Successive over-relaxation with relaxation weight *omega*.

    Notes
    -----
    The sweep matrix ``D/ω + L`` reuses one :class:`TriangularSweep` whose
    level schedule is computed once per solve; per-iteration cost is one
    SpMV with the strict upper triangle plus one wavefront substitution.
    """

    name = "sor"

    def __init__(
        self,
        omega: float = 1.0,
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        if not (0 < omega < 2):
            raise ValueError("SOR requires omega in (0, 2)")
        self.omega = omega
        if type(self) is SORSolver:
            self.name = f"sor(omega={omega:g})"

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _SORState:
        d = A.diagonal()
        if np.any(d == 0.0):
            raise ValueError("Gauss-Seidel/SOR requires a zero-free diagonal")
        lower = A.lower_triangle(strict=True)
        upper = A.upper_triangle(strict=True)
        sweep_matrix = lower.add(CSRMatrix.diagonal_matrix(d / self.omega))
        return _SORState(
            sweep=TriangularSweep(sweep_matrix),
            upper=upper,
            diag_term=(1.0 / self.omega - 1.0) * d,
            b=b,
            rhs_scratch=np.empty_like(b),
        )

    def _iterate(self, state: _SORState, x: np.ndarray) -> np.ndarray:
        rhs = state.upper.matvec(x, out=state.rhs_scratch)
        np.subtract(state.b, rhs, out=rhs)
        if self.omega != 1.0:
            rhs += state.diag_term * x
        return state.sweep.solve(rhs, out=x)


class GaussSeidelSolver(SORSolver):
    """Forward Gauss-Seidel (SOR with ω = 1) — the paper's CPU baseline."""

    name = "gauss-seidel"

    def __init__(self, stopping: Optional[StoppingCriterion] = None, **loop_options):
        super().__init__(omega=1.0, stopping=stopping, **loop_options)
