"""Conjugate Gradient, with an optional preconditioner hook.

The paper's §4.4 compares against "a highly tuned GPU implementation of the
CG solver"; this is the algorithmic equivalent (Hestenes–Stiefel CG for SPD
systems), implemented on the package's own SpMV.  The preconditioner hook
exists for the X2 extension experiment — using the block-asynchronous
method itself as a preconditioner (the paper's §5 outlook).

Unlike the relaxation solvers, CG carries recurrence state across
iterations, so it implements its own loop instead of the
:class:`IterativeSolver` template's stateless iterate — but it returns the
same :class:`SolveResult` with the same per-iteration residual recording.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._util import check_square, check_vector
from ..runtime import StopRun
from ..sparse import CSRMatrix
from .base import IterativeSolver, SolveResult, StoppingCriterion

__all__ = ["ConjugateGradientSolver"]

#: A preconditioner: x ≈ A⁻¹ r given r.
Preconditioner = Callable[[np.ndarray], np.ndarray]


class ConjugateGradientSolver(IterativeSolver):
    """(Preconditioned) Conjugate Gradient for SPD systems.

    Parameters
    ----------
    preconditioner:
        Optional callable applying ``M⁻¹`` to a residual.  It must represent
        a fixed SPD operator for CG theory to hold; the async-preconditioner
        extension freezes its schedule to stay (approximately) within that
        contract, as discussed in :mod:`repro.extensions.precond`.
    stopping:
        Shared stopping rule.

    Notes
    -----
    Residuals are tracked recursively (as in any production CG) but the
    *recorded* history re-evaluates ``||b − A x||`` every iteration to stay
    bit-comparable with the relaxation solvers' histories.
    """

    name = "cg"

    def __init__(
        self,
        preconditioner: Optional[Preconditioner] = None,
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        self.preconditioner = preconditioner
        if preconditioner is not None:
            self.name = "pcg"

    # The template hooks are unused; CG owns its loop.
    def _setup(self, A: CSRMatrix, b: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _iterate(self, state, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        n = check_square(A.shape, "cg matrix")
        b = check_vector(b, n, "b")
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()

        b_norm = float(np.linalg.norm(b))
        M = self.preconditioner

        r = A.residual(x, b)
        z = M(r) if M else r
        state = {"r": r, "p": z.copy(), "rz": float(r @ z), "fresh": True}

        def step(x: np.ndarray, it: int) -> np.ndarray:
            # Refresh the search direction from the previous iteration's
            # residual — deferred from the end of that iteration (the
            # classical placement) to here, which runs the identical ops on
            # identical values whenever the loop continues, and skips them
            # (they were dead work) when it does not.
            if not state["fresh"]:
                r = state["r"]
                z = M(r) if M else r
                rz_new = float(r @ z)
                if state["rz"] == 0.0:
                    raise StopRun("breakdown")
                beta = rz_new / state["rz"]
                state["rz"] = rz_new
                state["p"] = z + beta * state["p"]
            state["fresh"] = False
            p = state["p"]
            Ap = A.matvec(p)
            pAp = float(p @ Ap)
            if pAp <= 0 or not np.isfinite(pAp):
                # Loss of positive definiteness (numerically or truly):
                # report what we have instead of dividing by garbage.
                raise StopRun("breakdown")
            alpha = state["rz"] / pAp
            x += alpha * p
            state["r"] -= alpha * Ap
            return x

        outcome = self._run_loop().run(
            x,
            step,
            lambda x: float(np.linalg.norm(A.residual(x, b))),
            b_norm=b_norm,
            method=self.name,
            r0=float(np.linalg.norm(r)),
        )
        result = self._result_from(outcome, b_norm)
        result.info["breakdown"] = outcome.stop_reason == "breakdown"
        return result
