"""Conjugate Gradient, with an optional preconditioner hook.

The paper's §4.4 compares against "a highly tuned GPU implementation of the
CG solver"; this is the algorithmic equivalent (Hestenes–Stiefel CG for SPD
systems), implemented on the package's own SpMV.  The preconditioner hook
exists for the X2 extension experiment — using the block-asynchronous
method itself as a preconditioner (the paper's §5 outlook).

Unlike the relaxation solvers, CG carries recurrence state across
iterations, so it implements its own loop instead of the
:class:`IterativeSolver` template's stateless iterate — but it returns the
same :class:`SolveResult` with the same per-iteration residual recording.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._util import check_square, check_vector
from ..sparse import CSRMatrix
from .base import IterativeSolver, SolveResult, StoppingCriterion

__all__ = ["ConjugateGradientSolver"]

#: A preconditioner: x ≈ A⁻¹ r given r.
Preconditioner = Callable[[np.ndarray], np.ndarray]


class ConjugateGradientSolver(IterativeSolver):
    """(Preconditioned) Conjugate Gradient for SPD systems.

    Parameters
    ----------
    preconditioner:
        Optional callable applying ``M⁻¹`` to a residual.  It must represent
        a fixed SPD operator for CG theory to hold; the async-preconditioner
        extension freezes its schedule to stay (approximately) within that
        contract, as discussed in :mod:`repro.extensions.precond`.
    stopping:
        Shared stopping rule.

    Notes
    -----
    Residuals are tracked recursively (as in any production CG) but the
    *recorded* history re-evaluates ``||b − A x||`` every iteration to stay
    bit-comparable with the relaxation solvers' histories.
    """

    name = "cg"

    def __init__(
        self,
        preconditioner: Optional[Preconditioner] = None,
        stopping: Optional[StoppingCriterion] = None,
    ):
        super().__init__(stopping)
        self.preconditioner = preconditioner
        if preconditioner is not None:
            self.name = "pcg"

    # The template hooks are unused; CG owns its loop.
    def _setup(self, A: CSRMatrix, b: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _iterate(self, state, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        n = check_square(A.shape, "cg matrix")
        b = check_vector(b, n, "b")
        x = np.zeros(n) if x0 is None else check_vector(x0, n, "x0").copy()

        b_norm = float(np.linalg.norm(b))
        threshold = self.stopping.threshold(b_norm)

        r = A.residual(x, b)
        residuals = [float(np.linalg.norm(r))]
        converged = residuals[0] <= threshold
        diverged = False
        breakdown = False

        z = self.preconditioner(r) if self.preconditioner else r
        p = z.copy()
        rz = float(r @ z)

        it = 0
        while not converged and it < self.stopping.maxiter:
            Ap = A.matvec(p)
            pAp = float(p @ Ap)
            if pAp <= 0 or not np.isfinite(pAp):
                # Loss of positive definiteness (numerically or truly):
                # report what we have instead of dividing by garbage.
                breakdown = True
                break
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            it += 1
            res = float(np.linalg.norm(A.residual(x, b)))
            residuals.append(res)
            if res <= threshold:
                converged = True
                break
            if self.stopping.diverged(res):
                diverged = True
                break
            z = self.preconditioner(r) if self.preconditioner else r
            rz_new = float(r @ z)
            if rz == 0.0:
                breakdown = True
                break
            beta = rz_new / rz
            rz = rz_new
            p = z + beta * p

        return SolveResult(
            x=x,
            residuals=np.array(residuals),
            converged=converged,
            method=self.name,
            b_norm=b_norm,
            info={"diverged": diverged, "breakdown": breakdown},
        )
