"""Chebyshev semi-iteration over the Jacobi splitting.

The optimal *non-adaptive* acceleration of damped Jacobi when the spectrum
interval ``[λ₁, λₙ]`` of ``D⁻¹A`` is known: it converges at the rate

    ρ_cheb = (√κ − 1) / (√κ + 1),   κ = λₙ/λ₁,

the square-root improvement over the τ-scaled radius (κ−1)/(κ+1).  The
package uses it as the "how much does knowing the spectrum buy" baseline
beside the τ-scaling remedy of §4.2 — both consume the same Lanczos
estimates from :func:`repro.solvers.estimate_tau`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse import CSRMatrix
from .base import IterativeSolver, StoppingCriterion
from .scaling import estimate_tau

__all__ = ["ChebyshevSolver"]


@dataclass
class _ChebState:
    A: CSRMatrix
    b: np.ndarray
    inv_diag: np.ndarray
    theta: float    # interval midpoint
    delta: float    # interval half-width
    # Recurrence state:
    alpha: float
    x_prev: Optional[np.ndarray]
    first: bool


class ChebyshevSolver(IterativeSolver):
    """Chebyshev acceleration of the Jacobi splitting for SPD systems.

    Parameters
    ----------
    lambda_min / lambda_max:
        Spectrum bounds of ``D⁻¹A``; estimated with the package Lanczos if
        omitted.  Underestimating λ₁ is safe (slower); overestimating it
        risks divergence — the estimator approaches from inside, so the
        default applies a 10 % safety margin.
    """

    name = "chebyshev"

    def __init__(
        self,
        lambda_min: Optional[float] = None,
        lambda_max: Optional[float] = None,
        *,
        lanczos_steps: int = 150,
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        if (lambda_min is None) != (lambda_max is None):
            raise ValueError("give both spectrum bounds or neither")
        if lambda_min is not None and not (0 < lambda_min <= lambda_max):
            raise ValueError("need 0 < lambda_min <= lambda_max")
        self.lambda_min = lambda_min
        self.lambda_max = lambda_max
        self.lanczos_steps = lanczos_steps

    def predicted_rate(self) -> float:
        """ρ_cheb = (√κ−1)/(√κ+1) for the configured bounds."""
        if self.lambda_min is None:
            raise ValueError("bounds not set (solve() estimates them)")
        kappa = self.lambda_max / self.lambda_min
        s = np.sqrt(kappa)
        return (s - 1.0) / (s + 1.0)

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _ChebState:
        lo, hi = self.lambda_min, self.lambda_max
        if lo is None:
            ts = estimate_tau(A, steps=self.lanczos_steps)
            # Safety: Lanczos approaches the extremes from inside.
            lo, hi = 0.9 * ts.lambda_min, 1.05 * ts.lambda_max
            self.lambda_min, self.lambda_max = lo, hi
        d = A.diagonal()
        if np.any(d <= 0.0):
            raise ValueError("Chebyshev-over-Jacobi requires a positive diagonal")
        return _ChebState(
            A=A,
            b=b,
            inv_diag=1.0 / d,
            theta=(hi + lo) / 2.0,
            delta=(hi - lo) / 2.0,
            alpha=0.0,
            x_prev=None,
            first=True,
        )

    def _iterate(self, state: _ChebState, x: np.ndarray) -> np.ndarray:
        # Standard Chebyshev recurrence on the preconditioned residual
        # z = D^{-1}(b - Ax) (Saad, "Iterative Methods", alg. 12.1 form).
        z = state.inv_diag * state.A.residual(x, state.b)
        if state.first:
            state.alpha = 1.0 / state.theta
            x_new = x + state.alpha * z
            state.first = False
        else:
            beta = (state.delta * state.alpha / 2.0) ** 2
            state.alpha = 1.0 / (state.theta - beta / state.alpha)
            x_new = x + state.alpha * z + beta * (x - state.x_prev)
        state.x_prev = x.copy()
        return x_new
