"""Synchronous two-stage / block-Jacobi methods.

The paper's async-(k) is the *asynchronous* member of the two-stage family
of Bai, Migallón, Penadés and Szyld (its reference [5]).  This module
provides the synchronous members, which make the cleanest ablation
baselines for "what does the asynchronism itself buy":

* **block-Jacobi** (``inner="exact"``): every block solves its diagonal
  block exactly (dense LU, factorized once) against off-block values frozen
  at the previous iterate;
* **two-stage block-Jacobi** (``inner="jacobi"``, q inner sweeps): the
  blocks' solves are replaced by q Jacobi sweeps — exactly async-(q)'s
  block update, but with all blocks synchronized on the previous iterate.

async-(k) with a ``"synchronous"`` schedule coincides with the two-stage
method (a test fixture); with the GPU schedule it interleaves blocks and
typically converges a little faster per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from .._util import check_square, check_vector
from ..partition import Partition, make_partition
from ..sparse import BlockRowView, CSRMatrix
from .base import IterativeSolver, SolveResult, StoppingCriterion

__all__ = ["BlockJacobiSolver", "local_jacobi_sweeps"]


def local_jacobi_sweeps(
    local_off: CSRMatrix,
    diag: np.ndarray,
    s: np.ndarray,
    z: np.ndarray,
    sweeps: int,
    *,
    omega: float = 1.0,
) -> np.ndarray:
    """*sweeps* Jacobi iterations on one block with the off-block part frozen.

    The shared inner kernel of the two-stage methods and the asynchronous
    engines (Algorithm 1's inner loop): iterate ``z ← (s − L z) / d`` with
    optional ω-relaxation, where *local_off* is the block's in-block
    off-diagonal part in **block-local column numbering**
    (:meth:`repro.sparse.RowBlock.local_off_compressed`) and ``s`` is the
    frozen contribution ``b_block − A_external · x_read``.

    ``s`` and ``z`` broadcast: pass ``(bs,)`` vectors for a single iterate
    or ``(R, bs)`` multi-vectors to advance R replicas at once — the
    multi-vector path is bitwise identical to R separate 1-D calls.  *z*
    is not modified; the final iterate is returned.
    """
    for _ in range(sweeps):
        new = (s - local_off.matvec(z)) / diag
        if omega != 1.0:
            new = (1.0 - omega) * z + omega * new
        z = new
    return z


@dataclass
class _BJState:
    view: BlockRowView
    b: np.ndarray
    lu: Optional[List[Tuple[np.ndarray, np.ndarray]]]  # per-block LU (exact inner)
    scratch: np.ndarray


class BlockJacobiSolver(IterativeSolver):
    """Synchronous block-Jacobi with exact or inner-Jacobi block solves.

    Parameters
    ----------
    block_size:
        Rows per diagonal block.
    inner:
        ``"exact"`` — direct solve of each diagonal block (classical
        block-Jacobi); ``"jacobi"`` — *inner_sweeps* Jacobi iterations on
        the block (two-stage method).
    inner_sweeps:
        Inner iteration count for ``inner="jacobi"``.
    partition:
        Row-block decomposition: a ``strategy[:param]`` spec string (see
        :mod:`repro.partition.strategies`) or a ready-made
        :class:`repro.partition.Partition`; the default ``"uniform"`` is
        bitwise the historical *block_size* cuts.  Permuting strategies
        iterate on the permuted system (histories in partition order) and
        report the solution in original row order.
    """

    name = "block-jacobi"

    def __init__(
        self,
        block_size: int = 128,
        *,
        inner: str = "exact",
        inner_sweeps: int = 5,
        partition: Union[str, Partition] = "uniform",
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        if inner not in ("exact", "jacobi"):
            raise ValueError(f"inner must be 'exact' or 'jacobi', got {inner!r}")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if inner_sweeps < 1:
            raise ValueError("inner_sweeps must be positive")
        self.block_size = block_size
        self.inner = inner
        self.inner_sweeps = inner_sweeps
        self.partition = partition
        self.name = (
            f"block-jacobi({block_size})"
            if inner == "exact"
            else f"two-stage({block_size},q={inner_sweeps})"
        )

    def solve(
        self,
        A: CSRMatrix,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` on the configured partition (see class docs)."""
        n = check_square(A.shape, f"{self.name} matrix")
        check_vector(b, n, "b")
        part = make_partition(A, self.partition, block_size=self.block_size)
        view = BlockRowView(A, partition=part)
        return self._solve_partitioned(view, A, b, x0)

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _BJState:
        import scipy.linalg

        view = self._pending_view
        if view is None or view.matrix is not A:
            part = make_partition(A, self.partition, block_size=self.block_size)
            if part.perm is not None:
                raise ValueError(
                    "permuting partitions must go through solve(); "
                    "_setup received the unpermuted matrix"
                )
            view = BlockRowView(A, partition=part)
        lu = None
        if self.inner == "exact":
            lu = []
            for blk in view.blocks:
                # Dense diagonal block: local_off covers the off-diagonal
                # in-block entries (global column space -> slice it down).
                size = blk.nrows
                dense = blk.local_off.to_dense()[:, blk.start : blk.stop]
                dense[np.arange(size), np.arange(size)] = blk.diag
                lu.append(scipy.linalg.lu_factor(dense, check_finite=False))
        else:
            # The two-stage iterate runs fused over the whole system
            # (see _iterate); build the stacked kernels outside the
            # timed iterations.
            view.warm_stacked_kernels()
        return _BJState(view=view, b=b, lu=lu, scratch=np.empty_like(b))

    def _iterate(self, state: _BJState, x: np.ndarray) -> np.ndarray:
        view = state.view
        if self.inner == "jacobi":
            # Fused two-stage update: one stacked external SpMV and q
            # stacked Jacobi sweeps advance every block at once — bitwise
            # the per-block loop (the length-class kernels sum each row
            # identically in the restacked and per-block matrices, and the
            # synchronous outer step reads only the previous iterate).
            ext = view.external_matrix().matvec(x, out=state.scratch)
            s_all = np.subtract(state.b, ext, out=ext)
            x[:] = local_jacobi_sweeps(
                view.local_offdiag_matrix(),
                view.diagonal_vector(),
                s_all,
                x,
                self.inner_sweeps,
            )
            return x

        import scipy.linalg

        new = state.scratch
        for bid, blk in enumerate(view.blocks):
            s = state.b[blk.rows] - blk.external.matvec(x)
            new[blk.rows] = scipy.linalg.lu_solve(state.lu[bid], s, check_finite=False)
        x[:] = new
        return x
