"""Synchronous two-stage / block-Jacobi methods.

The paper's async-(k) is the *asynchronous* member of the two-stage family
of Bai, Migallón, Penadés and Szyld (its reference [5]).  This module
provides the synchronous members, which make the cleanest ablation
baselines for "what does the asynchronism itself buy":

* **block-Jacobi** (``inner="exact"``): every block solves its diagonal
  block exactly (dense LU, factorized once) against off-block values frozen
  at the previous iterate;
* **two-stage block-Jacobi** (``inner="jacobi"``, q inner sweeps): the
  blocks' solves are replaced by q Jacobi sweeps — exactly async-(q)'s
  block update, but with all blocks synchronized on the previous iterate.

async-(k) with a ``"synchronous"`` schedule coincides with the two-stage
method (a test fixture); with the GPU schedule it interleaves blocks and
typically converges a little faster per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..sparse import BlockRowView, CSRMatrix
from .base import IterativeSolver, StoppingCriterion

__all__ = ["BlockJacobiSolver"]


@dataclass
class _BJState:
    view: BlockRowView
    b: np.ndarray
    lu: Optional[List[Tuple[np.ndarray, np.ndarray]]]  # per-block LU (exact inner)
    scratch: np.ndarray


class BlockJacobiSolver(IterativeSolver):
    """Synchronous block-Jacobi with exact or inner-Jacobi block solves.

    Parameters
    ----------
    block_size:
        Rows per diagonal block.
    inner:
        ``"exact"`` — direct solve of each diagonal block (classical
        block-Jacobi); ``"jacobi"`` — *inner_sweeps* Jacobi iterations on
        the block (two-stage method).
    inner_sweeps:
        Inner iteration count for ``inner="jacobi"``.
    """

    name = "block-jacobi"

    def __init__(
        self,
        block_size: int = 128,
        *,
        inner: str = "exact",
        inner_sweeps: int = 5,
        stopping: Optional[StoppingCriterion] = None,
    ):
        super().__init__(stopping)
        if inner not in ("exact", "jacobi"):
            raise ValueError(f"inner must be 'exact' or 'jacobi', got {inner!r}")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if inner_sweeps < 1:
            raise ValueError("inner_sweeps must be positive")
        self.block_size = block_size
        self.inner = inner
        self.inner_sweeps = inner_sweeps
        self.name = (
            f"block-jacobi({block_size})"
            if inner == "exact"
            else f"two-stage({block_size},q={inner_sweeps})"
        )

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _BJState:
        import scipy.linalg

        view = BlockRowView(A, block_size=self.block_size)
        lu = None
        if self.inner == "exact":
            lu = []
            for blk in view.blocks:
                # Dense diagonal block: local_off covers the off-diagonal
                # in-block entries (global column space -> slice it down).
                size = blk.nrows
                dense = blk.local_off.to_dense()[:, blk.start : blk.stop]
                dense[np.arange(size), np.arange(size)] = blk.diag
                lu.append(scipy.linalg.lu_factor(dense, check_finite=False))
        return _BJState(view=view, b=b, lu=lu, scratch=np.empty_like(b))

    def _iterate(self, state: _BJState, x: np.ndarray) -> np.ndarray:
        import scipy.linalg

        view = state.view
        new = state.scratch
        # One shared workspace: each block's local_off only reads the
        # block's own rows, so blocks may scribble into it independently.
        full = x.copy() if self.inner == "jacobi" else None
        for bid, blk in enumerate(view.blocks):
            s = state.b[blk.rows] - blk.external.matvec(x)
            if self.inner == "exact":
                new[blk.rows] = scipy.linalg.lu_solve(state.lu[bid], s, check_finite=False)
            else:
                # Inner Jacobi against the frozen off-block contribution,
                # warm-started from the current outer iterate.
                z = x[blk.rows]
                for _ in range(self.inner_sweeps):
                    full[blk.rows] = z
                    z = (s - blk.local_off.matvec(full)) / blk.diag
                new[blk.rows] = z
        x[:] = new
        return x
