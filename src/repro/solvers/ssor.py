"""Symmetric SOR (forward + backward sweeps).

SSOR completes the classical relaxation family: one iteration is a forward
SOR sweep followed by a backward one, producing a *symmetric* iteration
operator — the property the async-preconditioner extension emulates with
its forward/reverse pair, and a natural SPD preconditioner baseline.

The backward sweep reuses the forward machinery on the index-reversed
matrix (reversal is a symmetric permutation, so spectra are untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse import CSRMatrix
from .base import IterativeSolver, StoppingCriterion
from .triangular import TriangularSweep

__all__ = ["SSORSolver"]


@dataclass
class _SSORState:
    fwd_sweep: TriangularSweep
    bwd_sweep: TriangularSweep      # on the reversed matrix
    upper: CSRMatrix
    lower: CSRMatrix
    diag_term: np.ndarray
    b: np.ndarray
    b_rev: np.ndarray
    scratch: np.ndarray


def _reverse(A: CSRMatrix) -> CSRMatrix:
    """Symmetrically reverse the row/column order."""
    from ..matrices.rcm import permute_symmetric

    n = A.shape[0]
    return permute_symmetric(A, np.arange(n - 1, -1, -1))


class SSORSolver(IterativeSolver):
    """Symmetric successive over-relaxation.

    One iteration:

        (D/ω + L) x½ = [(1/ω − 1)D − U] x  + b     (forward)
        (D/ω + U) x' = [(1/ω − 1)D − L] x½ + b     (backward)

    ``ω = 1`` gives symmetric Gauss-Seidel.
    """

    name = "ssor"

    def __init__(
        self,
        omega: float = 1.0,
        stopping: Optional[StoppingCriterion] = None,
        **loop_options,
    ):
        super().__init__(stopping, **loop_options)
        if not (0 < omega < 2):
            raise ValueError("SSOR requires omega in (0, 2)")
        self.omega = omega
        if omega != 1.0:
            self.name = f"ssor(omega={omega:g})"

    def _setup(self, A: CSRMatrix, b: np.ndarray) -> _SSORState:
        d = A.diagonal()
        if np.any(d == 0.0):
            raise ValueError("SSOR requires a zero-free diagonal")
        lower = A.lower_triangle(strict=True)
        upper = A.upper_triangle(strict=True)
        fwd = TriangularSweep(lower.add(CSRMatrix.diagonal_matrix(d / self.omega)))
        # Backward sweep = forward sweep on the reversed system.
        rev = _reverse(A)
        d_rev = rev.diagonal()
        bwd = TriangularSweep(
            rev.lower_triangle(strict=True).add(CSRMatrix.diagonal_matrix(d_rev / self.omega))
        )
        return _SSORState(
            fwd_sweep=fwd,
            bwd_sweep=bwd,
            upper=upper,
            lower=lower,
            diag_term=(1.0 / self.omega - 1.0) * d,
            b=b,
            b_rev=b[::-1].copy(),
            scratch=np.empty_like(b),
        )

    def _iterate(self, state: _SSORState, x: np.ndarray) -> np.ndarray:
        # Forward half-sweep.
        rhs = state.upper.matvec(x, out=state.scratch)
        np.subtract(state.b, rhs, out=rhs)
        if self.omega != 1.0:
            rhs += state.diag_term * x
        x_half = state.fwd_sweep.solve(rhs)
        # Backward half-sweep, via the reversed system.
        rhs = state.lower.matvec(x_half, out=state.scratch)
        np.subtract(state.b, rhs, out=rhs)
        if self.omega != 1.0:
            rhs += state.diag_term * x_half
        x_rev = state.bwd_sweep.solve(rhs[::-1].copy())
        x[:] = x_rev[::-1]
        return x
